"""Stream-to-store spill: the live buffer's settled head goes out of
core without changing any answer.

The contract: running aggregates (matrix, live cubes) keep covering
spilled rows, the store + retained tail together hold exactly the
ingested history, and repeated spills append to one growing store.
"""

import numpy as np
import pytest

from repro.core import (
    RegionSet,
    SpatialAggregation,
    SpatialAggregationEngine,
)
from repro.geometry import Polygon
from repro.store import Dataset
from repro.stream import PointStream
from repro.table import PointTable, timestamp_column

HOUR = 3_600


@pytest.fixture(scope="module")
def spill_regions() -> RegionSet:
    def square(x0, y0):
        return Polygon([(x0, y0), (x0 + 4, y0), (x0 + 4, y0 + 4),
                        (x0, y0 + 4)])

    return RegionSet("quads", [square(0, 0), square(5, 0),
                               square(0, 5), square(5, 5)],
                     ["sw", "se", "nw", "ne"])


def make_batch(gen, t0, n=2_000):
    t = np.sort(gen.integers(t0, t0 + HOUR, n))
    return PointTable.from_arrays(
        gen.uniform(0, 9, n), gen.uniform(0, 9, n), name="feed",
        fare=np.floor(gen.exponential(9.0, n)),
        t=timestamp_column("t", t))


@pytest.fixture()
def fed_stream(spill_regions):
    gen = np.random.default_rng(52)
    stream = PointStream(spill_regions, resolution=128,
                         bucket_seconds=HOUR)
    batches = [make_batch(gen, hour * HOUR) for hour in range(5)]
    for batch in batches:
        stream.append(batch)
    return stream, batches, gen


class TestSpill:
    def test_default_cutoff_keeps_open_bucket(self, fed_stream, tmp_path):
        stream, batches, _ = fed_stream
        stats = stream.spill(tmp_path / "store", partition_rows=1_024)
        assert stats["before"] == 4 * HOUR
        assert stats["rows_spilled"] == 4 * 2_000
        assert stats["rows_retained"] == 2_000 == len(stream)
        assert stream.table().column("t").values.min() >= 4 * HOUR

    def test_store_plus_tail_is_whole_history(self, fed_stream, tmp_path,
                                              spill_regions):
        stream, batches, _ = fed_stream
        stream.spill(tmp_path / "store", partition_rows=1_024)
        ds = Dataset.open(tmp_path / "store")
        whole = PointTable.concat(batches, name="all")
        assert len(ds) + len(stream) == len(whole)

        engine = SpatialAggregationEngine(default_resolution=128)
        query = SpatialAggregation("sum", "fare")
        spilled = engine.execute(ds, spill_regions, query, resolution=128)
        tail = engine.execute(stream.table(), spill_regions, query,
                              method="bounded", resolution=128)
        full = engine.execute(whole, spill_regions, query,
                              method="bounded", resolution=128)
        assert np.array_equal(
            np.asarray(spilled.values) + np.asarray(tail.values),
            np.asarray(full.values))

    def test_running_aggregates_unaffected(self, fed_stream, tmp_path):
        stream, _, _ = fed_stream
        before = stream.matrix().values.copy()
        stream.spill(tmp_path / "store")
        assert np.array_equal(stream.matrix().values, before)

    def test_version_bumps_and_noop_spill(self, fed_stream, tmp_path):
        stream, _, _ = fed_stream
        v0 = stream.version
        stats = stream.spill(tmp_path / "store")
        assert stats["rows_spilled"] > 0
        assert stream.version == v0 + 1
        # Nothing left before the cutoff: a second spill is a no-op
        # and does not churn the version.
        again = stream.spill(tmp_path / "store")
        assert again["rows_spilled"] == 0
        assert stream.version == v0 + 1

    def test_repeated_spills_append(self, fed_stream, tmp_path):
        stream, batches, gen = fed_stream
        path = tmp_path / "store"
        first = stream.spill(path)
        stream.append(make_batch(gen, 5 * HOUR))
        # Cutoff advances to the new open bucket: the previously
        # retained bucket-4 rows spill, the fresh batch stays live.
        second = stream.spill(path)
        assert second["rows_spilled"] == 2_000
        assert second["store_partitions"] >= first["store_partitions"]
        ds = Dataset.open(path)
        assert len(ds) == first["rows_spilled"] + second["rows_spilled"]
        # Spilled partitions carry the stream's temporal bucketing.
        assert ds.manifest.time_bucket_seconds == HOUR
        assert ds.manifest.time_column == "t"

    def test_explicit_cutoff(self, fed_stream, tmp_path):
        stream, _, _ = fed_stream
        stats = stream.spill(tmp_path / "store", before=2 * HOUR)
        assert stats["rows_spilled"] == 2 * 2_000
        assert len(stream) == 3 * 2_000

    def test_spill_everything_empties_buffer(self, fed_stream, tmp_path):
        stream, _, _ = fed_stream
        last = stream.last_timestamp
        stats = stream.spill(tmp_path / "store", before=last + 1)
        assert stats["rows_retained"] == 0 == len(stream)
        # Event-log ordering still enforced against the spilled past.
        assert stream.last_timestamp == last

    def test_empty_stream_spill_is_noop(self, spill_regions, tmp_path):
        stream = PointStream(spill_regions, resolution=64)
        stats = stream.spill(tmp_path / "store")
        assert stats["rows_spilled"] == 0
        assert not (tmp_path / "store").exists()
