"""Tests for the append-only point stream."""

import numpy as np
import pytest

from repro.core import (
    SpatialAggregation,
    SpatialAggregationEngine,
    region_time_matrix,
)
from repro.data import CityModel, generate_social_posts, voronoi_regions
from repro.errors import QueryError, SchemaError
from repro.stream import PointStream
from repro.table import F, PointTable, timestamp_column


@pytest.fixture(scope="module")
def stream_city():
    return CityModel(seed=21)


@pytest.fixture(scope="module")
def stream_regions(stream_city):
    return voronoi_regions(stream_city, 30, name="stream-regions")


def _batches(city, n=40_000, parts=8, seed=5, **kwargs):
    """A social feed split into sequential batches."""
    table, bursts = generate_social_posts(city, n, seed=seed, **kwargs)
    edges = np.linspace(0, len(table), parts + 1).astype(int)
    batches = [table.take(np.arange(a, b))
               for a, b in zip(edges[:-1], edges[1:])]
    return table, batches, bursts


class TestIngestion:
    def test_append_accumulates(self, stream_city, stream_regions):
        table, batches, __ = _batches(stream_city)
        stream = PointStream(stream_regions, resolution=256)
        total = 0
        for batch in batches:
            stats = stream.append(batch)
            total += stats["rows"]
        assert total == len(table)
        assert len(stream) == len(table)
        assert stream.last_timestamp == int(table.values("t").max())

    def test_empty_batch_noop(self, stream_regions):
        stream = PointStream(stream_regions)
        stats = stream.append(PointTable.from_arrays(
            [], [], t=timestamp_column("t", [])))
        assert stats["rows"] == 0

    def test_out_of_order_batch_rejected(self, stream_city, stream_regions):
        __, batches, ___ = _batches(stream_city)
        stream = PointStream(stream_regions)
        stream.append(batches[1])
        with pytest.raises(QueryError, match="before the last"):
            stream.append(batches[0])

    def test_unsorted_batch_rejected(self, stream_regions):
        bad = PointTable.from_arrays(
            [1.0, 2.0], [1.0, 2.0],
            t=timestamp_column("t", [100, 50]))
        stream = PointStream(stream_regions)
        with pytest.raises(QueryError, match="non-decreasing"):
            stream.append(bad)

    def test_schema_mismatch_rejected(self, stream_city, stream_regions):
        __, batches, ___ = _batches(stream_city)
        stream = PointStream(stream_regions)
        stream.append(batches[0])
        alien = PointTable.from_arrays(
            [1.0], [1.0], t=timestamp_column("t", [10**10]))
        with pytest.raises(SchemaError):
            stream.append(alien)

    def test_empty_stream_has_no_table(self, stream_regions):
        stream = PointStream(stream_regions)
        with pytest.raises(QueryError):
            stream.table()


class TestIncrementalState:
    def test_matrix_matches_batch_recompute(self, stream_city,
                                            stream_regions):
        """The incrementally maintained matrix equals a from-scratch
        region_time_matrix over the full table."""
        table, batches, __ = _batches(stream_city)
        stream = PointStream(stream_regions, resolution=256,
                             bucket_seconds=3_600)
        for batch in batches:
            stream.append(batch)
        incremental = stream.matrix()
        recomputed = region_time_matrix(
            table, stream_regions, stream.viewport,
            bucket_seconds=3_600, fragments=stream.fragments)
        # Align bucket ranges (recompute may start later if the earliest
        # rows fall outside every region).
        inc = incremental.values
        rec = recomputed.values
        offset = int((recomputed.bucket_starts[0]
                      - incremental.bucket_starts[0]) // 3_600)
        assert offset >= 0
        window = inc[:, offset:offset + rec.shape[1]]
        assert window == pytest.approx(rec)
        # Outside the aligned window everything must be zero.
        assert inc[:, :offset].sum() == 0
        assert inc[:, offset + rec.shape[1]:].sum() == 0

    def test_window_queries_match_direct(self, stream_city, stream_regions):
        table, batches, __ = _batches(stream_city)
        stream = PointStream(stream_regions, resolution=256)
        for batch in batches:
            stream.append(batch)
        tvals = table.values("t")
        start = int(np.quantile(tvals, 0.3))
        end = int(np.quantile(tvals, 0.6))

        window = stream.window_table(start, end)
        direct_mask = (tvals >= start) & (tvals < end)
        assert len(window) == int(direct_mask.sum())

        engine = SpatialAggregationEngine(default_resolution=256)
        query = SpatialAggregation.count(F("topic") == "food")
        got = engine.execute(window, stream_regions, query,
                             method="accurate")
        want = engine.execute(table.take(direct_mask), stream_regions,
                              query, method="accurate")
        assert got.values == pytest.approx(want.values)

    def test_window_validation(self, stream_city, stream_regions):
        __, batches, ___ = _batches(stream_city)
        stream = PointStream(stream_regions)
        stream.append(batches[0])
        with pytest.raises(QueryError):
            stream.window_table(100, 100)

    def test_consolidation_transparent(self, stream_city, stream_regions):
        table, batches, __ = _batches(stream_city, parts=5)
        stream = PointStream(stream_regions)
        for batch in batches:
            stream.append(batch)
        consolidated = stream.table()
        assert len(consolidated) == len(table)
        assert (consolidated.values("t") == table.values("t")).all()


class TestHotRegions:
    def test_planted_burst_detected(self, stream_city, stream_regions):
        table, batches, bursts = _batches(stream_city, n=60_000,
                                          num_bursts=1,
                                          burst_fraction=0.2)
        stream = PointStream(stream_regions, resolution=256,
                             bucket_seconds=1_800)
        burst = bursts[0]
        # Feed everything up to just after the burst starts.
        cutoff = burst.start + burst.duration_s // 2
        tvals = table.values("t")
        upto = table.take(np.arange(int(np.searchsorted(tvals, cutoff))))
        stream.append(upto)
        hot = stream.hot_regions(window_buckets=1, history_buckets=48,
                                 min_rate=2.0)
        assert hot, "burst not detected"
        hot_names = [name for name, __ in hot]
        # The region containing the burst center must be among the hits.
        burst_region = None
        for gid, geom in enumerate(stream_regions.geometries):
            if geom.contains_point(burst.x, burst.y):
                burst_region = stream_regions.region_names[gid]
        assert burst_region is not None
        assert burst_region in hot_names

    def test_quiet_stream_no_hot_regions(self, stream_city, stream_regions):
        table, __, ___ = _batches(stream_city, n=20_000, num_bursts=0,
                                  burst_fraction=0.0)
        stream = PointStream(stream_regions, bucket_seconds=3_600)
        stream.append(table)
        # Uniform-ish rhythm: nothing should double its own baseline.
        assert stream.hot_regions(min_rate=3.0) == []

    def test_too_little_history(self, stream_regions):
        stream = PointStream(stream_regions)
        assert stream.hot_regions() == []


class TestSocialGenerator:
    def test_sorted_and_schema(self, stream_city):
        table, bursts = generate_social_posts(stream_city, 5000)
        assert (np.diff(table.values("t")) >= 0).all()
        assert set(table.column_names) == {"t", "topic", "engagement"}
        assert len(bursts) == 3

    def test_burst_fraction_validation(self, stream_city):
        from repro.errors import DataGenerationError

        with pytest.raises(DataGenerationError):
            generate_social_posts(stream_city, 100, burst_fraction=1.5)

    def test_bursts_localized(self, stream_city):
        table, bursts = generate_social_posts(
            stream_city, 30_000, num_bursts=2, burst_fraction=0.3, seed=9)
        for burst in bursts:
            tvals = table.values("t")
            sel = ((tvals >= burst.start)
                   & (tvals < burst.start + burst.duration_s))
            # During the burst window, a large share of posts sit within
            # 3 sigma of the burst center.
            dx = table.x[sel] - burst.x
            dy = table.y[sel] - burst.y
            near = (np.hypot(dx, dy) < 3 * burst.sigma_m).mean()
            assert near > 0.5
