"""Stateful property testing of the stream against a reference model.

Hypothesis drives random sequences of appends and probes on a
:class:`PointStream` while a plain-Python model keeps the ground truth
(every ingested row).  Invariants checked after every step:

* row counts agree with the model;
* the incremental region x time matrix equals a recomputation from the
  model's rows;
* window queries return exactly the model's rows for that window.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core import RegionSet, region_time_matrix
from repro.geometry import regular_polygon
from repro.stream import PointStream
from repro.table import PointTable, timestamp_column

REGIONS = RegionSet(
    "machine",
    [regular_polygon(25, 25, 15, 7),
     regular_polygon(70, 65, 18, 5),
     regular_polygon(30, 75, 12, 9)],
    ["west", "east", "north"],
)
BUCKET = 500


class StreamMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.stream = PointStream(REGIONS, resolution=128,
                                  time_column="t", bucket_seconds=BUCKET)
        self.clock = 0
        self.model_x: list[float] = []
        self.model_y: list[float] = []
        self.model_t: list[int] = []

    @rule(
        n=st.integers(1, 200),
        span=st.integers(0, 2_000),
        seed=st.integers(0, 10_000),
    )
    def append_batch(self, n, span, seed):
        gen = np.random.default_rng(seed)
        x = gen.uniform(0, 100, n)
        y = gen.uniform(0, 100, n)
        t = np.sort(gen.integers(self.clock, self.clock + span + 1, n))
        batch = PointTable.from_arrays(
            x, y, t=timestamp_column("t", t))
        self.stream.append(batch)
        self.clock = int(t[-1])
        self.model_x.extend(x.tolist())
        self.model_y.extend(y.tolist())
        self.model_t.extend(int(v) for v in t)

    @rule(advance=st.integers(1, 5_000))
    def advance_clock(self, advance):
        self.clock += advance

    @invariant()
    def row_count_matches(self):
        assert len(self.stream) == len(self.model_t)

    @precondition(lambda self: self.model_t)
    @invariant()
    def matrix_matches_recompute(self):
        model_table = PointTable.from_arrays(
            np.array(self.model_x), np.array(self.model_y),
            t=timestamp_column("t", np.array(self.model_t, dtype=np.int64)))
        recomputed = region_time_matrix(
            model_table, REGIONS, self.stream.viewport,
            bucket_seconds=BUCKET, fragments=self.stream.fragments)
        incremental = self.stream.matrix()
        assert incremental.values.sum() == recomputed.values.sum()
        # Align on bucket origin and compare the overlap.
        offset = int((recomputed.bucket_starts[0]
                      - incremental.bucket_starts[0]) // BUCKET)
        if offset >= 0:
            window = incremental.values[:, offset:offset
                                        + recomputed.values.shape[1]]
            np.testing.assert_allclose(window, recomputed.values)

    @precondition(lambda self: self.model_t)
    @invariant()
    def window_query_matches_model(self):
        tmax = max(self.model_t)
        tmin = min(self.model_t)
        mid = (tmin + tmax) // 2
        window = self.stream.window_table(tmin, mid + 1)
        model_count = sum(1 for v in self.model_t if tmin <= v < mid + 1)
        assert len(window) == model_count


StreamMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=8, deadline=None)
TestStreamMachine = StreamMachine.TestCase
