"""Tests for the synthetic city model."""

import numpy as np
import pytest

from repro.data import CityModel
from repro.errors import DataGenerationError


class TestCityModel:
    def test_deterministic(self):
        a = CityModel(seed=3)
        b = CityModel(seed=3)
        assert (a.boundary.exterior == b.boundary.exterior).all()
        assert a.hotspots[0].x == b.hotspots[0].x

    def test_different_seeds_differ(self):
        a = CityModel(seed=3)
        b = CityModel(seed=4)
        assert not np.allclose(a.boundary.exterior, b.boundary.exterior)

    def test_boundary_nonconvex_and_sized(self):
        city = CityModel(seed=7, extent_m=30_000)
        assert city.boundary.area > 0.3 * 30_000 ** 2 * 0.25
        assert city.bbox.width <= 30_000

    def test_hotspots_inside_boundary(self):
        city = CityModel(seed=7)
        for h in city.hotspots:
            assert city.boundary.contains_point(h.x, h.y)

    def test_parameter_validation(self):
        with pytest.raises(DataGenerationError):
            CityModel(extent_m=-1)
        with pytest.raises(DataGenerationError):
            CityModel(num_hotspots=0)
        with pytest.raises(DataGenerationError):
            CityModel(boundary_vertices=4)

    def test_hotspot_weights_normalized(self):
        city = CityModel(seed=7)
        w = city.hotspot_weights()
        assert w.sum() == pytest.approx(1.0)
        assert (w > 0).all()
        # Monotone decreasing dominance.
        assert w[0] == w.max()


class TestSampling:
    def test_locations_mostly_inside(self):
        city = CityModel(seed=7)
        gen = np.random.default_rng(0)
        pts = city.sample_locations(gen, 5000)
        inside = city.boundary.contains_points(pts)
        assert inside.mean() > 0.98

    def test_locations_skewed_to_hotspots(self):
        city = CityModel(seed=7)
        gen = np.random.default_rng(1)
        pts = city.sample_locations(gen, 20_000, uniform_fraction=0.05)
        h = city.hotspots[0]
        near = (np.abs(pts[:, 0] - h.x) < 3 * h.sigma_x) & (
            np.abs(pts[:, 1] - h.y) < 3 * h.sigma_y)
        # The dominant hotspot region holds far more mass than its share
        # of the city's area.
        area_fraction = (6 * h.sigma_x * 6 * h.sigma_y) / city.boundary.area
        assert near.mean() > 2 * area_fraction

    def test_uniform_fraction_validation(self):
        city = CityModel(seed=7)
        gen = np.random.default_rng(2)
        with pytest.raises(DataGenerationError):
            city.sample_locations(gen, 10, uniform_fraction=1.5)

    def test_interior_points_all_inside(self):
        city = CityModel(seed=7)
        gen = np.random.default_rng(3)
        pts = city.sample_interior_points(gen, 500)
        assert city.boundary.contains_points(pts).all()
        assert len(pts) == 500
