"""Tests for temporal rhythm models."""

import numpy as np
import pytest

from repro.data import (
    DEFAULT_EPOCH,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    TemporalPattern,
    daytime_pattern,
    month_window,
    nighttime_pattern,
    taxi_pattern,
)
from repro.errors import DataGenerationError


class TestTemporalPattern:
    def test_profiles_validated(self):
        with pytest.raises(DataGenerationError):
            TemporalPattern(np.ones(23), np.ones(24))
        with pytest.raises(DataGenerationError):
            TemporalPattern(-np.ones(24), np.ones(24))
        with pytest.raises(DataGenerationError):
            TemporalPattern(np.zeros(24), np.zeros(24))

    def test_week_profile_structure(self):
        pat = taxi_pattern()
        assert pat.week_profile.shape == (168,)

    def test_sample_range_and_sorted(self):
        pat = taxi_pattern()
        gen = np.random.default_rng(0)
        start = DEFAULT_EPOCH
        end = start + 7 * SECONDS_PER_DAY
        ts = pat.sample_timestamps(gen, 10_000, start, end)
        assert len(ts) == 10_000
        assert ts.min() >= start
        assert ts.max() < end
        assert (np.diff(ts) >= 0).all()

    def test_empty_window_rejected(self):
        pat = taxi_pattern()
        gen = np.random.default_rng(0)
        with pytest.raises(DataGenerationError):
            pat.sample_timestamps(gen, 10, 100, 100)

    def test_rush_hours_peak_for_taxi(self):
        pat = taxi_pattern()
        gen = np.random.default_rng(1)
        # A full week starting Monday (epoch weekday is Thursday; shift
        # by 4 days to land on Monday).
        start = DEFAULT_EPOCH + 4 * SECONDS_PER_DAY
        end = start + 5 * SECONDS_PER_DAY  # weekdays only
        ts = pat.sample_timestamps(gen, 50_000, start, end)
        hours = ((ts - DEFAULT_EPOCH) // SECONDS_PER_HOUR) % 24
        counts = np.bincount(hours, minlength=24)
        assert counts[18] > 2 * counts[3]  # evening peak vs night lull
        assert counts[8] > counts[11]      # morning peak vs midday

    def test_daytime_vs_nighttime_shapes_differ(self):
        gen = np.random.default_rng(2)
        start = DEFAULT_EPOCH
        end = start + 14 * SECONDS_PER_DAY
        day = daytime_pattern().sample_timestamps(gen, 20_000, start, end)
        night = nighttime_pattern().sample_timestamps(gen, 20_000, start, end)
        day_hours = ((day - DEFAULT_EPOCH) // SECONDS_PER_HOUR) % 24
        night_hours = ((night - DEFAULT_EPOCH) // SECONDS_PER_HOUR) % 24
        # 10:00 heavy for 311; 23:00 heavy for crime.
        assert (day_hours == 10).mean() > (night_hours == 10).mean()
        assert (night_hours == 23).mean() > (day_hours == 23).mean()

    def test_intensity_periodic(self):
        pat = taxi_pattern()
        hours = np.arange(0, 336)
        a = pat.intensity_at_hours(hours[:168])
        b = pat.intensity_at_hours(hours[168:])
        assert (a == b).all()


class TestMonthWindow:
    def test_window_length(self):
        s, e = month_window(0)
        assert e - s == 30 * SECONDS_PER_DAY
        assert s == DEFAULT_EPOCH

    def test_consecutive_months_abut(self):
        _, e0 = month_window(0)
        s1, _ = month_window(1)
        assert e0 == s1
