"""Tests for the taxi / 311 / crime generators and region hierarchies."""

import numpy as np
import pytest

from repro.core import SpatialAggregation
from repro.baselines import naive_join
from repro.data import (
    DEFAULT_EPOCH,
    SECONDS_PER_DAY,
    CityModel,
    generate_complaints,
    generate_crimes,
    generate_taxi_trips,
    grid_regions,
    load_demo_workload,
    region_hierarchy,
    voronoi_regions,
)
from repro.errors import DataGenerationError
from repro.geometry import BBox


@pytest.fixture(scope="module")
def gcity():
    return CityModel(seed=11)


class TestTaxi:
    def test_schema(self, gcity):
        t = generate_taxi_trips(gcity, 5000)
        assert t.name == "taxi"
        assert set(t.column_names) == {
            "t", "fare", "distance_km", "tip", "passengers", "payment",
            "vendor"}
        assert t.column("t").kind == "timestamp"
        assert t.column("payment").kind == "categorical"

    def test_deterministic(self, gcity):
        a = generate_taxi_trips(gcity, 1000, seed=5)
        b = generate_taxi_trips(gcity, 1000, seed=5)
        assert (a.x == b.x).all()
        assert (a.values("fare") == b.values("fare")).all()

    def test_fare_structure(self, gcity):
        t = generate_taxi_trips(gcity, 20_000)
        fare = t.values("fare")
        dist = t.values("distance_km")
        assert fare.min() >= 2.5  # flag drop floor
        # Fares correlate strongly with distance (metered).
        corr = np.corrcoef(fare, dist)[0, 1]
        assert corr > 0.9

    def test_cash_rides_never_tip(self, gcity):
        t = generate_taxi_trips(gcity, 10_000)
        cash = t.column("payment").decode() == "cash"
        assert (t.values("tip")[cash] == 0).all()
        card_tips = t.values("tip")[~cash]
        assert card_tips.mean() > 0

    def test_time_window_respected(self, gcity):
        start = DEFAULT_EPOCH + 10 * SECONDS_PER_DAY
        end = start + 5 * SECONDS_PER_DAY
        t = generate_taxi_trips(gcity, 2000, start, end)
        ts = t.values("t")
        assert ts.min() >= start
        assert ts.max() < end

    def test_rejects_zero_rows(self, gcity):
        with pytest.raises(DataGenerationError):
            generate_taxi_trips(gcity, 0)


class TestComplaintsAndCrime:
    def test_complaints_schema(self, gcity):
        c = generate_complaints(gcity, 3000)
        assert set(c.column_names) == {"t", "kind", "agency", "resolution_h"}
        assert (c.values("resolution_h") > 0).all()

    def test_complaint_mix_skewed_to_noise(self, gcity):
        c = generate_complaints(gcity, 20_000)
        kinds = c.column("kind").decode()
        counts = {k: (kinds == k).sum() for k in set(kinds.tolist())}
        assert max(counts, key=counts.get) == "noise"

    def test_crime_schema_and_severity(self, gcity):
        c = generate_crimes(gcity, 3000)
        assert set(c.column_names) == {"t", "offense", "severity"}
        sev = c.values("severity")
        assert sev.min() >= 0.5
        assert sev.max() <= 10.0

    def test_severity_tracks_offense(self, gcity):
        c = generate_crimes(gcity, 30_000)
        offense = c.column("offense").decode()
        sev = c.values("severity")
        assert sev[offense == "robbery"].mean() > sev[
            offense == "vandalism"].mean()


class TestRegionGenerators:
    def test_voronoi_partition_assigns_uniquely(self, gcity):
        """Voronoi regions should partition: interior points get exactly
        one region (clipping slivers can drop a few boundary points)."""
        regions = voronoi_regions(gcity, 30, name="v")
        gen = np.random.default_rng(0)
        pts = gcity.sample_interior_points(gen, 2000)
        membership = np.zeros(len(pts), dtype=int)
        for geom in regions.geometries:
            membership += geom.contains_points(pts).astype(int)
        assert (membership <= 1).all()
        assert (membership == 1).mean() > 0.97

    def test_voronoi_area_covers_city(self, gcity):
        regions = voronoi_regions(gcity, 50, name="v")
        assert regions.areas().sum() == pytest.approx(
            gcity.boundary.area, rel=0.02)

    def test_hierarchy_levels_ordered(self, gcity):
        levels = region_hierarchy(gcity, {"coarse": 5, "fine": 60})
        assert len(levels["fine"]) > len(levels["coarse"])

    def test_count_validation(self, gcity):
        with pytest.raises(DataGenerationError):
            voronoi_regions(gcity, 0, name="bad")

    def test_grid_regions(self):
        rs = grid_regions(BBox(0, 0, 10, 10), 4, 3, name="g")
        assert len(rs) == 12
        assert rs.areas().sum() == pytest.approx(100.0)


class TestDemoWorkload:
    def test_structure(self, demo):
        assert set(demo.datasets) == {"taxi", "complaints311", "crime"}
        assert "neighborhoods" in demo.regions
        assert demo.months == 2

    def test_shared_geography(self, demo):
        """Data sets share the city's hotspots: the busiest taxi region
        is also busy for complaints (spatial correlation > 0)."""
        regions = demo.regions["neighborhoods"]
        taxi = naive_join(demo.datasets["taxi"].sample(5000, seed=0),
                          regions, SpatialAggregation.count()).values
        compl = naive_join(
            demo.datasets["complaints311"].sample(5000, seed=0),
            regions, SpatialAggregation.count()).values
        corr = np.corrcoef(taxi, compl)[0, 1]
        assert corr > 0.3

    def test_dataset_accessors(self, demo):
        assert demo.dataset("taxi") is demo.datasets["taxi"]
        assert demo.region_set("boroughs") is demo.regions["boroughs"]
