"""Tests for the region comparator."""

import numpy as np
import pytest

from repro.core import RegionSet, RegionTimeMatrix
from repro.errors import QueryError
from repro.geometry import regular_polygon
from repro.urbane import RegionComparator
from repro.urbane.exploration import ExplorationMatrix, Indicator
from repro.core import SpatialAggregation


def _matrix(normalized, names=None):
    """Build an ExplorationMatrix directly from a normalized array."""
    normalized = np.asarray(normalized, dtype=float)
    r, k = normalized.shape
    names = tuple(names or [f"r{i}" for i in range(r)])
    indicators = tuple(
        Indicator(f"ind{j}", "d", SpatialAggregation.count())
        for j in range(k))
    return ExplorationMatrix(
        region_names=names,
        indicators=indicators,
        raw=normalized * 100,
        normalized=normalized,
    )


def _rhythm(series_by_name):
    names = list(series_by_name)
    geoms = [regular_polygon(10 * (i + 1), 10, 3, 4)
             for i in range(len(names))]
    regions = RegionSet("rhythm", geoms, names)
    values = np.array([series_by_name[n] for n in names], dtype=float)
    starts = np.arange(values.shape[1], dtype=np.int64) * 3600
    return RegionTimeMatrix(regions=regions, bucket_starts=starts,
                            values=values, bucket_seconds=3600, stats={})


class TestExplain:
    def test_identical_profiles_similar(self):
        matrix = _matrix([[0.8, 0.2, 0.5], [0.8, 0.2, 0.5],
                          [0.1, 0.9, 0.9]])
        comp = RegionComparator(matrix)
        report = comp.explain("r0", "r1")
        assert report.profile_similarity == pytest.approx(1.0)
        assert report.feels_similar
        assert len(report.agreements) == 3
        assert report.contrasts == []

    def test_opposite_profiles_different(self):
        matrix = _matrix([[1.0, 1.0], [0.0, 0.0]])
        comp = RegionComparator(matrix)
        report = comp.explain("r0", "r1")
        assert report.profile_similarity == pytest.approx(0.0)
        assert not report.feels_similar
        assert len(report.contrasts) == 2
        # r0 leads both contrasts.
        assert all(delta > 0 for _, delta in report.contrasts)

    def test_contrasts_sorted_by_magnitude(self):
        matrix = _matrix([[1.0, 0.5, 0.9], [0.0, 0.5, 0.45]])
        report = RegionComparator(matrix).explain("r0", "r1")
        gaps = [abs(d) for _, d in report.contrasts]
        assert gaps == sorted(gaps, reverse=True)
        assert report.contrasts[0][0] == "ind0"

    def test_nan_indicators_skipped(self):
        matrix = _matrix([[0.5, np.nan], [0.5, 0.9]])
        report = RegionComparator(matrix).explain("r0", "r1")
        assert report.profile_similarity == pytest.approx(1.0)
        assert set(report.indicator_deltas) == {"ind0"}

    def test_same_region_rejected(self):
        matrix = _matrix([[0.5], [0.5]])
        with pytest.raises(QueryError):
            RegionComparator(matrix).explain("r0", "r0")

    def test_unknown_region_rejected(self):
        matrix = _matrix([[0.5], [0.5]])
        with pytest.raises(QueryError):
            RegionComparator(matrix).explain("r0", "atlantis")

    def test_render_mentions_regions(self):
        matrix = _matrix([[1.0, 0.0], [0.0, 1.0]])
        text = RegionComparator(matrix).explain("r0", "r1").render()
        assert "r0" in text and "r1" in text
        assert "different" in text


class TestRhythm:
    def test_correlated_rhythms(self):
        matrix = _matrix([[0.5, 0.5], [0.5, 0.5]])
        base = np.sin(np.linspace(0, 4 * np.pi, 48)) + 2
        rhythm = _rhythm({"r0": base, "r1": base * 3})
        report = RegionComparator(matrix, rhythm).explain("r0", "r1")
        assert report.rhythm_correlation == pytest.approx(1.0)
        assert report.feels_similar

    def test_anticorrelated_rhythms_break_similarity(self):
        matrix = _matrix([[0.5, 0.5], [0.5, 0.5]])
        base = np.sin(np.linspace(0, 4 * np.pi, 48)) + 2
        rhythm = _rhythm({"r0": base, "r1": base.max() + base.min() - base})
        report = RegionComparator(matrix, rhythm).explain("r0", "r1")
        assert report.rhythm_correlation == pytest.approx(-1.0)
        assert not report.feels_similar

    def test_flat_rhythm_zero_correlation(self):
        matrix = _matrix([[0.5], [0.5]])
        rhythm = _rhythm({"r0": np.ones(24), "r1": np.arange(24.0)})
        report = RegionComparator(matrix, rhythm).explain("r0", "r1")
        assert report.rhythm_correlation == 0.0

    def test_mismatched_rhythm_regions_rejected(self):
        matrix = _matrix([[0.5], [0.5]], names=["a", "b"])
        rhythm = _rhythm({"x": np.ones(4), "y": np.ones(4)})
        with pytest.raises(QueryError):
            RegionComparator(matrix, rhythm)


class TestMostSimilarPair:
    def test_finds_planted_twins(self):
        matrix = _matrix([
            [0.9, 0.1, 0.4],
            [0.2, 0.8, 0.6],
            [0.9, 0.1, 0.42],   # near-twin of r0
            [0.5, 0.5, 0.5],
        ])
        a, b, sim = RegionComparator(matrix).most_similar_pair()
        assert {a, b} == {"r0", "r2"}
        assert sim > 0.95


class TestOnDemoWorkload:
    def test_full_pipeline(self, demo):
        from repro.urbane import (
            DataExplorationView,
            DataManager,
            TimelineView,
        )

        manager = DataManager()
        for name, table in demo.datasets.items():
            manager.add_dataset(table, name)
        manager.add_region_set(demo.regions["neighborhoods"],
                               "neighborhoods")
        matrix = DataExplorationView(manager, "neighborhoods").compute([
            Indicator("activity", "taxi", SpatialAggregation.count()),
            Indicator("complaints", "complaints311",
                      SpatialAggregation.count(), higher_is_better=False),
        ])
        rhythm = TimelineView(manager).matrix("taxi", "neighborhoods",
                                              bucket="day")
        comp = RegionComparator(matrix, rhythm)
        a, b, sim = comp.most_similar_pair()
        report = comp.explain(a, b)
        assert 0.0 <= report.profile_similarity <= 1.0
        assert report.rhythm_correlation is not None
        assert report.render()
