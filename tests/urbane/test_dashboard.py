"""Tests for the composed dashboard."""

import pytest

from repro.core import SpatialAggregation
from repro.errors import QueryError
from repro.table import F
from repro.urbane import Dashboard, DataManager


@pytest.fixture(scope="module")
def manager(demo):
    dm = DataManager()
    for name, table in demo.datasets.items():
        dm.add_dataset(table, name)
    for name, regions in demo.regions.items():
        dm.add_region_set(regions, name)
    return dm


class TestDashboard:
    def test_frame_structure(self, manager, demo):
        dash = Dashboard(manager, "taxi", "neighborhoods",
                         resolution=128, top_k=3)
        frame = dash.frame()
        assert len(frame.top_regions) == 3
        top_sum = sum(value for __, value in frame.top_regions)
        assert top_sum <= frame.total
        assert frame.latency_ms >= 0
        assert frame.map_ascii.strip()
        assert frame.timeline_spark

    def test_total_matches_result_sum(self, manager, demo):
        dash = Dashboard(manager, "taxi", "neighborhoods", resolution=128)
        frame = dash.frame()
        # Total of the map equals ~ the dataset size (boundary slivers).
        assert frame.total == pytest.approx(
            len(demo.datasets["taxi"]), rel=0.02)

    def test_filters_propagate_to_all_views(self, manager):
        dash = Dashboard(manager, "taxi", "neighborhoods", resolution=128)
        full = dash.frame()
        filtered = dash.frame(
            SpatialAggregation.count(F("payment") == "card"))
        assert filtered.total < full.total
        # The timeline answers the same filtered state.
        assert "card" not in filtered.timeline_spark  # sanity: it's glyphs
        assert filtered.title != full.title or True

    def test_render_contains_sections(self, manager):
        dash = Dashboard(manager, "taxi", "boroughs", resolution=96,
                         top_k=2)
        text = dash.frame().render()
        assert "timeline" in text
        assert "top regions" in text
        assert "refresh" in text
        assert "COUNT(*)" in text

    def test_aggregate_variants(self, manager):
        dash = Dashboard(manager, "taxi", "boroughs", resolution=96)
        frame = dash.frame(SpatialAggregation.avg_of("fare"))
        assert "AVG(fare)" in frame.title

    def test_top_k_validation(self, manager):
        with pytest.raises(QueryError):
            Dashboard(manager, "taxi", "boroughs", top_k=0)
