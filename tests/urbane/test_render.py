"""Tests for PPM/ASCII rendering."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.urbane import ascii_render, image_from_pixels, read_ppm, write_ppm


class TestImageFromPixels:
    def test_background_and_classes(self):
        flat = np.array([-1, 0, 1, -1, 0, 1], dtype=np.int64)
        colors = np.array([[255, 0, 0], [0, 255, 0]], dtype=np.uint8)
        img = image_from_pixels(flat, 3, 2, colors, background=(9, 9, 9))
        assert img.shape == (2, 3, 3)
        # Flat id 0 is the bottom-left pixel; images are top-down, so it
        # lands in the last row.
        assert img[1, 0].tolist() == [9, 9, 9]
        assert img[1, 1].tolist() == [255, 0, 0]
        assert img[0, 2].tolist() == [0, 255, 0]

    def test_size_validated(self):
        with pytest.raises(QueryError):
            image_from_pixels(np.zeros(5, np.int64), 2, 2, np.zeros((1, 3)))


class TestPpm:
    def test_round_trip(self, tmp_path):
        gen = np.random.default_rng(0)
        img = gen.integers(0, 256, size=(20, 30, 3)).astype(np.uint8)
        path = tmp_path / "img.ppm"
        write_ppm(path, img)
        back = read_ppm(path)
        assert (back == img).all()

    def test_header(self, tmp_path):
        img = np.zeros((2, 3, 3), dtype=np.uint8)
        path = tmp_path / "img.ppm"
        write_ppm(path, img)
        raw = path.read_bytes()
        assert raw.startswith(b"P6\n3 2\n255\n")

    def test_shape_validated(self, tmp_path):
        with pytest.raises(QueryError):
            write_ppm(tmp_path / "x.ppm", np.zeros((2, 3)))

    def test_read_rejects_non_ppm(self, tmp_path):
        path = tmp_path / "x.ppm"
        path.write_bytes(b"JUNK")
        with pytest.raises(QueryError):
            read_ppm(path)


class TestDensityImage:
    def test_zero_pixels_take_background(self):
        from repro.urbane import density_image

        canvas = np.zeros(12)
        img = density_image(canvas, 4, 3, background=(7, 8, 9))
        assert (img.reshape(-1, 3) == [7, 8, 9]).all()

    def test_hot_pixels_colored(self):
        from repro.urbane import density_image

        canvas = np.zeros(16)
        canvas[5] = 100.0
        img = density_image(canvas, 4, 4)
        flat = img[::-1].reshape(-1, 3)  # undo the top-down flip
        assert tuple(flat[5]) != (255, 255, 255)

    def test_size_validated(self):
        from repro.urbane import density_image

        with pytest.raises(QueryError):
            density_image(np.zeros(5), 2, 2)

    def test_round_trips_through_ppm(self, tmp_path):
        from repro.urbane import density_image

        gen = np.random.default_rng(2)
        canvas = gen.exponential(1.0, 300) * (gen.random(300) > 0.5)
        img = density_image(canvas, 20, 15)
        path = tmp_path / "density.ppm"
        write_ppm(path, img)
        assert (read_ppm(path) == img).all()


class TestAscii:
    def test_blank_for_nan(self):
        field = np.full(16, np.nan)
        out = ascii_render(field, 4, 4)
        assert out.strip() == ""

    def test_intensity_ordering(self):
        # Bottom row dark (low), top row bright (high).
        field = np.concatenate([np.zeros(4), np.full(4, 100.0)])
        out = ascii_render(field, 4, 2, max_cols=4, max_rows=2)
        lines = out.split("\n")
        # Top line (high values, field is rendered top-down) denser.
        assert lines[0] == "@@@@"

    def test_downsampling_fits_budget(self):
        gen = np.random.default_rng(1)
        field = gen.uniform(0, 1, 200 * 100)
        out = ascii_render(field, 200, 100, max_cols=40, max_rows=12)
        lines = out.split("\n")
        assert len(lines) <= 14
        assert max(len(line) for line in lines) <= 41
