"""Tests for color ramps and normalization."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.urbane import (
    NODATA_RGB,
    available_ramps,
    colors_for_values,
    normalize_values,
    ramp_colors,
)


class TestRamps:
    def test_available(self):
        assert "viridis" in available_ramps()

    def test_unknown_rejected(self):
        with pytest.raises(QueryError):
            ramp_colors("sunburn", np.array([0.5]))

    def test_endpoints(self):
        rgb = ramp_colors("reds", np.array([0.0, 1.0]))
        assert rgb.shape == (2, 3)
        # Light at 0, dark at 1.
        assert rgb[0].sum() > rgb[1].sum()

    def test_clipping(self):
        rgb = ramp_colors("viridis", np.array([-1.0, 2.0]))
        assert (rgb[0] == ramp_colors("viridis", np.array([0.0]))[0]).all()
        assert (rgb[1] == ramp_colors("viridis", np.array([1.0]))[0]).all()

    def test_monotone_luminance_for_sequential(self):
        t = np.linspace(0, 1, 32)
        rgb = ramp_colors("blues", t).astype(float)
        lum = rgb @ np.array([0.299, 0.587, 0.114])
        assert (np.diff(lum) <= 1.0).all()  # darkening overall


class TestNormalize:
    def test_linear(self):
        out = normalize_values(np.array([0.0, 5.0, 10.0]))
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_nan_passthrough(self):
        out = normalize_values(np.array([0.0, np.nan, 10.0]))
        assert np.isnan(out[1])
        assert out[2] == 1.0

    def test_constant_input(self):
        out = normalize_values(np.array([3.0, 3.0]))
        assert (out == 0.5).all()

    def test_quantile_rank(self):
        out = normalize_values(np.array([100.0, 1.0, 10.0]),
                               mode="quantile")
        assert out.tolist() == [1.0, 0.0, 0.5]

    def test_log_compresses_tail(self):
        vals = np.array([0.0, 10.0, 1000.0])
        lin = normalize_values(vals, "linear")
        log = normalize_values(vals, "log")
        assert log[1] > lin[1]

    def test_explicit_limits(self):
        out = normalize_values(np.array([5.0]), vmin=0.0, vmax=10.0)
        assert out[0] == 0.5

    def test_unknown_mode(self):
        with pytest.raises(QueryError):
            normalize_values(np.array([1.0]), mode="zscore")

    def test_all_nan(self):
        out = normalize_values(np.array([np.nan, np.nan]))
        assert np.isnan(out).all()


class TestColorsForValues:
    def test_nan_gets_gray(self):
        rgb = colors_for_values(np.array([1.0, np.nan]))
        assert tuple(rgb[1]) == NODATA_RGB

    def test_shape_and_dtype(self):
        rgb = colors_for_values(np.arange(5, dtype=float))
        assert rgb.shape == (5, 3)
        assert rgb.dtype == np.uint8
