"""Map gestures on the interactive session: pan/zoom over the pyramid.

The session pins its canvas to a :class:`CanvasGrid` on the first map
gesture; every later pan/zoom/set_viewport lands on block-aligned cache
keys, so overlapping gestures assemble from cached pyramid blocks and
the interaction log records the reuse.
"""

import numpy as np
import pytest

from repro.core import SpatialAggregation
from repro.core.pyramid import GridViewport
from repro.geometry import BBox
from repro.urbane import DataManager, InteractiveSession


@pytest.fixture()
def manager(demo):
    dm = DataManager()
    for name, table in demo.datasets.items():
        dm.add_dataset(table, name)
    for name, regions in demo.regions.items():
        dm.add_region_set(regions, name)
    return dm


@pytest.fixture()
def session(manager):
    return InteractiveSession(manager, "taxi", "boroughs", resolution=128)


class TestGestureMechanics:
    def test_viewport_is_lazy(self, session):
        # Opening the view must not pin a grid: sessions that never
        # move the map keep the plain planned-viewport cache keys.
        assert session._viewport is None
        session.pan(8, 0)
        assert isinstance(session._viewport, GridViewport)

    def test_pan_snaps_to_whole_pixels(self, session):
        session.pan(8.4, -3.6)  # snaps to (8, -4)
        gv = session.grid_viewport()
        base = InteractiveSession(
            session.manager, "taxi", "boroughs",
            resolution=128).grid_viewport()
        assert gv.col0 == base.col0 + 8
        assert gv.row0 == base.row0 - 4
        assert gv.level == base.level

    def test_zoom_snaps_to_levels(self, session):
        session.pan(0, 0)
        level0 = session.grid_viewport().level
        session.zoom(2.0)
        assert session.grid_viewport().level == level0 + 1
        session.zoom(0.5)
        assert session.grid_viewport().level == level0
        session.zoom(0.5)  # already at the finest level: clamps
        assert session.grid_viewport().level == 0

    def test_set_viewport_snaps_edges(self, session):
        gv = session.grid_viewport()
        target = BBox(gv.bbox.xmin + 5 * gv.grid.pw,
                      gv.bbox.ymin + 3 * gv.grid.ph,
                      gv.bbox.xmin + 69 * gv.grid.pw,
                      gv.bbox.ymin + 67 * gv.grid.ph)
        session.set_viewport(target)
        snapped = session._viewport
        # A sub-half-pixel wobble — a drag released almost in place —
        # must fingerprint to the *same* viewport.
        wobble = BBox(target.xmin + 0.2 * gv.grid.pw,
                      target.ymin - 0.3 * gv.grid.ph,
                      target.xmax + 0.2 * gv.grid.pw,
                      target.ymax - 0.3 * gv.grid.ph)
        session.set_viewport(wobble)
        assert session._viewport == snapped

    def test_region_level_change_drops_viewport(self, session):
        session.pan(8, 0)
        assert session._viewport is not None
        session.set_region_level("neighborhoods")
        assert session._viewport is None

    def test_gestures_are_logged(self, session):
        session.pan(8, 0)
        session.zoom(2.0)
        ops = [item.op for item in session.log]
        assert ops == ["open", "pan", "zoom"]


class TestGestureReuse:
    def test_revisit_reuses_blocks(self, session):
        session.pan(0, 0)  # pin the grid, scatter the cold frame
        session.pan(16, 0)
        session.pan(-16, 0)  # back to a fully-resident window
        back = session.log[-1]
        assert back.block_hits > 0
        assert back.block_misses == 0
        assert back.block_reuse == 1.0

    def test_zoom_out_reuses_children(self, manager):
        # A frame several blocks wide, so recentered level-1 blocks can
        # find all four level-0 children resident.
        session = InteractiveSession(manager, "taxi", "boroughs",
                                     resolution=512)
        session.pan(0, 0)
        session.zoom(2.0)
        out = session.log[-1]
        # COUNT zoom-out derives coarse blocks from the cached frame.
        assert out.block_hits > 0

    def test_gesture_results_match_direct(self, session, demo):
        from repro.core import bounded_raster_join
        from repro.core.pyramid import Viewport

        result = session.pan(16, -8)
        gv = session.grid_viewport()
        direct = bounded_raster_join(
            demo.datasets["taxi"], demo.regions["boroughs"],
            SpatialAggregation.count(),
            Viewport(gv.bbox, gv.width, gv.height))
        assert np.array_equal(result.values, direct.values)
        assert np.array_equal(result.lower, direct.lower)
        assert np.array_equal(result.upper, direct.upper)

    def test_summary_and_report_surface_reuse(self, session):
        session.pan(0, 0)
        session.pan(16, 0)
        session.pan(-16, 0)
        stats = session.summary()
        assert stats["block_hits"] > 0
        assert 0.0 < stats["block_reuse_rate"] <= 1.0
        assert "block reuse" in session.report()
