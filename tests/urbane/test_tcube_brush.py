"""Timeline brushing through the temporal canvas cube.

Covers the urbane-facing wiring: ``TimeSeries.brush`` edge cases, the
series/matrix fast paths, the cached inside-mask, session brush
routing, and the streaming cube's incremental appends — each checked
for equality against the serial exact/bounded paths it shortcuts.
"""

import numpy as np
import pytest

from repro.core import SpatialAggregation, SpatialAggregationEngine
from repro.core.heatmatrix import region_time_matrix
from repro.errors import QueryError
from repro.stream import PointStream
from repro.table import F, PointTable, TimeRange, timestamp_column
from repro.urbane import DataManager, InteractiveSession, TimelineView
from repro.urbane.timeline import TimeSeries

HOUR = 3_600
T0 = 1_000_000 // HOUR * HOUR
SPAN_HOURS = 36


def make_table(n=15_000, seed=77) -> PointTable:
    """Points wholly inside the simple-regions bbox (covers_all cubes)."""
    gen = np.random.default_rng(seed)
    x = gen.uniform(10, 90, n)
    y = gen.uniform(10, 90, n)
    fare = np.round(gen.exponential(9.0, n))
    t = gen.integers(T0, T0 + SPAN_HOURS * HOUR, n)
    return PointTable.from_arrays(
        x, y, name="brush-pts",
        fare=fare, t=timestamp_column("t", t))


@pytest.fixture()
def manager(simple_regions) -> DataManager:
    dm = DataManager(SpatialAggregationEngine(default_resolution=256))
    dm.add_dataset(make_table(), "pts")
    dm.add_region_set(simple_regions, "simple")
    return dm


def hour_brush(lo, hi, agg="count", value_column=None):
    return SpatialAggregation(
        agg, value_column, (TimeRange("t", T0 + lo * HOUR, T0 + hi * HOUR),))


class TestBrushEdges:
    """Satellite: TimeSeries.brush edge cases against the cube path."""

    def _series(self, manager) -> TimeSeries:
        return TimelineView(manager).series("pts", bucket="hour")

    def test_single_bucket_brush(self, manager, simple_regions):
        series = self._series(manager)
        tr = series.brush(4, 5)
        assert tr.end - tr.start == HOUR
        self._check_cube_matches_bounded(manager, simple_regions, tr)

    def test_full_range_brush(self, manager, simple_regions):
        series = self._series(manager)
        tr = series.brush(0, len(series))
        assert tr.start == int(series.bucket_starts[0])
        self._check_cube_matches_bounded(manager, simple_regions, tr)

    def test_brush_matches_series_mass(self, manager):
        series = self._series(manager)
        tr = series.brush(3, 9)
        table = manager.dataset("pts")
        tvals = table.column("t").values
        inside = (tvals >= tr.start) & (tvals < tr.end)
        assert series.values[3:9].sum() == inside.sum()

    def _check_cube_matches_bounded(self, manager, regions, tr):
        query = SpatialAggregation("count", None, (tr,))
        table = manager.dataset("pts")
        engine = manager.engine
        got = engine.execute(table, regions, query, method="tcube-raster")
        want = engine.execute(table, regions, query, method="bounded")
        np.testing.assert_array_equal(got.values, want.values)
        np.testing.assert_array_equal(got.lower, want.lower)
        np.testing.assert_array_equal(got.upper, want.upper)


class TestSeriesFastPath:
    def test_series_served_from_cube(self, manager, simple_regions):
        table = manager.dataset("pts")
        view = TimelineView(manager)
        exact = view.series("pts", bucket="hour")
        # Materialize a cube, then the same call must serve from it.
        manager.engine.execute(table, simple_regions, hour_brush(0, 2),
                               method="tcube-raster")
        fast = view._series_from_tcube(table, HOUR, "t", (), None,
                                       "pts/hour")
        assert fast is not None
        np.testing.assert_array_equal(fast.bucket_starts,
                                      exact.bucket_starts)
        np.testing.assert_array_equal(fast.values, exact.values)
        served = view.series("pts", bucket="hour")
        np.testing.assert_array_equal(served.values, exact.values)

    def test_sum_series_needs_matching_value_column(self, manager,
                                                    simple_regions):
        table = manager.dataset("pts")
        view = TimelineView(manager)
        manager.engine.execute(table, simple_regions, hour_brush(0, 2),
                               method="tcube-raster")
        # The count-only cube cannot serve a fare-sum series ...
        assert view._series_from_tcube(table, HOUR, "t", (), "fare",
                                       "x") is None
        # ... but a fare cube can, and it matches the exact path.
        manager.engine.execute(
            table, simple_regions, hour_brush(0, 2, "sum", "fare"),
            method="tcube-raster")
        fast = view._series_from_tcube(table, HOUR, "t", (), "fare", "x")
        assert fast is not None
        exact = view.series("pts", bucket="hour", value_column="fare")
        np.testing.assert_array_equal(fast.values, exact.values)

    def test_filtered_series_not_served_by_unfiltered_cube(
            self, manager, simple_regions):
        table = manager.dataset("pts")
        view = TimelineView(manager)
        manager.engine.execute(table, simple_regions, hour_brush(0, 2),
                               method="tcube-raster")
        filt = (F("fare") > 5,)
        assert view._series_from_tcube(table, HOUR, "t", filt, None,
                                       "x") is None


class TestMatrixFastPath:
    def test_matrix_served_from_cube_matches_exact(self, manager,
                                                   simple_regions):
        table = manager.dataset("pts")
        view = TimelineView(manager)
        exact = view.matrix("pts", "simple", bucket="hour", resolution=256)
        assert exact.stats.get("source") != "tcube"
        manager.engine.execute(table, simple_regions, hour_brush(0, 2),
                               method="tcube-raster")
        fast = view.matrix("pts", "simple", bucket="hour", resolution=256)
        assert fast.stats["source"] == "tcube"
        np.testing.assert_array_equal(fast.bucket_starts,
                                      exact.bucket_starts)
        np.testing.assert_array_equal(fast.values, exact.values)

    def test_matrix_fast_path_agrees_with_direct_join(self, manager,
                                                      simple_regions):
        from repro.raster import Viewport

        table = manager.dataset("pts")
        view = TimelineView(manager)
        manager.engine.execute(table, simple_regions, hour_brush(0, 2),
                               method="tcube-raster")
        fast = view.matrix("pts", "simple", bucket="hour", resolution=256)
        assert fast.stats["source"] == "tcube"
        viewport = Viewport.fit(simple_regions.bbox, 256)
        want = region_time_matrix(table, simple_regions, viewport,
                                  time_column="t", bucket_seconds=HOUR)
        np.testing.assert_array_equal(fast.values, want.values)


class TestInsideMaskCache:
    def test_mask_cached_across_calls_and_filters(self, manager):
        view = TimelineView(manager)
        ctx = manager.engine.ctx
        base = view.series("pts", bucket="hour", region_set="simple",
                           region_name="disc")
        hits0 = ctx.cache.hits
        again = view.series("pts", bucket="hour", region_set="simple",
                            region_name="disc")
        assert ctx.cache.hits > hits0  # mask reused, not recomputed
        np.testing.assert_array_equal(again.values, base.values)
        # A different filter still reuses the same (filter-free) mask.
        hits1 = ctx.cache.hits
        view.series("pts", bucket="hour", region_set="simple",
                    region_name="disc", filters=(F("fare") > 3,))
        assert ctx.cache.hits > hits1

    def test_masked_series_counts_match_naive(self, manager, simple_regions):
        from repro.baselines import naive_join

        view = TimelineView(manager)
        series = view.series("pts", bucket="hour", region_set="simple",
                             region_name="holed")
        want = naive_join(manager.dataset("pts"), simple_regions,
                          SpatialAggregation.count()).value_of("holed")
        assert series.total == pytest.approx(want)


class TestSparkline:
    def test_block_average_matches_naive(self):
        gen = np.random.default_rng(3)
        vals = gen.exponential(5.0, 517)
        series = TimeSeries(
            np.arange(517, dtype=np.int64) * HOUR, vals, HOUR)
        width = 60
        edges = np.linspace(0, len(vals), width + 1).astype(int)
        naive = np.array([
            vals[edges[i]:edges[i + 1]].mean()
            if edges[i + 1] > edges[i] else 0.0
            for i in range(width)])
        hi = naive.max()
        glyphs = "▁▂▃▄▅▆▇█"
        want = "".join(
            glyphs[min(int(v / hi * (len(glyphs) - 1) + 0.5),
                       len(glyphs) - 1)]
            for v in naive)
        assert series.sparkline(width) == want


class TestSessionBrush:
    def test_brush_routes_to_tcube_and_hits(self, manager):
        session = InteractiveSession(manager, "pts", "simple",
                                     method="bounded", resolution=256)
        session.brush_time(T0 + 2 * HOUR, T0 + 9 * HOUR)
        first = session.log[-1]
        assert first.op == "time-brush"
        assert first.backend == "tcube-raster"
        session.brush_time(T0 + 3 * HOUR, T0 + 10 * HOUR)
        second = session.log[-1]
        assert second.backend == "tcube-raster"
        assert session.last_result.stats["tcube"]["hit"]

    def test_brush_result_matches_bounded(self, manager, simple_regions):
        session = InteractiveSession(manager, "pts", "simple",
                                     method="bounded", resolution=256)
        result = session.brush_time(T0 + HOUR, T0 + 6 * HOUR)
        want = manager.engine.execute(
            manager.dataset("pts"), simple_regions, hour_brush(1, 6),
            method="bounded")
        np.testing.assert_array_equal(result.values, want.values)
        np.testing.assert_array_equal(result.lower, want.lower)
        np.testing.assert_array_equal(result.upper, want.upper)

    def test_tcube_opt_out(self, manager):
        session = InteractiveSession(manager, "pts", "simple",
                                     method="bounded", resolution=256,
                                     tcube=False)
        session.brush_time(T0 + 2 * HOUR, T0 + 9 * HOUR)
        assert session.log[-1].backend == "bounded"

    def test_unalignable_brush_falls_back(self, manager):
        session = InteractiveSession(manager, "pts", "simple",
                                     method="bounded", resolution=256)
        # A ragged brush no bucket grid answers: served by the
        # configured method, not an error.
        result = session.brush_time(T0 + 2 * HOUR + 17, T0 + 9 * HOUR + 3)
        assert session.log[-1].backend == "bounded"
        assert result.values.sum() > 0


class TestStreamingCube:
    def _batches(self, parts=3):
        table = make_table(n=9_000, seed=5)
        order = np.argsort(table.column("t").values, kind="stable")
        table = table.take(order)
        cuts = np.linspace(0, len(table), parts + 1).astype(int)
        return [table.take(np.arange(lo, hi))
                for lo, hi in zip(cuts[:-1], cuts[1:])], table

    def test_brush_matches_bounded_after_appends(self, simple_regions):
        from repro.core import bounded_raster_join

        batches, full = self._batches()
        stream = PointStream(simple_regions, resolution=256,
                             bucket_seconds=HOUR)
        stream.append(batches[0])
        stream.tcube()  # build mid-stream; later appends fold in
        for batch in batches[1:]:
            stream.append(batch)

        start, end = T0 + 2 * HOUR, T0 + 20 * HOUR
        got = stream.brush(start, end)
        query = SpatialAggregation.count().during("t", start, end)
        want = bounded_raster_join(full, simple_regions, query,
                                   stream.viewport,
                                   fragments=stream.fragments)
        np.testing.assert_array_equal(got.values, want.values)
        np.testing.assert_array_equal(got.lower, want.lower)
        np.testing.assert_array_equal(got.upper, want.upper)

    def test_sum_brush_with_live_cube(self, simple_regions):
        from repro.core import bounded_raster_join

        batches, full = self._batches()
        stream = PointStream(simple_regions, resolution=256,
                             bucket_seconds=HOUR)
        for batch in batches:
            stream.append(batch)
        start, end = T0, T0 + SPAN_HOURS * HOUR
        got = stream.brush(start, end, agg="sum", value_column="fare")
        query = SpatialAggregation.sum_of("fare").during("t", start, end)
        want = bounded_raster_join(full, simple_regions, query,
                                   stream.viewport,
                                   fragments=stream.fragments)
        np.testing.assert_array_equal(got.values, want.values)

    def test_incremental_append_equals_rebuild(self, simple_regions):
        from repro.core import build_temporal_canvas_cube

        batches, full = self._batches()
        stream = PointStream(simple_regions, resolution=256,
                             bucket_seconds=HOUR)
        stream.append(batches[0])
        live = stream.tcube()
        for batch in batches[1:]:
            stream.append(batch)
        rebuilt = build_temporal_canvas_cube(
            full, stream.viewport, "t", HOUR, origin=live.origin)
        np.testing.assert_array_equal(live.active_pixels,
                                      rebuilt.active_pixels)
        np.testing.assert_array_equal(live.prefix["count"],
                                      rebuilt.prefix["count"])

    def test_unaligned_brush_rejected(self, simple_regions):
        batches, _ = self._batches()
        stream = PointStream(simple_regions, resolution=256,
                             bucket_seconds=HOUR)
        stream.append(batches[0])
        with pytest.raises(QueryError):
            stream.brush(T0 + 7, T0 + HOUR)
