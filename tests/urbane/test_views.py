"""Tests for DataManager, MapView, exploration, timeline and sessions."""

import numpy as np
import pytest

from repro.core import SpatialAggregation
from repro.baselines import naive_join
from repro.errors import QueryError
from repro.table import F
from repro.urbane import (
    DataExplorationView,
    DataManager,
    Indicator,
    InteractiveSession,
    MapView,
    TimelineView,
)


@pytest.fixture(scope="module")
def manager(demo):
    dm = DataManager()
    for name, table in demo.datasets.items():
        dm.add_dataset(table, name)
    for name, regions in demo.regions.items():
        dm.add_region_set(regions, name)
    return dm


class TestDataManager:
    def test_registration_and_lookup(self, manager, demo):
        assert set(manager.dataset_names) == set(demo.datasets)
        assert manager.dataset("taxi") is demo.datasets["taxi"]

    def test_duplicate_rejected(self, manager, demo):
        with pytest.raises(QueryError):
            manager.add_dataset(demo.datasets["taxi"], "taxi")
        with pytest.raises(QueryError):
            manager.add_region_set(demo.regions["boroughs"], "boroughs")

    def test_missing_lookup(self, manager):
        with pytest.raises(QueryError):
            manager.dataset("nope")
        with pytest.raises(QueryError):
            manager.region_set("nope")

    def test_aggregate_by_name(self, manager, demo):
        got = manager.aggregate("taxi", "neighborhoods",
                                SpatialAggregation.count(),
                                method="accurate")
        want = naive_join(demo.datasets["taxi"],
                          demo.regions["neighborhoods"],
                          SpatialAggregation.count())
        assert got.values == pytest.approx(want.values)


class TestMapView:
    def test_choropleth_structure(self, manager, demo):
        view = MapView(manager, resolution=128)
        ch = view.choropleth("taxi", "neighborhoods",
                             SpatialAggregation.count())
        assert len(ch.values) == len(demo.regions["neighborhoods"])
        assert ch.pixel_regions.shape == (ch.viewport.num_pixels,)
        drawn = ch.pixel_regions[ch.pixel_regions >= 0]
        assert drawn.max() < len(demo.regions["neighborhoods"])

    def test_image_and_ppm(self, manager, tmp_path):
        view = MapView(manager, resolution=96)
        ch = view.choropleth("taxi", "boroughs", SpatialAggregation.count())
        img = ch.image()
        assert img.shape == (ch.viewport.height, ch.viewport.width, 3)
        ch.save_ppm(tmp_path / "map.ppm")
        assert (tmp_path / "map.ppm").stat().st_size > 100

    def test_ascii_nonempty(self, manager):
        view = MapView(manager, resolution=96)
        ch = view.choropleth("taxi", "boroughs", SpatialAggregation.count())
        art = ch.ascii(max_cols=40, max_rows=15)
        assert len(art.strip()) > 0

    def test_zoom_to_region(self, manager, demo):
        view = MapView(manager, resolution=128)
        regions = demo.regions["neighborhoods"]
        name = regions.region_names[0]
        zoomed = view.zoom_to("taxi", "neighborhoods",
                              SpatialAggregation.count(), name)
        # Painted window centers on the region's bbox.
        geom = regions[regions.id_of(name)]
        assert zoomed.viewport.bbox.contains_bbox(geom.bbox)
        assert zoomed.viewport.bbox.area < regions.bbox.area
        # Values equal the full-extent aggregation (zoom is display-only).
        full = view.choropleth("taxi", "neighborhoods",
                               SpatialAggregation.count())
        assert (zoomed.values == full.values).all()
        # The zoomed region occupies a large share of the painted pixels.
        target = regions.id_of(name)
        share = (zoomed.pixel_regions == target).mean()
        assert share > 0.1

    def test_custom_viewport_paint(self, manager, demo):
        from repro.raster import Viewport

        view = MapView(manager, resolution=96)
        regions = demo.regions["boroughs"]
        window = Viewport.fit(regions.bbox.scale(0.3), 96)
        ch = view.choropleth("taxi", "boroughs",
                             SpatialAggregation.count(), viewport=window)
        assert ch.viewport == window
        assert ch.pixel_regions.shape == (window.num_pixels,)

    def test_heatmap(self, manager, demo):
        view = MapView(manager, resolution=64)
        canvas, vp = view.heatmap("taxi")
        assert canvas.sum() == len(demo.datasets["taxi"])
        assert canvas.shape == (vp.num_pixels,)


class TestExploration:
    @pytest.fixture(scope="class")
    def matrix(self, manager):
        view = DataExplorationView(manager, "neighborhoods",
                                   method="accurate")
        return view.compute([
            Indicator("activity", "taxi", SpatialAggregation.count()),
            Indicator("complaints", "complaints311",
                      SpatialAggregation.count(), higher_is_better=False),
            Indicator("crime", "crime",
                      SpatialAggregation.sum_of("severity"),
                      higher_is_better=False),
        ])

    def test_matrix_shape(self, matrix, demo):
        n = len(demo.regions["neighborhoods"])
        assert matrix.raw.shape == (n, 3)
        assert matrix.normalized.shape == (n, 3)

    def test_normalized_in_unit_interval(self, matrix):
        ok = np.isfinite(matrix.normalized)
        assert (matrix.normalized[ok] >= 0).all()
        assert (matrix.normalized[ok] <= 1).all()

    def test_ranking_sorted(self, matrix):
        ranking = matrix.ranking()
        scores = [s for _, s in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_rank_of_top_region_is_one(self, matrix):
        best = matrix.ranking()[0][0]
        assert matrix.rank_of(best) == 1

    def test_weights_change_ranking_scores(self, matrix):
        base = matrix.scores()
        heavy = matrix.scores({"activity": 10.0, "complaints": 0.1,
                               "crime": 0.1})
        assert not np.allclose(base, heavy, equal_nan=True)

    def test_zero_weights_rejected(self, matrix):
        with pytest.raises(QueryError):
            matrix.scores({"activity": 0, "complaints": 0, "crime": 0})

    def test_similar_excludes_self(self, matrix):
        name = matrix.region_names[0]
        similar = matrix.similar_to(name, k=5)
        assert name not in [n for n, _ in similar]
        dists = [d for _, d in similar]
        assert dists == sorted(dists)

    def test_compare_regions(self, matrix):
        a, b = matrix.region_names[:2]
        cmp = matrix.compare(a, b)
        assert set(cmp) == {"activity", "complaints", "crime"}
        assert a in cmp["activity"]

    def test_unknown_region(self, matrix):
        with pytest.raises(QueryError):
            matrix.rank_of("atlantis")

    def test_empty_indicators_rejected(self, manager):
        view = DataExplorationView(manager, "neighborhoods")
        with pytest.raises(QueryError):
            view.compute([])


class TestTimeline:
    def test_series_totals(self, manager, demo):
        view = TimelineView(manager)
        series = view.series("taxi", bucket="day")
        assert series.total == len(demo.datasets["taxi"])
        assert len(series) >= demo.months * 28

    def test_hour_buckets_finer(self, manager):
        view = TimelineView(manager)
        days = view.series("taxi", bucket="day")
        hours = view.series("taxi", bucket="hour")
        assert len(hours) > 20 * len(days)
        assert hours.total == days.total

    def test_region_restriction(self, manager, demo):
        view = TimelineView(manager)
        regions = demo.regions["neighborhoods"]
        name = regions.region_names[0]
        series = view.series("taxi", bucket="day", region_set="neighborhoods",
                             region_name=name)
        want = naive_join(demo.datasets["taxi"], regions,
                          SpatialAggregation.count()).value_of(name)
        assert series.total == pytest.approx(want)

    def test_region_requires_set(self, manager):
        view = TimelineView(manager)
        with pytest.raises(QueryError):
            view.series("taxi", region_name="x")

    def test_value_column_sums(self, manager, demo):
        view = TimelineView(manager)
        series = view.series("taxi", bucket="week", value_column="fare")
        assert series.total == pytest.approx(
            demo.datasets["taxi"].values("fare").sum())

    def test_brush_filter(self, manager):
        view = TimelineView(manager)
        series = view.series("taxi", bucket="day")
        brush = series.brush(5, 10)
        assert brush.end - brush.start == 5 * 86_400

    def test_brush_validation(self, manager):
        series = TimelineView(manager).series("taxi", bucket="day")
        with pytest.raises(QueryError):
            series.brush(10, 5)

    def test_sparkline_and_peak(self, manager):
        series = TimelineView(manager).series("taxi", bucket="day")
        assert len(series.sparkline(30)) <= 30
        start, value = series.peak()
        assert value == series.values.max()

    def test_smoothed_preserves_mass_roughly(self, manager):
        series = TimelineView(manager).series("taxi", bucket="day")
        sm = series.smoothed(3)
        assert sm.sum() == pytest.approx(series.values.sum(), rel=0.05)

    def test_unknown_bucket(self, manager):
        with pytest.raises(QueryError):
            TimelineView(manager).series("taxi", bucket="fortnight")


class TestSession:
    def test_gesture_log(self, manager, demo):
        session = InteractiveSession(manager, "taxi", "neighborhoods",
                                     resolution=128)
        session.brush_time(demo.start, demo.start + 30 * 86_400)
        session.add_filter(F("payment") == "card")
        session.set_region_level("boroughs")
        session.set_dataset("crime")
        session.clear_filters()
        session.clear_time_brush()
        assert len(session.log) == 7  # open + 6 gestures
        assert session.summary()["interactions"] == 7
        assert "interactions" in session.report()

    def test_filters_affect_result(self, manager, demo):
        session = InteractiveSession(manager, "taxi", "neighborhoods",
                                     resolution=128)
        before = session.last_result.values.sum()
        session.add_filter(F("payment") == "card")
        after = session.last_result.values.sum()
        assert after < before

    def test_aggregation_change(self, manager):
        session = InteractiveSession(manager, "taxi", "boroughs",
                                     resolution=96)
        result = session.set_aggregation(SpatialAggregation.avg_of("fare"))
        assert np.nanmax(result.values) < 1000

    def test_empty_brush_rejected(self, manager):
        session = InteractiveSession(manager, "taxi", "boroughs",
                                     resolution=96)
        with pytest.raises(QueryError):
            session.brush_time(100, 100)

    def test_unknown_dataset_validated_before_refresh(self, manager):
        session = InteractiveSession(manager, "taxi", "boroughs",
                                     resolution=96)
        with pytest.raises(QueryError):
            session.set_dataset("nope")
        # State unchanged.
        assert session.state.dataset == "taxi"

    def test_interactive_latencies(self, manager):
        session = InteractiveSession(manager, "taxi", "neighborhoods",
                                     resolution=128)
        for __ in range(3):
            session.clear_filters()
        stats = session.summary()
        assert stats["interactive_fraction"] == 1.0
