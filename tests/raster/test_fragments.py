"""Tests for fragment-table assembly."""

import numpy as np
import pytest

from repro.geometry import BBox, Polygon, regular_polygon
from repro.raster import Viewport, build_fragment_table

VP = Viewport(BBox(0, 0, 100, 100), 128, 128)


def _geoms():
    return [
        regular_polygon(30, 30, 20, 8),
        regular_polygon(70, 70, 18, 5),
        Polygon([[10, 60], [40, 60], [40, 95], [10, 95]]),
    ]


class TestFragmentTable:
    def test_ids_aligned(self):
        table = build_fragment_table(_geoms(), VP)
        assert table.num_polygons == 3
        assert len(table.interior_pixels) == len(table.interior_polys)
        assert len(table.boundary_pixels) == len(table.boundary_polys)
        assert (len(table.covered_boundary_pixels)
                == len(table.covered_boundary_polys))

    def test_poly_ids_in_range(self):
        table = build_fragment_table(_geoms(), VP)
        for polys in (table.interior_polys, table.boundary_polys,
                      table.covered_boundary_polys):
            if len(polys):
                assert polys.min() >= 0
                assert polys.max() < 3

    def test_covered_boundary_subset_of_boundary(self):
        table = build_fragment_table(_geoms(), VP)
        for gid in range(3):
            cb = set(table.covered_boundary_pixels[
                table.covered_boundary_polys == gid].tolist())
            b = set(table.boundary_pixels[
                table.boundary_polys == gid].tolist())
            assert cb <= b

    def test_interior_disjoint_from_boundary_per_polygon(self):
        table = build_fragment_table(_geoms(), VP)
        for gid in range(3):
            inter = set(table.interior_pixels[
                table.interior_polys == gid].tolist())
            bound = set(table.boundary_pixels[
                table.boundary_polys == gid].tolist())
            assert not inter & bound

    def test_interior_plus_covered_boundary_is_coverage(self):
        from repro.raster import coverage_fragments

        geoms = _geoms()
        table = build_fragment_table(geoms, VP)
        for gid, geom in enumerate(geoms):
            inter = set(table.interior_pixels[
                table.interior_polys == gid].tolist())
            cb = set(table.covered_boundary_pixels[
                table.covered_boundary_polys == gid].tolist())
            assert inter | cb == set(coverage_fragments(geom, VP).tolist())

    def test_empty_geometry_list(self):
        table = build_fragment_table([], VP)
        assert table.num_polygons == 0
        assert table.num_interior_fragments == 0

    def test_offscreen_geometry_contributes_nothing(self):
        table = build_fragment_table(
            [regular_polygon(1000, 1000, 5, 4)], VP)
        assert table.num_interior_fragments == 0
        assert table.num_boundary_fragments == 0

    def test_fragment_counts_property(self):
        table = build_fragment_table(_geoms(), VP)
        assert table.num_interior_fragments == len(table.interior_pixels)
        assert table.num_boundary_fragments == len(table.boundary_pixels)

    def test_overlapping_polygons_each_get_fragments(self):
        geoms = [regular_polygon(50, 50, 20, 8),
                 regular_polygon(55, 50, 20, 8)]  # overlap
        table = build_fragment_table(geoms, VP)
        shared_interior = (
            set(table.interior_pixels[table.interior_polys == 0].tolist())
            & set(table.interior_pixels[table.interior_polys == 1].tolist()))
        assert shared_interior  # overlap pixels appear for both ids
