"""Tests for canvases, blending and pixel buckets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.raster import (
    PixelBuckets,
    gather_reduce,
    gather_sum,
    scatter_count,
    scatter_max,
    scatter_min,
    scatter_sum,
)


class TestScatter:
    def test_count(self):
        ids = np.array([0, 1, 1, 3])
        canvas = scatter_count(ids, 5)
        assert canvas.tolist() == [1, 2, 0, 1, 0]

    def test_sum(self):
        ids = np.array([0, 1, 1])
        canvas = scatter_sum(ids, np.array([1.0, 2.0, 3.0]), 3)
        assert canvas.tolist() == [1.0, 5.0, 0.0]

    def test_sum_length_mismatch(self):
        with pytest.raises(ExecutionError):
            scatter_sum(np.array([0]), np.array([1.0, 2.0]), 3)

    def test_min_max(self):
        ids = np.array([0, 0, 2])
        vals = np.array([5.0, 3.0, 7.0])
        mn = scatter_min(ids, vals, 3)
        mx = scatter_max(ids, vals, 3)
        assert mn[0] == 3.0 and mx[0] == 5.0
        assert mn[1] == np.inf and mx[1] == -np.inf
        assert mn[2] == 7.0 and mx[2] == 7.0

    def test_empty_inputs(self):
        empty = np.empty(0, dtype=np.int64)
        assert scatter_count(empty, 4).tolist() == [0, 0, 0, 0]
        assert (scatter_min(empty, np.empty(0), 2) == np.inf).all()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 19),
                              st.floats(-100, 100)), max_size=200))
    def test_scatter_matches_groupby(self, pairs):
        ids = np.array([p[0] for p in pairs], dtype=np.int64)
        vals = np.array([p[1] for p in pairs])
        got_sum = scatter_sum(ids, vals, 20)
        got_min = scatter_min(ids, vals, 20)
        got_max = scatter_max(ids, vals, 20)
        for pix in range(20):
            sel = vals[ids == pix]
            assert got_sum[pix] == pytest.approx(
                sel.sum() if len(sel) else 0.0, abs=1e-8)
            assert got_min[pix] == (sel.min() if len(sel) else np.inf)
            assert got_max[pix] == (sel.max() if len(sel) else -np.inf)


class TestGather:
    def test_gather_sum_groups(self):
        canvas = np.array([1.0, 2.0, 3.0, 4.0])
        pix = np.array([0, 1, 2, 3])
        groups = np.array([0, 0, 1, 1])
        out = gather_sum(canvas, pix, groups, 2)
        assert out.tolist() == [3.0, 7.0]

    def test_gather_sum_empty(self):
        out = gather_sum(np.zeros(4), np.empty(0, np.int64),
                         np.empty(0, np.int64), 3)
        assert out.tolist() == [0, 0, 0]

    def test_gather_reduce_skips_fill(self):
        canvas = np.array([np.inf, 5.0, 2.0])
        pix = np.array([0, 1, 2])
        groups = np.array([0, 0, 1])
        out = gather_reduce(canvas, pix, groups, 2, np.minimum, np.inf)
        assert out[0] == 5.0  # the inf pixel (no data) is skipped
        assert out[1] == 2.0

    def test_gather_reduce_all_fill(self):
        canvas = np.full(3, np.inf)
        out = gather_reduce(canvas, np.array([0, 1]), np.array([0, 0]),
                            1, np.minimum, np.inf)
        assert out[0] == np.inf

    def test_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            gather_sum(np.zeros(4), np.array([0]), np.array([0, 1]), 2)


class TestPixelBuckets:
    def test_points_in_pixel(self):
        ids = np.array([3, 1, 3, 0, 3])
        buckets = PixelBuckets(ids, 5)
        assert set(buckets.points_in_pixel(3).tolist()) == {0, 2, 4}
        assert buckets.points_in_pixel(2).tolist() == []

    def test_points_in_pixels_vectorized(self):
        gen = np.random.default_rng(0)
        ids = gen.integers(0, 50, 1000)
        buckets = PixelBuckets(ids, 50)
        query = np.array([3, 7, 49])
        got = set(buckets.points_in_pixels(query).tolist())
        want = set(np.flatnonzero(np.isin(ids, query)).tolist())
        assert got == want

    def test_counts_in_pixels(self):
        ids = np.array([0, 0, 1])
        buckets = PixelBuckets(ids, 3)
        counts = buckets.counts_in_pixels(np.array([0, 1, 2]))
        assert counts.tolist() == [2, 1, 0]

    def test_custom_point_ids(self):
        ids = np.array([1, 1])
        buckets = PixelBuckets(ids, 2, point_ids=np.array([10, 20]))
        assert set(buckets.points_in_pixel(1).tolist()) == {10, 20}

    def test_empty_query(self):
        buckets = PixelBuckets(np.array([0]), 1)
        assert len(buckets.points_in_pixels(np.empty(0, np.int64))) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 30), max_size=300),
           st.lists(st.integers(0, 30), max_size=10))
    def test_bucket_property(self, ids_list, query_list):
        ids = np.array(ids_list, dtype=np.int64)
        buckets = PixelBuckets(ids, 31)
        query = np.unique(np.array(query_list, dtype=np.int64))
        got = sorted(buckets.points_in_pixels(query).tolist())
        want = sorted(np.flatnonzero(np.isin(ids, query)).tolist())
        assert got == want
