"""Property tests for the mip-style canvas reductions.

The pyramid contract: every level's COUNT/SUM plane is *exactly* the
2x2 block-sum of the level below (identity-padded at odd edges), and
MIN/MAX planes propagate bounds.  Sum-preservation is what lets a
zoom-out serve from cached finer blocks without re-scattering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.raster import PYRAMID_OPS, build_pyramid, reduce2x2


def _block_sum_reference(plane: np.ndarray) -> np.ndarray:
    """Padded 2x2 block sum, written independently of reduce2x2."""
    h, w = plane.shape
    padded = np.zeros((h + h % 2, w + w % 2))
    padded[:h, :w] = plane
    return (padded[0::2, 0::2] + padded[0::2, 1::2]
            + padded[1::2, 0::2] + padded[1::2, 1::2])


@pytest.mark.parametrize("shape", [(8, 8), (7, 7), (1, 1), (5, 8),
                                   (8, 5), (3, 1), (128, 128)])
def test_count_reduction_is_block_sum(shape):
    gen = np.random.default_rng(hash(shape) % 2**32)
    plane = gen.integers(0, 50, shape).astype(np.float64)
    out = reduce2x2(plane, "sum")
    np.testing.assert_array_equal(out, _block_sum_reference(plane))
    # Sum-preserving: total mass is invariant under reduction.
    assert out.sum() == plane.sum()


@pytest.mark.parametrize("shape", [(6, 6), (7, 5), (9, 9)])
def test_sum_reduction_exact_for_integers(shape):
    gen = np.random.default_rng(7)
    plane = gen.integers(-1000, 1000, shape).astype(np.float64)
    out = reduce2x2(plane, "sum")
    np.testing.assert_array_equal(out, _block_sum_reference(plane))


def test_empty_margins_stay_empty():
    """Identity padding: odd-edge blocks reduce as if padded with the
    op's identity, so empty margins never invent mass."""
    plane = np.zeros((5, 5))
    plane[:4, :4] = 1.0
    out = reduce2x2(plane, "sum")
    assert out.shape == (3, 3)
    assert out[2, 2] == 0.0  # the padded corner
    assert out[:2, :2].sum() == 16.0


def test_min_max_propagate_bounds():
    gen = np.random.default_rng(11)
    plane = gen.normal(size=(9, 7))
    lo = reduce2x2(plane, "min")
    hi = reduce2x2(plane, "max")
    assert lo.shape == hi.shape == (5, 4)
    assert lo.min() == plane.min()
    assert hi.max() == plane.max()
    assert np.all(lo <= hi)


def test_min_identity_padding_is_inf():
    """A padded MIN cell with no real pixels stays +inf (empty), and a
    half-padded cell takes only the real pixels' min."""
    plane = np.full((3, 3), np.inf)
    plane[0, 0] = -2.0
    plane[2, 2] = 5.0
    out = reduce2x2(plane, "min")
    assert out[0, 0] == -2.0
    assert out[1, 1] == 5.0
    assert out[0, 1] == np.inf


def test_build_pyramid_levels_chain():
    gen = np.random.default_rng(3)
    plane = gen.integers(0, 9, (37, 52)).astype(np.float64)
    levels = build_pyramid(plane, 4, "sum")
    assert len(levels) == 5
    assert levels[0] is plane
    for fine, coarse in zip(levels, levels[1:]):
        np.testing.assert_array_equal(coarse, _block_sum_reference(fine))
    assert levels[-1].sum() == plane.sum()


def test_reduce2x2_rejects_bad_inputs():
    with pytest.raises(ExecutionError):
        reduce2x2(np.zeros((4, 4)), "median")
    with pytest.raises(ExecutionError):
        reduce2x2(np.zeros(16), "sum")


def test_pyramid_ops_cover_all_kinds():
    assert PYRAMID_OPS == {"count": "sum", "sum": "sum", "mass": "sum",
                           "min": "min", "max": "max"}
