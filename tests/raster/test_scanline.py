"""Tests of the scanline rasterizer — the pipeline's load-bearing wall.

Two invariants everything upstream relies on:

1. *Coverage correctness*: a pixel is in ``coverage_fragments`` iff its
   center is inside the geometry (matches the exact point-in-polygon
   predicate).
2. *Boundary conservativeness*: every pixel that intersects the
   geometry's boundary is in ``boundary_pixels`` (the accurate join's
   exactness depends on this).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    BBox,
    MultiPolygon,
    Polygon,
    regular_polygon,
    triangulate_ring_vertices,
)
from repro.raster import (
    Viewport,
    boundary_pixels,
    coverage_fragments,
    rasterize_polygon,
    rasterize_triangles,
)

VP = Viewport(BBox(0, 0, 100, 100), 100, 100)


def _centers(viewport):
    ix, iy = np.meshgrid(np.arange(viewport.width),
                         np.arange(viewport.height))
    xs, ys = viewport.pixel_center(ix.ravel(), iy.ravel())
    return np.column_stack([xs, ys])


def _coverage_truth(geom, viewport):
    centers = _centers(viewport)
    mask = geom.contains_points(centers)
    return set(np.flatnonzero(mask).tolist())


class TestCoverage:
    @pytest.mark.parametrize("geom", [
        regular_polygon(50, 50, 30, 3),
        regular_polygon(50, 50, 30, 7),
        regular_polygon(20, 80, 15, 12),
        Polygon([[5, 5], [95, 5], [95, 95], [50, 50], [5, 95]]),
        Polygon([[10, 10], [90, 10], [90, 90], [10, 90]],
                holes=[[[40, 40], [60, 40], [60, 60], [40, 60]]]),
        MultiPolygon((regular_polygon(25, 25, 15, 6),
                      regular_polygon(75, 75, 15, 6))),
    ])
    def test_matches_pixel_center_classification(self, geom):
        got = set(coverage_fragments(geom, VP).tolist())
        want = _coverage_truth(geom, VP)
        assert got == want

    def test_no_duplicate_fragments(self):
        geom = regular_polygon(50, 50, 40, 9)
        frags = coverage_fragments(geom, VP)
        assert len(frags) == len(set(frags.tolist()))

    def test_offscreen_polygon_empty(self):
        geom = regular_polygon(500, 500, 10, 6)
        assert len(coverage_fragments(geom, VP)) == 0

    def test_partially_offscreen_clipped(self):
        geom = regular_polygon(0, 0, 30, 8)
        frags = coverage_fragments(geom, VP)
        assert len(frags) > 0
        assert set(frags.tolist()) == _coverage_truth(geom, VP)

    def test_tiny_polygon_smaller_than_pixel(self):
        geom = Polygon([[50.1, 50.1], [50.3, 50.1], [50.3, 50.3],
                        [50.1, 50.3]])
        got = set(coverage_fragments(geom, VP).tolist())
        assert got == _coverage_truth(geom, VP)  # usually empty

    def test_fragment_count_tracks_area(self):
        geom = regular_polygon(50, 50, 30, 64)
        frags = coverage_fragments(geom, VP)
        # Pixel area is 1: fragment count ~ polygon area within 5%.
        assert len(frags) == pytest.approx(geom.area, rel=0.05)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(10, 90), st.floats(10, 90), st.floats(1, 40),
           st.integers(3, 16))
    def test_coverage_property(self, cx, cy, r, sides):
        geom = regular_polygon(cx, cy, r, sides)
        got = set(coverage_fragments(geom, VP).tolist())
        assert got == _coverage_truth(geom, VP)


class TestBoundary:
    @pytest.mark.parametrize("geom", [
        regular_polygon(50, 50, 30, 5),
        Polygon([[5, 5], [95, 5], [95, 95], [50, 50], [5, 95]]),
        Polygon([[10, 10], [90, 10], [90, 90], [10, 90]],
                holes=[[[40, 40], [60, 40], [60, 60], [40, 60]]]),
    ])
    def test_conservative_cover(self, geom):
        """Every pixel containing a boundary sample is marked."""
        marked = set(boundary_pixels(geom, VP).tolist())
        # Dense independent sampling of the boundary (finer than the
        # rasterizer's own step).  The a + t*(b - a) lerp keeps a
        # constant coordinate of axis-parallel edges *exact* (t*0 == 0),
        # so samples of a gridline-aligned edge land in the row that
        # owns the line — the a*(1-t) + b*t form rounds a hair off the
        # line and would sample points the true boundary never touches.
        for ring in geom.rings():
            closed = np.vstack([ring, ring[:1]])
            for a, b in zip(closed[:-1], closed[1:]):
                t = np.linspace(0, 1, 400)[:, None]
                pts = a[None, :] + t * (b - a)[None, :]
                ids, valid = VP.pixel_ids_of(pts[:, 0], pts[:, 1])
                assert set(ids[valid].tolist()) <= marked

    def test_boundary_ring_shaped(self):
        geom = regular_polygon(50, 50, 30, 32)
        marked = boundary_pixels(geom, VP)
        # Should be ~ perimeter * 3 pixels (3x3 dilation), far less than
        # the full disc area.
        assert len(marked) < 0.6 * geom.area
        assert len(marked) > geom.perimeter / VP.pixel_width

    def test_interior_excludes_boundary(self):
        geom = regular_polygon(50, 50, 30, 8)
        interior, boundary = rasterize_polygon(geom, VP)
        assert not set(interior.tolist()) & set(boundary.tolist())

    def test_interior_pixels_fully_inside(self):
        """All four corners of every interior pixel are inside."""
        geom = regular_polygon(50, 50, 30, 8)
        interior, _ = rasterize_polygon(geom, VP)
        rows = interior // VP.width
        cols = interior % VP.width
        for dx in (0.0, 1.0):
            for dy in (0.0, 1.0):
                xs = VP.bbox.xmin + (cols + dx) * VP.pixel_width
                ys = VP.bbox.ymin + (rows + dy) * VP.pixel_height
                # Nudge corners inward a hair to dodge exact-edge ties.
                xs = xs + (0.5 - dx) * 1e-9
                ys = ys + (0.5 - dy) * 1e-9
                assert geom.contains_points(
                    np.column_stack([xs, ys])).all()


class TestBoundaryVariants:
    """The exact grid-traversal boundary vs. the sampled+dilated one."""

    GEOMS = [
        regular_polygon(50, 50, 30, 5),
        Polygon([[5, 5], [95, 5], [95, 95], [50, 50], [5, 95]]),
        Polygon([[10, 10], [90, 10], [90, 90], [10, 90]],
                holes=[[[40, 40], [60, 40], [60, 60], [40, 60]]]),
    ]

    @pytest.mark.parametrize("geom", GEOMS)
    def test_exact_subset_of_sampled(self, geom):
        from repro.raster import boundary_pixels_sampled

        exact = set(boundary_pixels(geom, VP).tolist())
        sampled = set(boundary_pixels_sampled(geom, VP).tolist())
        assert exact <= sampled
        assert len(exact) < len(sampled)  # meaningfully tighter

    @pytest.mark.parametrize("geom", GEOMS)
    def test_exact_still_conservative(self, geom):
        marked = set(boundary_pixels(geom, VP).tolist())
        for ring in geom.rings():
            closed = np.vstack([ring, ring[:1]])
            for a, b in zip(closed[:-1], closed[1:]):
                t = np.linspace(0, 1, 600)[:, None]
                # Exact lerp for constant coordinates — see
                # TestBoundary.test_conservative_cover.
                pts = a[None, :] + t * (b - a)[None, :]
                ids, valid = VP.pixel_ids_of(pts[:, 0], pts[:, 1])
                assert set(ids[valid].tolist()) <= marked

    def test_gridline_aligned_rectangle_tight_cover(self):
        # Regression: edges lying exactly on grid lines used to mark
        # both neighboring rows/columns (columns 19 and 39 here).
        # Under the half-open pixel convention column 20 owns every
        # point with x == 20 and column 19 holds only strictly-smaller
        # x, so the tight cover is the hollow frame of rows/columns
        # 20..40 — exactly 4*21 - 4 pixels.
        geom = Polygon([[20, 20], [40, 20], [40, 40], [20, 40]])
        marked = boundary_pixels(geom, VP)
        cols = set((marked % VP.width).tolist())
        rows = set((marked // VP.width).tolist())
        assert cols == set(range(20, 41))
        assert rows == set(range(20, 41))
        assert len(marked) == 4 * 21 - 4
        # Points exactly on the boundary still land in marked pixels.
        s = np.arange(20.0, 41.0)
        on_edges = np.concatenate([
            np.column_stack([s, np.full_like(s, 20.0)]),
            np.column_stack([s, np.full_like(s, 40.0)]),
            np.column_stack([np.full_like(s, 20.0), s]),
            np.column_stack([np.full_like(s, 40.0), s]),
        ])
        ids, valid = VP.pixel_ids_of(on_edges[:, 0], on_edges[:, 1])
        assert valid.all()
        assert set(ids.tolist()) <= set(marked.tolist())

    def test_gridline_aligned_rectangle_interior_grows(self):
        # The tightened cover pushes the guaranteed-interior frontier
        # out to rows/columns 21..39: a full 19x19 block.
        geom = Polygon([[20, 20], [40, 20], [40, 40], [20, 40]])
        interior, _ = rasterize_polygon(geom, VP)
        assert len(interior) == 19 * 19

    def test_off_gridline_axis_rectangle_unchanged(self):
        # Axis-parallel edges *not* on a grid line keep the generic
        # conservative marking: the rectangle's edges at x/y = .5
        # cross pixel interiors, so exactly one row/column per edge.
        geom = Polygon([[20.5, 20.5], [40.5, 20.5],
                        [40.5, 40.5], [20.5, 40.5]])
        marked = boundary_pixels(geom, VP)
        cols = set((marked % VP.width).tolist())
        rows = set((marked // VP.width).tolist())
        assert cols == set(range(20, 41))
        assert rows == set(range(20, 41))

    def test_vertex_on_grid_cross_marks_diagonal(self):
        # Triangle with a vertex exactly at grid cross (30, 30): the
        # pixel diagonally below-left (29, 29) is touched at its corner.
        geom = Polygon([[30, 30], [45, 32], [37, 45]])
        marked = set(boundary_pixels(geom, VP).tolist())
        assert 29 * VP.width + 29 in marked

    def test_diagonal_edge_cover_count(self):
        # A diagonal unit-slope segment crosses ~2 pixels per cell step;
        # exact traversal should mark ~2n pixels, not ~9n like dilation.
        geom = Polygon([[10.5, 10.5], [60.5, 60.5], [10.6, 60.5]])
        exact = boundary_pixels(geom, VP)
        # Perimeter ~ 170 world units / 1 unit pixels -> < 3 px per unit.
        assert len(exact) < 3 * geom.perimeter


class TestTriangleRaster:
    def test_triangulated_matches_direct(self):
        """The GPU path (tessellate + rasterize) covers the same pixels
        as direct scanline, up to edge-tie pixels."""
        geom = regular_polygon(50, 50, 35, 11)
        direct = set(coverage_fragments(geom, VP).tolist())
        tris = triangulate_ring_vertices(geom.exterior)
        via_tris = set(rasterize_triangles(tris, VP).tolist())
        # Tie pixels sit exactly on internal triangle edges; allow a
        # whisker of slack proportional to the perimeter.
        slack = int(geom.perimeter / VP.pixel_width * 0.05) + 8
        assert len(direct ^ via_tris) <= slack
