"""Tests for the world->pixel transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import BBox
from repro.raster import Viewport


class TestConstruction:
    def test_fit_long_axis(self):
        vp = Viewport.fit(BBox(0, 0, 200, 100), 512)
        assert vp.width == 512
        assert vp.height == pytest.approx(256, abs=1)

    def test_fit_tall(self):
        vp = Viewport.fit(BBox(0, 0, 100, 200), 512)
        assert vp.height == 512

    def test_invalid_dims(self):
        with pytest.raises(GeometryError):
            Viewport(BBox(0, 0, 1, 1), 0, 10)

    def test_zero_extent_rejected(self):
        with pytest.raises(GeometryError):
            Viewport(BBox(0, 0, 0, 1), 10, 10)

    def test_pixel_sizes(self):
        vp = Viewport(BBox(0, 0, 100, 50), 100, 50)
        assert vp.pixel_width == pytest.approx(1.0)
        assert vp.pixel_height == pytest.approx(1.0)
        assert vp.pixel_diag == pytest.approx(np.sqrt(2))
        assert vp.num_pixels == 5000


class TestTransforms:
    def test_pixel_of_center_convention(self):
        vp = Viewport(BBox(0, 0, 10, 10), 10, 10)
        ix, iy = vp.pixel_of(0.5, 9.5)
        assert (ix, iy) == (0, 9)

    def test_pixel_ids_validity(self):
        vp = Viewport(BBox(0, 0, 10, 10), 10, 10)
        ids, valid = vp.pixel_ids_of(
            np.array([5.0, -1.0, 10.5]), np.array([5.0, 5.0, 5.0]))
        assert valid.tolist() == [True, False, False]
        assert ids[0] == 5 * 10 + 5

    def test_max_edge_points_inside_after_fit(self):
        """Viewport.fit pads the box so boundary points stay valid."""
        box = BBox(0, 0, 10, 10)
        vp = Viewport.fit(box, 64)
        ids, valid = vp.pixel_ids_of(np.array([10.0, 0.0]),
                                     np.array([10.0, 0.0]))
        assert valid.all()

    def test_pixel_center_round_trip(self):
        vp = Viewport(BBox(0, 0, 16, 16), 16, 16)
        xs, ys = vp.pixel_center(np.arange(16), np.arange(16))
        ix, iy = vp.pixel_of(xs, ys)
        assert (ix == np.arange(16)).all()
        assert (iy == np.arange(16)).all()

    def test_pixel_bbox(self):
        vp = Viewport(BBox(0, 0, 10, 10), 10, 10)
        pb = vp.pixel_bbox(3, 7)
        assert pb.as_tuple() == (3, 7, 4, 8)

    def test_row_col_of_id(self):
        vp = Viewport(BBox(0, 0, 10, 10), 10, 10)
        pid = np.array([37])
        assert vp.row_of_id(pid)[0] == 3
        assert vp.col_of_id(pid)[0] == 7

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0.001, 1000), st.floats(0.001, 1000),
           st.integers(1, 256))
    def test_every_inside_point_gets_valid_pixel(self, w, h, res):
        vp = Viewport.fit(BBox(0, 0, w, h), res)
        gen = np.random.default_rng(0)
        x = gen.uniform(0, w, 100)
        y = gen.uniform(0, h, 100)
        _, valid = vp.pixel_ids_of(x, y)
        assert valid.all()


class TestNavigation:
    def test_zoom_halves_window(self):
        vp = Viewport(BBox(0, 0, 100, 100), 10, 10)
        z = vp.zoom(0.5)
        assert z.bbox.width == pytest.approx(50)
        assert z.bbox.center == vp.bbox.center
        assert (z.width, z.height) == (10, 10)

    def test_pan_by_pixels(self):
        vp = Viewport(BBox(0, 0, 100, 100), 10, 10)
        p = vp.pan(2, -1)
        assert p.bbox.xmin == pytest.approx(20)
        assert p.bbox.ymin == pytest.approx(-10)
