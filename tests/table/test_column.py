"""Unit tests for typed columns."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.table import (
    CATEGORICAL,
    NUMERIC,
    TIMESTAMP,
    Column,
    categorical_column,
    categorical_from_codes,
    numeric_column,
    timestamp_column,
)


class TestNumericColumn:
    def test_construction_coerces_float64(self):
        col = numeric_column("a", [1, 2, 3])
        assert col.values.dtype == np.float64
        assert col.kind == NUMERIC

    def test_rejects_strings(self):
        with pytest.raises(SchemaError):
            Column("a", NUMERIC, np.array(["x", "y"]))

    def test_rejects_2d(self):
        with pytest.raises(SchemaError):
            Column("a", NUMERIC, np.zeros((2, 2)))

    def test_immutable_buffer(self):
        col = numeric_column("a", [1.0, 2.0])
        with pytest.raises(ValueError):
            col.values[0] = 5.0

    def test_take_mask(self):
        col = numeric_column("a", [1.0, 2.0, 3.0])
        sub = col.take(np.array([True, False, True]))
        assert sub.values.tolist() == [1.0, 3.0]

    def test_take_indices(self):
        col = numeric_column("a", [1.0, 2.0, 3.0])
        assert col.take(np.array([2, 0])).values.tolist() == [3.0, 1.0]


class TestTimestampColumn:
    def test_int64(self):
        col = timestamp_column("t", [100, 200])
        assert col.values.dtype == np.int64
        assert col.kind == TIMESTAMP

    def test_rejects_floats(self):
        with pytest.raises(SchemaError):
            Column("t", TIMESTAMP, np.array([1.5, 2.5]))


class TestCategoricalColumn:
    def test_from_labels(self):
        col = categorical_column("k", ["b", "a", "b", "c"])
        assert col.kind == CATEGORICAL
        assert col.categories == ("a", "b", "c")
        assert col.values.tolist() == [1, 0, 1, 2]

    def test_decode_round_trip(self):
        labels = ["noise", "heat", "noise", "water"]
        col = categorical_column("k", labels)
        assert col.decode().tolist() == labels

    def test_code_for(self):
        col = categorical_column("k", ["x", "y"])
        assert col.code_for("y") == 1

    def test_code_for_unknown_raises(self):
        col = categorical_column("k", ["x", "y"])
        with pytest.raises(SchemaError):
            col.code_for("zzz")

    def test_code_for_on_numeric_raises(self):
        with pytest.raises(SchemaError):
            numeric_column("a", [1.0]).code_for("x")

    def test_requires_categories(self):
        with pytest.raises(SchemaError):
            Column("k", CATEGORICAL, np.array([0, 1], dtype=np.int32))

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(SchemaError):
            categorical_from_codes("k", [0, 5], ("a", "b"))

    def test_from_codes(self):
        col = categorical_from_codes("k", [1, 0], ("a", "b"))
        assert col.decode().tolist() == ["b", "a"]

    def test_decode_on_numeric_raises(self):
        with pytest.raises(SchemaError):
            numeric_column("a", [1.0]).decode()


class TestColumnValidation:
    def test_unknown_kind(self):
        with pytest.raises(SchemaError):
            Column("a", "weird", np.array([1.0]))

    def test_len(self):
        assert len(numeric_column("a", [1, 2, 3])) == 3
