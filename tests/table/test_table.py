"""Unit tests for PointTable."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.table import (
    PointTable,
    numeric_column,
    table_from_dict,
    timestamp_column,
)


def _table(n=10, seed=0):
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(
        gen.uniform(0, 1, n), gen.uniform(0, 1, n), name="t",
        v=gen.normal(size=n), kind=gen.choice(["a", "b"], n))


class TestConstruction:
    def test_from_arrays_infers_kinds(self):
        t = _table()
        assert t.column("v").kind == "numeric"
        assert t.column("kind").kind == "categorical"

    def test_length_mismatch(self):
        with pytest.raises(SchemaError):
            PointTable([0.0, 1.0], [0.0])

    def test_column_length_mismatch(self):
        with pytest.raises(SchemaError):
            PointTable([0.0, 1.0], [0.0, 1.0],
                       {"v": numeric_column("v", [1.0])})

    def test_reserved_names(self):
        with pytest.raises(SchemaError):
            PointTable([0.0], [0.0], {"x": numeric_column("x", [1.0])})

    def test_name_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            PointTable([0.0], [0.0], {"a": numeric_column("b", [1.0])})

    def test_explicit_column_renamed(self):
        t = PointTable.from_arrays(
            [0.0], [0.0], when=timestamp_column("t", [5]))
        assert t.column("when").kind == "timestamp"


class TestAccessors:
    def test_missing_column_message(self):
        t = _table()
        with pytest.raises(SchemaError, match="no column"):
            t.column("nope")

    def test_xy_shape(self):
        assert _table(7).xy.shape == (7, 2)

    def test_bbox(self):
        t = PointTable.from_arrays([0.0, 2.0], [1.0, 3.0])
        assert t.bbox.as_tuple() == (0.0, 1.0, 2.0, 3.0)

    def test_bbox_empty_raises(self):
        with pytest.raises(SchemaError):
            PointTable([], []).bbox

    def test_coordinates_read_only(self):
        t = _table()
        with pytest.raises(ValueError):
            t.x[0] = 99.0

    def test_has_column(self):
        t = _table()
        assert t.has_column("v")
        assert not t.has_column("w")


class TestSelection:
    def test_take_mask(self):
        t = _table(10)
        mask = t.values("v") > 0
        sub = t.take(mask)
        assert len(sub) == int(mask.sum())
        assert (sub.values("v") > 0).all()

    def test_head(self):
        assert len(_table(10).head(3)) == 3

    def test_head_clamps(self):
        assert len(_table(3).head(100)) == 3

    def test_sample_deterministic(self):
        t = _table(100)
        a = t.sample(10, seed=1)
        b = t.sample(10, seed=1)
        assert (a.x == b.x).all()

    def test_sample_larger_than_table(self):
        t = _table(5)
        assert t.sample(100) is t

    def test_with_column(self):
        t = _table(4)
        t2 = t.with_column(numeric_column("w", [1, 2, 3, 4]))
        assert t2.has_column("w")
        assert not t.has_column("w")  # original untouched

    def test_rename(self):
        assert _table().rename("other").name == "other"


class TestConcat:
    def test_concat_lengths(self):
        a = _table(5, seed=1)
        b = _table(7, seed=2)
        both = PointTable.concat([a, b])
        assert len(both) == 12

    def test_concat_schema_mismatch(self):
        a = _table(3)
        b = PointTable.from_arrays([0.0], [0.0])
        with pytest.raises(SchemaError):
            PointTable.concat([a, b])

    def test_concat_empty_list(self):
        with pytest.raises(SchemaError):
            PointTable.concat([])

    def test_concat_merges_category_domains(self):
        a = PointTable.from_arrays([0.0], [0.0], k=np.array(["x"], object))
        b = PointTable.from_arrays([1.0], [1.0], k=np.array(["y"], object))
        both = PointTable.concat([a, b])
        assert both.column("k").decode().tolist() == ["x", "y"]


class TestFromDict:
    def test_timestamp_key_inferred(self):
        t = table_from_dict({"x": [0.0], "y": [0.0], "t": [100]})
        assert t.column("t").kind == "timestamp"

    def test_missing_xy(self):
        with pytest.raises(SchemaError):
            table_from_dict({"x": [0.0]})

    def test_describe_mentions_columns(self):
        t = _table()
        assert "v:numeric" in t.describe()
