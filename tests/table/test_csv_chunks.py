"""Chunked CSV ingestion: bounded memory, whole-file parity.

``iter_csv_chunks`` must reproduce exactly what a whole-file
``load_csv`` parse produces — same kinds, same values, same label sets
— while only ever holding one chunk of rows.
"""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.table import PointTable, iter_csv_chunks, load_csv, save_csv


@pytest.fixture()
def csv_path(tmp_path):
    gen = np.random.default_rng(31)
    n = 5_000
    table = PointTable.from_arrays(
        gen.uniform(-10, 10, n), gen.uniform(-10, 10, n), name="trips",
        fare=gen.exponential(9.0, n).round(2),
        t=gen.integers(0, 10_000, n).astype(np.int64),
        kind=gen.choice(["x", "y", "z"], n))
    path = tmp_path / "trips.csv"
    save_csv(table, path)
    return path


class TestIterCsvChunks:
    def test_chunk_sizes(self, csv_path):
        chunks = list(iter_csv_chunks(csv_path, chunk_rows=1_200))
        assert [len(c) for c in chunks] == [1_200] * 4 + [200]

    def test_chunks_concat_to_whole_file_parse(self, csv_path):
        whole = load_csv(csv_path)
        chunks = list(iter_csv_chunks(csv_path, chunk_rows=1_200))
        merged = PointTable.concat(chunks, name=whole.name)
        assert np.array_equal(merged.x, whole.x)
        assert np.array_equal(merged.y, whole.y)
        for name in whole.column_names:
            a, b = merged.column(name), whole.column(name)
            assert a.kind == b.kind
            if a.kind == "categorical":
                assert np.array_equal(np.asarray(a.categories)[a.values],
                                      np.asarray(b.categories)[b.values])
            else:
                assert np.array_equal(a.values, b.values)

    def test_kinds_fixed_by_first_chunk(self, csv_path):
        first, *rest = iter_csv_chunks(csv_path, chunk_rows=500)
        kinds = [first.column(n).kind for n in first.column_names]
        for chunk in rest:
            assert [chunk.column(n).kind
                    for n in chunk.column_names] == kinds

    def test_chunk_rows_validated(self, csv_path):
        with pytest.raises(SchemaError, match="chunk_rows"):
            list(iter_csv_chunks(csv_path, chunk_rows=0))

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("x,y,fare\n")
        with pytest.raises(SchemaError, match="no data rows"):
            list(iter_csv_chunks(path))
        with pytest.raises(SchemaError, match="no data rows"):
            load_csv(path)

    def test_missing_coordinates_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,fare\n1,2\n")
        with pytest.raises(SchemaError):
            list(iter_csv_chunks(path))


class TestLateCategoricalRetry:
    def test_numeric_then_text_column_retries_as_categorical(self, tmp_path):
        """A column that parses numeric for the whole first chunk but
        turns textual later must come back categorical end to end."""
        path = tmp_path / "late.csv"
        rows = ["x,y,code"]
        rows += [f"{i},{i},{i % 3}" for i in range(40)]
        rows += [f"{i},{i},unknown" for i in range(40, 50)]
        path.write_text("\n".join(rows) + "\n")
        table = load_csv(path, chunk_rows=16)
        col = table.column("code")
        assert col.kind == "categorical"
        assert len(table) == 50
        labels = set(np.asarray(col.categories)[col.values])
        assert "unknown" in labels

    def test_forced_categorical_skips_inference(self, tmp_path):
        path = tmp_path / "codes.csv"
        path.write_text("x,y,code\n1,1,7\n2,2,8\n")
        chunks = list(iter_csv_chunks(path, categorical_columns=("code",)))
        assert chunks[0].column("code").kind == "categorical"
