"""Round-trip tests for table persistence."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.table import (
    PointTable,
    load_csv,
    load_npz,
    save_csv,
    save_npz,
    timestamp_column,
)


@pytest.fixture()
def table():
    gen = np.random.default_rng(13)
    n = 500
    return PointTable.from_arrays(
        gen.uniform(-100, 100, n), gen.uniform(-100, 100, n), name="demo",
        fare=gen.exponential(10, n),
        t=timestamp_column("t", gen.integers(10**9, 2 * 10**9, n)),
        kind=gen.choice(["x", "y", "z"], n))


class TestNpz:
    def test_round_trip_exact(self, table, tmp_path):
        path = tmp_path / "t.npz"
        save_npz(table, path)
        back = load_npz(path)
        assert back.name == table.name
        assert len(back) == len(table)
        assert (back.x == table.x).all()
        assert (back.y == table.y).all()
        assert back.column_names == table.column_names
        for cname in table.column_names:
            a = table.column(cname)
            b = back.column(cname)
            assert a.kind == b.kind
            assert (a.values == b.values).all()
            assert a.categories == b.categories

    def test_empty_attribute_table(self, tmp_path):
        t = PointTable.from_arrays([1.0, 2.0], [3.0, 4.0], name="bare")
        path = tmp_path / "bare.npz"
        save_npz(t, path)
        back = load_npz(path)
        assert len(back) == 2
        assert back.column_names == []


class TestCsv:
    def test_round_trip_values(self, table, tmp_path):
        path = tmp_path / "t.csv"
        save_csv(table, path)
        back = load_csv(path)
        assert len(back) == len(table)
        assert back.x == pytest.approx(table.x)
        assert back.values("fare") == pytest.approx(table.values("fare"))
        # Timestamps preserved as timestamp kind.
        assert back.column("t").kind == "timestamp"
        assert (back.values("t") == table.values("t")).all()
        # Categorical labels preserved.
        assert (back.column("kind").decode()
                == table.column("kind").decode()).all()

    def test_header_validated(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(SchemaError):
            load_csv(path)

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("x,y,v\n")
        with pytest.raises(SchemaError):
            load_csv(path)

    def test_name_defaults_to_stem(self, table, tmp_path):
        path = tmp_path / "trips.csv"
        save_csv(table, path)
        assert load_csv(path).name == "trips"
