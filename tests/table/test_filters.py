"""Unit and property tests for the filter-expression AST."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.table import (
    Between,
    Comparison,
    F,
    IsIn,
    PointTable,
    TimeRange,
    TrueFilter,
    combine_filters,
    estimate_selectivity,
    timestamp_column,
)


@pytest.fixture(scope="module")
def table():
    gen = np.random.default_rng(42)
    n = 5_000
    return PointTable.from_arrays(
        gen.uniform(0, 1, n), gen.uniform(0, 1, n),
        v=gen.normal(0, 10, n),
        t=timestamp_column("t", gen.integers(0, 1000, n)),
        kind=gen.choice(["a", "b", "c"], n, p=[0.5, 0.3, 0.2]))


class TestComparison:
    def test_greater(self, table):
        mask = (F("v") > 0).mask(table)
        assert (table.values("v")[mask] > 0).all()
        assert (table.values("v")[~mask] <= 0).all()

    def test_all_operators(self, table):
        v = table.values("v")
        assert ((F("v") < 1).mask(table) == (v < 1)).all()
        assert ((F("v") <= 1).mask(table) == (v <= 1)).all()
        assert ((F("v") >= 1).mask(table) == (v >= 1)).all()
        assert ((F("v") == v[0]).mask(table) == (v == v[0])).all()
        assert ((F("v") != v[0]).mask(table) == (v != v[0])).all()

    def test_categorical_equality_by_label(self, table):
        mask = (F("kind") == "b").mask(table)
        assert (table.column("kind").decode()[mask] == "b").all()

    def test_categorical_inequality(self, table):
        mask = (F("kind") != "b").mask(table)
        assert (table.column("kind").decode()[mask] != "b").all()

    def test_unknown_label_matches_nothing(self, table):
        assert not (F("kind") == "zebra").mask(table).any()

    def test_unknown_label_neq_matches_all(self, table):
        assert (F("kind") != "zebra").mask(table).all()

    def test_ordering_on_categorical_rejected(self, table):
        with pytest.raises(QueryError):
            Comparison("kind", "<", "b").mask(table)

    def test_bad_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison("v", "~", 1)

    def test_missing_column(self, table):
        with pytest.raises(Exception):
            (F("nope") > 0).mask(table)


class TestBetweenIsIn:
    def test_between_closed(self, table):
        mask = F("v").between(-1, 1).mask(table)
        v = table.values("v")[mask]
        assert ((v >= -1) & (v <= 1)).all()

    def test_isin_labels(self, table):
        mask = F("kind").isin(["a", "c"]).mask(table)
        got = set(table.column("kind").decode()[mask])
        assert got <= {"a", "c"}

    def test_isin_empty(self, table):
        assert not F("kind").isin([]).mask(table).any()

    def test_isin_numeric(self, table):
        t2 = table.take(np.arange(100))
        vals = t2.values("v")[:3]
        mask = F("v").isin(list(vals)).mask(t2)
        assert mask[:3].all()


class TestTimeRange:
    def test_half_open(self, table):
        mask = TimeRange("t", 100, 200).mask(table)
        t = table.values("t")[mask]
        assert ((t >= 100) & (t < 200)).all()

    def test_adjacent_windows_partition(self, table):
        m1 = TimeRange("t", 0, 500).mask(table)
        m2 = TimeRange("t", 500, 1000).mask(table)
        assert not (m1 & m2).any()
        assert (m1 | m2).all()

    def test_requires_timestamp_column(self, table):
        with pytest.raises(QueryError):
            TimeRange("v", 0, 10).mask(table)

    def test_f_sugar(self, table):
        a = F("t").time_range(10, 20).mask(table)
        b = TimeRange("t", 10, 20).mask(table)
        assert (a == b).all()


class TestBooleanAlgebra:
    def test_and(self, table):
        m = ((F("v") > 0) & (F("kind") == "a")).mask(table)
        assert (m == ((F("v") > 0).mask(table)
                      & (F("kind") == "a").mask(table))).all()

    def test_or(self, table):
        m = ((F("v") > 5) | (F("v") < -5)).mask(table)
        v = table.values("v")[m]
        assert ((v > 5) | (v < -5)).all()

    def test_not(self, table):
        m = (~(F("v") > 0)).mask(table)
        assert (m == (table.values("v") <= 0)).all()

    def test_de_morgan(self, table):
        a = F("v") > 0
        b = F("kind") == "a"
        lhs = (~(a & b)).mask(table)
        rhs = ((~a) | (~b)).mask(table)
        assert (lhs == rhs).all()

    def test_columns_union(self):
        expr = (F("v") > 0) & (F("kind") == "a") | (F("t").between(0, 1))
        assert expr.columns() == {"v", "kind", "t"}


class TestCombinators:
    def test_empty_list_matches_all(self, table):
        assert combine_filters([]).mask(table).all()

    def test_true_filter(self, table):
        assert TrueFilter().mask(table).all()
        assert TrueFilter().columns() == set()

    def test_combine_is_and(self, table):
        exprs = [F("v") > 0, F("kind") == "a"]
        combined = combine_filters(exprs).mask(table)
        manual = exprs[0].mask(table) & exprs[1].mask(table)
        assert (combined == manual).all()


class TestSelectivity:
    def test_exact_for_small_tables(self, table):
        sub = table.take(np.arange(1000))
        expr = F("v") > 0
        est = estimate_selectivity(expr, sub)
        assert est == pytest.approx(float(expr.mask(sub).mean()))

    def test_sampled_close(self, table):
        expr = F("kind") == "a"
        est = estimate_selectivity(expr, table, sample_size=2000)
        true = float(expr.mask(table).mean())
        assert est == pytest.approx(true, abs=0.05)

    def test_empty_table(self):
        empty = PointTable([], [])
        assert estimate_selectivity(TrueFilter(), empty) == 0.0

@settings(max_examples=25, deadline=None)
@given(st.floats(-30, 30), st.floats(0, 10))
def test_between_window_property(lo, width):
    gen = np.random.default_rng(11)
    t = PointTable.from_arrays(gen.uniform(0, 1, 300),
                               gen.uniform(0, 1, 300),
                               v=gen.normal(0, 10, 300))
    mask = F("v").between(lo, lo + width).mask(t)
    v = t.values("v")
    assert (mask == ((v >= lo) & (v <= lo + width))).all()


def test_between_equivalent_to_comparisons():
    gen = np.random.default_rng(7)
    t = PointTable.from_arrays(gen.uniform(0, 1, 500),
                               gen.uniform(0, 1, 500),
                               v=gen.normal(size=500))
    lo, hi = -0.5, 0.7
    a = F("v").between(lo, hi).mask(t)
    b = ((F("v") >= lo) & (F("v") <= hi)).mask(t)
    assert (a == b).all()
