"""Kernel registry semantics + cross-kernel bitwise equivalence.

The numba leg of CI runs this same file with numba installed; the
container leg exercises the NumPy fallback.  Every comparison is
bitwise (``tobytes``) — switching kernels must never change a bit.
"""

import numpy as np
import pytest

from repro import kernels
from repro.core import SpatialAggregation, SpatialAggregationEngine
from repro.core.context import ExecutionContext
from repro.errors import ExecutionError
from repro.kernels import numpy_impl
from repro.table import PointTable

NUMBA = kernels.numba_available()


@pytest.fixture(autouse=True)
def _restore_selection():
    """Tests may switch the process-global kernel; put it back."""
    yield
    kernels.select("auto")


def _bits(a: np.ndarray) -> bytes:
    return np.ascontiguousarray(a).tobytes()


def _table(n=2_000, seed=3):
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(10, n))


class TestRegistry:
    def test_numpy_always_registered(self):
        assert "numpy" in kernels.available_kernels()

    def test_auto_prefers_numba_when_available(self):
        chosen = kernels.select("auto")
        assert chosen.name == ("numba" if NUMBA else "numpy")

    def test_explicit_numpy(self):
        assert kernels.select("numpy").name == "numpy"
        assert kernels.active().name == "numpy"

    @pytest.mark.skipif(NUMBA, reason="numba installed")
    def test_explicit_numba_raises_without_numba(self):
        with pytest.raises(ExecutionError, match="numba"):
            kernels.select("numba")

    @pytest.mark.skipif(not NUMBA, reason="numba not installed")
    def test_explicit_numba(self):
        assert kernels.select("numba").name == "numba"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ExecutionError, match="unknown kernel"):
            kernels.select("cuda")

    def test_info_shape(self):
        kernels.select("auto")
        info = kernels.info()
        assert set(info) == {"requested", "selected", "numba_available"}
        assert info["requested"] == "auto"
        assert info["selected"] in ("numpy", "numba")
        assert info["numba_available"] is NUMBA

    def test_context_records_selection(self):
        ctx = ExecutionContext(kernel="numpy")
        assert ctx.kernel == "numpy"
        assert ctx.kernel_info()["selected"] == "numpy"

    def test_context_rejects_unavailable_kernel(self):
        if NUMBA:
            pytest.skip("numba installed")
        with pytest.raises(ExecutionError):
            ExecutionContext(kernel="numba")

    def test_engine_surfaces_kernel_in_plan_stats(self, simple_regions):
        engine = SpatialAggregationEngine(default_resolution=64)
        r = engine.execute(_table(), simple_regions,
                           SpatialAggregation.count())
        kern = r.stats["plan"]["kernel"]
        assert kern["selected"] in ("numpy", "numba")
        assert kern["numba_available"] is NUMBA


class TestExpandRanges:
    def test_basic(self):
        out = numpy_impl.expand_ranges(np.array([3, 10]), np.array([2, 3]))
        assert out.tolist() == [3, 4, 10, 11, 12]
        assert out.dtype == np.int64

    def test_zero_length_runs_skipped(self):
        out = numpy_impl.expand_ranges(np.array([5, 7, 9]),
                                       np.array([1, 0, 2]))
        assert out.tolist() == [5, 9, 10]

    def test_empty(self):
        out = numpy_impl.expand_ranges(np.empty(0, np.int64),
                                       np.empty(0, np.int64))
        assert len(out) == 0 and out.dtype == np.int64


class TestNumpySemantics:
    """The reference behaviors other kernels must reproduce."""

    def test_scatter_count_is_bincount(self):
        pix = np.array([0, 2, 2, 5])
        out = numpy_impl.scatter_count(pix, 6)
        assert out.tolist() == [1, 0, 2, 0, 0, 1]

    def test_scatter_min_nan_poisons_pixel(self):
        pix = np.array([1, 1, 1])
        vals = np.array([3.0, np.nan, 1.0])
        out = numpy_impl.scatter_min(pix, vals, 3)
        assert np.isnan(out[1]) and np.isinf(out[0])

    def test_gather_min_skips_fill(self):
        canvas = np.array([np.inf, 2.0, 5.0])
        out = numpy_impl.gather_min(canvas, np.array([0, 1, 2]),
                                    np.array([0, 0, 1]), 2)
        assert out.tolist() == [2.0, 5.0]


@pytest.mark.skipif(not NUMBA, reason="numba not installed")
class TestNumbaBitwise:
    """Every numba kernel must match the NumPy one bit for bit."""

    @pytest.fixture(scope="class")
    def data(self):
        gen = np.random.default_rng(7)
        n, pixels, groups = 20_000, 4_096, 37
        pix = gen.integers(0, pixels, n)
        vals = gen.exponential(3.0, n)
        vals[gen.integers(0, n, 25)] = np.nan  # exercise NaN paths
        canvas = np.zeros(pixels)
        canvas[gen.integers(0, pixels, 2_000)] = gen.normal(size=2_000)
        frag_pix = gen.integers(0, pixels, 5_000)
        frag_grp = np.sort(gen.integers(0, groups, 5_000))
        return dict(pix=pix, vals=vals, n=n, pixels=pixels, groups=groups,
                    canvas=canvas, frag_pix=frag_pix, frag_grp=frag_grp)

    def _pair(self):
        from repro.kernels import numba_impl

        return numpy_impl, numba_impl

    def test_scatter_ops(self, data):
        ref, jit = self._pair()
        for op in ("scatter_count",):
            a = getattr(ref, op)(data["pix"], data["pixels"])
            b = getattr(jit, op)(data["pix"], data["pixels"])
            assert _bits(a) == _bits(b)
        for op in ("scatter_sum", "scatter_min", "scatter_max"):
            a = getattr(ref, op)(data["pix"], data["vals"], data["pixels"])
            b = getattr(jit, op)(data["pix"], data["vals"], data["pixels"])
            assert _bits(a) == _bits(b), op

    def test_scatter_add_at(self, data):
        ref, jit = self._pair()
        a = np.zeros(data["pixels"])
        b = np.zeros(data["pixels"])
        for chunk in np.array_split(np.arange(data["n"]), 5):
            ref.scatter_add_at(a, data["pix"][chunk], data["vals"][chunk])
            jit.scatter_add_at(b, data["pix"][chunk], data["vals"][chunk])
        assert _bits(a) == _bits(b)

    def test_gather_ops(self, data):
        ref, jit = self._pair()
        args = (data["canvas"], data["frag_pix"], data["frag_grp"],
                data["groups"])
        assert _bits(ref.gather_sum(*args)) == _bits(jit.gather_sum(*args))
        assert _bits(ref.gather_min(*args)) == _bits(jit.gather_min(*args))
        assert _bits(ref.gather_max(*args)) == _bits(jit.gather_max(*args))

    def test_expand_ranges(self):
        ref, jit = self._pair()
        gen = np.random.default_rng(11)
        starts = gen.integers(0, 10_000, 500)
        lengths = gen.integers(0, 40, 500)
        assert _bits(ref.expand_ranges(starts, lengths)) == \
            _bits(jit.expand_ranges(starts, lengths))

    def test_whole_join_bitwise_across_kernels(self, simple_regions):
        """End to end: the same exact query under both kernels."""
        from repro.core import accurate_raster_join
        from repro.raster import Viewport

        table = _table(30_000, seed=21)
        vp = Viewport.fit(simple_regions.bbox, 128)
        outs = {}
        for name in ("numpy", "numba"):
            kernels.select(name)
            outs[name] = accurate_raster_join(
                table, simple_regions,
                SpatialAggregation.sum_of("fare"), vp).values
        assert _bits(outs["numpy"]) == _bits(outs["numba"])
