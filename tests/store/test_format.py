"""Zone maps and manifest/footer serialization (schema v1).

The edge cases the pruner leans on: empty partitions, single-point
partitions, all-NaN columns (min/max must be None, not NaN), and
categorical bitsets that survive a JSON round trip untouched.
"""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.geometry import BBox
from repro.store.format import (
    STORE_FORMAT_VERSION,
    ColumnSpec,
    Manifest,
    PartitionInfo,
    build_zones,
    column_zone,
    read_footer,
    read_manifest,
    write_footer,
    write_manifest,
    zone_bitset,
    zone_max,
    zone_min,
)
from repro.table.column import CATEGORICAL, NUMERIC, TIMESTAMP


class TestColumnZone:
    def test_numeric_min_max_nan_count(self):
        zone = column_zone(NUMERIC, np.array([3.0, np.nan, -1.5, 8.0]))
        assert zone_min(zone) == -1.5
        assert zone_max(zone) == 8.0
        assert zone["nan_count"] == 1

    def test_empty_column_has_none_bounds(self):
        for kind in (NUMERIC, TIMESTAMP):
            zone = column_zone(kind, np.empty(0))
            assert zone_min(zone) is None
            assert zone_max(zone) is None

    def test_single_point_min_equals_max(self):
        zone = column_zone(NUMERIC, np.array([4.25]))
        assert zone_min(zone) == zone_max(zone) == 4.25

    def test_all_nan_column_has_none_bounds_and_full_count(self):
        zone = column_zone(NUMERIC, np.full(7, np.nan))
        assert zone_min(zone) is None
        assert zone_max(zone) is None
        assert zone["nan_count"] == 7

    def test_infinities_survive_json(self):
        import json

        zone = column_zone(NUMERIC, np.array([-np.inf, 1.0, np.inf]))
        back = json.loads(json.dumps(zone))
        assert zone_min(back) == -np.inf
        assert zone_max(back) == np.inf

    def test_timestamp_zone_is_integer(self):
        zone = column_zone(TIMESTAMP, np.array([30, 10, 20], dtype=np.int64))
        assert zone["min"] == 10 and zone["max"] == 30

    def test_categorical_bitset_presence(self):
        zone = column_zone(CATEGORICAL, np.array([0, 2, 2, 5], dtype=np.int32))
        bits = zone_bitset(zone)
        assert bits == (1 << 0) | (1 << 2) | (1 << 5)
        # Absent codes are absent: code 1 was never written.
        assert not bits >> 1 & 1

    def test_categorical_empty_bitset(self):
        zone = column_zone(CATEGORICAL, np.empty(0, dtype=np.int32))
        assert zone_bitset(zone) == 0


class TestBuildZones:
    def test_bbox_and_zones(self):
        x = np.array([1.0, 5.0, 3.0])
        y = np.array([2.0, 0.5, 4.0])
        bbox, zones = build_zones(x, y, {"v": (NUMERIC, np.array([1., 2., 3.]))})
        assert bbox == BBox(1.0, 0.5, 5.0, 4.0)
        assert zone_min(zones["v"]) == 1.0

    def test_empty_partition_has_no_bbox(self):
        bbox, zones = build_zones(np.empty(0), np.empty(0),
                                  {"v": (NUMERIC, np.empty(0))})
        assert bbox is None
        assert zone_min(zones["v"]) is None


class TestManifestRoundTrip:
    def _manifest(self):
        info = PartitionInfo(
            "p00000", 3, (2, 1), BBox(0, 0, 1, 1),
            zones={"fare": column_zone(NUMERIC, np.array([1.0, 2.0])),
                   "kind": column_zone(CATEGORICAL,
                                       np.array([0, 3], dtype=np.int32))},
            nbytes=72)
        return Manifest(
            name="trip", partition_rows=1024, grid_nx=4, grid_ny=4,
            grid_bbox=BBox(0, 0, 10, 10), time_column="t",
            time_bucket_seconds=3600,
            columns=[ColumnSpec("fare", NUMERIC),
                     ColumnSpec("kind", CATEGORICAL, ("a", "b", "c", "d"))],
            partitions=[info])

    def test_round_trip(self, tmp_path):
        manifest = self._manifest()
        write_manifest(tmp_path, manifest)
        back = read_manifest(tmp_path)
        assert back.to_json() == manifest.to_json()
        assert back.rows == 3
        assert back.column("kind").categories == ("a", "b", "c", "d")
        assert zone_bitset(back.partitions[0].zones["kind"]) == 0b1001

    def test_footer_round_trip(self, tmp_path):
        info = self._manifest().partitions[0]
        write_footer(tmp_path, info)
        back = read_footer(tmp_path)
        assert back.to_json() == info.to_json()

    def test_newer_format_rejected(self, tmp_path):
        manifest = self._manifest()
        payload = manifest.to_json()
        payload["format_version"] = STORE_FORMAT_VERSION + 1
        import json

        (tmp_path / "manifest.json").write_text(json.dumps(payload))
        with pytest.raises(SchemaError, match="newer"):
            read_manifest(tmp_path)

    def test_non_store_directory_rejected(self, tmp_path):
        with pytest.raises(SchemaError, match="not a dataset store"):
            read_manifest(tmp_path)

    def test_unknown_column_lookup(self):
        with pytest.raises(SchemaError, match="no column"):
            self._manifest().column("nope")
