"""Pruning is conservative and answer-preserving.

Two layers of evidence: synthetic zone maps exercise every per-node
rule (the edge cases documented in :mod:`repro.store.pruner`), and the
real store proves end-to-end that every *pruned* partition truly holds
zero matching rows — the scanned set is a superset of the needed set.
"""

import numpy as np
import pytest

from repro.geometry import BBox
from repro.raster import Viewport
from repro.store import Dataset, PartitionPruner
from repro.store.format import ColumnSpec, Manifest, PartitionInfo, column_zone
from repro.table.column import CATEGORICAL, NUMERIC, TIMESTAMP
from repro.table.filters import (
    And,
    Between,
    Comparison,
    IsIn,
    Not,
    Or,
    TimeRange,
)


def make_pruner(columns, partitions):
    manifest = Manifest(
        name="synthetic", partition_rows=64, grid_nx=1, grid_ny=1,
        grid_bbox=None, time_column=None, time_bucket_seconds=None,
        columns=columns, partitions=partitions)
    return PartitionPruner(Dataset("unused", manifest))


def info(rows=4, bbox=BBox(0, 0, 1, 1), **zones):
    return PartitionInfo("p00000", rows, (0, 0), bbox, zones=dict(zones))


@pytest.fixture(scope="module")
def synthetic():
    columns = [ColumnSpec("fare", NUMERIC),
               ColumnSpec("t", TIMESTAMP),
               ColumnSpec("kind", CATEGORICAL, ("a", "b", "c"))]
    return make_pruner(columns, [])


class TestComparisonRules:
    def test_numeric_range(self, synthetic):
        part = info(fare=column_zone(NUMERIC, np.array([5.0, 10.0])))
        assert synthetic.maybe_match(Comparison("fare", ">", 9), part)
        assert not synthetic.maybe_match(Comparison("fare", ">", 10), part)
        assert synthetic.maybe_match(Comparison("fare", ">=", 10), part)
        assert not synthetic.maybe_match(Comparison("fare", "<", 5), part)
        assert synthetic.maybe_match(Comparison("fare", "<=", 5), part)
        assert synthetic.maybe_match(Comparison("fare", "==", 7), part)
        assert not synthetic.maybe_match(Comparison("fare", "==", 11), part)

    def test_single_point_zone(self, synthetic):
        part = info(fare=column_zone(NUMERIC, np.array([4.0])))
        assert synthetic.maybe_match(Comparison("fare", "==", 4), part)
        assert not synthetic.maybe_match(Comparison("fare", "!=", 4), part)
        assert not synthetic.maybe_match(Comparison("fare", "<", 4), part)

    def test_all_nan_prunes_everything_but_ne(self, synthetic):
        part = info(fare=column_zone(NUMERIC, np.full(4, np.nan)))
        for op in ("<", "<=", ">", ">=", "=="):
            assert not synthetic.maybe_match(Comparison("fare", op, 0), part)
        # NaN != v is True, so != must keep the all-NaN partition.
        assert synthetic.maybe_match(Comparison("fare", "!=", 0), part)
        assert not synthetic.maybe_match(Between("fare", 0, 1), part)
        assert not synthetic.maybe_match(IsIn("fare", (0.0, 1.0)), part)

    def test_ne_keeps_partitions_with_nans(self, synthetic):
        part = info(fare=column_zone(NUMERIC, np.array([3.0, np.nan])))
        assert synthetic.maybe_match(Comparison("fare", "!=", 3), part)

    def test_unknown_column_never_prunes(self, synthetic):
        part = info(fare=column_zone(NUMERIC, np.array([1.0])))
        assert synthetic.maybe_match(Comparison("mystery", "==", 9), part)


class TestCategoricalRules:
    def _part(self, codes):
        return info(kind=column_zone(
            CATEGORICAL, np.array(codes, dtype=np.int32)))

    def test_label_not_in_bitset_prunes_eq(self, synthetic):
        part = self._part([0, 1])  # only "a", "b" present
        assert not synthetic.maybe_match(Comparison("kind", "==", "c"), part)
        assert synthetic.maybe_match(Comparison("kind", "==", "b"), part)

    def test_unknown_label(self, synthetic):
        part = self._part([0, 1])
        # Not in the store's domain at all: == matches nothing,
        # != matches everything.
        assert not synthetic.maybe_match(Comparison("kind", "==", "zz"), part)
        assert synthetic.maybe_match(Comparison("kind", "!=", "zz"), part)

    def test_ne_prunes_only_uniform_partition(self, synthetic):
        assert not synthetic.maybe_match(
            Comparison("kind", "!=", "a"), self._part([0, 0]))
        assert synthetic.maybe_match(
            Comparison("kind", "!=", "a"), self._part([0, 1]))

    def test_isin_checks_each_label(self, synthetic):
        part = self._part([2])  # only "c"
        assert synthetic.maybe_match(IsIn("kind", ("a", "c")), part)
        assert not synthetic.maybe_match(IsIn("kind", ("a", "b")), part)
        assert not synthetic.maybe_match(IsIn("kind", ("zz",)), part)


class TestTimeAndComposite:
    def test_time_range_half_open(self, synthetic):
        part = info(t=column_zone(TIMESTAMP,
                                  np.array([100, 200], dtype=np.int64)))
        assert synthetic.maybe_match(TimeRange("t", 150, 160), part)
        assert synthetic.maybe_match(TimeRange("t", 200, 300), part)
        # [start, end) — a partition starting exactly at `end` is out.
        assert not synthetic.maybe_match(TimeRange("t", 0, 100), part)
        assert not synthetic.maybe_match(TimeRange("t", 201, 300), part)

    def test_not_never_prunes(self, synthetic):
        part = info(fare=column_zone(NUMERIC, np.array([5.0])))
        inner = Comparison("fare", "==", 99)  # provably no match
        assert not synthetic.maybe_match(inner, part)
        assert synthetic.maybe_match(Not(inner), part)

    def test_and_or_combine(self, synthetic):
        part = info(fare=column_zone(NUMERIC, np.array([5.0, 10.0])))
        hit = Comparison("fare", ">", 7)
        miss = Comparison("fare", ">", 99)
        assert synthetic.maybe_match(And(hit, hit), part)
        assert not synthetic.maybe_match(And(hit, miss), part)
        assert synthetic.maybe_match(Or(miss, hit), part)
        assert not synthetic.maybe_match(Or(miss, miss), part)


class TestPruneOnRealStore:
    """Every pruned partition provably holds zero matching rows."""

    FILTERS = [
        (Comparison("fare", ">", 100.0),),
        (Comparison("kind", "==", "c"),),
        (TimeRange("t", 0, 7_200),),
        (TimeRange("t", 6 * 3_600, 8 * 3_600),
         Comparison("fare", ">=", 0.0)),
        (Between("t", 0, 3_599),),
        (IsIn("kind", ("c",)),),
    ]

    @pytest.mark.parametrize("filters", FILTERS,
                             ids=[f"f{i}" for i in range(len(FILTERS))])
    def test_pruned_partitions_have_no_matches(self, store, filters):
        pruner = PartitionPruner(store)
        result = pruner.prune(filters)
        survivors = set(result.indices)
        assert result.pruned + len(survivors) == store.num_partitions
        for index in range(store.num_partitions):
            if index in survivors:
                continue
            part = store.partition_table(index)
            for expr in filters:
                if not expr.mask(part).any():
                    break  # this filter proves the partition empty
            else:
                pytest.fail(f"partition {index} was pruned but matches")

    def test_viewport_pruning_superset(self, store):
        viewport = Viewport(BBox(0, 0, 25, 25), 64, 64)
        result = PartitionPruner(store).prune((), viewport=viewport)
        assert result.pruned_viewport > 0
        for index in range(store.num_partitions):
            if index in set(result.indices):
                continue
            part = store.partition_table(index)
            _, valid = viewport.pixel_ids_of(part.x, part.y)
            assert not valid.any()

    def test_time_brush_prunes_buckets(self, store):
        """The store is bucketed at 2h; a 2h brush keeps ~1/4 of it."""
        result = PartitionPruner(store).prune((TimeRange("t", 0, 7_200),))
        assert 0 < len(result.indices) < store.num_partitions

    def test_stats_payload(self, store):
        result = PartitionPruner(store).prune((Comparison("kind", "==", "c"),))
        stats = result.stats()
        parts = stats["partitions"]
        assert parts["total"] == store.num_partitions
        assert parts["pruned"] + parts["scanned"] == parts["total"]
        assert parts["pruned"] == result.pruned > 0
        assert stats["rows"]["scanned"] == result.rows_scanned
        assert stats["bytes_scanned"] > 0

    def test_empty_partition_pruned(self):
        pruner = make_pruner(
            [ColumnSpec("fare", NUMERIC)],
            [PartitionInfo("p00000", 0, (0, 0), None),
             info(fare=column_zone(NUMERIC, np.array([1.0])))])
        result = pruner.prune(())
        assert result.pruned_empty == 1
        assert result.indices == [1]
