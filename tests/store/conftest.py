"""Shared store fixtures: one deterministic store every suite reuses.

The table is built so that every pruning axis has something to prune:
x/y cluster by grid cell, ``t`` spans many buckets, ``fare`` is
integer-valued (so parallel SUM folds stay exact), and ``kind`` labels
are spatially skewed so categorical bitsets differ across partitions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.store import Dataset, build_store
from repro.table import PointTable, timestamp_column

HOUR = 3_600
STORE_ROWS = 60_000


def make_store_table(n: int = STORE_ROWS, seed: int = 424242) -> PointTable:
    gen = np.random.default_rng(seed)
    x = gen.uniform(0, 100, n)
    y = gen.uniform(0, 100, n)
    fare = np.floor(gen.exponential(12.0, n))
    t = gen.integers(0, 8 * HOUR, n)
    # Spatially skewed labels: the west half never sees "c".
    kind = np.where(x < 50, gen.choice(["a", "b"], n),
                    gen.choice(["a", "b", "c"], n))
    return PointTable.from_arrays(
        x, y, name="store-pts",
        fare=fare, t=timestamp_column("t", t), kind=kind)


@pytest.fixture(scope="session")
def store_table() -> PointTable:
    return make_store_table()


@pytest.fixture(scope="session")
def store(store_table, tmp_path_factory) -> Dataset:
    """The table written as a many-partition store (time-bucketed)."""
    path = tmp_path_factory.mktemp("store") / "pts"
    return build_store(store_table, path, partition_rows=2_048, grid=4,
                       time_column="t", time_bucket_seconds=2 * HOUR)
