"""Writer/reader round trips.

A store is a *reordering* of its input (rows are grouped by grid key),
so round-trip equality is checked on sorted row tuples — and on exact
bit patterns, since column files are raw little-endian dumps of the
ingested arrays.
"""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.store import Dataset, DatasetWriter, build_store
from repro.table import PointTable, timestamp_column

from .conftest import make_store_table


def row_key(table: PointTable) -> np.ndarray:
    """A stable sort order for comparing reordered tables."""
    cols = [table.x, table.y]
    for name in table.column_names:
        col = table.column(name)
        cols.append(col.values.astype(np.float64, copy=False))
    return np.lexsort(cols[::-1])


def assert_same_rows(a: PointTable, b: PointTable):
    assert len(a) == len(b)
    assert a.column_names == b.column_names
    ka, kb = row_key(a), row_key(b)
    assert np.array_equal(a.x[ka], b.x[kb])
    assert np.array_equal(a.y[ka], b.y[kb])
    for name in a.column_names:
        ca, cb = a.column(name), b.column(name)
        assert ca.kind == cb.kind
        if ca.kind == "categorical":
            la = np.asarray(ca.categories)[ca.values][ka]
            lb = np.asarray(cb.categories)[cb.values][kb]
            assert np.array_equal(la, lb)
        else:
            assert np.array_equal(ca.values[ka], cb.values[kb],
                                  equal_nan=True)


class TestRoundTrip:
    def test_store_round_trips_rows(self, store, store_table):
        assert_same_rows(store.to_table(), store_table)

    def test_partition_sizes_bounded(self, store):
        for info in store.partitions:
            assert 0 < info.rows <= store.manifest.partition_rows

    def test_property_random_tables(self, tmp_path):
        """Round trip across varied shapes, seeds, and writer knobs."""
        for seed, rows, partition_rows, grid in [
                (1, 1, 16, 1), (2, 17, 16, 2), (3, 503, 64, 3),
                (4, 2_000, 256, 8), (5, 999, 1000, 4)]:
            table = make_store_table(rows, seed=seed)
            path = tmp_path / f"s{seed}"
            ds = build_store(table, path, partition_rows=partition_rows,
                             grid=grid)
            assert_same_rows(ds.to_table(), table)
            for info in ds.partitions:
                assert info.rows <= partition_rows

    def test_nan_values_round_trip(self, tmp_path):
        gen = np.random.default_rng(6)
        v = gen.uniform(0, 1, 100)
        v[::7] = np.nan
        table = PointTable.from_arrays(gen.uniform(0, 9, 100),
                                       gen.uniform(0, 9, 100),
                                       name="nans", v=v)
        ds = build_store(table, tmp_path / "nans", partition_rows=16)
        assert_same_rows(ds.to_table(), table)


class TestChunkedIngestion:
    def test_chunked_equals_whole(self, tmp_path, store_table):
        whole = build_store(store_table, tmp_path / "whole",
                            partition_rows=2_048, grid=4)
        with DatasetWriter(tmp_path / "chunked", partition_rows=2_048,
                           grid=4, grid_bbox=store_table.bbox,
                           buffer_rows=4_000) as writer:
            for lo in range(0, len(store_table), 7_001):
                sel = np.arange(lo, min(lo + 7_001, len(store_table)))
                writer.add_chunk(store_table.take(sel))
        chunked = Dataset.open(tmp_path / "chunked")
        assert_same_rows(chunked.to_table(), whole.to_table())

    def test_categorical_domain_is_global(self, tmp_path):
        """Labels arriving in later chunks extend the global domain
        without invalidating codes written earlier."""
        def chunk(labels, n=50, seed=0):
            gen = np.random.default_rng(seed)
            return PointTable.from_arrays(
                gen.uniform(0, 9, n), gen.uniform(0, 9, n), name="c",
                kind=np.array(labels * (n // len(labels)))[:n])

        with DatasetWriter(tmp_path / "cats", partition_rows=16) as writer:
            writer.add_chunk(chunk(["b", "a"], seed=1))
            writer.add_chunk(chunk(["z", "a"], seed=2))
        ds = Dataset.open(tmp_path / "cats")
        spec = ds.manifest.column("kind")
        # Chunk 1 contributes its (sorted) domain a, b; z appends after.
        assert spec.categories == ("a", "b", "z")
        labels = set()
        for _, part in ds.iter_partition_tables():
            col = part.column("kind")
            labels |= set(np.asarray(col.categories)[col.values])
        assert labels == {"a", "b", "z"}

    def test_schema_mismatch_rejected(self, tmp_path):
        gen = np.random.default_rng(3)
        a = PointTable.from_arrays(gen.uniform(0, 1, 10),
                                   gen.uniform(0, 1, 10), name="a",
                                   v=gen.uniform(0, 1, 10))
        b = PointTable.from_arrays(gen.uniform(0, 1, 10),
                                   gen.uniform(0, 1, 10), name="b",
                                   w=gen.uniform(0, 1, 10))
        with DatasetWriter(tmp_path / "s", partition_rows=16) as writer:
            writer.add_chunk(a)
            with pytest.raises(SchemaError, match="does not match"):
                writer.add_chunk(b)
            writer.add_chunk(a)  # still usable after the rejection


class TestAppend:
    def test_append_extends_store(self, tmp_path):
        first = make_store_table(1_000, seed=10)
        second = make_store_table(1_000, seed=11)
        path = tmp_path / "grow"
        build_store(first, path, partition_rows=256, grid=2)
        with DatasetWriter(path, append=True) as writer:
            writer.add_chunk(second)
        ds = Dataset.open(path)
        assert len(ds) == 2_000
        both = PointTable.concat([first, second], name="both")
        assert_same_rows(ds.to_table(), both)

    def test_nonempty_dir_requires_append(self, tmp_path):
        path = tmp_path / "busy"
        build_store(make_store_table(100, seed=12), path)
        with pytest.raises(SchemaError, match="append=True"):
            DatasetWriter(path)

    def test_failed_fresh_build_leaves_nothing(self, tmp_path):
        path = tmp_path / "failed"
        with pytest.raises(RuntimeError):
            with DatasetWriter(path, partition_rows=16) as writer:
                writer.add_chunk(make_store_table(100, seed=13))
                raise RuntimeError("boom")
        assert not path.exists()
