"""Lazy mounting: LRU budgets, mmap-aware cache sizing, serve manifest.

Covers the memory-side satellites: :func:`estimate_nbytes` charging 0
for file-backed arrays (the OS reclaims those pages, the cache should
not), the Dataset LRU keeping mapped bytes at the budget, and the
DataManager/serve layer opening stores only on first query.
"""

import json

import numpy as np
import pytest

from repro.core import SpatialAggregation
from repro.core.cache import estimate_nbytes
from repro.errors import QueryError, SchemaError
from repro.serve import mount_datasets
from repro.store import Dataset
from repro.table import save_npz
from repro.urbane import DataManager


class TestMmapSizing:
    def test_mmap_columns_cost_nothing(self, store):
        part = store.partition_table(0)
        assert estimate_nbytes(part.x) == 0
        # astype(copy=False) views keep the memmap base chain.
        values = part.column("fare").values.astype(np.float64, copy=False)
        assert estimate_nbytes(values) == 0

    def test_materialized_copies_still_charged(self, store):
        part = store.partition_table(0)
        copied = np.array(part.x)
        assert estimate_nbytes(copied) == copied.nbytes
        assert estimate_nbytes(np.zeros(100)) == 800


class TestLRUMounting:
    def test_unbudgeted_keeps_everything(self, store):
        ds = Dataset.open(store.path)
        for i in range(ds.num_partitions):
            ds.partition_table(i)
        stats = ds.mount_stats()
        assert stats["partitions_mapped"] == ds.num_partitions
        assert stats["evictions"] == 0

    def test_budget_caps_mapped_bytes(self, store):
        budget = max(p.nbytes for p in store.partitions) * 3
        ds = Dataset.open(store.path, memory_budget_bytes=budget)
        for i in range(ds.num_partitions):
            ds.partition_table(i)
        stats = ds.mount_stats()
        assert stats["mapped_bytes"] <= budget
        assert stats["evictions"] > 0

    def test_remount_after_eviction(self, store):
        budget = max(p.nbytes for p in store.partitions)
        ds = Dataset.open(store.path, memory_budget_bytes=budget)
        first = ds.partition_table(0)
        ds.partition_table(1)  # evicts 0 (budget fits ~one partition)
        again = ds.partition_table(0)
        assert np.array_equal(np.asarray(first.x), np.asarray(again.x))

    def test_touch_refreshes_lru(self, store):
        ds = Dataset.open(store.path)
        ds.partition_table(0)
        ds.partition_table(1)
        ds.partition_table(0)  # hit, moves to MRU
        assert ds.mount_stats()["hits"] == 1

    def test_drop_mounts(self, store):
        ds = Dataset.open(store.path)
        ds.partition_table(0)
        ds.drop_mounts()
        assert ds.mount_stats()["partitions_mapped"] == 0


class TestMountThreadSafety:
    def test_concurrent_mounts_keep_lru_consistent(self, store):
        """Hammer the mount LRU from many threads under a tight budget.

        Without the mount lock this corrupts the OrderedDict / byte
        counter (or double-evicts); with it, the accounting identities
        hold exactly and every read returns the right rows.
        """
        from concurrent.futures import ThreadPoolExecutor

        budget = max(p.nbytes for p in store.partitions) * 2
        ds = Dataset.open(store.path, memory_budget_bytes=budget)
        n = ds.num_partitions

        def hammer(seed: int) -> int:
            rng = np.random.default_rng(seed)
            rows = 0
            for index in rng.integers(0, n, 200):
                table = ds.partition_table(int(index))
                rows += len(table)
                ds.prefetch_partition(int(index))
                ds.mount_stats()
            return rows

        with ThreadPoolExecutor(max_workers=8) as pool:
            totals = list(pool.map(hammer, range(8)))
        assert all(t > 0 for t in totals)
        stats = ds.mount_stats()
        # mounts - evictions == currently mapped: no entry lost or
        # double-counted across racing mount/evict pairs.
        assert stats["mounts"] - stats["evictions"] == \
            stats["partitions_mapped"]
        assert stats["mapped_bytes"] <= budget
        assert stats["mapped_bytes"] == sum(
            nbytes for _, nbytes in ds._mounted.values())

    def test_concurrent_drop_and_mount(self, store):
        from concurrent.futures import ThreadPoolExecutor

        ds = Dataset.open(store.path)

        def churn(worker: int):
            for step in range(100):
                if worker == 0 and step % 10 == 0:
                    ds.drop_mounts()
                else:
                    ds.partition_table(step % ds.num_partitions)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(churn, range(4)))
        stats = ds.mount_stats()
        assert stats["partitions_mapped"] <= ds.num_partitions

    def test_after_fork_replaces_the_lock(self, store):
        ds = Dataset.open(store.path)
        before = ds._mount_lock
        ds._after_fork()
        assert ds._mount_lock is not before
        # Still functional after the swap.
        assert len(ds.partition_table(0)) > 0


class TestDataManagerLazy:
    def test_store_opened_on_first_query(self, store, simple_regions):
        manager = DataManager()
        manager.add_store(store.path, name="pts")
        manager.add_region_set(simple_regions, "simple")
        status = manager.store_status()
        assert status == [{"name": "pts", "path": str(store.path),
                           "opened": False, "memory_budget_bytes": None}]
        result = manager.aggregate("pts", "simple",
                                   SpatialAggregation("count", None),
                                   resolution=256)
        assert result.stats["store"]["partitions"]["total"] == \
            store.num_partitions
        status = manager.store_status()
        assert status[0]["opened"] is True
        assert status[0]["mounts"] > 0

    def test_name_collisions_rejected_across_kinds(self, store,
                                                   store_table):
        manager = DataManager()
        manager.add_store(store.path, name="pts")
        with pytest.raises(QueryError, match="already registered"):
            manager.add_dataset(store_table, "pts")
        with pytest.raises(QueryError, match="already registered"):
            manager.add_store(store.path, name="pts")
        assert manager.dataset_names == ["pts"]

    def test_budget_threads_through(self, store, simple_regions):
        manager = DataManager()
        budget = max(p.nbytes for p in store.partitions) * 2
        manager.add_store(store.path, name="pts",
                          memory_budget_bytes=budget)
        manager.add_region_set(simple_regions, "simple")
        manager.aggregate("pts", "simple",
                          SpatialAggregation("sum", "fare"),
                          resolution=256)
        opened = manager.dataset("pts")
        assert opened.memory_budget_bytes == budget
        assert opened.mount_stats()["mapped_bytes"] <= budget


class TestServeManifest:
    def test_mount_datasets(self, store, store_table, tmp_path):
        save_npz(store_table, tmp_path / "mem.npz")
        manifest = {
            "stores": [{"name": "big", "path": str(store.path),
                        "memory_budget_mb": 1}],
            "tables": [{"name": "mem", "path": "mem.npz"}],
        }
        (tmp_path / "datasets.json").write_text(json.dumps(manifest))
        manager = DataManager()
        lines = mount_datasets(manager, tmp_path / "datasets.json")
        assert len(lines) == 2
        assert manager.dataset_names == ["big", "mem"]
        # The store is named but not opened.
        assert manager.store_status()[0]["opened"] is False
        opened = manager.dataset("big")
        assert isinstance(opened, Dataset)
        assert opened.memory_budget_bytes == 1024 * 1024

    def test_relative_paths_resolve_against_manifest(self, store_table,
                                                     tmp_path):
        (tmp_path / "sub").mkdir()
        save_npz(store_table, tmp_path / "sub" / "mem.npz")
        (tmp_path / "sub" / "datasets.json").write_text(json.dumps(
            {"tables": [{"name": "mem", "path": "mem.npz"}]}))
        manager = DataManager()
        mount_datasets(manager, tmp_path / "sub" / "datasets.json")
        assert len(manager.dataset("mem")) == len(store_table)

    def test_bad_manifest_rejected(self, tmp_path):
        (tmp_path / "datasets.json").write_text("[1, 2]")
        with pytest.raises(SchemaError, match="JSON object"):
            mount_datasets(DataManager(), tmp_path / "datasets.json")
        with pytest.raises(SchemaError, match="cannot read"):
            mount_datasets(DataManager(), tmp_path / "missing.json")
