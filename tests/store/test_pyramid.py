"""Store-backed pyramid assembly: bitwise parity with the direct scan.

The contract mirrors the in-memory one: a query against an opened
store with a :class:`GridViewport` assembles its canvases from cached
per-block partials — paging only the partitions each uncovered block's
padded bbox can touch — and the answer is *bitwise identical* to the
direct out-of-core scan, which in turn matches the in-memory backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SpatialAggregation, SpatialAggregationEngine
from repro.core.pyramid import Viewport
from repro.table import Comparison

AGGS = [("count", None), ("sum", "fare"), ("min", "fare"), ("max", "fare")]


def _plain(gv) -> Viewport:
    """The same window as a plain Viewport — routes to the direct scan."""
    return Viewport(gv.bbox, gv.width, gv.height)


def _ladder(gv):
    """A pan/zoom gesture ladder: revisit-heavy, like a real session."""
    steps = [gv]
    steps.append(steps[-1].pan(48, 0))
    steps.append(steps[-1].pan(0, -32))
    steps.append(steps[-1].zoom(2.0))
    steps.append(steps[-1].zoom(0.5))
    steps.append(steps[-1].pan(-48, 32))
    return steps


def _assert_bitwise(got, want):
    for name in ("values", "lower", "upper"):
        a, b = getattr(got, name), getattr(want, name)
        if a is None or b is None:
            assert a is None and b is None, name
            continue
        assert np.array_equal(np.asarray(a), np.asarray(b),
                              equal_nan=True), name


@pytest.fixture()
def fresh_engine():
    """A private engine per test: block-tier counters start at zero."""
    return SpatialAggregationEngine(default_resolution=256)


class TestStoreAssembledParity:
    @pytest.mark.parametrize("agg,column", AGGS)
    def test_ladder_matches_direct_scan(self, fresh_engine, store,
                                        simple_regions, agg, column):
        engine = fresh_engine
        query = SpatialAggregation(agg, column)
        gv = engine.plan_grid_viewport(simple_regions, 256)
        for step in _ladder(gv):
            got = engine.execute(store, simple_regions, query,
                                 viewport=step)
            want = engine.execute(store, simple_regions, query,
                                  viewport=_plain(step))
            assert got.method == "store-pyramid-raster-join"
            assert want.method == "store-bounded-raster-join"
            _assert_bitwise(got, want)

    def test_avg_ladder_close(self, fresh_engine, store, simple_regions):
        engine = fresh_engine
        query = SpatialAggregation("avg", "fare")
        gv = engine.plan_grid_viewport(simple_regions, 256)
        for step in _ladder(gv):
            got = engine.execute(store, simple_regions, query,
                                 viewport=step)
            want = engine.execute(store, simple_regions, query,
                                  viewport=_plain(step))
            np.testing.assert_allclose(got.values, want.values,
                                       rtol=0, atol=1e-12)

    def test_filtered_matches_in_memory_direct(self, fresh_engine, store,
                                               simple_regions):
        """Assembled store answers match the *in-memory* backend too —
        the store path introduces no scan-order or pruning drift."""
        engine = fresh_engine
        reference = store.to_table()
        filters = (Comparison("fare", ">", 10.0),
                   Comparison("kind", "==", "a"))
        query = SpatialAggregation("sum", "fare", filters)
        gv = engine.plan_grid_viewport(simple_regions, 256)
        for step in _ladder(gv):
            got = engine.execute(store, simple_regions, query,
                                 viewport=step)
            want = engine.execute(reference, simple_regions, query,
                                  method="bounded", viewport=_plain(step))
            _assert_bitwise(got, want)

    def test_warm_gestures_reuse_blocks(self, fresh_engine, store,
                                        simple_regions):
        engine = fresh_engine
        query = SpatialAggregation.count()
        gv = engine.plan_grid_viewport(simple_regions, 256)
        cold = engine.execute(store, simple_regions, query, viewport=gv)
        blocks = cold.stats["cache"]["blocks"]
        assert blocks["misses"] > 0
        assert blocks["hits"] == 0
        # Pan back and forth: the revisited window is fully resident.
        back = engine.execute(store, simple_regions, query,
                              viewport=gv.pan(48, 0).pan(-48, 0))
        blocks = back.stats["cache"]["blocks"]
        assert blocks["hits"] > 0
        assert blocks["reuse_fraction"] == 1.0
        # A fully-assembled gesture pages nothing and scans no rows.
        assert back.stats["store"]["partitions_paged"] == 0
        assert back.stats["points_after_filter"] == 0

    def test_zoom_out_never_rescans_covered_blocks(self, fresh_engine,
                                                   store, simple_regions):
        """COUNT zoom-out derives coarse blocks from resident children
        instead of re-paging partitions."""
        engine = fresh_engine
        query = SpatialAggregation.count()
        gv = engine.plan_grid_viewport(simple_regions, 256)
        engine.execute(store, simple_regions, query, viewport=gv)
        out = engine.execute(store, simple_regions, query,
                             viewport=gv.zoom(2.0))
        blocks = out.stats["cache"]["blocks"]
        assert blocks["derived"] > 0
        want = engine.execute(store, simple_regions, query,
                              viewport=_plain(gv.zoom(2.0)))
        _assert_bitwise(out, want)

    def test_store_sums_never_derive(self, fresh_engine, store,
                                     simple_regions):
        """Out-of-core SUM blocks are scattered, not derived: without a
        full scan there is no proof the column is integral, so derived
        sums could reassociate floats.  Parity must still hold."""
        engine = fresh_engine
        query = SpatialAggregation("sum", "fare")
        gv = engine.plan_grid_viewport(simple_regions, 256)
        engine.execute(store, simple_regions, query, viewport=gv)
        out = engine.execute(store, simple_regions, query,
                             viewport=gv.zoom(2.0))
        assert out.stats["cache"]["blocks"]["derived"] == 0
        want = engine.execute(store, simple_regions, query,
                              viewport=_plain(gv.zoom(2.0)))
        _assert_bitwise(out, want)
