"""Out-of-core execution acceptance: bitwise parity with in-memory.

The engine promise under test: running a query against an opened store
returns *the same answer* as materializing the store and running the
in-memory backend — bitwise for COUNT and SUM, within 1e-12 for AVG —
while scanning only the partitions the zone maps cannot rule out.
"""

import numpy as np
import pytest

from repro.core import (
    ParallelConfig,
    SpatialAggregation,
    SpatialAggregationEngine,
)
from repro.errors import QueryError
from repro.store import Dataset
from repro.table import Comparison, TimeRange

AGGS = [("count", None), ("sum", "fare"), ("avg", "fare"),
        ("min", "fare"), ("max", "fare")]


def assert_results_match(got, want, agg):
    exact = agg in ("count", "sum", "min", "max")
    for name in ("values", "lower", "upper"):
        a, b = getattr(got, name), getattr(want, name)
        if a is None or b is None:
            assert a is None and b is None
            continue
        a, b = np.asarray(a), np.asarray(b)
        if exact:
            assert np.array_equal(a, b, equal_nan=True), name
        else:
            np.testing.assert_allclose(a, b, rtol=0, atol=1e-12)


@pytest.fixture(scope="module")
def reference(store):
    """The store materialized in memory — the parity baseline."""
    return store.to_table()


class TestBitwiseParity:
    @pytest.mark.parametrize("agg,column", AGGS)
    def test_bounded_matches_in_memory(self, engine, store, reference,
                                       simple_regions, agg, column):
        query = SpatialAggregation(agg, column)
        got = engine.execute(store, simple_regions, query, resolution=256)
        want = engine.execute(reference, simple_regions, query,
                              method="bounded", resolution=256)
        assert got.method == "store-bounded-raster-join"
        assert_results_match(got, want, agg)

    def test_filters_match(self, engine, store, reference, simple_regions):
        filters = (Comparison("fare", ">", 10.0),
                   Comparison("kind", "==", "a"))
        query = SpatialAggregation("sum", "fare", filters)
        got = engine.execute(store, simple_regions, query, resolution=256)
        want = engine.execute(reference, simple_regions, query,
                              method="bounded", resolution=256)
        assert_results_match(got, want, "sum")

    def test_time_brush_matches_and_prunes(self, engine, store, reference,
                                           simple_regions):
        query = SpatialAggregation(
            "count", None, (TimeRange("t", 0, 7_200),))
        got = engine.execute(store, simple_regions, query, resolution=256)
        want = engine.execute(reference, simple_regions, query,
                              method="bounded", resolution=256)
        assert_results_match(got, want, "count")
        parts = got.stats["store"]["partitions"]
        # The store is bucketed at 2h over an 8h span: a 2h brush must
        # prune most of it.
        assert parts["pruned"] > 0
        assert parts["scanned"] < parts["total"]

    def test_signed_values_use_abs_mass(self, engine, tmp_path,
                                        simple_regions):
        from repro.store import build_store
        from repro.table import PointTable, timestamp_column

        gen = np.random.default_rng(78)
        n = 5_000
        signed = PointTable.from_arrays(
            gen.uniform(0, 100, n), gen.uniform(0, 100, n), name="signed",
            delta=np.floor(gen.normal(0, 8, n)),
            t=timestamp_column("t", gen.integers(0, 3_600, n)))
        ds = build_store(signed, tmp_path / "signed", partition_rows=512,
                         grid=4)
        query = SpatialAggregation("sum", "delta")
        got = engine.execute(ds, simple_regions, query, resolution=256)
        want = engine.execute(ds.to_table(), simple_regions, query,
                              method="bounded", resolution=256)
        assert_results_match(got, want, "sum")


class TestViewportPruning:
    def test_viewport_restricted_query_prunes(self, engine, store,
                                              reference, simple_regions):
        """The acceptance scenario: a zoomed viewport skips partitions
        outside the window, answer unchanged."""
        from repro.raster import Viewport

        viewport = Viewport.fit(simple_regions.geometries[0].bbox, 128)
        query = SpatialAggregation("count", None)
        got = engine.execute(store, simple_regions, query,
                             viewport=viewport)
        want = engine.execute(reference, simple_regions, query,
                              method="bounded", viewport=viewport)
        assert_results_match(got, want, "count")
        assert got.stats["store"]["partitions"]["pruned"] > 0


class TestTiled:
    def test_tiled_matches_in_memory_tiled(self, engine, store, reference,
                                           simple_regions):
        query = SpatialAggregation("sum", "fare")
        got = engine.execute(store, simple_regions, query, method="tiled",
                             resolution=1_500)
        want = engine.execute(reference, simple_regions, query,
                              method="tiled", resolution=1_500)
        assert got.method == "store-tiled-bounded-raster-join"
        assert_results_match(got, want, "sum")
        assert got.stats["store"]["partitions"]["scanned"] > 0

    def test_auto_goes_tiled_over_canvas_cap(self, store, simple_regions):
        engine = SpatialAggregationEngine(max_canvas_resolution=512)
        query = SpatialAggregation("count", None)
        got = engine.execute(store, simple_regions, query,
                             resolution=2_000)
        assert got.method == "store-tiled-bounded-raster-join"

    def test_tiled_rejects_explicit_viewport(self, engine, store,
                                             simple_regions):
        from repro.raster import Viewport

        viewport = Viewport.fit(simple_regions.bbox, 128)
        with pytest.raises(QueryError):
            engine.execute(store, simple_regions,
                           SpatialAggregation("count", None),
                           method="tiled", viewport=viewport)


class TestParallel:
    def test_parallel_scan_matches(self, store, reference, simple_regions):
        parallel = ParallelConfig(workers=3, chunk_size=400,
                                  serial_threshold=100)
        engine = SpatialAggregationEngine(default_resolution=256,
                                          parallel=parallel)
        for agg, column in [("count", None), ("sum", "fare"),
                            ("min", "fare"), ("max", "fare")]:
            query = SpatialAggregation(agg, column)
            got = engine.execute(store, simple_regions, query,
                                 resolution=256)
            want = engine.execute(reference, simple_regions, query,
                                  method="bounded", resolution=256)
            assert_results_match(got, want, agg)


class TestBudgetedScan:
    def test_out_of_core_scan_under_budget(self, store, simple_regions,
                                           engine):
        """A store far larger than the mount budget still answers
        bitwise-identically, holding only O(partition) bytes mapped."""
        budget = max(info.nbytes for info in store.partitions) * 2
        assert budget < store.total_nbytes / 4
        budgeted = Dataset.open(store.path, memory_budget_bytes=budget)
        query = SpatialAggregation("sum", "fare")
        got = engine.execute(budgeted, simple_regions, query,
                             resolution=256)
        want = engine.execute(store.to_table(), simple_regions, query,
                              method="bounded", resolution=256)
        assert_results_match(got, want, "sum")
        mounts = budgeted.mount_stats()
        assert mounts["evictions"] > 0
        assert mounts["mapped_bytes"] <= budget


class TestPlanAndErrors:
    def test_stats_payload(self, engine, store, simple_regions):
        result = engine.execute(store, simple_regions,
                                SpatialAggregation("count", None),
                                resolution=256)
        sstats = result.stats["store"]
        assert sstats["dataset"] == store.name
        parts = sstats["partitions"]
        assert parts["total"] == store.num_partitions
        assert parts["scanned"] + parts["pruned"] == parts["total"]
        assert result.stats["plan"]["decision"]["chosen"].startswith("store-")
        assert "cache" in result.stats

    def test_exact_rejected(self, engine, store, simple_regions):
        with pytest.raises(QueryError, match="exact"):
            engine.execute(store, simple_regions,
                           SpatialAggregation("count", None), exact=True)

    def test_unknown_method_rejected(self, engine, store, simple_regions):
        with pytest.raises(QueryError):
            engine.execute(store, simple_regions,
                           SpatialAggregation("count", None),
                           method="naive")

    def test_unknown_column_raises_at_scan(self, engine, store,
                                           simple_regions):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError, match="no column"):
            engine.execute(store, simple_regions,
                           SpatialAggregation("sum", "nope"),
                           resolution=256)
