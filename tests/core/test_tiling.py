"""Tests for tiled execution: tiling must be invisible in the results."""

import numpy as np
import pytest

from repro.baselines import naive_join
from repro.core import (
    SpatialAggregation,
    bounded_raster_join,
    make_tiles,
    tiled_bounded_raster_join,
)
from repro.errors import QueryError
from repro.geometry import BBox
from repro.raster import Viewport
from repro.table import F, PointTable


def _table(n=20_000, seed=0):
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(5, n))


class TestMakeTiles:
    def test_partition_exact(self):
        vp = Viewport(BBox(0, 0, 100, 100), 100, 100)
        tiles = make_tiles(vp, 32)
        assert len(tiles) == 16  # ceil(100/32)^2
        total_pixels = sum(t.num_pixels for t, _, _ in tiles)
        assert total_pixels == vp.num_pixels

    def test_tile_world_windows_align(self):
        vp = Viewport(BBox(0, 0, 100, 50), 200, 100)
        tiles = make_tiles(vp, 64)
        for tile_vp, col0, row0 in tiles:
            assert tile_vp.pixel_width == pytest.approx(vp.pixel_width)
            assert tile_vp.pixel_height == pytest.approx(vp.pixel_height)
            assert tile_vp.bbox.xmin == pytest.approx(
                vp.bbox.xmin + col0 * vp.pixel_width)

    def test_single_tile_when_large(self):
        vp = Viewport(BBox(0, 0, 10, 10), 64, 64)
        assert len(make_tiles(vp, 1024)) == 1

    def test_invalid_tile_size(self):
        vp = Viewport(BBox(0, 0, 10, 10), 8, 8)
        with pytest.raises(QueryError):
            make_tiles(vp, 0)


class TestTiledJoin:
    @pytest.mark.parametrize("query", [
        SpatialAggregation.count(),
        SpatialAggregation.sum_of("fare"),
        SpatialAggregation.avg_of("fare"),
        SpatialAggregation.min_of("fare"),
        SpatialAggregation.max_of("fare"),
    ], ids=["count", "sum", "avg", "min", "max"])
    def test_tiled_equals_untiled(self, simple_regions, query):
        table = _table()
        resolution = 256
        tiled = tiled_bounded_raster_join(table, simple_regions, query,
                                          resolution, tile_pixels=64)
        vp = Viewport.fit(simple_regions.bbox, resolution)
        whole = bounded_raster_join(table, simple_regions, query, vp)
        both_nan = np.isnan(tiled.values) & np.isnan(whole.values)
        close = np.isclose(tiled.values, whole.values, rtol=1e-9, atol=1e-6)
        assert (both_nan | close).all()

    def test_tiled_bounds_contain_truth(self, simple_regions):
        table = _table(seed=1)
        query = SpatialAggregation.count()
        tiled = tiled_bounded_raster_join(table, simple_regions, query,
                                          200, tile_pixels=50)
        want = naive_join(table, simple_regions, query)
        assert tiled.bounds_contain(want)

    def test_tiled_with_filters(self, simple_regions):
        table = _table(seed=2)
        query = SpatialAggregation.count(F("fare") > 3.0)
        tiled = tiled_bounded_raster_join(table, simple_regions, query,
                                          128, tile_pixels=33)
        vp = Viewport.fit(simple_regions.bbox, 128)
        whole = bounded_raster_join(table, simple_regions, query, vp)
        assert tiled.values == pytest.approx(whole.values)

    def test_tile_count_in_stats(self, simple_regions):
        table = _table(1000, seed=3)
        tiled = tiled_bounded_raster_join(table, simple_regions,
                                          SpatialAggregation.count(),
                                          128, tile_pixels=32)
        assert tiled.stats["tiles"] == 16


class TestProgressivePartials:
    def test_final_partial_matches_one_shot_bitwise(self, simple_regions):
        from repro.core import iter_tiled_partials

        t = _table(30_000, seed=3)
        query = SpatialAggregation.sum_of("fare")
        full = tiled_bounded_raster_join(t, simple_regions,
                                         query, 512, tile_pixels=128)
        parts = list(iter_tiled_partials(t, simple_regions, query, 512,
                                         tile_pixels=128))
        assert parts[-1].final
        assert parts[-1].tile_index == parts[-1].tiles_total
        assert np.array_equal(parts[-1].values, full.values)
        assert np.array_equal(parts[-1].lower, full.lower)
        assert np.array_equal(parts[-1].upper, full.upper)

    def test_partials_are_monotone_for_count(self, simple_regions):
        from repro.core import iter_tiled_partials

        t = _table(20_000, seed=4)
        parts = list(iter_tiled_partials(t, simple_regions,
                                         SpatialAggregation.count(), 512,
                                         tile_pixels=128))
        assert len(parts) > 1
        prev = np.zeros(len(simple_regions))
        for p in parts:
            assert (p.values >= prev - 1e-9).all()
            assert (p.lower <= p.values + 1e-9).all()
            assert (p.upper >= p.values - 1e-9).all()
            prev = p.values

    def test_every_throttles_snapshots(self, simple_regions):
        from repro.core import iter_tiled_partials

        t = _table(5_000, seed=5)
        q = SpatialAggregation.count()
        all_parts = list(iter_tiled_partials(t, simple_regions, q, 512,
                                             tile_pixels=128, every=1))
        some = list(iter_tiled_partials(t, simple_regions, q, 512,
                                        tile_pixels=128, every=4))
        assert len(some) < len(all_parts)
        assert some[-1].final
        assert np.array_equal(some[-1].values, all_parts[-1].values)

    def test_snapshot_stats_carry_progress(self, simple_regions):
        from repro.core import iter_tiled_partials

        t = _table(2_000, seed=6)
        parts = list(iter_tiled_partials(t, simple_regions,
                                         SpatialAggregation.count(), 256,
                                         tile_pixels=64))
        progress = [p.stats["progress"] for p in parts]
        assert progress == sorted(progress)
        assert progress[-1] == 1.0

    def test_cancel_token_stops_iteration(self, simple_regions):
        import threading

        from repro.core import iter_tiled_partials
        from repro.errors import QueryCancelled

        t = _table(5_000, seed=7)
        ev = threading.Event()
        it = iter_tiled_partials(t, simple_regions,
                                 SpatialAggregation.count(), 512,
                                 tile_pixels=64)
        next(it)
        ev.set()
        it2 = iter_tiled_partials(t, simple_regions,
                                  SpatialAggregation.count(), 512,
                                  tile_pixels=64, cancel=ev)
        with pytest.raises(QueryCancelled):
            next(it2)

    def test_invalid_every_rejected(self, simple_regions):
        from repro.core import iter_tiled_partials

        with pytest.raises(QueryError):
            list(iter_tiled_partials(_table(100), simple_regions,
                                     SpatialAggregation.count(), 128,
                                     every=0))
