"""Tests for tiled execution: tiling must be invisible in the results."""

import numpy as np
import pytest

from repro.baselines import naive_join
from repro.core import (
    SpatialAggregation,
    bounded_raster_join,
    make_tiles,
    tiled_bounded_raster_join,
)
from repro.errors import QueryError
from repro.geometry import BBox
from repro.raster import Viewport
from repro.table import F, PointTable


def _table(n=20_000, seed=0):
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(5, n))


class TestMakeTiles:
    def test_partition_exact(self):
        vp = Viewport(BBox(0, 0, 100, 100), 100, 100)
        tiles = make_tiles(vp, 32)
        assert len(tiles) == 16  # ceil(100/32)^2
        total_pixels = sum(t.num_pixels for t, _, _ in tiles)
        assert total_pixels == vp.num_pixels

    def test_tile_world_windows_align(self):
        vp = Viewport(BBox(0, 0, 100, 50), 200, 100)
        tiles = make_tiles(vp, 64)
        for tile_vp, col0, row0 in tiles:
            assert tile_vp.pixel_width == pytest.approx(vp.pixel_width)
            assert tile_vp.pixel_height == pytest.approx(vp.pixel_height)
            assert tile_vp.bbox.xmin == pytest.approx(
                vp.bbox.xmin + col0 * vp.pixel_width)

    def test_single_tile_when_large(self):
        vp = Viewport(BBox(0, 0, 10, 10), 64, 64)
        assert len(make_tiles(vp, 1024)) == 1

    def test_invalid_tile_size(self):
        vp = Viewport(BBox(0, 0, 10, 10), 8, 8)
        with pytest.raises(QueryError):
            make_tiles(vp, 0)


class TestTiledJoin:
    @pytest.mark.parametrize("query", [
        SpatialAggregation.count(),
        SpatialAggregation.sum_of("fare"),
        SpatialAggregation.avg_of("fare"),
        SpatialAggregation.min_of("fare"),
        SpatialAggregation.max_of("fare"),
    ], ids=["count", "sum", "avg", "min", "max"])
    def test_tiled_equals_untiled(self, simple_regions, query):
        table = _table()
        resolution = 256
        tiled = tiled_bounded_raster_join(table, simple_regions, query,
                                          resolution, tile_pixels=64)
        vp = Viewport.fit(simple_regions.bbox, resolution)
        whole = bounded_raster_join(table, simple_regions, query, vp)
        both_nan = np.isnan(tiled.values) & np.isnan(whole.values)
        close = np.isclose(tiled.values, whole.values, rtol=1e-9, atol=1e-6)
        assert (both_nan | close).all()

    def test_tiled_bounds_contain_truth(self, simple_regions):
        table = _table(seed=1)
        query = SpatialAggregation.count()
        tiled = tiled_bounded_raster_join(table, simple_regions, query,
                                          200, tile_pixels=50)
        want = naive_join(table, simple_regions, query)
        assert tiled.bounds_contain(want)

    def test_tiled_with_filters(self, simple_regions):
        table = _table(seed=2)
        query = SpatialAggregation.count(F("fare") > 3.0)
        tiled = tiled_bounded_raster_join(table, simple_regions, query,
                                          128, tile_pixels=33)
        vp = Viewport.fit(simple_regions.bbox, 128)
        whole = bounded_raster_join(table, simple_regions, query, vp)
        assert tiled.values == pytest.approx(whole.values)

    def test_tile_count_in_stats(self, simple_regions):
        table = _table(1000, seed=3)
        tiled = tiled_bounded_raster_join(table, simple_regions,
                                          SpatialAggregation.count(),
                                          128, tile_pixels=32)
        assert tiled.stats["tiles"] == 16
