"""Tests for aggregate partials and merge semantics."""

import numpy as np
import pytest

from repro.core import PartialAggregate
from repro.core.aggregates import accumulate_exact, validate_aggregate
from repro.errors import QueryError


class TestValidate:
    def test_count_no_column(self):
        validate_aggregate("count", None)
        with pytest.raises(QueryError):
            validate_aggregate("count", "fare")

    def test_sum_needs_column(self):
        validate_aggregate("sum", "fare")
        with pytest.raises(QueryError):
            validate_aggregate("sum", None)

    def test_unknown_rejected(self):
        with pytest.raises(QueryError):
            validate_aggregate("median", "fare")


class TestPartials:
    def test_empty_finalize_count(self):
        part = PartialAggregate.empty("count", 3)
        assert part.finalize().tolist() == [0, 0, 0]

    def test_empty_finalize_avg_nan(self):
        part = PartialAggregate.empty("avg", 2)
        assert np.isnan(part.finalize()).all()

    def test_empty_finalize_minmax_nan(self):
        assert np.isnan(PartialAggregate.empty("min", 2).finalize()).all()
        assert np.isnan(PartialAggregate.empty("max", 2).finalize()).all()

    def test_accumulate_count(self):
        part = PartialAggregate.empty("count", 2)
        accumulate_exact(part, 0, None, 5)
        accumulate_exact(part, 0, None, 2)
        assert part.finalize().tolist() == [7, 0]

    def test_accumulate_avg(self):
        part = PartialAggregate.empty("avg", 1)
        accumulate_exact(part, 0, np.array([2.0, 4.0]), 2)
        accumulate_exact(part, 0, np.array([6.0]), 1)
        assert part.finalize()[0] == pytest.approx(4.0)

    def test_accumulate_minmax(self):
        mn = PartialAggregate.empty("min", 1)
        mx = PartialAggregate.empty("max", 1)
        accumulate_exact(mn, 0, np.array([3.0, 1.0]), 2)
        accumulate_exact(mn, 0, np.array([2.0]), 1)
        accumulate_exact(mx, 0, np.array([3.0, 1.0]), 2)
        accumulate_exact(mx, 0, np.array([5.0]), 1)
        assert mn.finalize()[0] == 1.0
        assert mx.finalize()[0] == 5.0

    def test_merge_additive(self):
        a = PartialAggregate.empty("sum", 2)
        b = PartialAggregate.empty("sum", 2)
        accumulate_exact(a, 0, np.array([1.0]), 1)
        accumulate_exact(b, 0, np.array([2.0]), 1)
        accumulate_exact(b, 1, np.array([5.0]), 1)
        a.merge(b)
        assert a.finalize().tolist() == [3.0, 5.0]

    def test_merge_min(self):
        a = PartialAggregate.empty("min", 1)
        b = PartialAggregate.empty("min", 1)
        accumulate_exact(a, 0, np.array([4.0]), 1)
        accumulate_exact(b, 0, np.array([2.0]), 1)
        a.merge(b)
        assert a.finalize()[0] == 2.0

    def test_merge_kind_mismatch(self):
        a = PartialAggregate.empty("min", 1)
        b = PartialAggregate.empty("max", 1)
        with pytest.raises(QueryError):
            a.merge(b)

    def test_merge_equals_single_pass(self):
        """Splitting data across partials and merging equals one pass."""
        gen = np.random.default_rng(0)
        vals = gen.normal(size=100)
        for agg in ("count", "sum", "avg", "min", "max"):
            whole = PartialAggregate.empty(agg, 1)
            accumulate_exact(whole, 0, vals, len(vals))
            merged = PartialAggregate.empty(agg, 1)
            for chunk in np.array_split(vals, 7):
                part = PartialAggregate.empty(agg, 1)
                accumulate_exact(part, 0, chunk, len(chunk))
                merged.merge(part)
            assert merged.finalize()[0] == pytest.approx(
                whole.finalize()[0])
