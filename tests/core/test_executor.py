"""Tests for the engine: planning, caching, method dispatch."""

import numpy as np
import pytest

from repro.core import (
    SpatialAggregation,
    SpatialAggregationEngine,
)
from repro.errors import QueryError
from repro.raster import Viewport
from repro.table import F, PointTable


def _table(n=10_000, seed=0):
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(5, n))


class TestDispatch:
    def test_all_methods_run(self, simple_regions, engine):
        table = _table()
        query = SpatialAggregation.count()
        results = {}
        for method in ("bounded", "accurate", "tiled", "grid", "rtree",
                       "quadtree", "naive", "cube"):
            results[method] = engine.execute(table, simple_regions, query,
                                             method=method)
        exact = results["naive"].values
        for method in ("accurate", "grid", "rtree", "quadtree", "cube"):
            assert results[method].values == pytest.approx(exact)
        for method in ("bounded", "tiled"):
            assert results[method].bounds_contain(results["naive"])

    def test_auto_routes_on_exactness(self, simple_regions, engine,
                                      small_table):
        # Large enough that the raster family beats the index joins.
        query = SpatialAggregation.count()
        approx = engine.execute(small_table, simple_regions, query)
        exact = engine.execute(small_table, simple_regions, query,
                               exact=True)
        assert approx.method == "bounded-raster-join"
        assert exact.method == "accurate-raster-join"
        assert approx.stats["plan"]["decision"]["chosen"] == "bounded"
        assert exact.stats["plan"]["decision"]["chosen"] == "accurate"

    def test_unknown_method_rejected(self, simple_regions, engine):
        with pytest.raises(QueryError):
            engine.execute(_table(100), simple_regions,
                           SpatialAggregation.count(), method="quantum")

    def test_execute_time_recorded(self, simple_regions, engine):
        r = engine.execute(_table(100, seed=2), simple_regions,
                           SpatialAggregation.count())
        assert r.stats["time_execute_s"] > 0

    def test_every_result_carries_plan_and_cache_stats(
            self, simple_regions, engine):
        table = _table(500, seed=7)
        for method in ("auto", "bounded", "naive"):
            r = engine.execute(table, simple_regions,
                               SpatialAggregation.count(), method=method)
            assert "chosen" in r.stats["plan"]["decision"]
            assert r.stats["plan"]["decision"]["planned"] == (method == "auto")
            assert {"hits", "misses", "evictions"} <= set(r.stats["cache"])

    def test_execute_multi_carries_stats(self, simple_regions, engine):
        table = _table(500, seed=8)
        queries = [SpatialAggregation.count(),
                   SpatialAggregation.sum_of("fare")]
        results = engine.execute_multi(table, simple_regions, queries)
        for r in results:
            assert r.stats["plan"]["decision"]["chosen"] == "bounded"
            assert "hits" in r.stats["cache"]


class TestPlanning:
    def test_epsilon_drives_resolution(self, simple_regions, engine):
        vp_loose = engine.plan_viewport(simple_regions, None, epsilon=10.0)
        vp_tight = engine.plan_viewport(simple_regions, None, epsilon=1.0)
        assert vp_tight.num_pixels > vp_loose.num_pixels
        assert vp_tight.pixel_diag <= 1.0

    def test_resolution_cap_enforced(self, simple_regions, engine):
        with pytest.raises(QueryError):
            engine.plan_viewport(simple_regions, 100_000, None)

    def test_default_resolution_used(self, simple_regions):
        engine = SpatialAggregationEngine(default_resolution=128)
        vp = engine.plan_viewport(simple_regions, None, None)
        assert max(vp.width, vp.height) == 128

    def test_explicit_viewport_respected(self, simple_regions, engine):
        vp = Viewport.fit(simple_regions.bbox, 77)
        r = engine.execute(_table(500, seed=3), simple_regions,
                           SpatialAggregation.count(), viewport=vp)
        assert r.stats["canvas_pixels"] == vp.num_pixels

    def test_invalid_default_resolution(self):
        with pytest.raises(QueryError):
            SpatialAggregationEngine(default_resolution=0)


class TestCaching:
    def test_fragment_cache_reused(self, simple_regions, engine):
        vp = Viewport.fit(simple_regions.bbox, 64)
        f1 = engine.fragments_for(simple_regions, vp)
        f2 = engine.fragments_for(simple_regions, vp)
        assert f1 is f2

    def test_fragment_cache_distinct_viewports(self, simple_regions, engine):
        f1 = engine.fragments_for(simple_regions,
                                  Viewport.fit(simple_regions.bbox, 64))
        f2 = engine.fragments_for(simple_regions,
                                  Viewport.fit(simple_regions.bbox, 128))
        assert f1 is not f2

    def test_clear_caches(self, simple_regions, engine):
        vp = Viewport.fit(simple_regions.bbox, 64)
        f1 = engine.fragments_for(simple_regions, vp)
        engine.clear_caches()
        assert engine.fragments_for(simple_regions, vp) is not f1

    def test_cached_run_matches_cold_run(self, simple_regions, engine):
        table = _table(2000, seed=4)
        query = SpatialAggregation.count(F("fare") > 2)
        cold = engine.execute(table, simple_regions, query,
                              method="bounded")
        warm = engine.execute(table, simple_regions, query,
                              method="bounded")
        assert (cold.values == warm.values).all()


class TestCompare:
    def test_compare_helper(self, simple_regions, engine):
        table = _table(2000, seed=5)
        out = engine.compare(table, simple_regions,
                             SpatialAggregation.count(),
                             methods=("bounded", "naive"))
        assert set(out) == {"bounded", "naive"}
        assert out["bounded"].bounds_contain(out["naive"])

    def test_compare_threads_epsilon(self, simple_regions, engine):
        # epsilon must reach each backend: the bounded run's canvas is
        # sized by it, exactly as engine.execute would size it.
        table = _table(2000, seed=6)
        out = engine.compare(table, simple_regions,
                             SpatialAggregation.count(),
                             methods=("bounded",), epsilon=5.0)
        direct = engine.execute(table, simple_regions,
                                SpatialAggregation.count(),
                                method="bounded", epsilon=5.0)
        assert (out["bounded"].stats["canvas_pixels"]
                == direct.stats["canvas_pixels"])
        assert out["bounded"].stats["epsilon_world_units"] <= 5.0

    def test_compare_threads_exact_and_viewport(self, simple_regions,
                                                engine):
        table = _table(2000, seed=7)
        vp = Viewport.fit(simple_regions.bbox, 96)
        out = engine.compare(table, simple_regions,
                             SpatialAggregation.count(),
                             methods=("auto", "bounded"), exact=True,
                             viewport=vp)
        assert out["auto"].exact
        assert out["bounded"].stats["canvas_pixels"] == vp.num_pixels
