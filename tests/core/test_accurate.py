"""Exactness tests for the accurate raster join.

The central claim: accurate raster join == naive brute force, for every
aggregate, every geometry shape (concave, holed, multi-part), every
filter, and adversarial point placements (points on edges, on pixel
grid lines, clustered at boundaries).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import naive_join
from repro.core import (
    RegionSet,
    SpatialAggregation,
    accurate_raster_join,
)
from repro.geometry import BBox, Polygon, regular_polygon
from repro.raster import Viewport
from repro.table import F, PointTable, timestamp_column


def _table(n=20_000, seed=0):
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(10, n),
        t=timestamp_column("t", gen.integers(0, 1000, n)),
        kind=gen.choice(["a", "b"], n))


def _assert_equal(a, b):
    both_nan = np.isnan(a.values) & np.isnan(b.values)
    close = np.isclose(a.values, b.values, rtol=1e-9, atol=1e-6)
    assert (both_nan | close).all(), f"{a.values} != {b.values}"


VIEWPORTS = [Viewport.fit(BBox(0, 0, 100, 100), r) for r in (32, 100, 257)]


class TestExactness:
    @pytest.mark.parametrize("resolution", [16, 64, 200])
    def test_count_matches_naive(self, simple_regions, resolution):
        table = _table()
        vp = Viewport.fit(simple_regions.bbox, resolution)
        got = accurate_raster_join(table, simple_regions,
                                   SpatialAggregation.count(), vp)
        want = naive_join(table, simple_regions, SpatialAggregation.count())
        _assert_equal(got, want)
        assert got.exact

    @pytest.mark.parametrize("query", [
        SpatialAggregation.count(),
        SpatialAggregation.sum_of("fare"),
        SpatialAggregation.avg_of("fare"),
        SpatialAggregation.min_of("fare"),
        SpatialAggregation.max_of("fare"),
    ], ids=["count", "sum", "avg", "min", "max"])
    def test_all_aggregates_match_naive(self, simple_regions, query):
        table = _table(seed=1)
        vp = Viewport.fit(simple_regions.bbox, 128)
        got = accurate_raster_join(table, simple_regions, query, vp)
        want = naive_join(table, simple_regions, query)
        _assert_equal(got, want)

    def test_with_filters(self, simple_regions):
        table = _table(seed=2)
        query = SpatialAggregation.avg_of(
            "fare", F("kind") == "a", F("t").time_range(100, 800))
        vp = Viewport.fit(simple_regions.bbox, 96)
        got = accurate_raster_join(table, simple_regions, query, vp)
        want = naive_join(table, simple_regions, query)
        _assert_equal(got, want)

    def test_points_on_polygon_edges(self):
        """Adversarial: many points exactly on region boundaries."""
        square = Polygon([[10, 10], [90, 10], [90, 90], [10, 90]])
        regions = RegionSet("edges", [square], ["sq"])
        t = np.linspace(0, 1, 500)
        # Points along each edge of the square.
        edges = []
        ring = np.vstack([square.exterior, square.exterior[:1]])
        for a, b in zip(ring[:-1], ring[1:]):
            edges.append(a[None, :] * (1 - t)[:, None]
                         + b[None, :] * t[:, None])
        pts = np.vstack(edges)
        table = PointTable.from_arrays(pts[:, 0], pts[:, 1])
        vp = Viewport.fit(BBox(0, 0, 100, 100), 64)
        got = accurate_raster_join(table, regions,
                                   SpatialAggregation.count(), vp)
        want = naive_join(table, regions, SpatialAggregation.count())
        _assert_equal(got, want)

    def test_points_on_pixel_grid(self):
        """Adversarial: points exactly at pixel corners/centers."""
        regions = RegionSet("one", [regular_polygon(50, 50, 33.3, 7)])
        vp = Viewport(BBox(0, 0, 100, 100), 50, 50)  # pixel = 2x2
        xs = np.arange(0, 100, 2.0)  # corners
        xx, yy = np.meshgrid(xs, xs)
        pts = np.column_stack([xx.ravel(), yy.ravel()])
        centers = pts + 1.0  # centers
        allpts = np.vstack([pts, centers])
        table = PointTable.from_arrays(allpts[:, 0], allpts[:, 1])
        got = accurate_raster_join(table, regions,
                                   SpatialAggregation.count(), vp)
        want = naive_join(table, regions, SpatialAggregation.count())
        _assert_equal(got, want)

    def test_boundary_clustered_points(self, simple_regions):
        """Adversarial: points sampled near region boundaries only."""
        gen = np.random.default_rng(3)
        pts = []
        for geom in simple_regions.geometries:
            for ring in geom.rings():
                closed = np.vstack([ring, ring[:1]])
                for a, b in zip(closed[:-1], closed[1:]):
                    t = gen.uniform(0, 1, 60)[:, None]
                    base = a[None, :] * (1 - t) + b[None, :] * t
                    jitter = gen.normal(0, 0.3, size=base.shape)
                    pts.append(base + jitter)
        pts = np.vstack(pts)
        table = PointTable.from_arrays(pts[:, 0], pts[:, 1])
        vp = Viewport.fit(BBox(-5, -5, 105, 105), 80)
        got = accurate_raster_join(table, simple_regions,
                                   SpatialAggregation.count(), vp)
        want = naive_join(table, simple_regions,
                          SpatialAggregation.count())
        _assert_equal(got, want)

    def test_empty_filter_result(self, simple_regions):
        table = _table(1000, seed=4)
        query = SpatialAggregation.count(F("fare") > 1e12)
        vp = Viewport.fit(simple_regions.bbox, 64)
        got = accurate_raster_join(table, simple_regions, query, vp)
        assert (got.values == 0).all()

    def test_stats_present(self, simple_regions):
        table = _table(1000, seed=5)
        vp = Viewport.fit(simple_regions.bbox, 64)
        got = accurate_raster_join(table, simple_regions,
                                   SpatialAggregation.count(), vp)
        assert got.stats["points_total"] == 1000
        assert "boundary_points_tested" in got.stats

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(10, 160))
    def test_exactness_property(self, seed, resolution):
        """Random shapes x random points x random canvas == naive."""
        gen = np.random.default_rng(seed)
        geoms = []
        for __ in range(gen.integers(1, 5)):
            cx, cy = gen.uniform(10, 90, 2)
            geoms.append(regular_polygon(
                cx, cy, gen.uniform(3, 35), int(gen.integers(3, 12))))
        regions = RegionSet(f"rand{seed}", geoms)
        n = int(gen.integers(10, 3000))
        table = PointTable.from_arrays(
            gen.uniform(0, 100, n), gen.uniform(0, 100, n))
        vp = Viewport.fit(BBox(0, 0, 100, 100), resolution)
        got = accurate_raster_join(table, regions,
                                   SpatialAggregation.count(), vp)
        want = naive_join(table, regions, SpatialAggregation.count())
        _assert_equal(got, want)
