"""Interval classification (FULL / PARTIAL / EMPTY) property tests and
bitwise parity of the interval-driven accurate join with the legacy
per-pixel implementation.

Two claims under test:

* **Classification is sound.**  Every point whose pixel a polygon
  classifies FULL is inside the polygon; every point in an EMPTY pixel
  is outside.  Points sampled exactly on polygon boundaries land only
  in PARTIAL pixels.  Checked on randomized star polygons.
* **The rewrite is invisible.**  ``accurate_raster_join`` (interval
  driven) and ``legacy_accurate_raster_join`` (per-pixel bitmap)
  produce bitwise-identical values for every aggregate, serially and
  in parallel, and the store-backed bounded path stays bitwise equal
  to the in-memory one under the kernel dispatch layer.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import naive_join
from repro.core import (
    RegionSet,
    SpatialAggregation,
    SpatialAggregationEngine,
    accurate_raster_join,
    legacy_accurate_raster_join,
)
from repro.core.accurate import CELL_EMPTY, CELL_FULL, CELL_PARTIAL, _cell_classes
from repro.core.parallel import ParallelConfig, parallel_accurate_raster_join
from repro.geometry import BBox, Polygon
from repro.kernels import numpy_impl
from repro.raster import Viewport, build_fragment_table
from repro.store import build_store
from repro.table import PointTable, timestamp_column

AGGREGATES = [
    SpatialAggregation.count(),
    SpatialAggregation.sum_of("fare"),
    SpatialAggregation.avg_of("fare"),
    SpatialAggregation.min_of("fare"),
    SpatialAggregation.max_of("fare"),
]
AGG_IDS = ["count", "sum", "avg", "min", "max"]


def _bits(a) -> bytes:
    return np.ascontiguousarray(np.asarray(a)).tobytes()


def _table(n=30_000, seed=0):
    """Float-valued fares on purpose: bitwise parity must hold even for
    folds that are order-sensitive in floating point."""
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(10, n),
        t=timestamp_column("t", gen.integers(0, 1000, n)))


def _star(gen) -> Polygon:
    """A random simple (star-shaped) polygon inside [0, 100]^2."""
    k = int(gen.integers(5, 13))
    angles = np.sort(gen.uniform(0, 2 * np.pi, k))
    radii = gen.uniform(5, 28, k)
    cx, cy = gen.uniform(30, 70, 2)
    xs = cx + radii * np.cos(angles)
    ys = cy + radii * np.sin(angles)
    return Polygon(np.column_stack([xs, ys]).tolist())


def _pixels_of_runs(starts, lengths) -> np.ndarray:
    return numpy_impl.expand_ranges(starts, lengths)


class TestIntervalProperties:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_full_cells_fully_covered_empty_cells_empty(self, seed):
        """The core soundness property, on randomized polygons: any
        point in a FULL pixel is inside; any point in an EMPTY pixel is
        outside.  (PARTIAL pixels promise nothing.)"""
        gen = np.random.default_rng(seed)
        geom = _star(gen)
        vp = Viewport.fit(BBox(0, 0, 100, 100), 64)
        iv = build_fragment_table([geom], vp).intervals
        full = np.zeros(vp.num_pixels, dtype=bool)
        full[_pixels_of_runs(iv.full_starts, iv.full_lengths)] = True
        part = np.zeros(vp.num_pixels, dtype=bool)
        part[_pixels_of_runs(iv.partial_starts, iv.partial_lengths)] = True
        assert not (full & part).any()

        px = gen.uniform(0, 100, 4_000)
        py = gen.uniform(0, 100, 4_000)
        ids, valid = vp.pixel_ids_of(px, py)
        assert valid.all()
        inside = geom.contains_points(np.column_stack([px, py]))
        in_full = full[ids]
        in_empty = ~full[ids] & ~part[ids]
        assert inside[in_full].all(), "FULL cell contained an outside point"
        assert not inside[in_empty].any(), "EMPTY cell contained an inside point"

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_boundary_samples_land_in_partial_cells(self, seed):
        """Points sampled exactly on polygon edges never fall in a FULL
        (or EMPTY) cell.  The ``a + t*(b-a)`` lerp keeps samples on
        axis-aligned edges exactly on the edge."""
        gen = np.random.default_rng(seed)
        geom = _star(gen)
        vp = Viewport.fit(BBox(0, 0, 100, 100), 64)
        iv = build_fragment_table([geom], vp).intervals
        full = np.zeros(vp.num_pixels, dtype=bool)
        full[_pixels_of_runs(iv.full_starts, iv.full_lengths)] = True
        part = np.zeros(vp.num_pixels, dtype=bool)
        part[_pixels_of_runs(iv.partial_starts, iv.partial_lengths)] = True

        ring = np.asarray(geom.exterior, dtype=np.float64)
        t = gen.uniform(0, 1, (40, 1))
        for a, b in zip(ring, np.roll(ring, -1, axis=0)):
            pts = a[None, :] + t * (b - a)[None, :]
            ids, valid = vp.pixel_ids_of(pts[:, 0], pts[:, 1])
            ids = ids[valid]
            assert not full[ids].any()
            assert part[ids].all()

    def test_intervals_reconstruct_fragment_pixels(self, simple_regions):
        """Runs are a lossless re-encoding of the fragment table:
        FULL == interior, PARTIAL == boundary, per polygon."""
        vp = Viewport.fit(simple_regions.bbox, 128)
        table = build_fragment_table(list(simple_regions), vp)
        iv = table.intervals
        assert iv.full_pixels == len(table.interior_pixels)
        assert iv.partial_pixels == len(table.boundary_pixels)
        fo, po = iv.full_offsets, iv.partial_offsets
        for gid in range(len(simple_regions)):
            got_full = _pixels_of_runs(
                iv.full_starts[fo[gid]:fo[gid + 1]],
                iv.full_lengths[fo[gid]:fo[gid + 1]])
            want_full = np.sort(
                table.interior_pixels[table.interior_polys == gid])
            assert np.array_equal(got_full, want_full)
            got_part = _pixels_of_runs(
                iv.partial_starts[po[gid]:po[gid + 1]],
                iv.partial_lengths[po[gid]:po[gid + 1]])
            want_part = np.sort(
                table.boundary_pixels[table.boundary_polys == gid])
            assert np.array_equal(got_part, want_part)

    def test_runs_never_cross_row_boundaries(self, simple_regions):
        """A run is a contiguous x-interval inside one scanline row."""
        vp = Viewport.fit(simple_regions.bbox, 96)
        iv = build_fragment_table(list(simple_regions), vp).intervals
        for starts, lengths in ((iv.full_starts, iv.full_lengths),
                                (iv.partial_starts, iv.partial_lengths)):
            assert (lengths > 0).all()
            assert np.array_equal(starts // vp.width,
                                  (starts + lengths - 1) // vp.width)

    def test_cell_classes_canvas(self, simple_regions):
        """The union canvas: PARTIAL wins over FULL where polygons
        overlap a pixel differently; everything else is EMPTY."""
        vp = Viewport.fit(simple_regions.bbox, 128)
        table = build_fragment_table(list(simple_regions), vp)
        classes = _cell_classes(table)
        assert classes.dtype == np.int8
        assert (classes[table.boundary_pixels] == CELL_PARTIAL).all()
        interior = np.setdiff1d(table.interior_pixels, table.boundary_pixels)
        assert (classes[interior] == CELL_FULL).all()
        touched = np.union1d(table.interior_pixels, table.boundary_pixels)
        untouched = np.setdiff1d(np.arange(vp.num_pixels), touched)
        assert (classes[untouched] == CELL_EMPTY).all()

    def test_gridline_aligned_square_is_exact(self):
        """On an integer-aligned grid a gridline-aligned square gets a
        one-pixel PARTIAL frame and a fully FULL interior — and the
        accurate join is still exact for points on the edges."""
        vp = Viewport(BBox(0, 0, 100, 100), 100, 100)
        square = Polygon([[20, 20], [40, 20], [40, 40], [20, 40]])
        iv = build_fragment_table([square], vp).intervals
        assert iv.full_pixels == 19 * 19
        assert iv.partial_pixels == 4 * 21 - 4
        edge = np.arange(20.0, 41.0)
        pts = np.concatenate([
            np.column_stack([edge, np.full_like(edge, 20.0)]),
            np.column_stack([edge, np.full_like(edge, 40.0)]),
            np.column_stack([np.full_like(edge, 20.0), edge]),
            np.column_stack([np.full_like(edge, 40.0), edge]),
        ])
        table = PointTable.from_arrays(pts[:, 0], pts[:, 1],
                                       fare=np.ones(len(pts)))
        regions = RegionSet("sq", [square])
        got = accurate_raster_join(table, regions,
                                   SpatialAggregation.count(), vp)
        want = naive_join(table, regions, SpatialAggregation.count())
        assert np.array_equal(got.values, want.values)


class TestBitwiseParity:
    @pytest.fixture(scope="class")
    def setup(self, simple_regions):
        table = _table()
        vp = Viewport.fit(simple_regions.bbox, 128)
        fragments = build_fragment_table(list(simple_regions), vp)
        return table, simple_regions, vp, fragments

    @pytest.mark.parametrize("query", AGGREGATES, ids=AGG_IDS)
    def test_accurate_matches_legacy_bitwise(self, setup, query):
        table, regions, vp, fragments = setup
        got = accurate_raster_join(table, regions, query, vp,
                                   fragments=fragments)
        ref = legacy_accurate_raster_join(table, regions, query, vp,
                                          fragments=fragments)
        assert _bits(got.values) == _bits(ref.values)
        assert got.exact and ref.exact

    @pytest.mark.parametrize("query", AGGREGATES, ids=AGG_IDS)
    def test_parallel_accurate_matches_legacy_bitwise(self, setup, query):
        table, regions, vp, fragments = setup
        config = ParallelConfig(workers=2, chunk_size=8_192,
                                serial_threshold=1)
        got = parallel_accurate_raster_join(table, regions, query, vp,
                                            fragments=fragments,
                                            config=config)
        ref = legacy_accurate_raster_join(table, regions, query, vp,
                                          fragments=fragments)
        assert _bits(got.values) == _bits(ref.values)
        assert got.stats["parallel"]["mode"] == "parallel"

    def test_store_backed_bounded_bitwise(self, simple_regions, tmp_path):
        """The kernel-dispatched store scatter keeps the out-of-core
        bounded path bitwise equal to in-memory (COUNT and an
        integer-valued SUM are order-insensitive)."""
        gen = np.random.default_rng(77)
        n = 20_000
        table = PointTable.from_arrays(
            gen.uniform(0, 100, n), gen.uniform(0, 100, n), name="st",
            fare=np.floor(gen.exponential(12.0, n)),
            t=timestamp_column("t", gen.integers(0, 7_200, n)))
        store = build_store(table, tmp_path / "pts", partition_rows=2_048,
                            grid=4, time_column="t")
        engine = SpatialAggregationEngine(default_resolution=128)
        for query in (SpatialAggregation.count(),
                      SpatialAggregation.sum_of("fare")):
            got = engine.execute(store, simple_regions, query,
                                 resolution=128)
            want = engine.execute(store.to_table(), simple_regions, query,
                                  method="bounded", resolution=128)
            assert _bits(got.values) == _bits(want.values)

    def test_engine_exact_matches_legacy_bitwise(self, simple_regions):
        table = _table(seed=5)
        engine = SpatialAggregationEngine(default_resolution=128)
        r = engine.execute(table, simple_regions,
                           SpatialAggregation.sum_of("fare"), exact=True,
                           resolution=128)
        vp = Viewport.fit(simple_regions.bbox, 128)
        ref = legacy_accurate_raster_join(table, simple_regions,
                                          SpatialAggregation.sum_of("fare"),
                                          vp)
        assert _bits(r.values) == _bits(ref.values)


class TestCounters:
    def test_accurate_stats_counters(self, simple_regions):
        table = _table(seed=9)
        vp = Viewport.fit(simple_regions.bbox, 128)
        fragments = build_fragment_table(list(simple_regions), vp)
        r = accurate_raster_join(table, simple_regions,
                                 SpatialAggregation.count(), vp,
                                 fragments=fragments)
        acc = r.stats["accurate"]
        iv = fragments.intervals
        assert acc["full_pixels"] == iv.full_pixels
        assert acc["partial_pixels"] == iv.partial_pixels
        assert acc["full_runs"] == iv.num_full_runs
        assert acc["partial_runs"] == iv.num_partial_runs
        # Interval credit: most in-viewport points never reach PIP.
        assert acc["pip_points_skipped"] > 0
        assert acc["pip_points_tested"] < len(table)
        assert (acc["pip_points_tested"] + acc["pip_points_skipped"]
                <= len(table))

    def test_parallel_stats_counters(self, simple_regions):
        table = _table(seed=11)
        vp = Viewport.fit(simple_regions.bbox, 128)
        serial = accurate_raster_join(table, simple_regions,
                                      SpatialAggregation.count(), vp)
        par = parallel_accurate_raster_join(
            table, simple_regions, SpatialAggregation.count(), vp,
            config=ParallelConfig(workers=2, chunk_size=8_192,
                                  serial_threshold=1))
        assert par.stats["accurate"] == serial.stats["accurate"]
