"""Pyramid-aware cube serving: coarse brushes from a finer cube.

A temporal canvas cube built at a base :class:`GridViewport` answers
COUNT brushes at coarser pyramid levels by 2x2-reducing its sliced
canvas — integer counts stay bitwise-exact under any summation order —
provided every coarse query pixel's base footprint lies fully inside
the cube's window.  SUM refuses the reduced path (float reassociation
would break the bitwise contract), and crops that poke past the cube's
coverage are rejected rather than mixing in world the cube never saw.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    SpatialAggregation,
    SpatialAggregationEngine,
    bounded_raster_join,
    build_temporal_canvas_cube,
)
from repro.core.pyramid import Viewport
from repro.core.tcube import find_answering_cube
from repro.raster import build_fragment_table
from repro.errors import CubeError
from repro.table import PointTable, TimeRange, timestamp_column

HOUR = 3_600


@pytest.fixture(scope="module")
def brush_table() -> PointTable:
    gen = np.random.default_rng(909)
    n = 25_000
    x = gen.uniform(0, 100, n)
    y = gen.uniform(0, 100, n)
    fare = np.round(gen.exponential(9.0, n))
    t = gen.integers(0, 12 * HOUR, n)
    return PointTable.from_arrays(x, y, name="brush-pts",
                                  fare=fare, t=timestamp_column("t", t))


@pytest.fixture(scope="module")
def grid(simple_regions):
    engine = SpatialAggregationEngine(default_resolution=256)
    return engine.plan_grid_viewport(simple_regions, 256).grid


@pytest.fixture(scope="module")
def base_viewport(grid):
    """The cube's window: 256x256 base pixels, origin on every coarse
    lattice up to scale 4."""
    return grid.viewport(0, 0, 0, 256, 256)


def _count_brush(t0: int = 2 * HOUR, t1: int = 7 * HOUR):
    return SpatialAggregation("count", None, (TimeRange("t", t0, t1),))


@pytest.fixture(scope="module")
def cube(brush_table, base_viewport):
    return build_temporal_canvas_cube(brush_table, base_viewport,
                                      "t", HOUR)


def _plain(gv) -> Viewport:
    return Viewport(gv.bbox, gv.width, gv.height)


def _frags(regions, viewport):
    return build_fragment_table(list(regions.geometries), viewport)


class TestReduceLevelsFor:
    def test_own_viewport_is_zero(self, cube, base_viewport):
        assert cube.reduce_levels_for(base_viewport) == 0

    @pytest.mark.parametrize("level,col0,row0,size",
                             [(1, 0, 0, 128), (1, 16, 8, 64),
                              (2, 0, 0, 64), (2, 10, 6, 48)])
    def test_accepts_inner_coarse_crops(self, cube, grid,
                                        level, col0, row0, size):
        qv = grid.viewport(level, col0, row0, size, size)
        assert cube.reduce_levels_for(qv) == level

    def test_rejects_crop_past_coverage(self, cube, grid):
        # (96 + 64) * 2 = 320 base pixels: 64 past the cube's 256.
        qv = grid.viewport(1, 96, 0, 64, 64)
        assert cube.reduce_levels_for(qv) is None

    def test_rejects_finer_than_cube(self, cube, grid):
        assert cube.reduce_levels_for(
            grid.viewport(0, 0, 0, 128, 128)) is None

    def test_rejects_plain_viewport(self, cube, base_viewport):
        shifted = Viewport(base_viewport.bbox, 128, 128)
        assert cube.reduce_levels_for(shifted) is None

    def test_rejects_misaligned_cube_origin(self, brush_table, grid):
        # A cube whose origin is off the coarse lattice cannot serve
        # level 1: its pixel pairs straddle coarse-pixel boundaries.
        odd = build_temporal_canvas_cube(
            brush_table, grid.viewport(0, 1, 0, 128, 128), "t", HOUR)
        assert odd.reduce_levels_for(
            grid.viewport(1, 1, 0, 32, 32)) is None


class TestReducedAnswers:
    @pytest.mark.parametrize("level,col0,row0,size",
                             [(1, 0, 0, 128), (1, 16, 8, 64),
                              (2, 10, 6, 48)])
    def test_reduced_count_bitwise(self, cube, brush_table, simple_regions,
                                   grid, level, col0, row0, size):
        qv = grid.viewport(level, col0, row0, size, size)
        query = _count_brush()
        assert cube.can_answer(query, qv)
        got = cube.answer(simple_regions, _frags(simple_regions, qv),
                          query, viewport=qv)
        want = bounded_raster_join(brush_table, simple_regions, query,
                                   _plain(qv))
        for name in ("values", "lower", "upper"):
            assert np.array_equal(np.asarray(getattr(got, name)),
                                  np.asarray(getattr(want, name))), name
        assert got.stats["tcube"]["reduced_levels"] == level

    def test_base_answer_reports_zero_levels(self, cube, simple_regions,
                                             base_viewport):
        got = cube.answer(
            simple_regions, _frags(simple_regions, base_viewport),
            _count_brush(), viewport=base_viewport)
        assert got.stats["tcube"]["reduced_levels"] == 0

    def test_sum_refuses_reduced(self, brush_table, grid, simple_regions):
        cube = build_temporal_canvas_cube(
            brush_table, grid.viewport(0, 0, 0, 256, 256), "t", HOUR,
            value_column="fare")
        query = SpatialAggregation("sum", "fare",
                                   (TimeRange("t", 2 * HOUR, 7 * HOUR),))
        qv = grid.viewport(1, 0, 0, 128, 128)
        assert cube.can_answer(query, grid.viewport(0, 0, 0, 256, 256))
        assert not cube.can_answer(query, qv)

    def test_answer_raises_outside_coverage(self, cube, simple_regions,
                                            grid):
        qv = grid.viewport(1, 96, 0, 64, 64)
        with pytest.raises(CubeError):
            cube.answer(simple_regions, _frags(simple_regions, qv),
                        _count_brush(), viewport=qv)


class TestEngineIntegration:
    def test_auto_serves_coarse_brush_from_cached_cube(self, brush_table,
                                                       simple_regions):
        engine = SpatialAggregationEngine(default_resolution=256)
        gv = engine.plan_grid_viewport(simple_regions, 256)
        base = gv.grid.viewport(0, 0, 0, 256, 256)
        query = _count_brush()
        built = engine.execute(brush_table, simple_regions, query,
                               method="tcube-raster", viewport=base)
        assert built.stats["tcube"]["built"]

        coarse = gv.grid.viewport(1, 0, 0, 128, 128)
        cube = find_answering_cube(engine.ctx, brush_table, query, coarse)
        assert cube is not None

        served = engine.execute(brush_table, simple_regions, query,
                                method="auto", viewport=coarse)
        assert served.method == "tcube-raster-join"
        assert served.stats["tcube"]["hit"]
        assert served.stats["tcube"]["reduced_levels"] == 1
        want = engine.execute(brush_table, simple_regions, query,
                              method="bounded", viewport=_plain(coarse))
        assert np.array_equal(served.values, want.values)
