"""Tests for the query model."""

import numpy as np
import pytest

from repro.core import SpatialAggregation
from repro.errors import QueryError
from repro.table import F, PointTable, TimeRange, timestamp_column


@pytest.fixture(scope="module")
def table():
    gen = np.random.default_rng(0)
    n = 1000
    return PointTable.from_arrays(
        gen.uniform(0, 1, n), gen.uniform(0, 1, n),
        fare=gen.exponential(10, n),
        t=timestamp_column("t", gen.integers(0, 10_000, n)),
        kind=gen.choice(["a", "b"], n))


class TestConstructors:
    def test_count(self):
        q = SpatialAggregation.count()
        assert q.agg == "count"
        assert q.value_column is None

    def test_value_aggregates(self):
        assert SpatialAggregation.sum_of("fare").agg == "sum"
        assert SpatialAggregation.avg_of("fare").agg == "avg"
        assert SpatialAggregation.min_of("fare").agg == "min"
        assert SpatialAggregation.max_of("fare").agg == "max"

    def test_invalid_combinations(self):
        with pytest.raises(QueryError):
            SpatialAggregation("count", "fare")
        with pytest.raises(QueryError):
            SpatialAggregation("sum", None)
        with pytest.raises(QueryError):
            SpatialAggregation("p99", "fare")

    def test_where_appends(self):
        q = SpatialAggregation.count(F("fare") > 5)
        q2 = q.where(F("kind") == "a")
        assert len(q.filters) == 1
        assert len(q2.filters) == 2

    def test_during_adds_time_range(self):
        q = SpatialAggregation.count().during("t", 100, 200)
        assert isinstance(q.filters[0], TimeRange)
        assert q.filters[0].start == 100


class TestEvaluationHelpers:
    def test_filter_mask_conjunction(self, table):
        q = SpatialAggregation.count(F("fare") > 5, F("kind") == "a")
        mask = q.filter_mask(table)
        manual = ((F("fare") > 5).mask(table)
                  & (F("kind") == "a").mask(table))
        assert (mask == manual).all()

    def test_filter_mask_empty_filters(self, table):
        assert SpatialAggregation.count().filter_mask(table).all()

    def test_values_for_count_is_none(self, table):
        assert SpatialAggregation.count().values_for(table) is None

    def test_values_for_numeric(self, table):
        vals = SpatialAggregation.sum_of("fare").values_for(table)
        assert vals is not None
        assert vals.dtype == np.float64

    def test_values_for_categorical_rejected(self, table):
        with pytest.raises(QueryError):
            SpatialAggregation.sum_of("kind").values_for(table)

    def test_describe(self):
        q = SpatialAggregation.avg_of("fare", F("kind") == "a")
        text = q.describe()
        assert "AVG(fare)" in text
        assert "1 filter" in text
