"""Tests for the one-pass region x time matrix."""

import numpy as np
import pytest

from repro.core import (
    SpatialAggregation,
    bounded_raster_join,
    pixel_region_labels,
    region_time_matrix,
)
from repro.errors import QueryError
from repro.raster import Viewport, build_fragment_table
from repro.table import F, PointTable, TimeRange, timestamp_column


def _table(n=30_000, seed=0):
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(10, n),
        t=timestamp_column("t", gen.integers(0, 10_000, n)),
        kind=gen.choice(["a", "b"], n))


class TestPixelLabels:
    def test_labels_cover_fragments(self, simple_regions):
        vp = Viewport.fit(simple_regions.bbox, 128)
        fragments = build_fragment_table(
            list(simple_regions.geometries), vp)
        labels = pixel_region_labels(fragments)
        assert labels.shape == (vp.num_pixels,)
        assert (labels[fragments.interior_pixels]
                == fragments.interior_polys).all()
        assert labels.max() < len(simple_regions)


class TestMatrix:
    def test_matches_per_bucket_raster_joins(self, simple_regions):
        """Column b of the matrix equals a bounded raster join filtered
        to that bucket's time range (same viewport)."""
        table = _table()
        vp = Viewport.fit(simple_regions.bbox, 128)
        bucket_s = 2_000
        matrix = region_time_matrix(table, simple_regions, vp,
                                    bucket_seconds=bucket_s)
        for b in range(matrix.num_buckets):
            t0 = int(matrix.bucket_starts[b])
            query = SpatialAggregation.count(
                TimeRange("t", t0, t0 + bucket_s))
            want = bounded_raster_join(table, simple_regions, query, vp)
            assert matrix.values[:, b] == pytest.approx(want.values)

    def test_row_sums_match_unbucketed_join(self, simple_regions):
        table = _table(seed=1)
        vp = Viewport.fit(simple_regions.bbox, 128)
        matrix = region_time_matrix(table, simple_regions, vp,
                                    bucket_seconds=5_000)
        whole = bounded_raster_join(table, simple_regions,
                                    SpatialAggregation.count(), vp)
        assert matrix.totals_per_region() == pytest.approx(whole.values)

    def test_value_column_sums(self, simple_regions):
        table = _table(seed=2)
        vp = Viewport.fit(simple_regions.bbox, 128)
        matrix = region_time_matrix(table, simple_regions, vp,
                                    bucket_seconds=5_000,
                                    value_column="fare")
        whole = bounded_raster_join(table, simple_regions,
                                    SpatialAggregation.sum_of("fare"), vp)
        assert matrix.totals_per_region() == pytest.approx(whole.values)

    def test_filters_applied(self, simple_regions):
        table = _table(seed=3)
        vp = Viewport.fit(simple_regions.bbox, 128)
        full = region_time_matrix(table, simple_regions, vp,
                                  bucket_seconds=5_000)
        filtered = region_time_matrix(table, simple_regions, vp,
                                      bucket_seconds=5_000,
                                      filters=[F("kind") == "a"])
        assert (filtered.values <= full.values + 1e-9).all()
        assert filtered.values.sum() < full.values.sum()

    def test_accessors(self, simple_regions):
        table = _table(seed=4)
        vp = Viewport.fit(simple_regions.bbox, 128)
        matrix = region_time_matrix(table, simple_regions, vp,
                                    bucket_seconds=2_500)
        name = simple_regions.region_names[0]
        series = matrix.series_for(name)
        assert series.shape == (matrix.num_buckets,)
        start, value = matrix.peak_bucket(name)
        assert value == series.max()
        assert start in matrix.bucket_starts
        norm = matrix.normalized_per_region()
        assert norm.max() <= 1.0 + 1e-12
        assert matrix.totals_per_bucket().sum() == pytest.approx(
            matrix.values.sum())

    def test_fold_weekly_preserves_mass(self, simple_regions):
        table = _table(seed=7)
        vp = Viewport.fit(simple_regions.bbox, 128)
        matrix = region_time_matrix(table, simple_regions, vp,
                                    bucket_seconds=3_600)
        folded = matrix.fold_weekly()
        assert folded.num_buckets == 7 * 24
        assert folded.values.sum() == pytest.approx(matrix.values.sum())
        assert folded.values.shape[0] == len(simple_regions)

    def test_fold_weekly_alignment(self, simple_regions):
        """A point at absolute hour h lands in folded bucket h % 168."""
        table = PointTable.from_arrays(
            [25.0, 25.0], [25.0, 25.0],
            t=timestamp_column("t", [3600 * 5, 3600 * (5 + 168)]))
        vp = Viewport.fit(simple_regions.bbox, 128)
        matrix = region_time_matrix(table, simple_regions, vp,
                                    bucket_seconds=3_600)
        folded = matrix.fold_weekly()
        # Both events fold into the same weekly hour.
        assert folded.values.sum() == 2
        bucket_totals = folded.totals_per_bucket()
        assert bucket_totals[5] == 2

    def test_fold_weekly_rejects_nondividing_bucket(self, simple_regions):
        table = _table(100, seed=8)
        vp = Viewport.fit(simple_regions.bbox, 64)
        matrix = region_time_matrix(table, simple_regions, vp,
                                    bucket_seconds=100_000)
        with pytest.raises(QueryError):
            matrix.fold_weekly()

    def test_bucket_validation(self, simple_regions):
        table = _table(100, seed=5)
        vp = Viewport.fit(simple_regions.bbox, 64)
        with pytest.raises(QueryError):
            region_time_matrix(table, simple_regions, vp, bucket_seconds=0)

    def test_empty_after_filter(self, simple_regions):
        table = _table(100, seed=6)
        vp = Viewport.fit(simple_regions.bbox, 64)
        matrix = region_time_matrix(table, simple_regions, vp,
                                    filters=[F("fare") > 1e9])
        assert matrix.values.sum() == 0


class TestTimelineViewMatrix:
    def test_wrapper(self, demo):
        from repro.urbane import DataManager, TimelineView

        dm = DataManager()
        dm.add_dataset(demo.datasets["taxi"], "taxi")
        dm.add_region_set(demo.regions["neighborhoods"], "neighborhoods")
        view = TimelineView(dm)
        matrix = view.matrix("taxi", "neighborhoods", bucket="week")
        assert matrix.values.shape[0] == len(demo.regions["neighborhoods"])
        # Weekly totals roughly equal the dataset size (pixel labeling
        # drops only boundary-sliver points).
        assert matrix.values.sum() == pytest.approx(
            len(demo.datasets["taxi"]), rel=0.02)

    def test_wrapper_bucket_validation(self, demo):
        from repro.urbane import DataManager, TimelineView

        dm = DataManager()
        dm.add_dataset(demo.datasets["taxi"], "taxi")
        dm.add_region_set(demo.regions["neighborhoods"], "neighborhoods")
        with pytest.raises(QueryError):
            TimelineView(dm).matrix("taxi", "neighborhoods",
                                    bucket="decade")
