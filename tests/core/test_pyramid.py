"""The canvas pyramid: grid viewports, block assembly, and its parity
contract — assembled answers are bitwise-identical to the direct
bounded raster join for COUNT/SUM/MIN/MAX (AVG within reassociation
round-off) across pan/zoom ladders, and invalidation is generational.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    GridViewport,
    SpatialAggregation,
    SpatialAggregationEngine,
    bounded_raster_join,
    bump_revision,
    grid_viewport_for,
)
from repro.core.cache import estimate_nbytes
from repro.core.parallel import ParallelConfig, parallel_bounded_raster_join
from repro.raster import Viewport
from repro.table import Between


def _plain(gv: GridViewport) -> Viewport:
    """The same window/resolution as ``gv``, without the grid identity
    — forces the direct (non-assembled) path."""
    return Viewport(bbox=gv.bbox, width=gv.width, height=gv.height)


def _ladder(gv: GridViewport):
    yield gv
    gv = gv.pan(48, 0)
    yield gv
    gv = gv.pan(0, -32)
    yield gv
    gv = gv.zoom(2.0)
    yield gv
    gv = gv.zoom(0.5)
    yield gv
    gv = gv.pan(-48, 32)
    yield gv  # revisits the second frame's window


def _assert_bitwise(a, b):
    np.testing.assert_array_equal(a.values, b.values)
    assert (a.lower is None) == (b.lower is None)
    if a.lower is not None:
        np.testing.assert_array_equal(a.lower, b.lower)
        np.testing.assert_array_equal(a.upper, b.upper)


# -- grid viewport semantics -------------------------------------------------


def test_grid_viewport_matches_plain_transform(small_table, simple_regions):
    engine = SpatialAggregationEngine(default_resolution=256)
    gv = engine.plan_grid_viewport(simple_regions, 256)
    plain = engine.plan_viewport(simple_regions, 256, None)
    ix_g, iy_g = gv.pixel_of(small_table.x, small_table.y)
    ix_p, iy_p = plain.pixel_of(small_table.x, small_table.y)
    np.testing.assert_array_equal(ix_g, ix_p)
    np.testing.assert_array_equal(iy_g, iy_p)


def test_pan_snaps_and_round_trips(simple_regions):
    engine = SpatialAggregationEngine(default_resolution=256)
    gv = engine.plan_grid_viewport(simple_regions, 256)
    there = gv.pan(10.4, -3.6)  # fractional gestures snap to pixels
    assert (there.col0, there.row0) == (gv.col0 + 10, gv.row0 - 4)
    back = there.pan(-10.4, 3.6)
    assert back == gv  # value-equal: identical cache keys


def test_zoom_snaps_to_levels_and_clamps(simple_regions):
    engine = SpatialAggregationEngine(default_resolution=256)
    gv = engine.plan_grid_viewport(simple_regions, 256)
    assert gv.level == 0
    out = gv.zoom(2.0)
    assert out.level == 1 and out.width == gv.width
    assert out.zoom(0.5).level == 0
    assert gv.zoom(0.5) == gv  # below the base level: clamped
    assert gv.zoom(1.2) == gv  # snaps to 2^0 == no-op
    with pytest.raises(ValueError):
        gv.zoom(0.0)


def test_grid_viewport_not_equal_to_plain_viewport(simple_regions):
    engine = SpatialAggregationEngine(default_resolution=128)
    gv = engine.plan_grid_viewport(simple_regions, 128)
    assert gv != _plain(gv)  # distinct cache identities
    assert grid_viewport_for(gv) is gv


def test_plan_grid_viewport_is_deterministic(simple_regions):
    a = SpatialAggregationEngine().plan_grid_viewport(simple_regions, 256)
    b = SpatialAggregationEngine().plan_grid_viewport(simple_regions, 256)
    assert a == b and hash(a) == hash(b)


# -- assembled vs direct: the bitwise-parity ladder --------------------------


@pytest.mark.parametrize("make_query", [
    lambda: SpatialAggregation.count(),
    lambda: SpatialAggregation.sum_of("fare"),
    lambda: SpatialAggregation.min_of("fare"),
    lambda: SpatialAggregation.max_of("fare"),
    lambda: SpatialAggregation.count(Between("fare", 5, 25)),
], ids=["count", "sum", "min", "max", "count-filtered"])
def test_panzoom_ladder_bitwise(small_table, simple_regions, make_query):
    query = make_query()
    engine = SpatialAggregationEngine(default_resolution=256)
    gv0 = engine.plan_grid_viewport(simple_regions, 256)
    for gv in _ladder(gv0):
        assembled = engine.execute(small_table, simple_regions, query,
                                   method="bounded", viewport=gv)
        assert assembled.method == "pyramid-raster-join"
        direct = bounded_raster_join(small_table, simple_regions, query,
                                     _plain(gv))
        _assert_bitwise(assembled, direct)


def test_avg_ladder_within_roundoff(small_table, simple_regions):
    query = SpatialAggregation.avg_of("fare")
    engine = SpatialAggregationEngine(default_resolution=256)
    gv0 = engine.plan_grid_viewport(simple_regions, 256)
    for gv in _ladder(gv0):
        assembled = engine.execute(small_table, simple_regions, query,
                                   method="bounded", viewport=gv)
        direct = bounded_raster_join(small_table, simple_regions, query,
                                     _plain(gv))
        np.testing.assert_allclose(assembled.values, direct.values,
                                   rtol=0, atol=1e-12)


def test_tiled_method_routes_to_assembly(small_table, simple_regions):
    engine = SpatialAggregationEngine(default_resolution=256)
    gv = engine.plan_grid_viewport(simple_regions, 256)
    query = SpatialAggregation.count()
    result = engine.execute(small_table, simple_regions, query,
                            method="tiled", viewport=gv)
    assert result.method == "pyramid-raster-join"
    direct = bounded_raster_join(small_table, simple_regions, query,
                                 _plain(gv))
    _assert_bitwise(result, direct)


def test_parallel_direct_matches_assembled_count(small_table,
                                                 simple_regions):
    engine = SpatialAggregationEngine(default_resolution=256)
    gv = engine.plan_grid_viewport(simple_regions, 256)
    query = SpatialAggregation.count()
    assembled = engine.execute(small_table, simple_regions, query,
                               method="bounded", viewport=gv)
    par = parallel_bounded_raster_join(
        small_table, simple_regions, query, _plain(gv),
        config=ParallelConfig(workers=2, serial_threshold=1))
    _assert_bitwise(assembled, par)


# -- reuse accounting --------------------------------------------------------


def test_warm_gesture_reuses_blocks(small_table, simple_regions):
    engine = SpatialAggregationEngine(default_resolution=256)
    gv = engine.plan_grid_viewport(simple_regions, 256)
    query = SpatialAggregation.count()
    cold = engine.execute(small_table, simple_regions, query,
                          method="bounded", viewport=gv)
    cold_blocks = cold.stats["cache"]["blocks"]
    assert cold_blocks["misses"] > 0 and cold_blocks["hits"] == 0
    assert cold_blocks["reuse_fraction"] == 0.0

    warm = engine.execute(small_table, simple_regions, query,
                          method="bounded", viewport=gv.pan(32, 0))
    blocks = warm.stats["cache"]["blocks"]
    assert blocks["hits"] > 0
    assert 0.0 < blocks["reuse_fraction"] <= 1.0
    assert blocks["assembled_pixels"] > blocks["scattered_pixels"]
    assert warm.stats["pyramid"]["reuse_fraction"] == \
        blocks["reuse_fraction"]


def test_zoom_out_derives_from_children(small_table, simple_regions):
    engine = SpatialAggregationEngine(default_resolution=256)
    gv = engine.plan_grid_viewport(simple_regions, 256)
    query = SpatialAggregation.count()
    engine.execute(small_table, simple_regions, query,
                   method="bounded", viewport=gv)
    out = engine.execute(small_table, simple_regions, query,
                         method="bounded", viewport=gv.zoom(2.0))
    assert out.stats["cache"]["blocks"]["derived"] > 0
    direct = bounded_raster_join(small_table, simple_regions, query,
                                 _plain(gv.zoom(2.0)))
    _assert_bitwise(out, direct)


def test_planner_prices_block_coverage(small_table, simple_regions):
    engine = SpatialAggregationEngine(default_resolution=256)
    gv = engine.plan_grid_viewport(simple_regions, 256)
    query = SpatialAggregation.count()
    cold = engine.execute(small_table, simple_regions, query,
                          method="auto", viewport=gv)
    assert cold.stats["plan"]["inputs"]["blocks_cached"] == 0.0
    warm = engine.execute(small_table, simple_regions, query,
                          method="auto", viewport=gv)
    inputs = warm.stats["plan"]["inputs"]
    assert inputs["blocks_cached"] == 1.0
    costs = warm.stats["plan"]["decision"]["costs"]
    assert warm.stats["plan"]["decision"]["chosen"] == "bounded"
    # full coverage wipes the point-pass term from the bounded price
    assert costs["bounded"] < len(small_table)


def test_integral_sum_blocks_derive_on_zoom_out(simple_regions):
    gen = np.random.default_rng(5)
    from repro.table import PointTable
    n = 20_000
    table = PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n), name="ints",
        riders=gen.integers(1, 7, n).astype(np.float64))
    query = SpatialAggregation.sum_of("riders")
    engine = SpatialAggregationEngine(default_resolution=256)
    gv = engine.plan_grid_viewport(simple_regions, 256)
    engine.execute(table, simple_regions, query,
                   method="bounded", viewport=gv)
    out = engine.execute(table, simple_regions, query,
                         method="bounded", viewport=gv.zoom(2.0))
    assert out.stats["cache"]["blocks"]["derived"] > 0
    direct = bounded_raster_join(table, simple_regions, query,
                                 _plain(gv.zoom(2.0)))
    _assert_bitwise(out, direct)


# -- generational invalidation (the eviction regression) ---------------------


def test_eviction_never_serves_stale_ancestors(simple_regions):
    """Evict level-0 blocks under byte pressure, leave their derived
    coarser ancestors resident, then bump the table's generation: the
    next query must re-scatter, never answer from the stale survivors.
    Invalidation is generation-checked (keys embed the revision), not
    presence-checked.
    """
    from repro.table import PointTable

    gen = np.random.default_rng(17)
    n = 30_000
    x = gen.uniform(0, 100, n)
    y = gen.uniform(0, 100, n)
    table = PointTable.from_arrays(x, y, name="gen-test")

    engine = SpatialAggregationEngine(default_resolution=256,
                                      cache_max_bytes=24 * 1024 * 1024)
    cache = engine.ctx.cache
    gv = engine.plan_grid_viewport(simple_regions, 256)
    query = SpatialAggregation.count()
    engine.execute(table, simple_regions, query,
                   method="bounded", viewport=gv)
    coarse = gv.zoom(2.0)
    engine.execute(table, simple_regions, query,
                   method="bounded", viewport=coarse)

    # Age the level-0 blocks to the cold end of the LRU, then squeeze
    # until evictions happen.  The coarser ancestors were touched last,
    # so whatever survives skews to them — the dangerous survivors.
    evictions_before = cache.evictions
    for i in range(20):
        cache.put(("junk", i), np.zeros(1 << 18))
    assert cache.evictions > evictions_before

    # The "append": contents change, generation bumps.  A table whose
    # columns moved under a kept fingerprint would be a caller bug; the
    # contract is that mutators call bump_revision, after which *no*
    # resident block of any level — evicted or surviving — is reachable.
    xs = table.x
    xs.setflags(write=True)
    try:
        xs[:500] += 0.5
    finally:
        xs.setflags(write=False)
    bump_revision(table)

    stale_risky = engine.execute(table, simple_regions, query,
                                 method="bounded", viewport=coarse)
    # No current-generation key can reach a stale block: this query
    # must have scattered (or derived from *fresh* children), and
    # its answer must match a from-scratch join of the new data.
    assert stale_risky.stats["cache"]["blocks"]["hits"] == 0
    direct = bounded_raster_join(table, simple_regions, query,
                                 _plain(coarse))
    _assert_bitwise(stale_risky, direct)


# -- estimate_nbytes view dedup (the cache-accounting fix) -------------------


def test_estimate_nbytes_charges_shared_base_once():
    base = np.zeros(10_000)
    v1, v2 = base[:4_000], base[4_000:]
    assert estimate_nbytes(base) == base.nbytes
    # Views sharing one buffer are charged once, not once per view.
    assert estimate_nbytes([base, v1, v2]) == base.nbytes
    assert estimate_nbytes((v1, v2)) == base.nbytes
    assert estimate_nbytes({"a": base, "b": base[::2]}) == base.nbytes


def test_estimate_nbytes_distinct_buffers_still_add():
    a, b = np.zeros(1_000), np.zeros(2_000)
    assert estimate_nbytes([a, b]) == a.nbytes + b.nbytes
    # A view chain walks to its root buffer.
    chained = a[:500][10:]
    assert estimate_nbytes([a, chained]) == a.nbytes
