"""Tests for the unified cache layer: fingerprints, LRU, accounting."""

import gc

import numpy as np
import pytest

from repro.core import (
    ExecutionContext,
    QueryCache,
    SpatialAggregation,
    SpatialAggregationEngine,
    bump_revision,
    fingerprint,
)
from repro.errors import QueryError
from repro.table import PointTable


def _table(n=100, seed=0, name="t"):
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(gen.uniform(0, 100, n),
                                  gen.uniform(0, 100, n), name=name)


class TestFingerprint:
    def test_stable_per_object(self):
        t = _table()
        assert fingerprint(t) == fingerprint(t)

    def test_distinct_objects_distinct_tokens(self):
        assert fingerprint(_table(seed=1)) != fingerprint(_table(seed=2))

    def test_token_never_reused_after_gc(self):
        # The id()-reuse regression: a collected table's address can be
        # handed to a new table, but its fingerprint token cannot.
        seen = set()
        for i in range(50):
            t = _table(10, seed=i)
            fp = fingerprint(t)
            assert fp not in seen
            seen.add(fp)
            del t
            gc.collect()

    def test_revision_bump_changes_fingerprint(self):
        t = _table()
        before = fingerprint(t)
        bump_revision(t)
        assert fingerprint(t) != before


class TestQueryCache:
    def test_hit_miss_counters(self):
        cache = QueryCache()
        assert cache.get(("k",)) is None
        cache.put(("k",), "v", nbytes=8)
        assert cache.get(("k",)) == "v"
        assert cache.misses == 1 and cache.hits == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_get_or_build_builds_once(self):
        cache = QueryCache()
        calls = []
        for __ in range(3):
            cache.get_or_build(("k",), lambda: calls.append(1) or "v",
                               nbytes=8)
        assert len(calls) == 1
        assert cache.hits == 2 and cache.misses == 1

    def test_lru_eviction_by_entries(self):
        cache = QueryCache(max_entries=2)
        for i in range(3):
            cache.put(("k", i), i, nbytes=1)
        assert cache.evictions == 1
        assert ("k", 0) not in cache          # oldest gone
        assert ("k", 2) in cache

    def test_lru_order_respects_recency(self):
        cache = QueryCache(max_entries=2)
        cache.put(("a",), 1, nbytes=1)
        cache.put(("b",), 2, nbytes=1)
        cache.get(("a",))                      # touch: b is now LRU
        cache.put(("c",), 3, nbytes=1)
        assert ("a",) in cache and ("b",) not in cache

    def test_byte_budget_eviction(self):
        cache = QueryCache(max_bytes=100)
        cache.put(("a",), "x", nbytes=60)
        cache.put(("b",), "y", nbytes=60)
        assert cache.total_bytes <= 100
        assert cache.evictions == 1 and ("b",) in cache

    def test_oversized_entry_still_stored(self):
        cache = QueryCache(max_bytes=10)
        cache.put(("big",), "x", nbytes=1000)
        assert ("big",) in cache

    def test_byte_accounting_from_ndarrays(self):
        cache = QueryCache()
        arr = np.zeros(1000)
        cache.put(("a",), arr)
        assert cache.total_bytes >= arr.nbytes

    def test_peek_does_not_count(self):
        cache = QueryCache()
        cache.put(("k",), "v", nbytes=1)
        cache.peek(("k",))
        cache.peek(("missing",))
        assert cache.hits == 0 and cache.misses == 0

    def test_invalidate_prefix(self):
        cache = QueryCache()
        cache.put(("fragments", 1), "a", nbytes=1)
        cache.put(("grid-index", 1), "b", nbytes=1)
        assert cache.invalidate("fragments") == 1
        assert ("fragments", 1) not in cache
        assert ("grid-index", 1) in cache

    def test_bad_budget_rejected(self):
        with pytest.raises(QueryError):
            QueryCache(max_bytes=0)


class TestSpeculativeInserts:
    """Speculative builds must park at the LRU cold end so a burst of
    wrong predictions can never displace blocks real queries keep hot."""

    def test_new_speculative_entry_is_evicted_first(self):
        cache = QueryCache(max_entries=3)
        cache.put(("hot", 0), 0, nbytes=1)
        cache.put(("hot", 1), 1, nbytes=1)
        with cache.speculative_inserts():
            cache.put(("spec",), 99, nbytes=1)
        cache.put(("hot", 2), 2, nbytes=1)     # over budget: evict one
        assert ("spec",) not in cache           # the speculation went
        assert ("hot", 0) in cache              # both hot keys survive
        assert ("hot", 1) in cache

    def test_hot_keys_survive_a_speculative_burst(self):
        cache = QueryCache(max_entries=4)
        cache.put(("hot", 0), 0, nbytes=1)
        cache.put(("hot", 1), 1, nbytes=1)
        with cache.speculative_inserts():
            for i in range(10):
                cache.put(("spec", i), i, nbytes=1)
        assert ("hot", 0) in cache and ("hot", 1) in cache
        # The burst only ever churned the cold half of the cache.
        assert cache.cold_inserts == 10

    def test_speculative_reads_do_not_promote(self):
        cache = QueryCache(max_entries=2)
        cache.put(("a",), 1, nbytes=1)
        cache.put(("b",), 2, nbytes=1)
        with cache.speculative_inserts():
            assert cache.get(("a",)) == 1       # no LRU touch
        cache.put(("c",), 3, nbytes=1)
        assert ("a",) not in cache              # still the LRU victim
        assert ("b",) in cache

    def test_reinserting_existing_key_keeps_hot_placement(self):
        cache = QueryCache(max_entries=2)
        cache.put(("a",), 1, nbytes=1)
        cache.put(("b",), 2, nbytes=1)
        with cache.speculative_inserts():
            cache.put(("b",), 22, nbytes=1)     # history outranks spec
        cache.put(("c",), 3, nbytes=1)
        assert ("b",) in cache and ("a",) not in cache
        assert cache.cold_inserts == 0

    def test_real_touch_promotes_speculative_entry(self):
        cache = QueryCache(max_entries=2)
        with cache.speculative_inserts():
            cache.put(("spec",), 1, nbytes=1)
        cache.put(("a",), 2, nbytes=1)
        cache.get(("spec",))                    # prediction came true
        cache.put(("b",), 3, nbytes=1)
        assert ("spec",) in cache               # earned its place
        assert ("a",) not in cache

    def test_flag_is_thread_local(self):
        import threading

        cache = QueryCache(max_entries=8)
        done = threading.Event()
        go = threading.Event()

        def speculate():
            with cache.speculative_inserts():
                go.set()
                done.wait(timeout=5.0)

        t = threading.Thread(target=speculate)
        t.start()
        try:
            assert go.wait(timeout=5.0)
            cache.put(("real",), 1, nbytes=1)   # this thread: not spec
            assert cache.cold_inserts == 0
        finally:
            done.set()
            t.join(timeout=5.0)

    def test_cold_inserts_in_stats(self):
        cache = QueryCache()
        with cache.speculative_inserts():
            cache.put(("s",), 1, nbytes=1)
        assert cache.stats()["cold_inserts"] == 1


class TestContextCaching:
    def test_index_not_shared_across_tables(self):
        # Regression for the id()-keyed caches: two different tables must
        # never share an index, even when the first has been collected
        # and its address reused.  Fingerprint tokens make this
        # deterministic instead of GC-timing dependent.
        ctx = ExecutionContext()
        a = _table(200, seed=1, name="a")
        idx_a = ctx.grid_index(a)
        addr_a = id(a)
        del a
        gc.collect()
        b = _table(200, seed=2, name="b")
        idx_b = ctx.grid_index(b)
        assert idx_a is not idx_b
        # Even a table landing on the recycled address gets its own entry.
        tables = [_table(200, seed=3 + i) for i in range(8)]
        recycled = next((t for t in tables if id(t) == addr_a), None)
        if recycled is not None:
            assert ctx.grid_index(recycled) is not idx_a

    def test_revision_bump_invalidates_derived_entries(self):
        ctx = ExecutionContext()
        t = _table(200, seed=5)
        idx1 = ctx.grid_index(t)
        assert ctx.grid_index(t) is idx1
        bump_revision(t)
        assert ctx.grid_index(t) is not idx1

    def test_engine_eviction_observable_in_stats(self, simple_regions):
        engine = SpatialAggregationEngine(default_resolution=64,
                                          cache_max_entries=2)
        query = SpatialAggregation.count()
        for n in (100, 200, 300):
            engine.execute(_table(n, seed=n), simple_regions, query,
                           method="grid")
        stats = engine.cache_stats()
        assert stats["evictions"] > 0
        assert stats["entries"] <= 2

    def test_repeated_query_hits_cache(self, simple_regions):
        engine = SpatialAggregationEngine(default_resolution=64)
        t = _table(500, seed=9)
        query = SpatialAggregation.count()
        engine.execute(t, simple_regions, query, method="bounded")
        warm = engine.execute(t, simple_regions, query, method="bounded")
        assert warm.stats["cache"]["query_hits"] > 0
        assert warm.stats["cache"]["query_misses"] == 0


class TestThreadSafety:
    def test_concurrent_mixed_operations_stay_consistent(self):
        import threading

        cache = QueryCache(max_bytes=1 << 20, max_entries=64)
        errors = []

        def worker(seed):
            gen = np.random.default_rng(seed)
            try:
                for i in range(300):
                    key = ("k", int(gen.integers(0, 32)))
                    op = gen.random()
                    if op < 0.5:
                        cache.get_or_build(
                            key, lambda: np.zeros(int(gen.integers(1, 64))))
                    elif op < 0.8:
                        cache.get(key)
                    elif op < 0.9:
                        cache.put(key, np.zeros(8))
                    else:
                        cache.stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats["entries"] <= 64
        # Byte ledger must equal the sum of live entries exactly.
        with cache._lock:
            assert cache.total_bytes == sum(
                e.nbytes for e in cache._entries.values())

    def test_byte_ledger_survives_concurrent_insert_evict_soak(self):
        """Randomized soak with the evictor permanently hot: a tiny
        budget, many distinct keys and oversized values keep every put
        evicting while other threads insert, invalidate and clear —
        the byte ledger must still equal a full recount at the end."""
        import threading

        cache = QueryCache(max_bytes=16 << 10, max_entries=16)
        errors = []

        def worker(seed):
            gen = np.random.default_rng(seed)
            try:
                for i in range(400):
                    key = (f"p{int(gen.integers(0, 4))}",
                           int(gen.integers(0, 64)))
                    op = gen.random()
                    if op < 0.45:
                        cache.put(key,
                                  np.zeros(int(gen.integers(16, 512))))
                    elif op < 0.70:
                        cache.get_or_build(
                            key,
                            lambda: np.zeros(int(gen.integers(16, 512))))
                    elif op < 0.85:
                        cache.get(key)
                    elif op < 0.93:
                        with cache.speculative_inserts():
                            cache.put(key, np.zeros(64))
                    elif op < 0.99:
                        cache.invalidate(f"p{int(gen.integers(0, 4))}")
                    else:
                        cache.clear()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.evictions > 0  # the soak actually exercised LRU
        with cache._lock:
            recount = sum(e.nbytes for e in cache._entries.values())
            assert cache._bytes == recount
            assert cache._bytes >= 0
            assert len(cache._entries) <= cache.max_entries

    def test_single_flight_builds_once_under_contention(self):
        import threading
        import time as _time

        cache = QueryCache()
        builds = []
        barrier = threading.Barrier(8)

        def build():
            builds.append(1)
            _time.sleep(0.05)
            return np.arange(10)

        out = []

        def worker():
            barrier.wait()
            out.append(cache.get_or_build(("slow",), build))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1
        assert len(out) == 8
        assert cache.single_flight_waits >= 1

    def test_failed_leader_does_not_poison_the_key(self):
        import threading

        cache = QueryCache()
        attempts = []

        def failing():
            attempts.append(1)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            cache.get_or_build(("k",), failing)
        # The latch must be gone: a later build succeeds normally.
        value = cache.get_or_build(("k",), lambda: 42)
        assert value == 42
        assert ("k",) in cache
        assert not cache._building


class TestDefensiveCopies:
    def test_cached_result_is_copied_on_read(self, simple_regions):
        engine = SpatialAggregationEngine(default_resolution=64)
        t = _table(500, seed=11)
        query = SpatialAggregation.count()
        key = ("served", fingerprint(t))
        built = engine.ctx.cache.get_or_build(
            key, lambda: engine.execute(t, simple_regions, query,
                                        method="bounded"))
        again = engine.ctx.cache.get(key)
        assert again is not built
        assert np.array_equal(again.values, built.values)
        # Mutating one reader's view must not leak into the next's.
        again.stats["poison"] = True
        again.values[:] = -1.0
        third = engine.ctx.cache.get(key)
        assert "poison" not in third.stats
        assert np.array_equal(third.values, built.values)

    def test_non_result_artifacts_shared_by_reference(self):
        cache = QueryCache()
        arr = np.arange(5)
        cache.put(("a",), arr)
        assert cache.get(("a",)) is arr

    def test_result_copy_is_independent(self, simple_regions):
        from repro.core import bounded_raster_join
        from repro.raster import Viewport

        t = _table(1_000, seed=12)
        vp = Viewport.fit(simple_regions.bbox, 64)
        r = bounded_raster_join(t, simple_regions, 
                                SpatialAggregation.count(), vp)
        r.stats["nested"] = {"deep": [1, 2]}
        c = r.copy()
        assert c.values is not r.values
        assert np.array_equal(c.values, r.values)
        assert c.lower is not r.lower and np.array_equal(c.lower, r.lower)
        c.stats["nested"]["deep"].append(3)
        assert r.stats["nested"]["deep"] == [1, 2]
        # The region set is intentionally shared (fingerprint identity).
        assert c.regions is r.regions
