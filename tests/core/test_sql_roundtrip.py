"""Property tests: SQL rendering and parsing are inverse (by semantics).

Random filter ASTs are rendered with ``to_sql`` and re-parsed; the
round-tripped query must produce the identical row mask on a random
table.  Mask equality (not AST equality) is the right contract: the
renderer may re-spell a TimeRange as two comparisons.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SpatialAggregation, parse_query, to_sql
from repro.errors import QueryError
from repro.table import (
    Between,
    Comparison,
    F,
    IsIn,
    Not,
    Or,
    PointTable,
    TimeRange,
    timestamp_column,
)

COLUMNS = ("fare", "tip")
CAT_LABELS = ("card", "cash", "app")

number = st.floats(-100, 100, allow_nan=False).map(
    lambda v: round(v, 3)) | st.integers(-100, 100)


def _leaf():
    comparison = st.tuples(
        st.sampled_from(COLUMNS),
        st.sampled_from(("<", "<=", ">", ">=", "==", "!=")),
        number,
    ).map(lambda t: Comparison(*t))
    between = st.tuples(st.sampled_from(COLUMNS), number, number).map(
        lambda t: Between(t[0], min(t[1], t[2]), max(t[1], t[2])))
    isin = st.lists(st.sampled_from(CAT_LABELS), min_size=1,
                    max_size=3).map(lambda vs: IsIn("payment", tuple(vs)))
    timerange = st.tuples(st.integers(0, 500), st.integers(1, 400)).map(
        lambda t: TimeRange("t", t[0], t[0] + t[1]))
    cat_eq = st.sampled_from(CAT_LABELS).map(
        lambda v: Comparison("payment", "==", v))
    return st.one_of(comparison, between, isin, timerange, cat_eq)


filters = st.recursive(
    _leaf(),
    lambda children: st.one_of(
        st.tuples(children, children).map(lambda t: t[0] & t[1]),
        st.tuples(children, children).map(lambda t: Or(*t)),
        children.map(Not),
    ),
    max_leaves=6,
)


@pytest.fixture(scope="module")
def table():
    gen = np.random.default_rng(77)
    n = 3000
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=np.round(gen.normal(0, 50, n), 3),
        tip=np.round(gen.normal(0, 50, n), 3),
        t=timestamp_column("t", gen.integers(0, 1000, n)),
        payment=gen.choice(CAT_LABELS, n))


@settings(max_examples=120, deadline=None)
@given(expr=filters, agg=st.sampled_from(["count", "sum", "avg"]))
def test_round_trip_preserves_mask(table, expr, agg):
    column = None if agg == "count" else "fare"
    query = SpatialAggregation(agg, column, (expr,))
    sql = to_sql(query, "taxi", "hoods")
    parsed = parse_query(sql)
    assert parsed.table == "taxi"
    assert parsed.regions == "hoods"
    assert parsed.aggregation.agg == agg
    assert parsed.aggregation.value_column == column
    got = parsed.aggregation.filter_mask(table)
    want = query.filter_mask(table)
    assert (got == want).all(), sql


def test_no_filters_round_trip(table):
    query = SpatialAggregation.count()
    parsed = parse_query(to_sql(query, "a", "b"))
    assert parsed.aggregation.filters == ()
    assert parsed.aggregation.filter_mask(table).all()


def test_quote_escaping_round_trip(table):
    query = SpatialAggregation.count(F("payment") == "o'hare")
    parsed = parse_query(to_sql(query, "a", "b"))
    (expr,) = parsed.aggregation.filters
    assert expr.value == "o'hare"


def test_unrenderable_literal_rejected():
    query = SpatialAggregation.count(Comparison("fare", "==", object()))
    with pytest.raises(QueryError):
        to_sql(query, "a", "b")
