"""Tests for the SQL front end."""

import numpy as np
import pytest

from repro.core import SpatialAggregation, parse_query, tokenize
from repro.errors import QueryError
from repro.table import (
    Between,
    Comparison,
    IsIn,
    Not,
    Or,
    PointTable,
    TimeRange,
    timestamp_column,
)

BASE = ("SELECT COUNT(*) FROM taxi, hoods "
        "WHERE taxi.loc INSIDE hoods.geometry")


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT COUNT(*) FROM t, r")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "kw"          # select
        assert tokens[1].kind == "word"  # count (not a keyword)
        assert "punct" in kinds

    def test_string_literal(self):
        tokens = tokenize("payment = 'card'")
        assert tokens[-1].kind == "string"
        assert tokens[-1].value == "'card'"

    def test_numbers(self):
        tokens = tokenize("fare >= 12.5 AND n < -3e2")
        numbers = [t.value for t in tokens if t.kind == "number"]
        assert numbers == ["12.5", "-3e2"]

    def test_junk_rejected(self):
        with pytest.raises(QueryError):
            tokenize("SELECT @ FROM x")

    def test_keywords_case_insensitive(self):
        tokens = tokenize("Select From WHERE")
        assert all(t.kind == "kw" for t in tokens)


class TestParseStructure:
    def test_minimal_query(self):
        parsed = parse_query(BASE)
        assert parsed.table == "taxi"
        assert parsed.regions == "hoods"
        assert parsed.aggregation.agg == "count"
        assert parsed.aggregation.filters == ()

    def test_group_by_accepted(self):
        parsed = parse_query(BASE + " GROUP BY hoods.id")
        assert parsed.group_by == "id"

    def test_value_aggregates(self):
        for agg in ("SUM", "AVG", "MIN", "MAX"):
            parsed = parse_query(
                f"SELECT {agg}(fare) FROM taxi, hoods "
                f"WHERE taxi.loc INSIDE hoods.geometry")
            assert parsed.aggregation.agg == agg.lower()
            assert parsed.aggregation.value_column == "fare"

    def test_qualified_value_column(self):
        parsed = parse_query(
            "SELECT AVG(taxi.fare) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry")
        assert parsed.aggregation.value_column == "fare"

    def test_count_of_column_is_count_star(self):
        parsed = parse_query(
            "SELECT COUNT(fare) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry")
        assert parsed.aggregation.value_column is None

    def test_inside_clause_required(self):
        with pytest.raises(QueryError, match="INSIDE"):
            parse_query("SELECT COUNT(*) FROM taxi, hoods WHERE fare > 1")
        with pytest.raises(QueryError, match="INSIDE"):
            parse_query("SELECT COUNT(*) FROM taxi, hoods")

    def test_unknown_aggregate(self):
        with pytest.raises(QueryError, match="unsupported aggregate"):
            parse_query("SELECT MEDIAN(fare) FROM taxi, hoods "
                        "WHERE taxi.loc INSIDE hoods.geometry")

    def test_trailing_junk(self):
        with pytest.raises(QueryError, match="trailing"):
            parse_query(BASE + " GROUP BY hoods.id LIMIT")

    def test_empty_query(self):
        with pytest.raises(QueryError):
            parse_query("   ")

    def test_missing_regions(self):
        with pytest.raises(QueryError):
            parse_query("SELECT COUNT(*) FROM taxi WHERE "
                        "taxi.loc INSIDE hoods.geometry")


class TestParseFilters:
    def _filters(self, where: str):
        parsed = parse_query(BASE + " AND " + where)
        return parsed.aggregation.filters

    def test_comparison(self):
        (expr,) = self._filters("fare > 10")
        assert expr == Comparison("fare", ">", 10)

    def test_equality_spellings(self):
        (a,) = self._filters("payment = 'card'")
        (b,) = self._filters("payment == 'card'")
        assert a == b == Comparison("payment", "==", "card")

    def test_not_equal_spellings(self):
        (a,) = self._filters("payment != 'card'")
        (b,) = self._filters("payment <> 'card'")
        assert a == b == Comparison("payment", "!=", "card")

    def test_between_numeric(self):
        (expr,) = self._filters("fare BETWEEN 5 AND 10")
        assert expr == Between("fare", 5, 10)

    def test_between_time_column_is_time_range(self):
        (expr,) = self._filters("t BETWEEN 100 AND 200")
        assert expr == TimeRange("t", 100, 200)

    def test_in_list(self):
        (expr,) = self._filters("kind IN ('a', 'b')")
        assert expr == IsIn("kind", ("a", "b"))

    def test_and_conjunction_flattens(self):
        filters = self._filters("fare > 1 AND fare < 9")
        assert len(filters) == 1  # combined into one AND tree

    def test_or_and_parentheses(self):
        (expr,) = self._filters("(fare > 20 OR tip > 5)")
        assert isinstance(expr, Or)

    def test_not(self):
        (expr,) = self._filters("NOT payment = 'cash'")
        assert isinstance(expr, Not)

    def test_inside_under_or_rejected(self):
        with pytest.raises(QueryError, match="OR"):
            parse_query("SELECT COUNT(*) FROM taxi, hoods WHERE "
                        "fare > 1 OR taxi.loc INSIDE hoods.geometry")

    def test_inside_position_free(self):
        parsed = parse_query(
            "SELECT COUNT(*) FROM taxi, hoods WHERE fare > 1 "
            "AND taxi.loc INSIDE hoods.geometry AND tip > 0")
        assert len(parsed.aggregation.filters) == 1

    def test_describe(self):
        parsed = parse_query(BASE)
        assert "P=taxi" in parsed.describe()


class TestSemanticEquivalence:
    """Parsed queries must evaluate like hand-built ones."""

    @pytest.fixture(scope="class")
    def table(self):
        gen = np.random.default_rng(5)
        n = 5000
        return PointTable.from_arrays(
            gen.uniform(0, 100, n), gen.uniform(0, 100, n),
            fare=gen.exponential(10, n),
            t=timestamp_column("t", gen.integers(0, 1000, n)),
            kind=gen.choice(["a", "b"], n))

    def test_filter_mask_matches_builder_api(self, table):
        from repro.table import F

        parsed = parse_query(
            BASE + " AND fare > 10 AND kind = 'a' "
                   "AND t BETWEEN 100 AND 900")
        built = SpatialAggregation.count(
            F("fare") > 10, F("kind") == "a",
            TimeRange("t", 100, 900))
        got = parsed.aggregation.filter_mask(table)
        want = built.filter_mask(table)
        assert (got == want).all()

    def test_execution_via_datamanager(self, table, simple_regions):
        from repro.urbane import DataManager

        manager = DataManager()
        manager.add_dataset(table, "taxi")
        manager.add_region_set(simple_regions, "hoods")
        got = manager.sql(
            "SELECT COUNT(*) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry AND fare > 10 "
            "GROUP BY hoods.id", method="accurate")
        from repro.baselines import naive_join
        from repro.table import F

        want = naive_join(table, simple_regions,
                          SpatialAggregation.count(F("fare") > 10))
        assert got.values == pytest.approx(want.values)
