"""Tests for the backend registry and the backend adapters."""

import numpy as np
import pytest

from repro.core import (
    AggregationResult,
    Backend,
    BackendCapabilities,
    METHODS,
    SpatialAggregation,
    SpatialAggregationEngine,
    backend_names,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.errors import CubeError, QueryError
from repro.table import F, PointTable, timestamp_column

BUILTIN = ("bounded", "accurate", "tiled", "grid", "rtree", "quadtree",
           "naive", "cube")


def _table(n=2000, seed=0):
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(5, n),
        payment=gen.choice(["card", "cash"], n),
        t=timestamp_column("t", gen.integers(0, 86_400 * 4, n)))


class TestRegistry:
    def test_all_builtins_registered(self):
        names = backend_names()
        for name in BUILTIN:
            assert name in names
        assert set(BUILTIN) <= set(METHODS)

    def test_unknown_backend_rejected(self):
        with pytest.raises(QueryError):
            get_backend("quantum")

    def test_capabilities_sanity(self):
        assert get_backend("naive").capabilities.exact
        assert get_backend("bounded").capabilities.bounded
        assert not get_backend("bounded").capabilities.exact
        assert get_backend("tiled").capabilities.unbounded_canvas
        assert not get_backend("cube").capabilities.adhoc_regions

    def test_duplicate_name_rejected(self):
        with pytest.raises(QueryError):
            @register_backend
            class Dup(Backend):
                name = "bounded"

                def estimate_cost(self, table, regions, plan, ctx=None):
                    return 0.0

                def run(self, ctx, plan):
                    raise NotImplementedError

    def test_third_party_backend_via_decorator(self, simple_regions):
        @register_backend
        class ConstantBackend(Backend):
            name = "constant"
            capabilities = BackendCapabilities(exact=False)

            def estimate_cost(self, table, regions, plan, ctx=None):
                return 1.0

            def run(self, ctx, plan):
                return AggregationResult(
                    regions=plan.regions,
                    values=np.zeros(len(plan.regions)),
                    method="constant")

        try:
            engine = SpatialAggregationEngine(default_resolution=64)
            r = engine.execute(_table(100), simple_regions,
                               SpatialAggregation.count(),
                               method="constant")
            assert r.method == "constant"
            assert r.stats["plan"]["decision"]["chosen"] == "constant"
        finally:
            unregister_backend("constant")
        with pytest.raises(QueryError):
            get_backend("constant")


class TestCubeBackend:
    def test_cube_matches_naive(self, simple_regions):
        engine = SpatialAggregationEngine(default_resolution=64)
        table = _table(3000, seed=1)
        query = SpatialAggregation.count()
        cube = engine.execute(table, simple_regions, query, method="cube")
        naive = engine.execute(table, simple_regions, query,
                               method="naive")
        assert cube.exact
        assert cube.values == pytest.approx(naive.values)

    def test_cube_answers_materialized_filters(self, simple_regions):
        engine = SpatialAggregationEngine(default_resolution=64)
        table = _table(3000, seed=2)
        query = SpatialAggregation.sum_of("fare", F("payment") == "card")
        cube = engine.execute(table, simple_regions, query, method="cube")
        naive = engine.execute(table, simple_regions, query,
                               method="naive")
        assert cube.values == pytest.approx(naive.values)

    def test_cube_reused_from_cache(self, simple_regions):
        engine = SpatialAggregationEngine(default_resolution=64)
        table = _table(3000, seed=3)
        query = SpatialAggregation.count()
        engine.execute(table, simple_regions, query, method="cube")
        warm = engine.execute(table, simple_regions, query, method="cube")
        assert warm.stats["cache"]["query_misses"] == 0

    def test_cube_rejects_unanticipated_query(self, simple_regions):
        # MIN was never materialized — the honest pre-aggregation
        # failure mode the paper motivates Raster Join with.
        engine = SpatialAggregationEngine(default_resolution=64)
        with pytest.raises(CubeError):
            engine.execute(_table(500, seed=4), simple_regions,
                           SpatialAggregation.min_of("fare"),
                           method="cube")
