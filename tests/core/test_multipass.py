"""Tests for shared-pass multi-aggregate execution."""

import numpy as np
import pytest

from repro.core import (
    SpatialAggregation,
    SpatialAggregationEngine,
    bounded_raster_join,
    bounded_raster_join_multi,
)
from repro.raster import Viewport
from repro.table import F, PointTable, timestamp_column


def _table(n=20_000, seed=0):
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(10, n),
        tip=gen.exponential(2, n),
        t=timestamp_column("t", gen.integers(0, 1000, n)),
        kind=gen.choice(["a", "b"], n))


QUERIES = [
    SpatialAggregation.count(),
    SpatialAggregation.sum_of("fare"),
    SpatialAggregation.avg_of("fare"),
    SpatialAggregation.avg_of("tip"),
    SpatialAggregation.min_of("fare"),
    SpatialAggregation.max_of("tip"),
]


class TestEquivalence:
    def test_matches_individual_runs(self, simple_regions):
        table = _table()
        vp = Viewport.fit(simple_regions.bbox, 128)
        multi = bounded_raster_join_multi(table, simple_regions, QUERIES, vp)
        assert len(multi) == len(QUERIES)
        for query, got in zip(QUERIES, multi):
            want = bounded_raster_join(table, simple_regions, query, vp)
            both_nan = np.isnan(got.values) & np.isnan(want.values)
            assert (both_nan | np.isclose(got.values, want.values)).all()
            if want.has_bounds:
                assert got.has_bounds
                assert got.lower == pytest.approx(want.lower)
                assert got.upper == pytest.approx(want.upper)

    def test_mixed_filters_grouped_correctly(self, simple_regions):
        table = _table(seed=1)
        vp = Viewport.fit(simple_regions.bbox, 96)
        queries = [
            SpatialAggregation.count(F("kind") == "a"),
            SpatialAggregation.sum_of("fare", F("kind") == "a"),
            SpatialAggregation.count(F("kind") == "b"),
            SpatialAggregation.count(),
        ]
        multi = bounded_raster_join_multi(table, simple_regions, queries, vp)
        for query, got in zip(queries, multi):
            want = bounded_raster_join(table, simple_regions, query, vp)
            assert got.values == pytest.approx(want.values)
        # Grouping: the two kind=='a' queries share a pass.
        assert multi[0].stats["shared_group_size"] == 2
        assert multi[2].stats["shared_group_size"] == 1

    def test_results_aligned_with_queries(self, simple_regions):
        table = _table(seed=2)
        vp = Viewport.fit(simple_regions.bbox, 64)
        queries = [SpatialAggregation.count(F("kind") == "b"),
                   SpatialAggregation.count()]
        multi = bounded_raster_join_multi(table, simple_regions, queries, vp)
        # Filtered count must be <= unfiltered count everywhere.
        assert (multi[0].values <= multi[1].values + 1e-9).all()

    def test_engine_entry_point(self, simple_regions, engine):
        table = _table(seed=3)
        results = engine.execute_multi(table, simple_regions, QUERIES,
                                       resolution=128)
        single = engine.execute(table, simple_regions, QUERIES[0],
                                method="bounded", resolution=128)
        assert results[0].values == pytest.approx(single.values)
        assert results[0].stats["queries_in_pass"] == len(QUERIES)


class TestSharingIsFaster:
    def test_shared_pass_beats_separate_passes(self, simple_regions):
        """Six aggregates over one filter signature should run meaningfully
        faster shared than separately (shared mask + projection)."""
        import time

        table = _table(200_000, seed=4)
        vp = Viewport.fit(simple_regions.bbox, 256)
        from repro.raster import build_fragment_table

        fragments = build_fragment_table(list(simple_regions.geometries), vp)

        def run_separate():
            for query in QUERIES:
                bounded_raster_join(table, simple_regions, query, vp,
                                    fragments=fragments)

        def run_shared():
            bounded_raster_join_multi(table, simple_regions, QUERIES, vp,
                                      fragments=fragments)

        run_separate(), run_shared()  # warm
        t0 = time.perf_counter()
        run_separate()
        t_sep = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_shared()
        t_shared = time.perf_counter() - t0
        assert t_shared < t_sep
