"""Tests for RegionSet."""

import numpy as np
import pytest

from repro.core import RegionSet
from repro.errors import GeometryError
from repro.geometry import Polygon, regular_polygon


def _set():
    return RegionSet("demo",
                     [regular_polygon(10, 10, 5, 6),
                      regular_polygon(30, 30, 5, 6)],
                     ["west", "east"])


class TestConstruction:
    def test_names_default(self):
        rs = RegionSet("r", [regular_polygon(0, 0, 1, 4)])
        assert rs.region_names == ("r-0",)

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            RegionSet("r", [])

    def test_name_count_mismatch(self):
        with pytest.raises(GeometryError):
            RegionSet("r", [regular_polygon(0, 0, 1, 4)], ["a", "b"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(GeometryError):
            RegionSet("r",
                      [regular_polygon(0, 0, 1, 4),
                       regular_polygon(5, 5, 1, 4)],
                      ["a", "a"])

    def test_raw_vertex_input_coerced(self):
        rs = RegionSet("r", [[[0, 0], [1, 0], [1, 1], [0, 1]]])
        assert isinstance(rs[0], Polygon)


class TestAccessors:
    def test_id_of(self):
        rs = _set()
        assert rs.id_of("east") == 1
        with pytest.raises(GeometryError):
            rs.id_of("north")

    def test_iteration_and_len(self):
        rs = _set()
        assert len(rs) == 2
        assert len(list(rs)) == 2

    def test_bbox_spans_all(self):
        rs = _set()
        assert rs.bbox.contains_bbox(rs[0].bbox)
        assert rs.bbox.contains_bbox(rs[1].bbox)

    def test_vector_properties(self):
        rs = _set()
        assert rs.areas().shape == (2,)
        assert rs.perimeters().shape == (2,)
        assert rs.centroids().shape == (2, 2)
        assert rs.total_vertices == 12

    def test_centroids_near_centers(self):
        rs = _set()
        assert rs.centroids()[0] == pytest.approx([10, 10], abs=1e-9)

    def test_repr(self):
        assert "demo" in repr(_set())
