"""Tests for the epsilon <-> resolution machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    epsilon_for_viewport,
    relative_bound_width,
    resolution_for_epsilon,
)
from repro.errors import QueryError
from repro.geometry import BBox
from repro.raster import Viewport


class TestResolutionForEpsilon:
    def test_honors_tolerance(self):
        box = BBox(0, 0, 1000, 800)
        for eps in (100.0, 10.0, 1.0):
            res = resolution_for_epsilon(box, eps)
            vp = Viewport.fit(box, res)
            assert vp.pixel_diag <= eps

    def test_monotone_in_epsilon(self):
        box = BBox(0, 0, 1000, 1000)
        res_coarse = resolution_for_epsilon(box, 50.0)
        res_fine = resolution_for_epsilon(box, 5.0)
        assert res_fine > res_coarse

    def test_nonpositive_epsilon_rejected(self):
        with pytest.raises(QueryError):
            resolution_for_epsilon(BBox(0, 0, 1, 1), 0.0)

    def test_too_small_epsilon_rejected(self):
        with pytest.raises(QueryError):
            resolution_for_epsilon(BBox(0, 0, 1000, 1000), 1e-6,
                                   max_resolution=2048)

    def test_degenerate_bbox_rejected(self):
        with pytest.raises(QueryError):
            resolution_for_epsilon(BBox(0, 0, 0, 1), 0.1)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(1, 10_000), st.floats(0.3, 3),
           st.floats(0.005, 0.3))
    def test_tolerance_property(self, size, aspect, eps_frac):
        box = BBox(0, 0, size, size * aspect)
        eps = max(size, size * aspect) * eps_frac
        res = resolution_for_epsilon(box, eps, max_resolution=10_000)
        assert Viewport.fit(box, res).pixel_diag <= eps

    def test_epsilon_for_viewport(self):
        vp = Viewport(BBox(0, 0, 100, 100), 100, 100)
        assert epsilon_for_viewport(vp) == pytest.approx(np.sqrt(2))


class TestRelativeBoundWidth:
    def test_zero_width(self):
        vals = np.array([10.0, 20.0])
        assert relative_bound_width(vals, vals, vals) == 0.0

    def test_half_width(self):
        vals = np.array([10.0])
        lower = np.array([8.0])
        upper = np.array([12.0])
        assert relative_bound_width(lower, upper, vals) == pytest.approx(0.2)

    def test_all_zero_values(self):
        z = np.zeros(3)
        assert relative_bound_width(z, z + 1, z) == 0.0
