"""Cross-cutting algebraic invariants of the query engine.

Database-style metamorphic tests: relations that must hold between the
results of *different* queries, regardless of data or geometry.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    RegionSet,
    SpatialAggregation,
    SpatialAggregationEngine,
)
from repro.geometry import regular_polygon
from repro.table import F, PointTable, TimeRange, timestamp_column


@pytest.fixture(scope="module")
def engine():
    return SpatialAggregationEngine(default_resolution=128)


@pytest.fixture(scope="module")
def table():
    gen = np.random.default_rng(55)
    n = 30_000
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(10, n),
        t=timestamp_column("t", gen.integers(0, 1200, n)),
        kind=gen.choice(["a", "b", "c"], n))


METHODS = ("bounded", "accurate", "grid", "naive")


class TestFilterMonotonicity:
    @pytest.mark.parametrize("method", METHODS)
    def test_stricter_filter_never_increases_counts(self, engine, table,
                                                    simple_regions, method):
        loose = engine.execute(table, simple_regions,
                               SpatialAggregation.count(F("fare") > 5),
                               method=method)
        strict = engine.execute(
            table, simple_regions,
            SpatialAggregation.count(F("fare") > 5, F("kind") == "a"),
            method=method)
        assert (strict.values <= loose.values + 1e-9).all()

    @settings(max_examples=20, deadline=None)
    @given(threshold=st.floats(0, 40))
    def test_threshold_monotonicity_property(self, engine, table,
                                             simple_regions, threshold):
        lo = engine.execute(table, simple_regions,
                            SpatialAggregation.count(F("fare") > threshold),
                            method="accurate")
        hi = engine.execute(
            table, simple_regions,
            SpatialAggregation.count(F("fare") > threshold + 5),
            method="accurate")
        assert (hi.values <= lo.values).all()


class TestTimePartitionAdditivity:
    @pytest.mark.parametrize("method", ("accurate", "grid", "naive"))
    def test_disjoint_windows_sum_to_total(self, engine, table,
                                           simple_regions, method):
        """COUNT over a partition of the timeline sums to the whole."""
        edges = [0, 300, 700, 1201]
        total = engine.execute(table, simple_regions,
                               SpatialAggregation.count(), method=method)
        parts = [
            engine.execute(table, simple_regions,
                           SpatialAggregation.count(
                               TimeRange("t", a, b)), method=method)
            for a, b in zip(edges[:-1], edges[1:])
        ]
        summed = sum(p.values for p in parts)
        assert summed == pytest.approx(total.values)

    def test_category_partition_additivity(self, engine, table,
                                           simple_regions):
        total = engine.execute(table, simple_regions,
                               SpatialAggregation.sum_of("fare"),
                               method="accurate")
        parts = [
            engine.execute(table, simple_regions,
                           SpatialAggregation.sum_of("fare",
                                                     F("kind") == label),
                           method="accurate")
            for label in ("a", "b", "c")
        ]
        assert sum(p.values for p in parts) == pytest.approx(total.values)


class TestRegionDecomposition:
    def test_region_union_counts_add_for_disjoint_sets(self, engine, table):
        """Splitting a region set into two disjoint subsets partitions
        the counts."""
        geoms = [regular_polygon(20, 20, 12, 7),
                 regular_polygon(60, 30, 14, 5),
                 regular_polygon(40, 75, 13, 9)]
        whole = RegionSet("whole", geoms)
        first = RegionSet("first", geoms[:1])
        rest = RegionSet("rest", geoms[1:])
        query = SpatialAggregation.count()
        all_counts = engine.execute(table, whole, query,
                                    method="accurate").values
        a = engine.execute(table, first, query, method="accurate").values
        b = engine.execute(table, rest, query, method="accurate").values
        assert np.concatenate([a, b]) == pytest.approx(all_counts)

    def test_subsampling_scales_counts(self, engine, table, simple_regions):
        """A uniform 50% sample halves expected per-region counts."""
        half = table.sample(len(table) // 2, seed=1)
        full = engine.execute(table, simple_regions,
                              SpatialAggregation.count(),
                              method="accurate").values
        sampled = engine.execute(half, simple_regions,
                                 SpatialAggregation.count(),
                                 method="accurate").values
        big = full > 500
        ratio = sampled[big] / full[big]
        assert np.abs(ratio - 0.5).max() < 0.1


class TestAggregateRelations:
    @pytest.mark.parametrize("method", ("bounded", "accurate"))
    def test_avg_between_min_and_max(self, engine, table, simple_regions,
                                     method):
        avg = engine.execute(table, simple_regions,
                             SpatialAggregation.avg_of("fare"),
                             method=method).values
        mn = engine.execute(table, simple_regions,
                            SpatialAggregation.min_of("fare"),
                            method=method).values
        mx = engine.execute(table, simple_regions,
                            SpatialAggregation.max_of("fare"),
                            method=method).values
        ok = np.isfinite(avg)
        assert (mn[ok] - 1e-9 <= avg[ok]).all()
        assert (avg[ok] <= mx[ok] + 1e-9).all()

    def test_sum_equals_avg_times_count(self, engine, table,
                                        simple_regions):
        count = engine.execute(table, simple_regions,
                               SpatialAggregation.count(),
                               method="accurate").values
        total = engine.execute(table, simple_regions,
                               SpatialAggregation.sum_of("fare"),
                               method="accurate").values
        avg = engine.execute(table, simple_regions,
                             SpatialAggregation.avg_of("fare"),
                             method="accurate").values
        ok = count > 0
        assert total[ok] == pytest.approx(avg[ok] * count[ok])

    def test_scaling_values_scales_sum(self, engine, table, simple_regions):
        from repro.table import numeric_column

        doubled = table.with_column(
            numeric_column("fare2", table.values("fare") * 2.0))
        base = engine.execute(table, simple_regions,
                              SpatialAggregation.sum_of("fare"),
                              method="accurate").values
        double = engine.execute(doubled, simple_regions,
                                SpatialAggregation.sum_of("fare2"),
                                method="accurate").values
        assert double == pytest.approx(2.0 * base)
