"""Tests for the bounded raster join: bound validity and convergence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import naive_join
from repro.core import (
    RegionSet,
    SpatialAggregation,
    bounded_raster_join,
)
from repro.geometry import BBox, regular_polygon
from repro.raster import Viewport
from repro.table import F, PointTable, timestamp_column


def _table(n=30_000, seed=0):
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(10, n),
        t=timestamp_column("t", gen.integers(0, 1000, n)),
        kind=gen.choice(["a", "b"], n))


class TestBoundsValidity:
    @pytest.mark.parametrize("resolution", [16, 48, 128, 400])
    def test_count_bounds_contain_truth(self, simple_regions, resolution):
        table = _table()
        vp = Viewport.fit(simple_regions.bbox, resolution)
        got = bounded_raster_join(table, simple_regions,
                                  SpatialAggregation.count(), vp)
        want = naive_join(table, simple_regions, SpatialAggregation.count())
        assert got.has_bounds
        assert got.bounds_contain(want)

    def test_sum_bounds_contain_truth(self, simple_regions):
        table = _table(seed=1)
        query = SpatialAggregation.sum_of("fare")
        vp = Viewport.fit(simple_regions.bbox, 64)
        got = bounded_raster_join(table, simple_regions, query, vp)
        want = naive_join(table, simple_regions, query)
        assert got.bounds_contain(want)

    def test_bounds_with_filters(self, simple_regions):
        table = _table(seed=2)
        query = SpatialAggregation.count(F("kind") == "a",
                                         F("t").time_range(0, 500))
        vp = Viewport.fit(simple_regions.bbox, 64)
        got = bounded_raster_join(table, simple_regions, query, vp)
        want = naive_join(table, simple_regions, query)
        assert got.bounds_contain(want)

    def test_no_bounds_for_min_max_avg(self, simple_regions):
        table = _table(2000, seed=3)
        vp = Viewport.fit(simple_regions.bbox, 64)
        for query in (SpatialAggregation.avg_of("fare"),
                      SpatialAggregation.min_of("fare"),
                      SpatialAggregation.max_of("fare")):
            got = bounded_raster_join(table, simple_regions, query, vp)
            assert not got.has_bounds

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 5000), st.integers(12, 200))
    def test_bounds_property(self, seed, resolution):
        gen = np.random.default_rng(seed)
        geoms = [regular_polygon(gen.uniform(20, 80), gen.uniform(20, 80),
                                 gen.uniform(5, 30), int(gen.integers(3, 10)))
                 for __ in range(3)]
        regions = RegionSet(f"r{seed}", geoms)
        n = int(gen.integers(100, 5000))
        table = PointTable.from_arrays(gen.uniform(0, 100, n),
                                       gen.uniform(0, 100, n))
        vp = Viewport.fit(BBox(0, 0, 100, 100), resolution)
        got = bounded_raster_join(table, regions,
                                  SpatialAggregation.count(), vp)
        want = naive_join(table, regions, SpatialAggregation.count())
        assert got.bounds_contain(want)


class TestConvergence:
    def test_error_shrinks_with_resolution(self, simple_regions):
        """Max relative error decreases (weakly) as the canvas grows."""
        table = _table(seed=4)
        want = naive_join(table, simple_regions, SpatialAggregation.count())
        errors = []
        for resolution in (16, 64, 256, 1024):
            vp = Viewport.fit(simple_regions.bbox, resolution)
            got = bounded_raster_join(table, simple_regions,
                                      SpatialAggregation.count(), vp)
            errors.append(got.compare_to(want)["max_rel_error"])
        assert errors[-1] < errors[0]
        assert errors[-1] < 0.01  # sub-percent at 1024

    def test_bound_width_shrinks_with_resolution(self, simple_regions):
        table = _table(seed=5)
        widths = []
        for resolution in (16, 64, 256):
            vp = Viewport.fit(simple_regions.bbox, resolution)
            got = bounded_raster_join(table, simple_regions,
                                      SpatialAggregation.count(), vp)
            widths.append(got.max_bound_width())
        assert widths[2] < widths[1] < widths[0]

    def test_all_aggregates_close_at_high_resolution(self, simple_regions):
        table = _table(seed=6)
        vp = Viewport.fit(simple_regions.bbox, 1024)
        for query in (SpatialAggregation.count(),
                      SpatialAggregation.sum_of("fare"),
                      SpatialAggregation.avg_of("fare")):
            got = bounded_raster_join(table, simple_regions, query, vp)
            want = naive_join(table, simple_regions, query)
            metrics = got.compare_to(want)
            assert metrics["max_rel_error"] < 0.02

    def test_min_max_estimates_sane(self, simple_regions):
        """Raster min/max lie within the true value range."""
        table = _table(seed=7)
        vp = Viewport.fit(simple_regions.bbox, 256)
        got_min = bounded_raster_join(
            table, simple_regions, SpatialAggregation.min_of("fare"), vp)
        got_max = bounded_raster_join(
            table, simple_regions, SpatialAggregation.max_of("fare"), vp)
        fare = table.values("fare")
        ok = np.isfinite(got_min.values)
        assert (got_min.values[ok] >= fare.min() - 1e-9).all()
        assert (got_max.values[ok] <= fare.max() + 1e-9).all()


class TestMetadata:
    def test_stats_and_epsilon(self, simple_regions):
        table = _table(1000, seed=8)
        vp = Viewport.fit(simple_regions.bbox, 64)
        got = bounded_raster_join(table, simple_regions,
                                  SpatialAggregation.count(), vp)
        assert got.method == "bounded-raster-join"
        assert not got.exact
        assert got.stats["epsilon_world_units"] == pytest.approx(
            vp.pixel_diag)
        assert got.stats["points_in_viewport"] <= 1000

    def test_fragment_reuse_gives_same_answer(self, simple_regions):
        from repro.raster import build_fragment_table

        table = _table(2000, seed=9)
        vp = Viewport.fit(simple_regions.bbox, 64)
        fragments = build_fragment_table(
            list(simple_regions.geometries), vp)
        a = bounded_raster_join(table, simple_regions,
                                SpatialAggregation.count(), vp)
        b = bounded_raster_join(table, simple_regions,
                                SpatialAggregation.count(), vp,
                                fragments=fragments)
        assert (a.values == b.values).all()
