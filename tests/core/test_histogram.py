"""Tests for per-region histograms and approximate percentiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import assign_regions
from repro.core import region_histograms
from repro.errors import QueryError
from repro.raster import Viewport
from repro.table import F, PointTable


def _table(n=40_000, seed=0):
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(10, n),
        kind=gen.choice(["a", "b"], n))


class TestHistograms:
    def test_totals_match_label_counts(self, simple_regions):
        table = _table()
        vp = Viewport.fit(simple_regions.bbox, 256)
        hist = region_histograms(table, simple_regions, vp, "fare",
                                 bins=32)
        assert hist.totals().sum() == hist.stats["points_binned"]
        assert hist.counts.shape == (len(simple_regions), 32)

    def test_all_labeled_values_within_edges(self, simple_regions):
        table = _table(seed=1)
        vp = Viewport.fit(simple_regions.bbox, 256)
        hist = region_histograms(table, simple_regions, vp, "fare")
        labels = _pixel_labels_for(table, simple_regions, vp)
        fare = table.values("fare")[labels >= 0]
        assert hist.edges[0] <= fare.min()
        assert hist.edges[-1] >= fare.max()

    def test_matches_numpy_histogram_per_region(self, simple_regions):
        """Region r's histogram equals np.histogram over its labeled
        points (same edges)."""
        table = _table(seed=2)
        vp = Viewport.fit(simple_regions.bbox, 256)
        hist = region_histograms(table, simple_regions, vp, "fare",
                                 bins=20)
        labels = _pixel_labels_for(table, simple_regions, vp)
        fare = table.values("fare")
        for gid in range(len(simple_regions)):
            mine = hist.counts[gid]
            want, __ = np.histogram(fare[labels == gid], bins=hist.edges)
            assert mine == pytest.approx(want)

    def test_filters_applied(self, simple_regions):
        table = _table(seed=3)
        vp = Viewport.fit(simple_regions.bbox, 256)
        full = region_histograms(table, simple_regions, vp, "fare")
        part = region_histograms(table, simple_regions, vp, "fare",
                                 filters=[F("kind") == "a"])
        assert part.totals().sum() < full.totals().sum()

    def test_explicit_range_clips(self, simple_regions):
        table = _table(seed=4)
        vp = Viewport.fit(simple_regions.bbox, 128)
        hist = region_histograms(table, simple_regions, vp, "fare",
                                 bins=10, value_range=(0.0, 20.0))
        assert hist.edges[-1] == 20.0
        # Values above the range land in the last bin (clipped).
        assert hist.totals().sum() == hist.stats["points_binned"]

    def test_validation(self, simple_regions):
        table = _table(100, seed=5)
        vp = Viewport.fit(simple_regions.bbox, 64)
        with pytest.raises(QueryError):
            region_histograms(table, simple_regions, vp, "fare", bins=0)
        with pytest.raises(QueryError):
            region_histograms(table, simple_regions, vp, "fare",
                              value_range=(5.0, 5.0))
        with pytest.raises(QueryError):
            region_histograms(table, simple_regions, vp, "kind")


class TestPercentiles:
    def test_percentile_within_bin_width(self, simple_regions):
        table = _table(seed=6)
        vp = Viewport.fit(simple_regions.bbox, 256)
        hist = region_histograms(table, simple_regions, vp, "fare",
                                 bins=200)
        labels = _pixel_labels_for(table, simple_regions, vp)
        fare = table.values("fare")
        for q in (10, 50, 90):
            approx = hist.percentile(q)
            for gid in range(len(simple_regions)):
                sel = fare[labels == gid]
                if len(sel) == 0:
                    assert np.isnan(approx[gid])
                    continue
                true = np.percentile(sel, q)
                assert abs(approx[gid] - true) <= 2 * hist.bin_width

    def test_median_monotone_in_q(self, simple_regions):
        table = _table(seed=7)
        vp = Viewport.fit(simple_regions.bbox, 128)
        hist = region_histograms(table, simple_regions, vp, "fare")
        p25 = hist.percentile(25)
        p50 = hist.median()
        p75 = hist.percentile(75)
        ok = ~np.isnan(p50)
        assert (p25[ok] <= p50[ok]).all()
        assert (p50[ok] <= p75[ok]).all()

    def test_mean_estimate_close_to_true_mean(self, simple_regions):
        table = _table(seed=8)
        vp = Viewport.fit(simple_regions.bbox, 256)
        hist = region_histograms(table, simple_regions, vp, "fare",
                                 bins=256)
        labels = _pixel_labels_for(table, simple_regions, vp)
        fare = table.values("fare")
        est = hist.mean_estimate()
        for gid in range(len(simple_regions)):
            sel = fare[labels == gid]
            if len(sel):
                assert est[gid] == pytest.approx(sel.mean(),
                                                 abs=hist.bin_width)

    def test_percentile_bounds_validation(self, simple_regions):
        table = _table(100, seed=9)
        vp = Viewport.fit(simple_regions.bbox, 64)
        hist = region_histograms(table, simple_regions, vp, "fare")
        with pytest.raises(QueryError):
            hist.percentile(120)

    @settings(max_examples=20, deadline=None)
    @given(q=st.floats(0, 100))
    def test_percentile_within_value_range(self, simple_regions, q):
        table = _table(5000, seed=10)
        vp = Viewport.fit(simple_regions.bbox, 128)
        hist = region_histograms(table, simple_regions, vp, "fare")
        out = hist.percentile(q)
        ok = ~np.isnan(out)
        assert (out[ok] >= hist.edges[0]).all()
        assert (out[ok] <= hist.edges[-1]).all()


def _pixel_labels_for(table, regions, viewport):
    """Ground-truth pixel labels per point (same path the module uses)."""
    from repro.core import pixel_region_labels
    from repro.raster import build_fragment_table

    fragments = build_fragment_table(list(regions.geometries), viewport)
    labels = pixel_region_labels(fragments)
    pixel_ids, valid = viewport.pixel_ids_of(table.x, table.y)
    out = np.full(len(table), -1, dtype=np.int64)
    out[valid] = labels[pixel_ids[valid]]
    return out
