"""Parallel/serial equivalence for the multi-process execution layer.

The parallel joins must be drop-in replacements: bitwise-equal results
for COUNT and SUM (the test data uses integer-valued measures, so float
addition is exact in any merge order), tolerance-equal for AVG/MIN/MAX.
The suite covers all five aggregates, with and without filters, plus
the empty-chunk, empty-table, and single-worker edge cases, and the
planner's serial-fallback threshold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AVG,
    COUNT,
    MAX,
    MIN,
    SUM,
    ParallelConfig,
    SpatialAggregation,
    SpatialAggregationEngine,
    accurate_raster_join,
    bounded_raster_join,
    parallel_accurate_raster_join,
    parallel_bounded_raster_join,
    parallel_build_fragment_table,
    parallel_index_join,
    tiled_bounded_raster_join,
)
from repro.core.parallel import ParallelConfig as PC
from repro.core.parallel import parallel_point_pass
from repro.index import PointGridIndex
from repro.raster import Viewport, build_fragment_table
from repro.table import F, PointTable

AGGREGATES = (COUNT, SUM, AVG, MIN, MAX)

#: Forces the multi-process path even on tiny test inputs.
SMALL_CHUNKS = ParallelConfig(workers=3, chunk_size=400,
                              serial_threshold=100, region_threshold=2,
                              fragment_threshold=1)


def _table(n: int, seed: int = 3) -> PointTable:
    gen = np.random.default_rng(seed)
    # Integer-valued fares: float sums are then exact regardless of the
    # order chunks merge in, so SUM can be asserted bitwise.
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=np.floor(gen.exponential(10.0, n)))


def _query(agg: str, filtered: bool) -> SpatialAggregation:
    if agg == COUNT:
        query = SpatialAggregation.count()
    else:
        ctor = {SUM: SpatialAggregation.sum_of,
                AVG: SpatialAggregation.avg_of,
                MIN: SpatialAggregation.min_of,
                MAX: SpatialAggregation.max_of}[agg]
        query = ctor("fare")
    if filtered:
        query = query.where(F("fare") > 5)
    return query


def _assert_equivalent(agg: str, serial: np.ndarray,
                       parallel: np.ndarray) -> None:
    if agg in (COUNT, SUM):
        np.testing.assert_array_equal(parallel, serial)
    else:
        np.testing.assert_allclose(parallel, serial, rtol=1e-12,
                                   equal_nan=True)


@pytest.fixture(scope="module")
def table() -> PointTable:
    return _table(4_000)


@pytest.fixture(scope="module")
def viewport(simple_regions) -> Viewport:
    return Viewport.fit(simple_regions.bbox, 256)


@pytest.fixture(scope="module")
def fragments(simple_regions, viewport):
    return build_fragment_table(list(simple_regions.geometries), viewport)


class TestBoundedEquivalence:
    @pytest.mark.parametrize("agg", AGGREGATES)
    @pytest.mark.parametrize("filtered", [False, True])
    def test_matches_serial(self, agg, filtered, table, simple_regions,
                            viewport, fragments):
        query = _query(agg, filtered)
        serial = bounded_raster_join(table, simple_regions, query, viewport,
                                     fragments=fragments)
        parallel = parallel_bounded_raster_join(
            table, simple_regions, query, viewport, fragments=fragments,
            config=SMALL_CHUNKS)
        _assert_equivalent(agg, serial.values, parallel.values)
        if serial.has_bounds:
            np.testing.assert_array_equal(parallel.lower, serial.lower)
            np.testing.assert_array_equal(parallel.upper, serial.upper)
        assert parallel.method == serial.method
        assert parallel.stats["parallel"]["point_pass"]["pooled"]

    def test_single_worker_runs_in_process(self, table, simple_regions,
                                           viewport, fragments):
        config = ParallelConfig(workers=1, chunk_size=400)
        serial = bounded_raster_join(table, simple_regions,
                                     SpatialAggregation.count(), viewport,
                                     fragments=fragments)
        parallel = parallel_bounded_raster_join(
            table, simple_regions, SpatialAggregation.count(), viewport,
            fragments=fragments, config=config)
        np.testing.assert_array_equal(parallel.values, serial.values)
        assert not parallel.stats["parallel"]["point_pass"]["pooled"]

    def test_empty_table(self, simple_regions, viewport, fragments):
        empty = _table(0)
        result = parallel_bounded_raster_join(
            empty, simple_regions, SpatialAggregation.count(), viewport,
            fragments=fragments, config=SMALL_CHUNKS)
        np.testing.assert_array_equal(result.values,
                                      np.zeros(len(simple_regions)))

    def test_empty_chunk(self, simple_regions, viewport, fragments):
        # A filter that empties some chunks entirely: all matching rows
        # live in the first fifth of the table, the rest scatter nothing.
        gen = np.random.default_rng(11)
        n = 2_000
        x = np.concatenate([gen.uniform(0, 100, n // 5),
                            np.full(n - n // 5, 50.0)])
        y = np.concatenate([gen.uniform(0, 100, n // 5),
                            np.full(n - n // 5, 50.0)])
        fare = np.concatenate([np.full(n // 5, 7.0),
                               np.zeros(n - n // 5)])
        table = PointTable.from_arrays(x, y, fare=fare)
        query = SpatialAggregation.count(F("fare") > 5)
        serial = bounded_raster_join(table, simple_regions, query, viewport,
                                     fragments=fragments)
        parallel = parallel_bounded_raster_join(
            table, simple_regions, query, viewport, fragments=fragments,
            config=SMALL_CHUNKS)
        np.testing.assert_array_equal(parallel.values, serial.values)


class TestAccurateEquivalence:
    @pytest.mark.parametrize("agg", AGGREGATES)
    @pytest.mark.parametrize("filtered", [False, True])
    def test_matches_serial(self, agg, filtered, table, simple_regions,
                            viewport, fragments):
        query = _query(agg, filtered)
        serial = accurate_raster_join(table, simple_regions, query,
                                      viewport, fragments=fragments)
        parallel = parallel_accurate_raster_join(
            table, simple_regions, query, viewport, fragments=fragments,
            config=SMALL_CHUNKS)
        # Same (point, region) decisions, only distributed — exact for
        # every aggregate with integer-valued data.
        _assert_equivalent(agg, serial.values, parallel.values)
        assert parallel.exact
        assert (parallel.stats["boundary_points_tested"]
                == serial.stats["boundary_points_tested"])


class TestTiledEquivalence:
    @pytest.mark.parametrize("agg", AGGREGATES)
    def test_matches_serial(self, agg, table, simple_regions):
        query = _query(agg, filtered=False)
        serial = tiled_bounded_raster_join(table, simple_regions, query,
                                           resolution=512, tile_pixels=128)
        parallel = tiled_bounded_raster_join(table, simple_regions, query,
                                             resolution=512, tile_pixels=128,
                                             config=SMALL_CHUNKS)
        _assert_equivalent(agg, serial.values, parallel.values)
        if serial.has_bounds:
            np.testing.assert_allclose(parallel.lower, serial.lower,
                                       rtol=1e-12)
            np.testing.assert_allclose(parallel.upper, serial.upper,
                                       rtol=1e-12)


class TestIndexJoinEquivalence:
    @pytest.mark.parametrize("agg", AGGREGATES)
    def test_matches_serial(self, agg, table, simple_regions):
        from repro.baselines.grid_join import grid_index_join

        query = _query(agg, filtered=True)
        index = PointGridIndex(table.x, table.y, table.bbox, nx=32, ny=32)
        serial = grid_index_join(table, simple_regions, query, index=index)
        parallel = parallel_index_join(table, simple_regions, query, index,
                                       SMALL_CHUNKS,
                                       method="grid-index-join")
        _assert_equivalent(agg, serial.values, parallel.values)
        assert parallel.method == serial.method
        assert (parallel.stats["candidates_tested"]
                == serial.stats["candidates_tested"])


class TestFragmentStitching:
    def test_sharded_build_matches_serial(self, simple_regions, viewport):
        serial = build_fragment_table(list(simple_regions.geometries),
                                      viewport)
        parallel = parallel_build_fragment_table(
            list(simple_regions.geometries), viewport, SMALL_CHUNKS)
        for name in ("interior_pixels", "interior_polys",
                     "boundary_pixels", "boundary_polys",
                     "covered_boundary_pixels", "covered_boundary_polys",
                     "covered_pixels", "covered_polys"):
            np.testing.assert_array_equal(getattr(parallel, name),
                                          getattr(serial, name),
                                          err_msg=name)
        assert parallel.num_polygons == serial.num_polygons

    def test_covered_arrays_precomputed(self, fragments):
        # Satellite: the concatenated covered arrays are materialized at
        # build time, not re-concatenated per query.
        assert "covered_pixels" in fragments.__dict__
        assert fragments.covered_pixels is fragments.covered_pixels


class TestPointPassStats:
    def test_per_worker_timings_recorded(self, table, simple_regions,
                                         viewport):
        canvases, stats = parallel_point_pass(
            table, SpatialAggregation.count(), viewport, SMALL_CHUNKS)
        assert stats["pooled"]
        assert stats["chunks"] > 1
        assert len(stats["per_worker"]) == stats["chunks"]
        assert all(w["time_s"] >= 0 for w in stats["per_worker"])
        assert sum(w["rows"] for w in stats["per_worker"]) == len(table)
        assert canvases["count"].sum() == stats["points_in_viewport"]


class TestConfigDecisions:
    def test_below_threshold_is_serial(self):
        config = PC(workers=4, serial_threshold=1_000)
        decision = config.decide(999)
        assert not decision["use"]
        assert "below serial threshold" in decision["reason"]

    def test_above_threshold_is_parallel(self):
        config = PC(workers=4, chunk_size=100, serial_threshold=1_000)
        decision = config.decide(1_000)
        assert decision["use"]
        assert decision["workers"] == 4

    def test_one_worker_never_parallel(self):
        config = PC(workers=1, serial_threshold=10)
        assert not config.decide(10_000_000)["use"]

    def test_point_cost_serial_below_threshold(self):
        config = PC(workers=4, serial_threshold=1_000)
        assert config.point_cost(500) == 500.0

    def test_point_cost_parallel_above_threshold(self):
        config = PC(workers=4, chunk_size=1_000, serial_threshold=1_000)
        n = 4_000_000
        assert config.point_cost(n) < n


class TestEngineIntegration:
    def test_workers_kwarg_threads_through(self, simple_regions):
        engine = SpatialAggregationEngine(default_resolution=128, workers=2)
        assert engine.ctx.parallel.resolve_workers() == 2
        result = engine.execute(_table(500), simple_regions,
                                SpatialAggregation.count(),
                                method="bounded")
        # Small input: the backend must record a serial decision.
        assert result.stats["parallel"]["mode"] == "serial"
        assert result.stats["plan"]["parallel"]["use"] is False

    def test_engine_parallel_run_matches_serial(self, simple_regions):
        table = _table(6_000)
        parallel_engine = SpatialAggregationEngine(
            default_resolution=128,
            parallel=ParallelConfig(workers=2, chunk_size=500,
                                    serial_threshold=1_000))
        serial_engine = SpatialAggregationEngine(default_resolution=128,
                                                 workers=1)
        query = SpatialAggregation.sum_of("fare")
        rp = parallel_engine.execute(table, simple_regions, query,
                                     method="bounded")
        rs = serial_engine.execute(table, simple_regions, query,
                                   method="bounded")
        np.testing.assert_array_equal(rp.values, rs.values)
        assert rp.stats["parallel"]["mode"] == "parallel"
        assert rp.stats["plan"]["parallel"]["use"] is True
