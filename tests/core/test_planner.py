"""Tests for the cost-based planner behind ``method="auto"``."""

import numpy as np
import pytest

from repro.core import (
    SpatialAggregation,
    SpatialAggregationEngine,
)
from repro.table import PointTable


def _table(n, seed=0):
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(5, n))


@pytest.fixture()
def engine():
    return SpatialAggregationEngine(default_resolution=256)


class TestBackendChoice:
    def test_tiny_table_avoids_raster(self, simple_regions, engine):
        r = engine.execute(_table(200), simple_regions,
                           SpatialAggregation.count())
        assert r.stats["plan"]["decision"]["chosen"] in ("naive", "grid")

    def test_large_table_coarse_epsilon_goes_bounded(self, simple_regions,
                                                     engine, small_table):
        r = engine.execute(small_table, simple_regions,
                           SpatialAggregation.count(), epsilon=5.0)
        assert r.stats["plan"]["decision"]["chosen"] == "bounded"
        assert r.has_bounds

    def test_exact_request_goes_accurate(self, simple_regions, engine,
                                         small_table):
        r = engine.execute(small_table, simple_regions,
                           SpatialAggregation.count(), exact=True)
        assert r.stats["plan"]["decision"]["chosen"] == "accurate"
        assert r.exact

    def test_resolution_above_cap_goes_tiled(self, simple_regions,
                                             small_table):
        engine = SpatialAggregationEngine(default_resolution=256,
                                          max_canvas_resolution=512)
        r = engine.execute(small_table, simple_regions,
                           SpatialAggregation.count(), resolution=2048)
        assert r.stats["plan"]["decision"]["chosen"] == "tiled"
        assert r.stats["resolution"] == 2048

    def test_tight_epsilon_goes_tiled(self, simple_regions, small_table):
        engine = SpatialAggregationEngine(default_resolution=256,
                                          max_canvas_resolution=256)
        r = engine.execute(small_table, simple_regions,
                           SpatialAggregation.count(), epsilon=0.05)
        assert r.stats["plan"]["decision"]["chosen"] == "tiled"

    def test_exact_never_picks_approximate(self, simple_regions, engine):
        for n in (100, 5_000):
            r = engine.execute(_table(n, seed=n), simple_regions,
                               SpatialAggregation.count(), exact=True)
            assert r.exact, r.stats["plan"]

    def test_cached_cube_is_picked_up(self, simple_regions, engine):
        table = _table(5_000, seed=3)
        query = SpatialAggregation.count()
        engine.execute(table, simple_regions, query, method="cube")
        r = engine.execute(table, simple_regions, query)
        assert r.stats["plan"]["decision"]["chosen"] == "cube"
        assert r.stats["plan"]["inputs"]["cube_cached"]

    def test_no_cube_for_adhoc_regions(self, simple_regions, city_regions,
                                       engine):
        # A cube exists for simple_regions, but a never-seen region set
        # must not route to the cube backend.
        table = _table(5_000, seed=4)
        query = SpatialAggregation.count()
        engine.execute(table, simple_regions, query, method="cube")
        r = engine.execute(table, city_regions, query)
        assert r.stats["plan"]["decision"]["chosen"] != "cube"


class TestPlanRecording:
    def test_decision_records_inputs_and_costs(self, simple_regions,
                                               engine):
        r = engine.execute(_table(1_000, seed=5), simple_regions,
                           SpatialAggregation.count())
        plan = r.stats["plan"]
        assert set(plan) == {"inputs", "decision", "parallel", "shards",
                             "degraded", "kernel"}
        assert plan["kernel"]["selected"] in ("numpy", "numba")
        assert plan["kernel"]["requested"] == "auto"
        decision = plan["decision"]
        assert decision["planned"] is True
        assert decision["chosen"] in decision["costs"]
        inputs = plan["inputs"]
        assert inputs["n_points"] == 1_000
        assert inputs["n_regions"] == len(simple_regions)
        assert inputs["total_vertices"] == simple_regions.total_vertices
        assert inputs["exact"] is False
        # No deadline was requested, so no degradation record.
        assert plan["degraded"] is None
        # The chosen backend priced cheapest among the candidates.
        costs = decision["costs"]
        assert costs[decision["chosen"]] == min(costs.values())

    def test_explicit_method_recorded_as_unplanned(self, simple_regions,
                                                   engine):
        r = engine.execute(_table(500, seed=6), simple_regions,
                           SpatialAggregation.count(), method="naive")
        assert r.stats["plan"]["decision"]["chosen"] == "naive"
        assert r.stats["plan"]["decision"]["planned"] is False

    def test_cache_state_feeds_the_planner(self, simple_regions, engine):
        # Once the grid index for this table is cached, its build cost
        # is waived and the recorded inputs say so.
        table = _table(2_000, seed=7)
        query = SpatialAggregation.count()
        engine.execute(table, simple_regions, query, method="grid")
        r = engine.execute(table, simple_regions, query)
        assert "grid" in r.stats["plan"]["inputs"]["indexes_cached"]


class TestParallelDecision:
    """``method="auto"`` records the serial/parallel decision and never
    pays fork overhead below the documented small-input threshold."""

    def test_small_input_decides_serial(self, simple_regions):
        from repro.core import ParallelConfig

        engine = SpatialAggregationEngine(
            default_resolution=256,
            parallel=ParallelConfig(workers=4, serial_threshold=10_000))
        r = engine.execute(_table(2_000, seed=8), simple_regions,
                          SpatialAggregation.count(), epsilon=5.0)
        decision = r.stats["plan"]["parallel"]
        assert decision["use"] is False
        assert decision["threshold"] == 10_000
        assert "below serial threshold" in decision["reason"]
        assert r.stats["parallel"]["mode"] == "serial"

    def test_default_threshold_is_documented_constant(self, simple_regions,
                                                      engine):
        from repro.core import PARALLEL_POINT_THRESHOLD

        r = engine.execute(_table(1_000, seed=9), simple_regions,
                          SpatialAggregation.count(), epsilon=5.0)
        assert (r.stats["plan"]["parallel"]["threshold"]
                == PARALLEL_POINT_THRESHOLD)

    def test_large_input_decides_parallel(self, simple_regions, small_table):
        from repro.core import ParallelConfig

        engine = SpatialAggregationEngine(
            default_resolution=256,
            parallel=ParallelConfig(workers=4, chunk_size=5_000,
                                    serial_threshold=20_000))
        r = engine.execute(small_table, simple_regions,
                          SpatialAggregation.count(), epsilon=5.0)
        assert r.stats["plan"]["decision"]["chosen"] == "bounded"
        decision = r.stats["plan"]["parallel"]
        assert decision["use"] is True
        assert r.stats["parallel"]["mode"] == "parallel"
        assert r.stats["parallel"]["point_pass"]["workers"] > 1

    def test_non_parallelizable_backend_pinned_serial(self, simple_regions,
                                                      engine):
        r = engine.execute(_table(200, seed=10), simple_regions,
                          SpatialAggregation.count())
        if r.stats["plan"]["decision"]["chosen"] in ("naive", "quadtree", "cube"):
            assert r.stats["plan"]["parallel"]["use"] is False

    def test_inputs_record_parallel_knobs(self, simple_regions, engine):
        r = engine.execute(_table(300, seed=11), simple_regions,
                          SpatialAggregation.count())
        inputs = r.stats["plan"]["inputs"]
        assert inputs["workers"] >= 1
        assert inputs["parallel_threshold"] > 0


class TestDeadlineDegradation:
    def test_tight_deadline_degrades_exact_to_bounded(self, simple_regions,
                                                      engine):
        r = engine.execute(_table(20_000, seed=20), simple_regions,
                           SpatialAggregation.count(), exact=True,
                           deadline_ms=1e-4)
        degraded = r.stats["plan"]["degraded"]
        assert degraded is not None and degraded["applied"] is True
        assert degraded["steps"][0]["step"] == "exact->bounded"
        assert r.stats["plan"]["decision"]["chosen"] != "accurate"
        assert not r.exact

    def test_tight_deadline_coarsens_canvas(self, simple_regions, engine):
        r = engine.execute(_table(20_000, seed=21), simple_regions,
                           SpatialAggregation.count(), resolution=512,
                           deadline_ms=1e-4)
        degraded = r.stats["plan"]["degraded"]
        assert degraded["applied"] is True
        coarser = [s for s in degraded["steps"]
                   if s["step"] == "coarser-canvas"]
        assert coarser
        from repro.core.planner import MIN_DEGRADED_RESOLUTION
        assert coarser[-1]["resolution"] >= MIN_DEGRADED_RESOLUTION
        assert r.stats["canvas_pixels"] < 512 * 512

    def test_generous_deadline_leaves_plan_alone(self, simple_regions,
                                                 engine):
        r = engine.execute(_table(1_000, seed=22), simple_regions,
                           SpatialAggregation.count(), exact=True,
                           deadline_ms=60_000.0)
        degraded = r.stats["plan"]["degraded"]
        assert degraded["applied"] is False
        assert degraded["within_deadline"] is True
        assert r.exact

    def test_no_deadline_records_none(self, simple_regions, engine):
        r = engine.execute(_table(500, seed=23), simple_regions,
                           SpatialAggregation.count())
        assert r.stats["plan"]["degraded"] is None
        assert r.stats["plan"]["inputs"]["deadline_ms"] is None

    def test_explicit_viewport_never_degraded(self, simple_regions, engine):
        from repro.raster import Viewport

        vp = Viewport.fit(simple_regions.bbox, 512)
        r = engine.execute(_table(20_000, seed=24), simple_regions,
                           SpatialAggregation.count(), viewport=vp,
                           deadline_ms=1e-4)
        assert r.stats["canvas_pixels"] == vp.num_pixels

    def test_explicit_method_skips_degradation(self, simple_regions, engine):
        r = engine.execute(_table(5_000, seed=25), simple_regions,
                           SpatialAggregation.count(), method="bounded",
                           deadline_ms=1e-4)
        assert r.stats["plan"]["degraded"] is None

    def test_observe_calibrates_throughput(self):
        from repro.core.planner import CostBasedPlanner

        p = CostBasedPlanner(units_per_second=1e6)
        before = p.predict_ms(1e6)
        assert before == pytest.approx(1000.0)
        for _ in range(50):
            p.observe(1e6, 0.1)  # machine is 10x faster than assumed
        after = p.predict_ms(1e6)
        assert after < before / 2

    def test_observe_ignores_degenerate_samples(self):
        from repro.core.planner import CostBasedPlanner

        p = CostBasedPlanner(units_per_second=1e6)
        p.observe(0.0, 0.1)
        p.observe(1e6, 0.0)
        assert p.predict_ms(1e6) == pytest.approx(1000.0)

    def test_execution_observes_and_recalibrates(self, simple_regions):
        from repro.core import SpatialAggregationEngine

        engine = SpatialAggregationEngine(default_resolution=128)
        before = engine.planner.units_per_second
        engine.execute(_table(10_000, seed=26), simple_regions,
                       SpatialAggregation.count())
        assert engine.planner.units_per_second != before
