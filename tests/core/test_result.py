"""Tests for AggregationResult."""

import numpy as np
import pytest

from repro.core import AggregationResult, RegionSet
from repro.geometry import regular_polygon


@pytest.fixture()
def regions():
    return RegionSet("r", [regular_polygon(i * 10, 0, 3, 4)
                           for i in range(4)],
                     ["a", "b", "c", "d"])


def _result(regions, values, **kw):
    return AggregationResult(regions=regions, values=np.asarray(values),
                             method="test", **kw)


class TestBasics:
    def test_length_checked(self, regions):
        with pytest.raises(ValueError):
            _result(regions, [1.0, 2.0])

    def test_value_of(self, regions):
        r = _result(regions, [1, 2, 3, 4])
        assert r.value_of("c") == 3.0

    def test_top_k(self, regions):
        r = _result(regions, [1, 9, 3, np.nan])
        top = r.top_k(2)
        assert top[0] == ("b", 9.0)
        assert top[1] == ("c", 3.0)

    def test_as_dict(self, regions):
        r = _result(regions, [1, 2, 3, 4])
        assert r.as_dict()["d"] == 4.0


class TestBounds:
    def test_has_bounds(self, regions):
        r = _result(regions, [1, 2, 3, 4],
                    lower=np.zeros(4), upper=np.full(4, 10.0))
        assert r.has_bounds
        assert r.max_bound_width() == 10.0

    def test_bounds_contain(self, regions):
        approx = _result(regions, [1, 2, 3, 4],
                         lower=np.array([0, 1, 2, 3.0]),
                         upper=np.array([2, 3, 4, 5.0]))
        exact = _result(regions, [1.5, 2.5, 2.0, 4.9], exact=True)
        assert approx.bounds_contain(exact)
        off = _result(regions, [10, 2, 3, 4.0], exact=True)
        assert not approx.bounds_contain(off)

    def test_bounds_contain_requires_bounds(self, regions):
        r = _result(regions, [1, 2, 3, 4])
        assert not r.bounds_contain(r)

    def test_max_bound_width_nan_when_absent(self, regions):
        r = _result(regions, [1, 2, 3, 4])
        assert np.isnan(r.max_bound_width())

    def test_max_bound_width_zero_when_exact(self, regions):
        r = _result(regions, [1, 2, 3, 4], exact=True)
        assert r.max_bound_width() == 0.0


class TestCompare:
    def test_compare_metrics(self, regions):
        a = _result(regions, [10, 20, 30, 40])
        b = _result(regions, [11, 20, 30, 36])
        m = a.compare_to(b)
        assert m["max_abs_error"] == pytest.approx(4.0)
        assert m["max_rel_error"] == pytest.approx(4 / 36)
        assert m["regions_compared"] == 4

    def test_compare_skips_nan(self, regions):
        a = _result(regions, [10, np.nan, 30, 40])
        b = _result(regions, [10, 20, 30, 40])
        m = a.compare_to(b)
        assert m["regions_compared"] == 3
        assert m["max_abs_error"] == 0.0

    def test_compare_zero_reference(self, regions):
        a = _result(regions, [1, 0, 0, 0])
        b = _result(regions, [0, 0, 0, 0])
        m = a.compare_to(b)
        assert m["max_abs_error"] == 1.0
        assert m["max_rel_error"] == 0.0  # no nonzero reference
