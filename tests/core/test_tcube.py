"""Temporal canvas cube: build, answer, append, planner integration.

The load-bearing claims: cube answers are *bitwise* equal to the serial
bounded raster join for COUNT (always) and SUM (integer-valued data),
within float round-off for AVG; appends match a from-scratch rebuild;
and the planner only ever routes ``auto`` to the cube when a cached one
already answers.
"""

import numpy as np
import pytest

from repro.core import (
    SpatialAggregation,
    SpatialAggregationEngine,
    TCUBE_AGGREGATES,
    bounded_raster_join,
    build_temporal_canvas_cube,
    infer_bucket_seconds,
    split_time_filter,
    tcube_servable,
)
from repro.core.tcube import find_answering_cube
from repro.errors import CubeError, QueryError
from repro.raster import Viewport, build_fragment_table
from repro.table import PointTable, TimeRange, timestamp_column

HOUR = 3_600
T0 = 1_000_000 // HOUR * HOUR  # hour-aligned epoch origin
SPAN_HOURS = 36


@pytest.fixture(scope="module")
def cube_table() -> PointTable:
    """20k points over 36 hours with integer fares and a signed column."""
    gen = np.random.default_rng(4242)
    n = 20_000
    x = gen.uniform(0, 100, n)
    y = gen.uniform(0, 100, n)
    fare = np.round(gen.exponential(12.0, n))
    delta = np.round(gen.normal(0.0, 5.0, n))  # signed values
    t = gen.integers(T0, T0 + SPAN_HOURS * HOUR, n)
    return PointTable.from_arrays(
        x, y, name="cube-pts",
        fare=fare, delta=delta, t=timestamp_column("t", t))


@pytest.fixture(scope="module")
def viewport(simple_regions) -> Viewport:
    return Viewport.fit(simple_regions.bbox, 256)


@pytest.fixture(scope="module")
def fragments(simple_regions, viewport):
    return build_fragment_table(list(simple_regions.geometries), viewport)


@pytest.fixture(scope="module")
def cube(cube_table, viewport):
    return build_temporal_canvas_cube(cube_table, viewport, "t", HOUR,
                                      value_column="fare")


def brush_query(agg, value_column, start, end):
    return SpatialAggregation(agg, value_column,
                              (TimeRange("t", start, end),))


def assert_bitwise(got, want):
    np.testing.assert_array_equal(got.values, want.values)
    np.testing.assert_array_equal(got.lower, want.lower)
    np.testing.assert_array_equal(got.upper, want.upper)


class TestSplitAndInfer:
    def test_split_single_timerange(self):
        q = SpatialAggregation.count().during("t", 10, 20)
        tr, residual = split_time_filter(q)
        assert (tr.start, tr.end) == (10, 20)
        assert residual == ()

    def test_split_no_timerange(self):
        q = SpatialAggregation.count()
        tr, residual = split_time_filter(q)
        assert tr is None and residual == ()

    def test_split_two_timeranges_declines(self):
        q = SpatialAggregation.count().during("t", 0, 50).during("t", 10, 20)
        tr, residual = split_time_filter(q)
        assert tr is None and len(residual) == 2

    def test_infer_prefers_coarsest(self):
        # A day-aligned brush over a few days: the day rung fits.
        assert infer_bucket_seconds(86_400, 3 * 86_400,
                                    1000, 5 * 86_400) == 86_400

    def test_infer_hour_when_day_unaligned(self):
        start, end = T0 + HOUR, T0 + 5 * HOUR
        got = infer_bucket_seconds(start, end, T0, T0 + SPAN_HOURS * HOUR)
        assert got == HOUR

    def test_infer_none_when_impossible(self):
        # Second-aligned brush over a span too wide for second buckets.
        assert infer_bucket_seconds(7, 11, 0, 10_000_000) is None


class TestBuildAndAnswer:
    def test_shape_and_accounting(self, cube, cube_table, viewport):
        assert cube.num_buckets == SPAN_HOURS
        assert cube.prefix["count"].shape == (SPAN_HOURS + 1,
                                              cube.num_active_pixels)
        assert np.all(cube.prefix["count"][0] == 0)
        assert cube.memory_bytes() > 0
        # Points in [0,100]^2 overhang the regions' viewport, so the
        # cube records it cannot vouch for whole-table series totals.
        assert not cube.covers_all_points
        assert cube.nonnegative_values  # fares >= 0: no mass plane
        assert "mass" not in cube.prefix
        in_view = viewport.pixel_ids_of(cube_table.x, cube_table.y)[1].sum()
        assert cube.bucket_totals("count").sum() == in_view

    @pytest.mark.parametrize("lo,hi", [(3, 20), (7, 8), (0, SPAN_HOURS)])
    def test_count_bitwise(self, cube, cube_table, simple_regions,
                           viewport, fragments, lo, hi):
        q = brush_query("count", None, T0 + lo * HOUR, T0 + hi * HOUR)
        assert cube.can_answer(q, viewport)
        got = cube.answer(simple_regions, fragments, q)
        want = bounded_raster_join(cube_table, simple_regions, q, viewport,
                                   fragments=fragments)
        assert_bitwise(got, want)
        assert got.stats["tcube"]["slices_touched"] == hi - lo

    def test_sum_bitwise_integer_values(self, cube, cube_table,
                                        simple_regions, viewport, fragments):
        q = brush_query("sum", "fare", T0 + 5 * HOUR, T0 + 29 * HOUR)
        got = cube.answer(simple_regions, fragments, q)
        want = bounded_raster_join(cube_table, simple_regions, q, viewport,
                                   fragments=fragments)
        assert_bitwise(got, want)

    def test_avg_within_roundoff(self, cube, cube_table, simple_regions,
                                 viewport, fragments):
        q = brush_query("avg", "fare", T0 + 2 * HOUR, T0 + 30 * HOUR)
        got = cube.answer(simple_regions, fragments, q)
        want = bounded_raster_join(cube_table, simple_regions, q, viewport,
                                   fragments=fragments)
        np.testing.assert_allclose(got.values, want.values,
                                   rtol=1e-12, atol=0.0)

    def test_signed_values_store_mass_plane(self, cube_table, simple_regions,
                                            viewport, fragments):
        signed = build_temporal_canvas_cube(cube_table, viewport, "t", HOUR,
                                            value_column="delta")
        assert not signed.nonnegative_values
        assert "mass" in signed.prefix
        q = brush_query("sum", "delta", T0 + 4 * HOUR, T0 + 11 * HOUR)
        got = signed.answer(simple_regions, fragments, q)
        want = bounded_raster_join(cube_table, simple_regions, q, viewport,
                                   fragments=fragments)
        assert_bitwise(got, want)

    def test_clamped_out_of_range_brush_is_zero(self, cube, simple_regions,
                                                viewport, fragments):
        q = brush_query("count", None, T0 - 10 * HOUR, T0 - 5 * HOUR)
        assert cube.can_answer(q, viewport)
        got = cube.answer(simple_regions, fragments, q)
        assert np.all(got.values == 0)
        assert np.all(got.upper == 0)

    def test_unaligned_brush_declines(self, cube, simple_regions, viewport,
                                      fragments):
        q = brush_query("count", None, T0 + HOUR + 17, T0 + 5 * HOUR)
        assert not cube.can_answer(q, viewport)
        with pytest.raises(CubeError):
            cube.answer(simple_regions, fragments, q)

    def test_wrong_viewport_or_agg_declines(self, cube, simple_regions):
        other = Viewport.fit(simple_regions.bbox, 128)
        q = brush_query("count", None, T0, T0 + HOUR)
        assert not cube.can_answer(q, other)
        assert "min" not in TCUBE_AGGREGATES
        q_min = brush_query("min", "fare", T0, T0 + HOUR)
        assert not cube.can_answer(q_min, cube.viewport)

    def test_parallel_build_bitwise_identical(self, cube_table, viewport,
                                              cube):
        from repro.core import ParallelConfig

        forced = build_temporal_canvas_cube(
            cube_table, viewport, "t", HOUR, value_column="fare",
            config=ParallelConfig(workers=4, serial_threshold=1))
        for kind in cube.prefix:
            np.testing.assert_array_equal(forced.prefix[kind],
                                          cube.prefix[kind])
        np.testing.assert_array_equal(forced.active_pixels,
                                      cube.active_pixels)

    def test_empty_table_cube(self, simple_regions, viewport, fragments):
        empty = PointTable.from_arrays(
            np.empty(0), np.empty(0), name="empty",
            t=timestamp_column("t", np.empty(0, dtype=np.int64)))
        c = build_temporal_canvas_cube(empty, viewport, "t", HOUR)
        assert c.num_buckets == 0
        q = brush_query("count", None, T0, T0 + HOUR)
        assert c.can_answer(q, viewport)
        got = c.answer(simple_regions, fragments, q)
        assert np.all(got.values == 0)


class TestAppend:
    def test_append_matches_rebuild(self, cube_table, viewport):
        order = np.argsort(cube_table.column("t").values, kind="stable")
        sorted_table = cube_table.take(order)
        cut = len(sorted_table) // 2
        head = sorted_table.take(np.arange(cut))
        tail = sorted_table.take(np.arange(cut, len(sorted_table)))

        cube = build_temporal_canvas_cube(head, viewport, "t", HOUR,
                                          value_column="fare")
        pixel_ids, valid = viewport.pixel_ids_of(tail.x, tail.y)
        cube.append(pixel_ids[valid],
                    tail.column("t").values[valid],
                    values=tail.values("fare")[valid],
                    all_in_viewport=bool(valid.all()))

        full = build_temporal_canvas_cube(sorted_table, viewport, "t", HOUR,
                                          value_column="fare")
        np.testing.assert_array_equal(cube.active_pixels, full.active_pixels)
        for kind in full.prefix:
            np.testing.assert_allclose(cube.prefix[kind], full.prefix[kind],
                                       rtol=0, atol=1e-9)
        np.testing.assert_array_equal(cube.prefix["count"],
                                      full.prefix["count"])

    def test_append_rejects_settled_history(self, cube_table, viewport):
        cube = build_temporal_canvas_cube(cube_table, viewport, "t", HOUR)
        with pytest.raises(QueryError):
            cube.append(np.array([0]), np.array([T0]))  # bucket 0 << tail

    def test_append_extends_buckets_and_pixels(self, viewport):
        t = timestamp_column("t", np.array([T0 + 10], dtype=np.int64))
        table = PointTable.from_arrays(np.array([50.0]), np.array([50.0]),
                                       name="one", t=t)
        cube = build_temporal_canvas_cube(table, viewport, "t", HOUR)
        assert cube.num_buckets == 1
        pid, valid = viewport.pixel_ids_of(np.array([20.0]),
                                           np.array([80.0]))
        cube.append(pid, np.array([T0 + 5 * HOUR + 1]))
        assert cube.num_buckets == 6
        assert cube.num_active_pixels == 2
        assert cube.bucket_totals("count").sum() == 2


class TestEngineIntegration:
    def test_explicit_method_builds_then_hits(self, cube_table,
                                              simple_regions):
        engine = SpatialAggregationEngine(default_resolution=256)
        q = brush_query("count", None, T0 + 2 * HOUR, T0 + 9 * HOUR)
        first = engine.execute(cube_table, simple_regions, q,
                               method="tcube-raster")
        assert first.stats["tcube"]["built"]
        assert not first.stats["tcube"]["hit"]
        second = engine.execute(cube_table, simple_regions, q,
                                method="tcube-raster")
        assert second.stats["tcube"]["hit"]
        np.testing.assert_array_equal(first.values, second.values)

    def test_auto_picks_cached_cube_and_matches_bounded(self, cube_table,
                                                        simple_regions):
        engine = SpatialAggregationEngine(default_resolution=256)
        q = brush_query("count", None, T0 + HOUR, T0 + 12 * HOUR)
        cold = engine.execute(cube_table, simple_regions, q, method="auto")
        assert cold.stats["plan"]["decision"]["chosen"] != "tcube-raster"
        assert not cold.stats["plan"]["inputs"]["tcube_cached"]

        engine.execute(cube_table, simple_regions, q, method="tcube-raster")
        hot = engine.execute(cube_table, simple_regions, q, method="auto")
        assert hot.stats["plan"]["inputs"]["tcube_cached"]
        assert hot.stats["plan"]["decision"]["chosen"] == "tcube-raster"

        want = engine.execute(cube_table, simple_regions, q,
                              method="bounded")
        assert_bitwise(hot, want)

    def test_cached_cube_serves_other_aligned_brushes(self, cube_table,
                                                      simple_regions):
        engine = SpatialAggregationEngine(default_resolution=256)
        build_q = brush_query("count", None, T0, T0 + 4 * HOUR)
        engine.execute(cube_table, simple_regions, build_q,
                       method="tcube-raster")
        other = brush_query("count", None, T0 + 20 * HOUR, T0 + 33 * HOUR)
        viewport = engine.plan_viewport(simple_regions, None, None)
        assert find_answering_cube(engine.ctx, cube_table, other,
                                   viewport) is not None
        result = engine.execute(cube_table, simple_regions, other,
                                method="auto")
        assert result.stats["plan"]["decision"]["chosen"] == "tcube-raster"
        assert result.stats["tcube"]["hit"]

    def test_tcube_servable_gates(self, cube_table, simple_regions):
        engine = SpatialAggregationEngine(default_resolution=256)
        viewport = engine.plan_viewport(simple_regions, None, None)
        ctx = engine.ctx
        aligned = brush_query("count", None, T0, T0 + 2 * HOUR)
        assert tcube_servable(ctx, cube_table, aligned, viewport)
        no_time = SpatialAggregation.count()
        assert not tcube_servable(ctx, cube_table, no_time, viewport)
        bad_agg = brush_query("min", "fare", T0, T0 + 2 * HOUR)
        assert not tcube_servable(ctx, cube_table, bad_agg, viewport)

    def test_cache_byte_accounting(self, cube_table, simple_regions):
        engine = SpatialAggregationEngine(default_resolution=256)
        q = brush_query("count", None, T0, T0 + 2 * HOUR)
        before = engine.cache_stats()["bytes"]
        engine.execute(cube_table, simple_regions, q, method="tcube-raster")
        assert engine.cache_stats()["bytes"] > before
