"""Tests for the k-d tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import BBox
from repro.index import KDTree


def _points(n=2000, seed=0):
    gen = np.random.default_rng(seed)
    return gen.uniform(0, 100, size=(n, 2))


def _brute_bbox(pts, q):
    return set(np.flatnonzero(
        (pts[:, 0] >= q.xmin) & (pts[:, 0] <= q.xmax)
        & (pts[:, 1] >= q.ymin) & (pts[:, 1] <= q.ymax)).tolist())


def _brute_nearest(pts, x, y):
    d2 = ((pts - np.array([x, y])) ** 2).sum(axis=1)
    return int(np.argmin(d2)), float(np.sqrt(d2.min()))


class TestRangeQueries:
    def test_matches_brute_force(self):
        pts = _points()
        tree = KDTree(pts, leaf_size=16)
        for q in [BBox(10, 10, 30, 60), BBox(0, 0, 100, 100),
                  BBox(50, 50, 50.5, 50.5), BBox(200, 200, 300, 300)]:
            assert set(tree.query_bbox(q).tolist()) == _brute_bbox(pts, q)

    def test_count(self):
        pts = _points(seed=1)
        tree = KDTree(pts)
        q = BBox(25, 25, 75, 75)
        assert tree.count_bbox(q) == len(_brute_bbox(pts, q))

    def test_duplicate_points(self):
        pts = np.tile([[5.0, 5.0]], (100, 1))
        tree = KDTree(pts, leaf_size=8)
        assert tree.count_bbox(BBox(4, 4, 6, 6)) == 100

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            KDTree(np.empty((0, 2)))

    def test_bad_leaf_size(self):
        with pytest.raises(GeometryError):
            KDTree([[0.0, 0.0]], leaf_size=0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 300), st.integers(1, 64),
           st.floats(0, 90), st.floats(0, 90), st.floats(0.1, 50))
    def test_range_property(self, n, leaf, qx, qy, size):
        pts = _points(n, seed=n + 3)
        tree = KDTree(pts, leaf_size=leaf)
        q = BBox(qx, qy, qx + size, qy + size)
        assert set(tree.query_bbox(q).tolist()) == _brute_bbox(pts, q)


class TestNearest:
    def test_nearest_matches_brute_force(self):
        pts = _points(500, seed=2)
        tree = KDTree(pts, leaf_size=8)
        gen = np.random.default_rng(3)
        for qx, qy in gen.uniform(-10, 110, size=(50, 2)):
            got_id, got_d = tree.nearest(qx, qy)
            want_id, want_d = _brute_nearest(pts, qx, qy)
            assert got_d == pytest.approx(want_d)
            # Ties possible; distances must match exactly.
            d_got = np.hypot(*(pts[got_id] - [qx, qy]))
            assert d_got == pytest.approx(want_d)

    def test_nearest_of_member_is_itself(self):
        pts = _points(100, seed=4)
        tree = KDTree(pts)
        gid, d = tree.nearest(*pts[42])
        assert d == pytest.approx(0.0)
        assert (pts[gid] == pts[42]).all()

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 200), st.floats(-20, 120), st.floats(-20, 120))
    def test_nearest_property(self, n, qx, qy):
        pts = _points(n, seed=n + 31)
        tree = KDTree(pts, leaf_size=4)
        _, got_d = tree.nearest(qx, qy)
        _, want_d = _brute_nearest(pts, qx, qy)
        assert got_d == pytest.approx(want_d)
