"""Tests for the PR quadtree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import BBox
from repro.index import QuadTree

BOX = BBox(0, 0, 100, 100)


def _points(n=2000, seed=0):
    gen = np.random.default_rng(seed)
    return gen.uniform(0, 100, n), gen.uniform(0, 100, n)


def _brute(x, y, q):
    return set(np.flatnonzero(
        (x >= q.xmin) & (x <= q.xmax)
        & (y >= q.ymin) & (y <= q.ymax)).tolist())


class TestQuadTree:
    def test_query_matches_brute_force(self):
        x, y = _points()
        tree = QuadTree(x, y, BOX, capacity=64)
        for q in [BBox(10, 10, 35, 35), BBox(0, 0, 100, 100),
                  BBox(49.9, 49.9, 50.1, 50.1)]:
            assert set(tree.query_bbox(q).tolist()) == _brute(x, y, q)

    def test_skewed_data_splits_deeper(self):
        gen = np.random.default_rng(1)
        # Hotspot in a corner.
        x = np.abs(gen.normal(5, 2, 5000)).clip(0, 100)
        y = np.abs(gen.normal(5, 2, 5000)).clip(0, 100)
        tree = QuadTree(x, y, BOX, capacity=64, max_depth=10)
        assert tree.depth() >= 3

    def test_max_depth_respected(self):
        x = np.full(1000, 50.0)
        y = np.full(1000, 50.0)
        tree = QuadTree(x, y, BOX, capacity=4, max_depth=5)
        assert tree.depth() <= 5
        assert tree.count_bbox(BBox(49, 49, 51, 51)) == 1000

    def test_capacity_validation(self):
        x, y = _points(10)
        with pytest.raises(GeometryError):
            QuadTree(x, y, BOX, capacity=0)

    def test_length_mismatch(self):
        with pytest.raises(GeometryError):
            QuadTree([1.0], [1.0, 2.0], BOX)

    def test_num_leaves_at_least_one(self):
        x, y = _points(10)
        assert QuadTree(x, y, BOX).num_leaves() >= 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 400), st.integers(1, 128),
           st.floats(0, 90), st.floats(0, 90), st.floats(0.1, 60))
    def test_query_property(self, n, cap, qx, qy, size):
        x, y = _points(n, seed=n + 17)
        tree = QuadTree(x, y, BOX, capacity=cap)
        q = BBox(qx, qy, qx + size, qy + size)
        assert set(tree.query_bbox(q).tolist()) == _brute(x, y, q)
