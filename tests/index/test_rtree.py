"""Tests for the STR-packed R-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import BBox, regular_polygon
from repro.index import RTree


def _points(n=3000, seed=0):
    gen = np.random.default_rng(seed)
    return gen.uniform(0, 100, n), gen.uniform(0, 100, n)


def _brute_points(x, y, q):
    return set(np.flatnonzero(
        (x >= q.xmin) & (x <= q.xmax)
        & (y >= q.ymin) & (y <= q.ymax)).tolist())


class TestPointRTree:
    def test_query_matches_brute_force(self):
        x, y = _points()
        tree = RTree.from_points(x, y, leaf_capacity=32)
        for q in [BBox(10, 10, 30, 40), BBox(0, 0, 100, 100),
                  BBox(50, 50, 50.1, 50.1), BBox(-10, -10, -1, -1)]:
            assert set(tree.query_bbox(q).tolist()) == _brute_points(x, y, q)

    def test_count(self):
        x, y = _points(seed=1)
        tree = RTree.from_points(x, y)
        q = BBox(25, 25, 75, 75)
        assert tree.count_bbox(q) == len(_brute_points(x, y, q))

    def test_single_point(self):
        tree = RTree.from_points([5.0], [5.0])
        assert set(tree.query_bbox(BBox(0, 0, 10, 10)).tolist()) == {0}
        assert tree.count_bbox(BBox(6, 6, 10, 10)) == 0

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            RTree(np.empty((0, 4)))

    def test_bad_capacity(self):
        with pytest.raises(GeometryError):
            RTree.from_points([1.0], [1.0], leaf_capacity=1)

    def test_malformed_rect_rejected(self):
        with pytest.raises(GeometryError):
            RTree(np.array([[1.0, 0.0, 0.0, 1.0]]))

    def test_height_grows_with_size(self):
        x, y = _points(10_000, seed=2)
        tree = RTree.from_points(x, y, leaf_capacity=16)
        assert tree.height >= 2

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 500), st.integers(2, 64),
           st.floats(0, 90), st.floats(0, 90),
           st.floats(0.01, 50), st.floats(0.01, 50))
    def test_query_property(self, n, cap, qx, qy, w, h):
        x, y = _points(n, seed=n)
        tree = RTree.from_points(x, y, leaf_capacity=cap)
        q = BBox(qx, qy, qx + w, qy + h)
        assert set(tree.query_bbox(q).tolist()) == _brute_points(x, y, q)


class TestGeometryRTree:
    def test_from_geometries(self):
        geoms = [regular_polygon(20, 20, 10, 6),
                 regular_polygon(70, 70, 10, 6),
                 regular_polygon(20, 70, 10, 6)]
        tree = RTree.from_geometries(geoms)
        hits = set(tree.query_bbox(BBox(10, 10, 30, 30)).tolist())
        assert hits == {0}
        hits_all = set(tree.query_bbox(BBox(0, 0, 100, 100)).tolist())
        assert hits_all == {0, 1, 2}

    def test_overlapping_rects(self):
        rects = np.array([[0, 0, 10, 10], [5, 5, 15, 15], [20, 20, 30, 30]],
                         dtype=float)
        tree = RTree(rects, leaf_capacity=2)
        hits = set(tree.query_bbox(BBox(7, 7, 8, 8)).tolist())
        assert hits == {0, 1}
