"""Tests for uniform grid indexes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import BBox, regular_polygon
from repro.index import PointGridIndex, PolygonGridIndex

BOX = BBox(0, 0, 100, 100)


def _points(n=2000, seed=0):
    gen = np.random.default_rng(seed)
    return gen.uniform(0, 100, n), gen.uniform(0, 100, n)


def _brute_bbox(x, y, q):
    return np.flatnonzero((x >= q.xmin) & (x <= q.xmax)
                          & (y >= q.ymin) & (y <= q.ymax))


class TestPointGridIndex:
    def test_candidates_superset_of_exact(self):
        x, y = _points()
        idx = PointGridIndex(x, y, BOX, nx=16, ny=16)
        q = BBox(20, 20, 45, 60)
        cand = set(idx.query_bbox(q).tolist())
        exact = set(_brute_bbox(x, y, q).tolist())
        assert exact <= cand

    def test_exact_query_matches_brute_force(self):
        x, y = _points(seed=1)
        idx = PointGridIndex(x, y, BOX, nx=16, ny=16)
        for q in [BBox(0, 0, 100, 100), BBox(10, 10, 10.5, 10.5),
                  BBox(99, 99, 100, 100), BBox(-50, -50, -10, -10)]:
            got = np.sort(idx.query_bbox_exact(q))
            want = _brute_bbox(x, y, q)
            assert (got == want).all()

    def test_all_points_bucketed_once(self):
        x, y = _points(seed=2)
        idx = PointGridIndex(x, y, BOX, nx=8, ny=8)
        everything = idx.query_bbox(BOX)
        assert len(everything) == len(x)
        assert len(set(everything.tolist())) == len(x)

    def test_cell_points_partition(self):
        x, y = _points(200, seed=3)
        idx = PointGridIndex(x, y, BOX, nx=4, ny=4)
        seen = []
        for iy in range(4):
            for ix in range(4):
                seen.extend(idx.cell_points(ix, iy).tolist())
        assert sorted(seen) == list(range(200))

    def test_cell_of_clamps(self):
        x, y = _points(10)
        idx = PointGridIndex(x, y, BOX, nx=4, ny=4)
        assert idx.cell_of(-100, -100) == (0, 0)
        assert idx.cell_of(1e9, 1e9) == (3, 3)

    def test_invalid_resolution(self):
        x, y = _points(10)
        with pytest.raises(GeometryError):
            PointGridIndex(x, y, BOX, nx=0)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0, 90), st.floats(0, 90), st.floats(0.1, 50),
           st.floats(0.1, 50), st.integers(1, 40))
    def test_exact_query_property(self, x0, y0, w, h, res):
        x, y = _points(500, seed=4)
        idx = PointGridIndex(x, y, BOX, nx=res, ny=res)
        q = BBox(x0, y0, x0 + w, y0 + h)
        got = np.sort(idx.query_bbox_exact(q))
        assert (got == _brute_bbox(x, y, q)).all()


class TestPolygonGridIndex:
    def _regions(self):
        return [regular_polygon(25, 25, 20, 8),
                regular_polygon(70, 70, 15, 5),
                regular_polygon(50, 20, 10, 6)]

    def test_candidates_cover_containing_polygons(self):
        geoms = self._regions()
        idx = PolygonGridIndex(geoms, BOX, nx=16, ny=16)
        gen = np.random.default_rng(5)
        pts = gen.uniform(0, 100, size=(500, 2))
        for px, py in pts:
            cand = set(idx.candidates_at(px, py).tolist())
            for gid, geom in enumerate(geoms):
                if geom.contains_point(px, py):
                    assert gid in cand

    def test_stats(self):
        idx = PolygonGridIndex(self._regions(), BOX, nx=8, ny=8)
        stats = idx.stats()
        assert stats["cells"] == 64
        assert stats["max_candidates"] >= 1
        assert 0 <= stats["empty_cells"] < 64

    def test_cell_ids_of_points(self):
        idx = PolygonGridIndex(self._regions(), BOX, nx=4, ny=4)
        ids = idx.cell_ids_of_points(np.array([0.0, 99.0]),
                                     np.array([0.0, 99.0]))
        assert ids.tolist() == [0, 15]

    def test_geometry_outside_box_ignored(self):
        far = regular_polygon(500, 500, 10, 4)
        idx = PolygonGridIndex([far], BOX, nx=4, ny=4)
        assert idx.stats()["max_candidates"] == 0
