"""HashRing: determinism, spread, and minimal remap on resize."""

from __future__ import annotations

import pytest

from repro.serve import HashRing
from repro.serve.routing import stable_hash

KEYS = [("served", "fp", i, "count") for i in range(2_000)]


class TestStableHash:
    def test_deterministic_and_64_bit(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash("abc") != stable_hash("abd")
        assert 0 <= stable_hash("abc") < 2 ** 64

    def test_not_process_salted(self):
        # The exact value is pinned: BLAKE2b is stable across runs,
        # unlike builtin hash() which PYTHONHASHSEED perturbs.
        assert stable_hash("repro") == int.from_bytes(
            __import__("hashlib").blake2b(
                b"repro", digest_size=8).digest(), "big")


class TestHashRing:
    def test_same_key_same_node(self):
        ring = HashRing(["a", "b", "c"])
        other = HashRing(["a", "b", "c"])
        for key in KEYS[:200]:
            assert ring.node_for(key) == other.node_for(key)

    def test_every_node_owns_keys(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        owners = {ring.node_for(key) for key in KEYS}
        assert owners == {"w0", "w1", "w2", "w3"}

    def test_spread_is_reasonable(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        counts: dict[str, int] = {}
        for key in KEYS:
            node = ring.node_for(key)
            counts[node] = counts.get(node, 0) + 1
        # 64 virtual replicas per node keeps the arcs even enough that
        # no worker owns a majority of a 4-node keyspace.
        assert max(counts.values()) < len(KEYS) * 0.5
        assert min(counts.values()) > len(KEYS) * 0.05

    def test_remove_remaps_only_the_lost_arcs(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.remove("w3")
        moved = 0
        for key, owner in before.items():
            now = ring.node_for(key)
            if owner == "w3":
                assert now != "w3"
            elif now != owner:
                moved += 1
        # Keys not owned by the removed node never move — that is the
        # consistency property that keeps sibling caches warm.
        assert moved == 0

    def test_add_steals_about_one_nth(self):
        ring = HashRing(["w0", "w1", "w2"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add("w3")
        stolen = sum(1 for key in KEYS if ring.node_for(key) != before[key])
        assert 0 < stolen < len(KEYS) * 0.6  # ~1/4, generous bound
        for key in KEYS:
            if ring.node_for(key) != before[key]:
                assert ring.node_for(key) == "w3"

    def test_duplicate_add_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")

    def test_remove_unknown_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.remove("b")

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a"], replicas=0)

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.node_for(key) == "only" for key in KEYS[:100])
