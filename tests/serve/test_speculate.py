"""Gesture-speculative prefetch: model, planner, admission tier, executor."""

import asyncio
import threading

import numpy as np
import pytest

from repro.core import SpatialAggregation
from repro.core.pyramid import CanvasGrid
from repro.errors import OverloadedError
from repro.serve import AdmissionController, QueryService
from repro.serve.protocol import decode_request, encode_request
from repro.serve.speculate import (
    GestureModel,
    classify_gesture,
    shift_brush,
)
from repro.table import F, TimeRange

from .conftest import make_manager


def make_req(query=None, sql=None, speculative=False, **knobs):
    req = decode_request(encode_request(
        "trips", "simple", query=query, sql=sql, **knobs))
    if speculative:
        # The speculative marker is internal (set by the planner on
        # candidate requests), not a wire knob.
        req["speculative"] = True
    return req


def brush_query(start, end, extra=None):
    query = SpatialAggregation.count().where(TimeRange("t", start, end))
    if extra is not None:
        query = query.where(extra)
    return query


def grid_viewport(level=0, col0=0, row0=0, width=128, height=128, block=64):
    grid = CanvasGrid(0.0, 0.0, 100.0 / 128, 100.0 / 128, block)
    return grid.viewport(level, col0, row0, width, height)


async def until(predicate, timeout=5.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        assert loop.time() < deadline, "condition never became true"
        await asyncio.sleep(0.001)


async def speculation_settled(svc, timeout=5.0):
    """Wait until no speculative work is pending or in flight."""
    def settled():
        stats = svc.speculator.stats()
        return stats["pending"] == 0 and stats["inflight"] == 0
    await until(settled, timeout)


@pytest.fixture()
def spec_service(manager):
    svc = QueryService(manager, max_concurrency=4, max_queue=8,
                       max_wait_s=5.0, speculate=True,
                       speculate_budget_ms=2000.0)
    yield svc
    svc.close()


# -- gesture classification ---------------------------------------------------


class TestClassifyGesture:
    def _req(self, query=None, viewport=None, dataset="trips",
             regions="simple"):
        return {"dataset": dataset, "regions": regions,
                "query": query, "viewport": viewport}

    def test_brush_stepped_forward_by_width(self):
        kind, _ = classify_gesture(self._req(brush_query(0, 100)),
                                   self._req(brush_query(100, 200)))
        assert kind == "brush+1"

    def test_brush_stepped_back_by_width(self):
        kind, _ = classify_gesture(self._req(brush_query(100, 200)),
                                   self._req(brush_query(0, 100)))
        assert kind == "brush-1"

    def test_brush_jump_and_resize(self):
        kind, _ = classify_gesture(self._req(brush_query(0, 100)),
                                   self._req(brush_query(500, 600)))
        assert kind == "brush-jump"
        kind, _ = classify_gesture(self._req(brush_query(0, 100)),
                                   self._req(brush_query(0, 250)))
        assert kind == "brush-jump"

    def test_brush_with_changed_residual_is_other(self):
        prev = self._req(brush_query(0, 100))
        cur = self._req(brush_query(100, 200, F("fare") > 5))
        kind, _ = classify_gesture(prev, cur)
        assert kind == "other"

    def test_pan_reports_delta(self):
        prev = self._req(brush_query(0, 100), grid_viewport())
        cur = self._req(brush_query(0, 100),
                        grid_viewport(col0=32, row0=-16))
        kind, delta = classify_gesture(prev, cur)
        assert kind == "pan"
        assert delta == (32, -16)

    def test_zoom_levels(self):
        prev = self._req(None, grid_viewport(level=1))
        assert classify_gesture(
            prev, self._req(None, grid_viewport(level=2)))[0] == "zoom-out"
        assert classify_gesture(
            prev, self._req(None, grid_viewport(level=0)))[0] == "zoom-in"

    def test_dataset_or_regions_change_is_other(self):
        prev = self._req(brush_query(0, 100))
        assert classify_gesture(
            prev, self._req(brush_query(100, 200),
                            dataset="other"))[0] == "other"
        assert classify_gesture(
            prev, self._req(brush_query(100, 200),
                            regions="other"))[0] == "other"

    def test_identical_request_is_no_transition(self):
        req = self._req(brush_query(0, 100))
        assert classify_gesture(req, dict(req))[0] is None


class TestShiftBrush:
    def test_shift_matches_a_real_brush_step(self):
        brushed = brush_query(0, 100, F("fare") > 5)
        brush = next(f for f in brushed.filters
                     if isinstance(f, TimeRange))
        shifted = shift_brush(brushed, brush, 100)
        assert repr(shifted) == repr(brush_query(100, 200, F("fare") > 5))

    def test_other_filters_preserved_by_identity(self):
        fare = F("fare") > 5
        brushed = SpatialAggregation.count().where(
            TimeRange("t", 0, 10)).where(fare)
        brush = next(f for f in brushed.filters
                     if isinstance(f, TimeRange))
        shifted = shift_brush(brushed, brush, 10)
        assert any(f is fare for f in shifted.filters)


# -- the gesture model --------------------------------------------------------


class TestGestureModel:
    def test_cold_start_ranks_forward_brush_first(self):
        model = GestureModel()
        model.observe(make_req(brush_query(0, 100), session="s"))
        model.observe(make_req(brush_query(100, 200), session="s"))
        ranked = model.predict("s")
        assert ranked, "brush state must produce candidates"
        _score, kind, cand = ranked[0]
        assert kind == "brush+1"
        assert repr(cand["query"]) == repr(brush_query(200, 300))
        assert cand["speculative"] is True

    def test_transitions_sharpen_the_prediction(self):
        model = GestureModel()
        prior = model.probability("brush+1", "brush+1")
        for start in range(0, 2000, 100):
            model.observe(make_req(brush_query(start, start + 100),
                                   session="s"))
        assert model.probability("brush+1", "brush+1") > prior

    def test_sessions_keep_independent_state(self):
        model = GestureModel()
        model.observe(make_req(brush_query(0, 100), session="a"))
        model.observe(make_req(brush_query(500, 600), session="b"))
        next_a = model.predict("a")[0][2]["query"]
        next_b = model.predict("b")[0][2]["query"]
        assert repr(next_a) == repr(brush_query(100, 200))
        assert repr(next_b) == repr(brush_query(600, 700))

    def test_session_table_is_bounded(self):
        model = GestureModel(max_sessions=4)
        for i in range(20):
            model.observe(make_req(brush_query(0, 100), session=f"s{i}"))
        assert len(model._sessions) <= 4
        assert model.predict("s0") == []  # evicted
        assert model.predict("s19")  # newest survives

    def test_viewport_candidates_cover_ring_and_zoom(self):
        model = GestureModel()
        vp = grid_viewport()
        model.observe(make_req(brush_query(0, 100), session="s",
                               viewport=vp))
        ranked = model.predict("s")
        viewports = [c["viewport"] for _s, k, c in ranked
                     if c.get("viewport") is not None
                     and c["viewport"] != vp]
        block = vp.grid.block
        expected = {vp.pan(block, 0), vp.pan(-block, 0),
                    vp.pan(0, block), vp.pan(0, -block), vp.zoom(2.0)}
        assert expected <= set(viewports)

    def test_momentum_pan_predicted_after_a_pan(self):
        model = GestureModel()
        vp = grid_viewport()
        model.observe(make_req(brush_query(0, 100), session="s",
                               viewport=vp))
        model.observe(make_req(brush_query(0, 100), session="s",
                               viewport=vp.pan(32, 0)))
        ranked = model.predict("s")
        momentum = vp.pan(32, 0).pan(32, 0)
        pans = [(s, c["viewport"]) for s, k, c in ranked if k == "pan"]
        assert momentum in [v for _s, v in pans]
        # The momentum pan carries full pan probability; ring shifts
        # ride at a fraction of it.
        momentum_score = max(s for s, v in pans if v == momentum)
        assert all(s < momentum_score for s, v in pans if v != momentum)


# -- model persistence --------------------------------------------------------


def trained_model(steps=5):
    model = GestureModel()
    for start in range(0, steps * 100, 100):
        model.observe(make_req(brush_query(start, start + 100),
                               session="s"))
    return model


class TestModelPersistence:
    def test_sidecar_round_trip(self):
        model = trained_model()
        fresh = GestureModel()
        fresh.load_json(model.to_json())
        assert fresh.transitions == model.transitions
        assert fresh.observed == model.observed

    def test_sidecar_is_json_serializable_and_versioned(self):
        import json

        payload = json.loads(json.dumps(trained_model().to_json()))
        assert payload["version"] == 1
        fresh = GestureModel()
        fresh.load_json(payload)
        assert fresh.observed == trained_model().observed

    def test_load_folds_additively(self):
        model = trained_model()
        before = dict(model.transitions)
        model.load_json(model.to_json())
        assert model.transitions == {e: 2 * c for e, c in before.items()}

    def test_load_rejects_unversioned_payloads(self):
        with pytest.raises(ValueError):
            GestureModel().load_json({"transitions": []})
        with pytest.raises(ValueError):
            GestureModel().load_json([1, 2])

    def test_save_and_load_via_speculator(self, spec_service, tmp_path):
        spec = spec_service.speculator
        spec.model.load_json(trained_model().to_json())
        assert spec.save_model(tmp_path) is True
        sidecar = tmp_path / "gesture_model.json"
        assert sidecar.exists()

        fresh = QueryService(make_manager(), speculate=True)
        try:
            assert fresh.speculator.load_model(tmp_path) is True
            assert (fresh.speculator.model.transitions
                    == spec.model.transitions)
        finally:
            fresh.close()

    def test_load_missing_sidecar_is_silent(self, spec_service, tmp_path,
                                            caplog):
        with caplog.at_level("WARNING", logger="repro.speculate"):
            assert spec_service.speculator.load_model(tmp_path) is False
        assert not caplog.records

    def test_load_malformed_sidecar_warns(self, spec_service, tmp_path,
                                          caplog):
        (tmp_path / "gesture_model.json").write_text("not json")
        with caplog.at_level("WARNING", logger="repro.speculate"):
            assert spec_service.speculator.load_model(tmp_path) is False
        assert any("ignoring unreadable gesture model" in r.message
                   for r in caplog.records)

    def test_load_wrong_version_warns(self, spec_service, tmp_path,
                                      caplog):
        (tmp_path / "gesture_model.json").write_text(
            '{"version": 99, "transitions": []}')
        with caplog.at_level("WARNING", logger="repro.speculate"):
            assert spec_service.speculator.load_model(tmp_path) is False
        assert any("ignoring unreadable" in r.message
                   for r in caplog.records)

    def test_service_persists_on_close_and_loads_on_start(self, tmp_path):
        svc = QueryService(make_manager(), speculate=True,
                           model_dir=str(tmp_path))
        svc.speculator.model.load_json(trained_model().to_json())
        observed = svc.speculator.model.observed
        svc.close()
        assert (tmp_path / "gesture_model.json").exists()

        reborn = QueryService(make_manager(), speculate=True,
                              model_dir=str(tmp_path))
        try:
            assert reborn.speculator.model.observed == observed
        finally:
            reborn.close()


# -- the speculation planner --------------------------------------------------


class TestSpeculationPlanner:
    def test_candidates_become_priced_work_items(self, spec_service):
        planner = spec_service.speculator.planner
        items = planner.plan([(0.5, "brush+1",
                               make_req(brush_query(0, 100),
                                        speculative=True))])
        assert len(items) == 1
        item = items[0]
        assert item.key == spec_service.query_key(item.req)
        assert item.predicted_ms >= 0.0
        assert item.kind == "brush+1"

    def test_budget_cap_drops_overflow(self, spec_service):
        planner = spec_service.speculator.planner
        planner.budget_ms = 0.0  # nothing fits
        items = planner.plan([(0.5, "brush+1",
                               make_req(brush_query(0, 100),
                                        speculative=True))])
        assert items == []
        assert planner.budget_dropped == 1

    def test_already_cached_candidates_are_skipped(self, spec_service):
        query = brush_query(0, 100)
        asyncio.run(spec_service.execute(make_req(query)))
        planner = spec_service.speculator.planner
        before = planner.skipped_cached
        items = planner.plan([(0.5, "brush+1",
                               make_req(query, speculative=True))])
        assert items == []
        assert planner.skipped_cached == before + 1

    def test_viewport_candidates_count_blocks(self, spec_service):
        req = make_req(SpatialAggregation.count(), speculative=True,
                       viewport=grid_viewport())
        items = spec_service.speculator.planner.plan([(0.5, "pan", req)])
        assert len(items) == 1
        assert items[0].work == "block-scatter"
        assert items[0].new_blocks == 4  # 128x128 window over 64px blocks


# -- the speculative admission tier -------------------------------------------


class TestSpeculativeAdmission:
    def test_granted_only_from_idle_capacity(self):
        async def scenario():
            ctl = AdmissionController(max_concurrency=1, max_queue=4)
            assert ctl.can_speculate()
            async with ctl.slot():
                assert not ctl.can_speculate()
                with pytest.raises(OverloadedError):
                    async with ctl.speculative_slot():
                        pass
            assert ctl.spec_denied == 1
            async with ctl.speculative_slot():
                assert ctl.spec_active == 1
            assert ctl.spec_active == 0
            assert ctl.spec_admitted == 1

        asyncio.run(scenario())

    def test_real_contention_preempts_speculation(self):
        async def scenario():
            ctl = AdmissionController(max_concurrency=1, max_queue=4)
            preempted = asyncio.Event()

            async def speculative():
                try:
                    async with ctl.speculative_slot(preempted.set):
                        await asyncio.sleep(30)
                finally:
                    pass

            spec = asyncio.create_task(speculative())
            await until(lambda: ctl.spec_active == 1)

            async def real():
                async with ctl.slot():
                    return "done"

            real_task = asyncio.create_task(real())
            await until(preempted.is_set)
            # Cooperative unwind: the preempt callback fired; cancel the
            # holder as the speculator would, freeing the slot.
            spec.cancel()
            assert await real_task == "done"
            assert ctl.spec_preempted == 1

        asyncio.run(scenario())

    def test_on_idle_fires_when_slots_free(self):
        async def scenario():
            ctl = AdmissionController(max_concurrency=1, max_queue=4)
            fired = []
            ctl.on_idle = lambda: fired.append(True)
            async with ctl.slot():
                pass
            assert fired

        asyncio.run(scenario())

    def test_speculative_stats_shape(self):
        ctl = AdmissionController()
        spec = ctl.stats()["speculative"]
        assert set(spec) == {"active", "admitted", "denied", "preempted"}


# -- end-to-end executor behavior ---------------------------------------------


class TestSpeculativeExecution:
    def test_predicted_brush_becomes_a_hit(self, spec_service):
        async def scenario():
            for start in (0, 100):
                await spec_service.execute(
                    make_req(brush_query(start, start + 100), session="s"))
                await speculation_settled(spec_service)
            result = await spec_service.execute(
                make_req(brush_query(200, 300), session="s"))
            return result

        result = asyncio.run(scenario())
        assert result.stats["speculate"]["hit"] is True
        stats = spec_service.speculator.stats()
        assert stats["completed"] > 0
        assert stats["hits"] >= 1

    def test_unpredicted_query_is_not_a_hit(self, spec_service):
        async def scenario():
            await spec_service.execute(
                make_req(brush_query(0, 100), session="s"))
            await speculation_settled(spec_service)
            return await spec_service.execute(
                make_req(SpatialAggregation.sum_of("fare"), session="s"))

        result = asyncio.run(scenario())
        assert result.stats["speculate"]["hit"] is False

    def test_results_identical_with_and_without_speculation(
            self, simple_regions):
        script = [brush_query(s, s + 100) for s in range(0, 500, 100)]
        script += [brush_query(s, s + 100) for s in (100, 200)]  # revisit

        def replay(speculate):
            manager = make_manager()
            manager.add_region_set(simple_regions)
            svc = QueryService(manager, max_concurrency=4, max_queue=8,
                               speculate=speculate,
                               speculate_budget_ms=2000.0)
            try:
                async def scenario():
                    out = []
                    for query in script:
                        result = await svc.execute(
                            make_req(query, session="s"))
                        out.append(result)
                        if speculate:
                            await speculation_settled(svc)
                    return out

                return asyncio.run(scenario())
            finally:
                svc.close()

        on = replay(True)
        off = replay(False)
        for a, b in zip(on, off):
            assert np.array_equal(a.values, b.values)
            assert np.array_equal(a.lower, b.lower)
            assert np.array_equal(a.upper, b.upper)

    def test_new_gesture_supersedes_pending_items(self, spec_service):
        speculator = spec_service.speculator

        async def scenario():
            await spec_service.execute(
                make_req(brush_query(0, 100), session="s"))
            await spec_service.execute(
                make_req(brush_query(100, 200), session="s"))
            # Stop the drain so planned items stay queued, then observe
            # a fresh gesture: the stale generation must be discarded.
            speculator.enabled = False
            speculator.observe(make_req(brush_query(200, 300),
                                        session="s"))
            speculator.enabled = True
            pending = len(speculator._pending)
            speculator.observe(make_req(brush_query(700, 800),
                                        session="s"))
            assert speculator.superseded >= pending
            await speculation_settled(spec_service)

        asyncio.run(scenario())

    def test_disabled_speculator_does_nothing(self, manager):
        svc = QueryService(manager, max_concurrency=4, max_queue=8,
                           speculate=False)
        try:
            async def scenario():
                for start in (0, 100, 200):
                    await svc.execute(
                        make_req(brush_query(start, start + 100),
                                 session="s"))

            asyncio.run(scenario())
            stats = svc.speculator.stats()
            assert stats["enabled"] is False
            assert stats["issued"] == 0
            assert stats["observed"] == 0
        finally:
            svc.close()

    def test_stats_threaded_through_service_and_pool(self, spec_service):
        stats = spec_service.stats()
        assert "speculate" in stats
        for field in ("issued", "completed", "hits", "shed"):
            assert field in stats["speculate"]
        for worker in stats["pool"]["workers"]:
            assert "spec_queries" in worker


# -- shed-first under overload ------------------------------------------------


class TestShedFirst:
    def test_speculation_never_holds_slots_while_real_queries_wait(
            self, simple_regions):
        manager = make_manager()
        manager.add_region_set(simple_regions)
        svc = QueryService(manager, max_concurrency=2, max_queue=64,
                           speculate=True, speculate_budget_ms=5000.0)
        violations = []

        async def scenario():
            # Prime the model so speculative work is flowing.
            for start in (0, 100, 200):
                await svc.execute(
                    make_req(brush_query(start, start + 100), session="s"))
            await speculation_settled(svc)

            stop = asyncio.Event()

            async def watchdog():
                # The shed-first invariant, sampled continuously: real
                # work queued implies zero speculative slot holders.
                while not stop.is_set():
                    if svc.admission.waiting > 0 \
                            and svc.admission.spec_active > 0:
                        violations.append(
                            (svc.admission.waiting,
                             svc.admission.spec_active))
                    await asyncio.sleep(0)

            watch = asyncio.create_task(watchdog())
            # 16x overload: 32 distinct real queries over 2 slots, the
            # gesture stream continuing so speculation keeps trying.
            burst = [svc.execute(make_req(
                brush_query(s, s + 50), session=f"c{i}"))
                for i, s in enumerate(range(0, 1600, 50))]
            results = await asyncio.gather(*burst, return_exceptions=True)
            stop.set()
            await watch
            return results

        try:
            results = asyncio.run(scenario())
            real_failures = [r for r in results if isinstance(r, Exception)
                             and not isinstance(r, OverloadedError)]
            assert real_failures == []
            assert violations == []
        finally:
            svc.close()

    def test_speculative_leader_preemption_spares_real_joiner(
            self, spec_service):
        """Extends the ref-counted-cancel suite: cancelling the
        speculative participant must not kill a real query that joined
        the same flight."""
        from repro.serve.speculate import WorkItem

        svc = spec_service
        speculator = svc.speculator
        release = threading.Event()
        original_run = svc._run

        def gated_run(req, key, cancel, engine=None, speculative=False):
            release.wait(timeout=10.0)
            return original_run(req, key, cancel, engine, speculative)

        svc._run = gated_run
        query = brush_query(0, 100)
        req = make_req(query, session="s")
        spec_req = make_req(query, session="s", speculative=True)
        key = svc.query_key(spec_req)
        worker = svc.workers.worker_for(key)
        item = WorkItem(req=spec_req, key=key, kind="brush+1",
                        work="query", score=1.0, predicted_ms=1.0)

        async def scenario():
            spec_task = asyncio.create_task(speculator._run_item(item))
            await until(lambda: key in worker.flight._flights)
            flight = worker.flight._flights[key]
            real_task = asyncio.create_task(svc.execute(req))
            await until(lambda: flight.refs >= 2)
            # A real request needing capacity preempts the speculative
            # holder — which cancels the speculative *participant*.
            assert svc.admission.preempt_speculative() == 1
            await until(spec_task.done)
            assert spec_task.cancelled()
            # The flight survives for the real joiner.
            assert not flight.task.cancelled()
            release.set()
            return await real_task

        try:
            result = asyncio.run(scenario())
        finally:
            svc._run = original_run
            release.set()
        direct = svc.manager.engine.execute(
            svc.manager.dataset("trips"),
            svc.manager.region_set("simple"), query)
        assert np.array_equal(result.values, direct.values)
        assert worker.flight.cancelled_flights == 0

    def test_denied_speculation_retries_as_real_work(self, spec_service):
        """A real query joining a speculative flight that admission
        denies must transparently re-run as real work."""
        from repro.serve.speculate import WorkItem

        svc = spec_service
        query = brush_query(300, 400)
        spec_req = make_req(query, session="s", speculative=True)
        key = svc.query_key(spec_req)
        item = WorkItem(req=spec_req, key=key, kind="brush+1",
                        work="query", score=1.0, predicted_ms=1.0)

        async def scenario():
            # Fill every slot so the speculative grant is denied the
            # moment it asks.
            gate = asyncio.Event()

            async def hog():
                async with svc.admission.slot():
                    await gate.wait()

            hogs = [asyncio.create_task(hog()) for _ in range(4)]
            await until(lambda: svc.admission.active == 4)
            # Task order is deterministic: the speculative item runs
            # first and registers the flight, the real query joins it
            # in the next slice, and only then does the speculative
            # ``start`` run — and get denied.
            spec_task = asyncio.create_task(svc.speculator._run_item(item))
            real_task = asyncio.create_task(
                svc.execute(make_req(query, session="s")))
            await until(lambda: svc.speculator.shed_denied == 1)
            gate.set()
            await spec_task
            result = await real_task
            for h in hogs:
                await h
            return result

        result = asyncio.run(scenario())
        assert svc.speculator.shed_denied == 1
        assert svc.errors == 0
        direct = svc.manager.engine.execute(
            svc.manager.dataset("trips"),
            svc.manager.region_set("simple"), query)
        assert np.array_equal(result.values, direct.values)
