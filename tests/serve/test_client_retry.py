"""ServeClient retry-on-shed: bounded, opt-in, server-seeded back-off."""

import contextlib
import http.server
import json
import threading
import time

import pytest

from repro.errors import OverloadedError, ProtocolError, QueryError
from repro.serve import ServeClient

RESULT_PAYLOAD = {
    "v": 1, "kind": "result", "regions": ["a"], "values": [7.0],
    "lower": None, "upper": None, "exact": True, "method": "stub",
    "stats": {},
}


@contextlib.contextmanager
def stub_server(respond):
    """An HTTP stub for POST /v1/query; ``respond(attempt_number)``
    returns ``(status, payload_dict)``.  Yields ``(url, attempts)``
    where ``attempts`` is a mutable one-element counter list."""
    attempts = [0]

    class Handler(http.server.BaseHTTPRequestHandler):
        def do_POST(self):
            self.rfile.read(int(self.headers.get("Content-Length", 0)))
            attempts[0] += 1
            status, payload = respond(attempts[0])
            body = json.dumps(payload).encode()
            self.send_response(status)
            if status == 429:
                self.send_header("Retry-After", "1")
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):
            pass

    httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = httpd.server_address
        yield f"http://{host}:{port}", attempts
    finally:
        httpd.shutdown()
        httpd.server_close()


def shed_then_succeed(shed_count, retry_after_ms=50.0):
    def respond(attempt):
        if attempt <= shed_count:
            return 429, {"v": 1, "kind": "error",
                         "error": "OverloadedError",
                         "message": "queue full",
                         "retry_after_ms": retry_after_ms}
        return 200, RESULT_PAYLOAD
    return respond


def do_query(client):
    return client.query("trips", "simple", sql="SELECT COUNT(*) "
                        "FROM trips, simple "
                        "WHERE trips.loc INSIDE simple.geometry")


class TestRetryOnShed:
    def test_default_raises_immediately(self):
        with stub_server(shed_then_succeed(100)) as (url, attempts):
            client = ServeClient(url)
            with pytest.raises(OverloadedError) as exc:
                do_query(client)
            assert exc.value.retry_after_ms == 50.0
            assert client.retries == 0
            assert attempts[0] == 1

    def test_opt_in_retries_until_success(self):
        with stub_server(shed_then_succeed(2)) as (url, attempts):
            client = ServeClient(url, max_retries=3)
            result = do_query(client)
            assert list(result.values) == [7.0]
            assert client.retries == 2
            assert attempts[0] == 3

    def test_exhausted_retries_reraise(self):
        with stub_server(shed_then_succeed(100, retry_after_ms=1.0)) \
                as (url, attempts):
            client = ServeClient(url, max_retries=2)
            with pytest.raises(OverloadedError):
                do_query(client)
            assert client.retries == 2
            assert attempts[0] == 3

    def test_backoff_seeded_from_server_hint(self):
        with stub_server(shed_then_succeed(2, retry_after_ms=60.0)) \
                as (url, _attempts):
            client = ServeClient(url, max_retries=2)
            t0 = time.perf_counter()
            do_query(client)
            elapsed = time.perf_counter() - t0
            # First sleep 60ms, second 120ms (factor 2): >= 0.18s
            # total, minus scheduler slack.
            assert elapsed >= 0.15

    def test_missing_payload_hint_falls_back_to_header(self):
        def respond(attempt):
            if attempt == 1:
                return 429, {"v": 1, "kind": "error",
                             "error": "OverloadedError",
                             "message": "queue full"}
            return 200, RESULT_PAYLOAD

        with stub_server(respond) as (url, attempts):
            client = ServeClient(url, max_retries=1)
            result = do_query(client)
            assert list(result.values) == [7.0]
            assert attempts[0] == 2

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ProtocolError):
            ServeClient("http://127.0.0.1:1", max_retries=-1)

    def test_only_overload_is_retried(self):
        def respond(_attempt):
            return 400, {"v": 1, "kind": "error", "error": "QueryError",
                         "message": "no such dataset"}

        with stub_server(respond) as (url, attempts):
            client = ServeClient(url, max_retries=5)
            with pytest.raises(QueryError):
                do_query(client)
            assert attempts[0] == 1
            assert client.retries == 0


class TestRetryAgainstRealServer:
    def test_retry_rides_out_a_saturated_service(self, manager):
        """End to end: a tiny admission envelope sheds a concurrent
        burst; clients with retries enabled all eventually succeed."""
        from repro.core import SpatialAggregation
        from repro.serve import QueryService, ServerThread
        from repro.table import TimeRange

        svc = QueryService(manager, max_concurrency=1, max_queue=1,
                           max_wait_s=5.0)
        thread = ServerThread(svc)
        url = thread.start()
        try:
            failures = []
            values = []

            def hammer(i):
                client = ServeClient(url, max_retries=8)
                query = SpatialAggregation.count().where(
                    TimeRange("t", 0, 500 + i))
                try:
                    values.append(
                        client.query("trips", "simple",
                                     query=query).values.sum())
                except Exception as exc:  # noqa: BLE001 - recorded
                    failures.append(exc)

            threads = [threading.Thread(target=hammer, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert failures == []
            assert len(values) == 8
            # The burst must actually have shed something for this
            # test to exercise retry (queue of 1, concurrency of 1).
            assert svc.admission.stats()["shed_total"] > 0
        finally:
            thread.stop()
