"""Single-flight coalescing: leaders, joiners, fan-out, cancellation."""

import asyncio

import pytest

from repro.serve import SingleFlight


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_identical_keys_run_once(self):
        async def scenario():
            sf = SingleFlight()
            starts = []
            gate = asyncio.Event()

            def start(cancel):
                async def work():
                    starts.append(1)
                    await gate.wait()
                    return {"answer": 42}
                return work()

            tasks = [asyncio.ensure_future(sf.run("k", start))
                     for _ in range(8)]
            await asyncio.sleep(0)
            gate.set()
            results = await asyncio.gather(*tasks)
            assert len(starts) == 1
            assert sf.leaders == 1 and sf.coalesced == 7
            # Every participant received the very same object.
            assert all(r is results[0] for r in results)
            assert sf.inflight() == 0
            assert sf.stats()["coalesce_rate"] == pytest.approx(7 / 8)

        run(scenario())

    def test_distinct_keys_run_independently(self):
        async def scenario():
            sf = SingleFlight()

            def start_for(value):
                def start(cancel):
                    async def work():
                        await asyncio.sleep(0.001)
                        return value
                    return work()
                return start

            a, b = await asyncio.gather(sf.run("a", start_for(1)),
                                        sf.run("b", start_for(2)))
            assert (a, b) == (1, 2)
            assert sf.leaders == 2 and sf.coalesced == 0

        run(scenario())

    def test_sequential_same_key_not_coalesced(self):
        async def scenario():
            sf = SingleFlight()
            starts = []

            def start(cancel):
                async def work():
                    starts.append(1)
                    return len(starts)
                return work()

            first = await sf.run("k", start)
            second = await sf.run("k", start)
            assert (first, second) == (1, 2)
            assert sf.leaders == 2

        run(scenario())

    def test_exception_fans_out_to_all_participants(self):
        async def scenario():
            sf = SingleFlight()
            gate = asyncio.Event()

            def start(cancel):
                async def work():
                    await gate.wait()
                    raise RuntimeError("boom")
                return work()

            tasks = [asyncio.ensure_future(sf.run("k", start))
                     for _ in range(4)]
            await asyncio.sleep(0)
            gate.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            assert len(results) == 4
            assert all(isinstance(r, RuntimeError) for r in results)
            assert sf.inflight() == 0

        run(scenario())


class TestCancellation:
    def test_one_joiner_leaving_keeps_flight_alive(self):
        async def scenario():
            sf = SingleFlight()
            cancel_tokens = []
            gate = asyncio.Event()

            def start(cancel):
                cancel_tokens.append(cancel)

                async def work():
                    await gate.wait()
                    return "done"
                return work()

            tasks = [asyncio.ensure_future(sf.run("k", start))
                     for _ in range(3)]
            await asyncio.sleep(0)
            tasks[1].cancel()
            with pytest.raises(asyncio.CancelledError):
                await tasks[1]
            assert not cancel_tokens[0].is_set()
            gate.set()
            assert await tasks[0] == "done"
            assert await tasks[2] == "done"
            assert sf.cancelled_flights == 0

        run(scenario())

    def test_last_participant_out_cancels_the_work(self):
        async def scenario():
            sf = SingleFlight()
            cancel_tokens = []

            def start(cancel):
                cancel_tokens.append(cancel)

                async def work():
                    await asyncio.sleep(60)
                return work()

            tasks = [asyncio.ensure_future(sf.run("k", start))
                     for _ in range(3)]
            await asyncio.sleep(0)
            for t in tasks:
                t.cancel()
            for t in tasks:
                with pytest.raises(asyncio.CancelledError):
                    await t
            # Give the done-callback a few beats to clean the registry.
            for _ in range(10):
                if sf.inflight() == 0:
                    break
                await asyncio.sleep(0.001)
            assert cancel_tokens[0].is_set()
            assert sf.cancelled_flights == 1
            assert sf.inflight() == 0

        run(scenario())

    def test_new_flight_after_cancelled_one(self):
        async def scenario():
            sf = SingleFlight()

            def never(cancel):
                async def work():
                    await asyncio.sleep(60)
                return work()

            task = asyncio.ensure_future(sf.run("k", never))
            await asyncio.sleep(0)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            await asyncio.sleep(0)

            def quick(cancel):
                async def work():
                    return "fresh"
                return work()

            assert await sf.run("k", quick) == "fresh"

        run(scenario())
