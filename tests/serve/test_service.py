"""QueryService: execution, coalescing, caching, streaming."""

import asyncio

import numpy as np
import pytest

from repro.core import SpatialAggregation
from repro.errors import QueryError
from repro.serve.protocol import decode_request, encode_request
from repro.table import F


def make_req(query=None, sql=None, **knobs):
    return decode_request(encode_request(
        "trips", "simple", query=query, sql=sql, **knobs))


class TestExecute:
    def test_matches_direct_engine_execution(self, manager, service,
                                             simple_regions):
        query = SpatialAggregation.sum_of("fare", F("fare") > 2)
        served = asyncio.run(service.execute(make_req(query)))
        direct = manager.engine.execute(
            manager.dataset("trips"), simple_regions, query)
        assert np.array_equal(served.values, direct.values)
        assert np.array_equal(served.lower, direct.lower)
        assert np.array_equal(served.upper, direct.upper)

    def test_each_caller_gets_independent_copy(self, service):
        query = SpatialAggregation.count()
        a = asyncio.run(service.execute(make_req(query)))
        b = asyncio.run(service.execute(make_req(query)))
        assert a is not b
        assert a.values is not b.values
        a.values[:] = -1
        a.stats["poison"] = True
        assert not np.array_equal(a.values, b.values)
        assert "poison" not in b.stats

    def test_repeat_query_hits_cache_not_engine(self, service):
        query = SpatialAggregation.count()
        asyncio.run(service.execute(make_req(query)))
        before = service.manager.engine.ctx.cache.stats()["hits"]
        asyncio.run(service.execute(make_req(query)))
        assert service.manager.engine.ctx.cache.stats()["hits"] > before

    def test_cache_false_bypasses_the_cache(self, service):
        query = SpatialAggregation.count()
        key = service.query_key(make_req(query, cache=False))
        asyncio.run(service.execute(make_req(query, cache=False)))
        assert service.manager.engine.ctx.cache.get(key) is None

    def test_key_distinguishes_every_knob(self, service):
        query = SpatialAggregation.count()
        base = service.query_key(make_req(query))
        assert service.query_key(make_req(query)) == base
        variants = [
            make_req(query, method="naive"),
            make_req(query, resolution=64),
            make_req(query, epsilon=3.0),
            make_req(query, exact=True),
            make_req(query, deadline_ms=50.0),
            make_req(SpatialAggregation.sum_of("fare")),
        ]
        keys = {service.query_key(v) for v in variants}
        assert base not in keys
        assert len(keys) == len(variants)

    def test_sql_requests_served(self, service):
        served = asyncio.run(service.execute(make_req(
            sql="SELECT COUNT(*) FROM trips, simple "
                "WHERE trips.loc INSIDE simple.geometry")))
        direct = asyncio.run(service.execute(
            make_req(SpatialAggregation.count())))
        assert np.array_equal(served.values, direct.values)

    def test_unknown_dataset_raises(self, service):
        req = decode_request(encode_request(
            "nope", "simple", query=SpatialAggregation.count()))
        with pytest.raises(QueryError):
            asyncio.run(service.execute(req))
        assert service.errors >= 0  # key error happens before the flight

    def test_concurrent_identical_requests_coalesce(self, service):
        async def burst():
            reqs = [make_req(SpatialAggregation.sum_of("fare"),
                             cache=False) for _ in range(8)]
            return await asyncio.gather(
                *[service.execute(r) for r in reqs])

        results = asyncio.run(burst())
        assert service.flight.coalesced > 0
        first = results[0]
        for r in results[1:]:
            assert r is not first
            assert np.array_equal(r.values, first.values)

    def test_deadline_degrades_and_is_recorded(self, service):
        served = asyncio.run(service.execute(make_req(
            SpatialAggregation.count(), exact=True, deadline_ms=1e-4)))
        degraded = served.stats["plan"]["degraded"]
        assert degraded["applied"] is True
        assert not served.exact


class TestStreamedDatasets:
    @staticmethod
    def _batch(gen, n, t_start, name="live"):
        from repro.table import PointTable, timestamp_column

        t = np.sort(gen.integers(t_start, t_start + 1_000, n))
        return PointTable.from_arrays(
            gen.uniform(0, 100, n), gen.uniform(0, 100, n), name=name,
            t=timestamp_column("t", t))

    def test_stream_dataset_reflects_appends(self, service, manager,
                                             simple_regions):
        from repro.stream import PointStream

        gen = np.random.default_rng(1)
        stream = PointStream(simple_regions, resolution=128)
        stream.append(self._batch(gen, 1_000, 0))
        service.add_stream(stream, "live")

        req = decode_request(encode_request(
            "live", "simple", query=SpatialAggregation.count()))
        before = asyncio.run(service.execute(req))
        stream.append(self._batch(gen, 2_000, 1_000))
        after = asyncio.run(service.execute(req))
        assert after.values.sum() > before.values.sum()
        assert after.stats["stream_version"] > before.stats["stream_version"]

    def test_duplicate_registration_rejected(self, service, simple_regions):
        from repro.stream import PointStream

        stream = PointStream(simple_regions, resolution=64)
        service.add_stream(stream, "live2")
        with pytest.raises(QueryError):
            service.add_stream(stream, "live2")
        with pytest.raises(QueryError):
            service.add_stream(stream, "trips")


class TestStreaming:
    def test_stream_yields_partials_ending_final(self, service, manager,
                                                 simple_regions):
        async def consume():
            req = make_req(SpatialAggregation.count(), stream=True,
                           tile_pixels=64)
            return [p async for p in service.stream(req)]

        parts = asyncio.run(consume())
        assert parts[-1].final
        direct = manager.engine.execute(
            manager.dataset("trips"), simple_regions,
            SpatialAggregation.count(), method="bounded")
        assert np.array_equal(parts[-1].values, direct.values)

    def test_abandoned_stream_frees_the_slot(self, service):
        async def abandon():
            req = make_req(SpatialAggregation.count(), stream=True,
                           tile_pixels=32, stream_every=1)
            agen = service.stream(req)
            await agen.__anext__()  # first partial only
            await agen.aclose()

        asyncio.run(abandon())
        assert service.admission.active == 0


class TestStats:
    def test_stats_shape(self, service):
        asyncio.run(service.execute(make_req(SpatialAggregation.count())))
        stats = service.stats()
        assert stats["queries"] == 1
        assert "admission" in stats and "coalesce" in stats
        assert "trips" in stats["datasets"]
        assert "simple" in stats["region_sets"]
