"""Protocol round-trips and validation."""

import numpy as np
import pytest

from repro.core import SpatialAggregation
from repro.errors import OverloadedError, ProtocolError, QueryError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    RemoteResult,
    decode_request,
    encode_request,
    error_to_json,
    filter_from_json,
    filter_to_json,
    jsonable,
    query_from_json,
    query_to_json,
    result_from_json,
)
from repro.table import F, TimeRange


class TestFilterRoundTrip:
    @pytest.mark.parametrize("expr", [
        F("fare") > 5,
        F("fare") <= 2.5,
        F("kind") == "a",
        F("fare").between(1, 9),
        F("kind").isin(["a", "b"]),
        TimeRange("t", 10, 90),
        (F("fare") > 5) & (F("kind") == "a"),
        (F("fare") > 5) | ~(F("kind") == "b"),
    ])
    def test_round_trip_preserves_repr(self, expr):
        back = filter_from_json(filter_to_json(expr))
        assert repr(back) == repr(expr)

    def test_round_trip_preserves_semantics(self):
        from repro.table import PointTable, timestamp_column

        gen = np.random.default_rng(0)
        n = 500
        table = PointTable.from_arrays(
            gen.uniform(0, 10, n), gen.uniform(0, 10, n), name="m",
            fare=gen.exponential(5, n),
            t=timestamp_column("t", gen.integers(0, 100, n)))
        expr = (F("fare") > 4) & TimeRange("t", 20, 80)
        back = filter_from_json(filter_to_json(expr))
        assert np.array_equal(back.mask(table), expr.mask(table))

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError):
            filter_from_json({"op": "regex", "column": "x", "value": ".*"})

    def test_malformed_node_rejected(self):
        with pytest.raises(ProtocolError):
            filter_from_json(["not", "a", "dict"])


class TestQueryRoundTrip:
    @pytest.mark.parametrize("query", [
        SpatialAggregation.count(),
        SpatialAggregation.sum_of("fare"),
        SpatialAggregation.avg_of("fare", F("fare") > 1),
        SpatialAggregation.count(F("kind") == "a", TimeRange("t", 0, 50)),
    ])
    def test_round_trip(self, query):
        assert repr(query_from_json(query_to_json(query))) == repr(query)

    def test_bad_agg_rejected(self):
        with pytest.raises(ProtocolError):
            query_from_json({"agg": "median", "column": "fare",
                             "filters": []})


class TestRequests:
    def test_encode_omits_default_knobs(self):
        body = encode_request("trips", "simple",
                              query=SpatialAggregation.count())
        assert set(body) == {"v", "dataset", "regions", "query"}

    def test_encode_decode_round_trip(self):
        body = encode_request("trips", "simple",
                              query=SpatialAggregation.sum_of("fare"),
                              method="bounded", epsilon=2.0,
                              deadline_ms=100.0)
        req = decode_request(body)
        assert req["dataset"] == "trips"
        assert req["method"] == "bounded"
        assert req["epsilon"] == 2.0
        assert req["deadline_ms"] == 100.0
        assert req["stream"] is False  # default filled in
        assert repr(req["query"]) == repr(SpatialAggregation.sum_of("fare"))

    def test_unknown_knob_rejected(self):
        with pytest.raises(ProtocolError):
            encode_request("t", "r", query=SpatialAggregation.count(),
                           turbo=True)

    def test_query_xor_sql(self):
        with pytest.raises(ProtocolError):
            encode_request("t", "r")
        with pytest.raises(ProtocolError):
            encode_request("t", "r", query=SpatialAggregation.count(),
                           sql="SELECT ...")

    def test_version_mismatch_rejected(self):
        body = encode_request("t", "r", query=SpatialAggregation.count())
        body["v"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError):
            decode_request(body)

    def test_missing_fields_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request({"v": PROTOCOL_VERSION, "dataset": "t"})
        with pytest.raises(ProtocolError):
            decode_request("not an object")

    def test_bad_stream_every_rejected(self):
        body = encode_request("t", "r", query=SpatialAggregation.count())
        body["stream_every"] = 0
        with pytest.raises(ProtocolError):
            decode_request(body)


class TestResults:
    def test_result_round_trip(self, service):
        import asyncio

        req = decode_request(encode_request(
            "trips", "simple", query=SpatialAggregation.count()))
        result = asyncio.run(service.execute(req))
        from repro.serve.protocol import result_to_json

        remote = result_from_json(result_to_json(result))
        assert isinstance(remote, RemoteResult)
        assert remote.region_names == list(result.regions.region_names)
        assert np.array_equal(remote.values, result.values)
        assert remote.has_bounds
        assert np.array_equal(remote.lower, result.lower)
        assert remote.as_dict() == {
            n: v for n, v in zip(remote.region_names, remote.values)}

    def test_non_result_payload_rejected(self):
        with pytest.raises(ProtocolError):
            result_from_json({"kind": "error"})


class TestErrors:
    def test_overload_carries_retry_after(self):
        payload = error_to_json(OverloadedError("busy", retry_after_ms=250))
        assert payload["error"] == "OverloadedError"
        assert payload["retry_after_ms"] == 250

    def test_query_error_named(self):
        payload = error_to_json(QueryError("no such column"))
        assert payload["error"] == "QueryError"
        assert "no such column" in payload["message"]


class TestJsonable:
    def test_numpy_scalars_and_arrays(self):
        out = jsonable({"a": np.float64(1.5), "b": np.arange(3),
                        "c": (np.int32(2), np.bool_(True)),
                        np.int64(7): "key"})
        assert out["a"] == 1.5
        assert out["b"] == [0, 1, 2]
        assert out["c"] == [2, True]
        assert out["7"] == "key"  # keys stringified

    def test_unserializable_falls_back_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert jsonable({"o": Opaque()})["o"] == "<opaque>"
