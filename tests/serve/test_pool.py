"""ServeWorkerPool: routed workers, sharded caches, global admission."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import SpatialAggregation
from repro.serve import QueryService
from repro.serve.pool import ServeWorkerPool, clone_engine
from repro.table import F

from .test_service import make_req


@pytest.fixture()
def pool_service(manager):
    svc = QueryService(manager, max_concurrency=4, max_queue=8,
                       max_wait_s=5.0, shards=3)
    yield svc
    svc.close()


QUERIES = [
    SpatialAggregation.count(),
    SpatialAggregation.sum_of("fare"),
    SpatialAggregation.avg_of("fare"),
    SpatialAggregation.min_of("fare"),
    SpatialAggregation.max_of("fare"),
    SpatialAggregation.sum_of("fare", F("fare") > 5),
    SpatialAggregation.count(F("fare") > 1),
    SpatialAggregation.count(F("fare") > 2),
]


class TestPoolConstruction:
    def test_worker_zero_is_the_manager_engine(self, pool_service):
        assert pool_service.workers.workers[0].engine \
            is pool_service.manager.engine

    def test_clones_share_config_not_caches(self, manager):
        engine = manager.engine
        clone = clone_engine(engine)
        assert clone is not engine
        assert clone.ctx.cache is not engine.ctx.cache
        assert clone.default_resolution == engine.default_resolution
        assert clone.ctx.cache.max_bytes == engine.ctx.cache.max_bytes
        assert clone.ctx.parallel == engine.ctx.parallel

    def test_threads_spread_over_workers(self, manager):
        pool = ServeWorkerPool(manager.engine, shards=3, total_threads=4)
        try:
            # ceil(4/3) = 2 threads each: the pool can always run at
            # least the admitted concurrency.
            assert all(w.executor._max_workers == 2 for w in pool.workers)
        finally:
            # Worker 0 wraps the shared manager engine; only the pool's
            # executors need shutting down.
            pool.close()

    def test_single_shard_pool_is_the_old_service(self, service):
        assert service.workers.shards == 1
        assert service.flight is service.workers.workers[0].flight
        assert service.pool is service.workers.workers[0].executor


class TestRoutedExecution:
    def test_results_match_single_shard_service(self, manager, service,
                                                pool_service):
        for query in QUERIES:
            solo = asyncio.run(service.execute(make_req(query)))
            pooled = asyncio.run(pool_service.execute(make_req(query)))
            assert np.array_equal(solo.values, pooled.values,
                                  equal_nan=True), query.kind

    def test_same_key_always_same_worker(self, pool_service):
        query = SpatialAggregation.count()
        key = pool_service.query_key(make_req(query))
        owner = pool_service.workers.worker_for(key)
        for _ in range(10):
            assert pool_service.workers.worker_for(key) is owner

    def test_repeat_hits_owning_workers_cache(self, pool_service):
        query = SpatialAggregation.sum_of("fare")
        key = pool_service.query_key(make_req(query))
        worker = pool_service.workers.worker_for(key)
        asyncio.run(pool_service.execute(make_req(query)))
        hits = worker.engine.cache_stats()["hits"]
        asyncio.run(pool_service.execute(make_req(query)))
        assert worker.engine.cache_stats()["hits"] > hits

    def test_caches_shard_not_duplicate(self, pool_service):
        for query in QUERIES:
            asyncio.run(pool_service.execute(make_req(query)))
        workers = pool_service.workers.workers
        key_owner = {}
        for query in QUERIES:
            key = pool_service.query_key(make_req(query))
            key_owner[key] = pool_service.workers.worker_for(key).name
        # Each served key lives in exactly its owner's cache.
        for key, owner in key_owner.items():
            for worker in workers:
                cached = worker.engine.ctx.cache.get(key)
                if worker.name == owner:
                    assert cached is not None
                else:
                    assert cached is None
        # With 8 distinct queries over 3 workers, routing should have
        # used more than one worker.
        assert len(set(key_owner.values())) > 1

    def test_worker_query_counters(self, pool_service):
        for query in QUERIES:
            asyncio.run(pool_service.execute(make_req(query)))
        stats = pool_service.stats()
        per_worker = [w["queries"] for w in stats["pool"]["workers"]]
        assert sum(per_worker) == len(QUERIES)


class TestAggregateStats:
    def test_stats_payload_shape(self, pool_service):
        asyncio.run(pool_service.execute(
            make_req(SpatialAggregation.count())))
        stats = pool_service.stats()
        pool = stats["pool"]
        assert pool["shards"] == 3
        assert len(pool["workers"]) == 3
        for worker in pool["workers"]:
            assert {"name", "queries", "coalesce", "cache_entries",
                    "cache_bytes", "cache_hits",
                    "cache_misses"} <= set(worker)

    def test_cache_stats_sum_across_workers(self, pool_service):
        for query in QUERIES:
            asyncio.run(pool_service.execute(make_req(query)))
            asyncio.run(pool_service.execute(make_req(query)))
        aggregate = pool_service.workers.aggregate_cache_stats()
        per_worker = [w.engine.cache_stats()
                      for w in pool_service.workers.workers]
        for field in ("entries", "bytes", "hits", "misses"):
            assert aggregate[field] == sum(s[field] for s in per_worker)
        lookups = aggregate["hits"] + aggregate["misses"]
        assert aggregate["hit_rate"] == aggregate["hits"] / lookups

    def test_coalesce_stats_sum_across_workers(self, pool_service):
        asyncio.run(pool_service.execute(
            make_req(SpatialAggregation.count())))
        aggregate = pool_service.workers.aggregate_coalesce_stats()
        solo = pool_service.workers.workers[0].flight.stats()
        assert set(solo) <= set(aggregate)


class TestGlobalAdmission:
    def test_overload_sheds_across_the_pool(self, manager):
        """One global controller: slots do not fragment per worker."""
        from repro.errors import OverloadedError

        svc = QueryService(manager, max_concurrency=1, max_queue=1,
                           max_wait_s=0.05, shards=3)
        try:
            async def burst():
                reqs = [make_req(q, cache=False) for q in QUERIES]
                return await asyncio.gather(
                    *(svc.execute(r) for r in reqs),
                    return_exceptions=True)

            results = asyncio.run(burst())
            shed = [r for r in results if isinstance(r, OverloadedError)]
            served = [r for r in results
                      if not isinstance(r, BaseException)]
            assert served, "at least one query must get the slot"
            assert shed, "a one-deep queue must shed most of the burst"
            assert svc.admission.stats()["shed_total"] == len(shed)
        finally:
            svc.close()
