"""Soak tests: a live server under concurrent client load.

The acceptance bar for the serving layer: coalesced answers are
bitwise-identical to a solo engine run, a 16x overload sheds cleanly
(structured retry hints, no crash, no leaked slots), and a client that
disconnects mid-query frees its capacity.
"""

import json
import socket
import time
import urllib.parse
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core import SpatialAggregation
from repro.errors import OverloadedError
from repro.serve import ServeClient
from repro.serve.protocol import PROTOCOL_VERSION, encode_request
from repro.table import F

CLIENTS = 32


def wait_until(predicate, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"{what} never became true"
        time.sleep(0.01)


class TestCoalescedCorrectness:
    def test_32_identical_clients_bitwise_equal_to_solo_run(
            self, server, service, manager, simple_regions):
        query = SpatialAggregation.sum_of("fare", F("fare") > 1)
        direct = manager.engine.execute(
            manager.dataset("trips"), simple_regions, query)

        def one(_i):
            client = ServeClient(server, timeout_s=30)
            return client.query("trips", "simple", query=query,
                                cache=False)

        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            results = list(pool.map(one, range(CLIENTS)))

        assert len(results) == CLIENTS
        for remote in results:
            assert np.array_equal(remote.values, direct.values)
            assert np.array_equal(remote.lower, direct.lower)
            assert np.array_equal(remote.upper, direct.upper)
        # The burst must actually have coalesced (hit-rate > 0): far
        # fewer engine runs than clients.
        stats = service.flight.stats()
        assert stats["coalesced"] > 0
        assert stats["coalesce_rate"] > 0.0
        assert service.admission.active == 0
        assert service.admission.waiting == 0

    def test_mixed_distinct_queries_all_correct(self, server, service,
                                                manager, simple_regions):
        thresholds = [0.5 * k for k in range(8)]
        direct = {
            thr: manager.engine.execute(
                manager.dataset("trips"), simple_regions,
                SpatialAggregation.count(F("fare") > thr))
            for thr in thresholds
        }

        def one(i):
            thr = thresholds[i % len(thresholds)]
            client = ServeClient(server, timeout_s=30)
            remote = client.query(
                "trips", "simple",
                query=SpatialAggregation.count(F("fare") > thr))
            return thr, remote

        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            results = list(pool.map(one, range(CLIENTS)))
        for thr, remote in results:
            assert np.array_equal(remote.values, direct[thr].values)
        assert service.admission.active == 0


class TestOverload:
    def test_16x_overload_sheds_without_crashing_or_leaking(
            self, server, service, manager):
        # Make each engine run slow enough that a 16x burst of
        # *distinct* queries (no coalescing possible) must overflow the
        # 4-slot / 8-deep admission window.
        original = manager.engine.execute

        def slow_execute(*args, **kwargs):
            time.sleep(0.15)
            return original(*args, **kwargs)

        manager.engine.execute = slow_execute
        try:
            def one(i):
                client = ServeClient(server, timeout_s=30)
                try:
                    return "ok", client.query(
                        "trips", "simple",
                        query=SpatialAggregation.count(
                            F("fare") > 0.01 * i),
                        cache=False, timeout_s=0.4)
                except OverloadedError as exc:
                    return "shed", exc

            n = 16 * service.admission.max_concurrency
            with ThreadPoolExecutor(max_workers=n) as pool:
                outcomes = list(pool.map(one, range(n)))
        finally:
            manager.engine.execute = original

        served = [r for kind, r in outcomes if kind == "ok"]
        shed = [e for kind, e in outcomes if kind == "shed"]
        assert served, "overloaded server must still serve someone"
        assert shed, "a 16x burst of slow distinct queries must shed"
        for exc in shed:
            assert exc.retry_after_ms > 0
        # No leaked capacity once the dust settles.
        wait_until(lambda: service.admission.active == 0,
                   what="admission.active == 0")
        assert service.admission.waiting == 0
        shed_stats = service.admission.stats()
        assert shed_stats["shed_total"] == len(shed)

        # The server is still healthy: health, stats and a fresh query
        # all round-trip.
        client = ServeClient(server, timeout_s=30)
        assert client.health()["ok"] is True
        assert client.stats()["admission"]["active"] == 0
        fresh = client.query("trips", "simple",
                             query=SpatialAggregation.count())
        assert fresh.values.sum() > 0


class TestDisconnect:
    def test_client_disconnect_mid_query_frees_the_slot(
            self, server, service, manager):
        original = manager.engine.execute
        started = []

        def slow_execute(*args, **kwargs):
            started.append(1)
            time.sleep(0.5)
            return original(*args, **kwargs)

        manager.engine.execute = slow_execute
        try:
            body = json.dumps(encode_request(
                "trips", "simple", query=SpatialAggregation.count(),
                cache=False)).encode()
            parsed = urllib.parse.urlparse(server)
            sock = socket.create_connection(
                (parsed.hostname, parsed.port), timeout=5)
            sock.sendall(
                b"POST /v1/query HTTP/1.1\r\n"
                b"Host: x\r\nContent-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode() + body)
            wait_until(lambda: service.admission.active == 1,
                       what="query admitted")
            sock.close()  # walk away mid-execution
            wait_until(lambda: service.admission.active == 0,
                       what="slot freed after disconnect")
        finally:
            manager.engine.execute = original
        assert service.admission.waiting == 0
        # Capacity is genuinely back: the next query is served.
        client = ServeClient(server, timeout_s=30)
        assert client.query("trips", "simple",
                            query=SpatialAggregation.count()).values.sum() > 0


class TestStreamingOverHTTP:
    def test_streamed_partials_end_final_and_match(self, server, service,
                                                   manager, simple_regions):
        client = ServeClient(server, timeout_s=60)
        parts = list(client.stream("trips", "simple",
                                   query=SpatialAggregation.count(),
                                   tile_pixels=64))
        assert parts, "stream produced no partials"
        assert parts[-1]["final"] is True
        direct = manager.engine.execute(
            manager.dataset("trips"), simple_regions,
            SpatialAggregation.count(), method="bounded")
        assert np.array_equal(np.asarray(parts[-1]["values"]),
                              direct.values)
        assert all(p["v"] == PROTOCOL_VERSION for p in parts)
        assert service.admission.active == 0
