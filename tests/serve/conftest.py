"""Serve-suite fixtures: a small served workload and a live server."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SpatialAggregationEngine
from repro.serve import QueryService, ServerThread
from repro.urbane import DataManager


def make_manager(resolution: int = 128) -> DataManager:
    from repro.table import PointTable, timestamp_column

    gen = np.random.default_rng(42)
    n = 20_000
    manager = DataManager(SpatialAggregationEngine(
        default_resolution=resolution))
    manager.add_dataset(PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n), name="trips",
        fare=gen.exponential(10.0, n),
        t=timestamp_column("t", gen.integers(0, 1_000, n))))
    return manager


@pytest.fixture()
def manager(simple_regions) -> DataManager:
    m = make_manager()
    m.add_region_set(simple_regions)
    return m


@pytest.fixture()
def service(manager):
    svc = QueryService(manager, max_concurrency=4, max_queue=8,
                       max_wait_s=5.0)
    yield svc
    svc.close()


@pytest.fixture()
def server(service):
    thread = ServerThread(service)
    url = thread.start()
    yield url
    thread.stop()
