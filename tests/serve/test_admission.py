"""Admission control: slot accounting, shedding, cancellation safety."""

import asyncio

import pytest

from repro.errors import OverloadedError
from repro.serve import AdmissionController


def run(coro):
    return asyncio.run(coro)


async def until(predicate, timeout=2.0):
    """Spin the loop until ``predicate()`` holds (bounded)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        assert loop.time() < deadline, "condition never became true"
        await asyncio.sleep(0.001)


class TestSlotAccounting:
    def test_slot_held_then_released(self):
        async def scenario():
            ctl = AdmissionController(max_concurrency=2)
            async with ctl.slot():
                assert ctl.active == 1
            assert ctl.active == 0
            assert ctl.admitted == 1

        run(scenario())

    def test_concurrency_cap_enforced(self):
        async def scenario():
            ctl = AdmissionController(max_concurrency=2, max_queue=8)
            peak = 0
            running = 0

            async def work():
                nonlocal peak, running
                async with ctl.slot():
                    running += 1
                    peak = max(peak, running)
                    await asyncio.sleep(0.01)
                    running -= 1

            await asyncio.gather(*[work() for _ in range(6)])
            assert peak <= 2
            assert ctl.admitted == 6
            assert ctl.active == 0

        run(scenario())

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)


class TestShedding:
    def test_queue_full_sheds_immediately(self):
        async def scenario():
            ctl = AdmissionController(max_concurrency=1, max_queue=1)
            release = asyncio.Event()

            async def hog():
                async with ctl.slot():
                    await release.wait()

            hog_task = asyncio.ensure_future(hog())
            await until(lambda: ctl.active == 1)

            async def waiter():
                async with ctl.slot():
                    pass

            waiter_task = asyncio.ensure_future(waiter())
            await until(lambda: ctl.waiting == 1)
            with pytest.raises(OverloadedError) as exc:
                async with ctl.slot():
                    pass
            assert exc.value.retry_after_ms > 0
            assert ctl.shed_queue_full == 1
            release.set()
            await asyncio.gather(hog_task, waiter_task)
            assert ctl.active == 0

        run(scenario())

    def test_wait_timeout_sheds(self):
        async def scenario():
            ctl = AdmissionController(max_concurrency=1, max_queue=4,
                                      max_wait_s=0.02)
            release = asyncio.Event()

            async def hog():
                async with ctl.slot():
                    await release.wait()

            hog_task = asyncio.ensure_future(hog())
            await until(lambda: ctl.active == 1)
            with pytest.raises(OverloadedError):
                async with ctl.slot():
                    pass
            assert ctl.shed_wait_timeout == 1
            assert ctl.waiting == 0  # the shed waiter left the queue
            release.set()
            await hog_task
            assert ctl.active == 0

        run(scenario())

    def test_retry_after_scales_with_queue_depth(self):
        async def scenario():
            ctl = AdmissionController(max_concurrency=1, max_queue=10)
            empty_hint = ctl.retry_after_ms()
            release = asyncio.Event()

            async def hog():
                async with ctl.slot():
                    await release.wait()

            async def waiter():
                async with ctl.slot():
                    pass

            hog_task = asyncio.ensure_future(hog())
            await until(lambda: ctl.active == 1)
            waiters = [asyncio.ensure_future(waiter()) for _ in range(5)]
            await until(lambda: ctl.waiting == 5)
            assert ctl.retry_after_ms() > empty_hint
            release.set()
            await asyncio.gather(hog_task, *waiters)

        run(scenario())


class TestCancellation:
    def test_cancelled_holder_releases_slot(self):
        async def scenario():
            ctl = AdmissionController(max_concurrency=1, max_queue=4)
            started = asyncio.Event()

            async def holder():
                async with ctl.slot():
                    started.set()
                    await asyncio.sleep(60)

            task = asyncio.ensure_future(holder())
            await started.wait()
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert ctl.active == 0
            # The slot is genuinely free again.
            async with ctl.slot():
                assert ctl.active == 1

        run(scenario())

    def test_cancelled_waiter_leaves_queue(self):
        async def scenario():
            ctl = AdmissionController(max_concurrency=1, max_queue=4)
            release = asyncio.Event()

            async def hog():
                async with ctl.slot():
                    await release.wait()

            async def waiter():
                async with ctl.slot():
                    pass

            hog_task = asyncio.ensure_future(hog())
            await until(lambda: ctl.active == 1)
            waiter_task = asyncio.ensure_future(waiter())
            await until(lambda: ctl.waiting == 1)
            waiter_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter_task
            assert ctl.waiting == 0
            release.set()
            await hog_task
            assert ctl.active == 0

        run(scenario())


class TestStats:
    def test_stats_shape(self):
        ctl = AdmissionController(max_concurrency=3, max_queue=5)
        stats = ctl.stats()
        assert stats["max_concurrency"] == 3
        assert stats["max_queue"] == 5
        assert stats["shed_total"] == 0
        assert {"active", "waiting", "admitted"} <= set(stats)
