"""Failure injection and degenerate-input robustness.

The library should fail loudly and precisely on bad input, and keep
producing correct answers on legal-but-nasty input (empty selections,
off-screen data, huge coordinates, sliver polygons).
"""

import numpy as np
import pytest

from repro.core import (
    RegionSet,
    SpatialAggregation,
    SpatialAggregationEngine,
    accurate_raster_join,
    bounded_raster_join,
)
from repro.baselines import naive_join
from repro.errors import GeometryError, QueryError, SchemaError
from repro.geometry import BBox, Polygon, regular_polygon
from repro.raster import Viewport
from repro.table import F, PointTable


def _engine():
    return SpatialAggregationEngine(default_resolution=128)


class TestBadInputsFailLoudly:
    def test_nan_coordinates_rejected_at_construction(self):
        # NaNs would silently poison bbox/raster computations — the
        # failure must surface at construction time.
        with pytest.raises(SchemaError, match="finite"):
            PointTable.from_arrays([np.nan, 1.0], [0.0, 1.0])
        with pytest.raises(SchemaError, match="finite"):
            PointTable.from_arrays([0.0], [np.inf])

    def test_unknown_filter_column(self, simple_regions):
        table = PointTable.from_arrays([1.0], [1.0])
        with pytest.raises(SchemaError, match="no column"):
            _engine().execute(table, simple_regions,
                              SpatialAggregation.count(F("ghost") > 1))

    def test_aggregate_over_missing_column(self, simple_regions):
        table = PointTable.from_arrays([1.0], [1.0])
        with pytest.raises(SchemaError):
            _engine().execute(table, simple_regions,
                              SpatialAggregation.sum_of("ghost"))

    def test_degenerate_region_rejected(self):
        with pytest.raises(GeometryError):
            RegionSet("bad", [[[0, 0], [1, 1], [2, 2]]])  # zero area

    def test_zero_resolution_rejected(self, simple_regions):
        table = PointTable.from_arrays([1.0], [1.0])
        with pytest.raises(GeometryError):
            _engine().execute(table, simple_regions,
                              SpatialAggregation.count(), resolution=0)


class TestNastyButLegalInputs:
    def test_empty_selection_all_methods(self, simple_regions):
        gen = np.random.default_rng(0)
        table = PointTable.from_arrays(
            gen.uniform(0, 100, 1000), gen.uniform(0, 100, 1000),
            fare=gen.exponential(5, 1000))
        query = SpatialAggregation.count(F("fare") > 1e18)
        engine = _engine()
        for method in ("bounded", "accurate", "grid", "rtree", "quadtree",
                       "naive", "tiled"):
            result = engine.execute(table, simple_regions, query,
                                    method=method)
            assert (result.values == 0).all(), method

    def test_all_points_outside_regions(self, simple_regions):
        table = PointTable.from_arrays([500.0, 600.0], [500.0, 600.0])
        engine = _engine()
        for method in ("bounded", "accurate", "naive"):
            result = engine.execute(table, simple_regions,
                                    SpatialAggregation.count(),
                                    method=method)
            assert (result.values == 0).all()

    def test_single_point_single_region(self):
        regions = RegionSet("one", [regular_polygon(50, 50, 10, 6)])
        inside = PointTable.from_arrays([50.0], [50.0])
        outside = PointTable.from_arrays([80.0], [80.0])
        engine = _engine()
        assert engine.execute(inside, regions, SpatialAggregation.count(),
                              method="accurate").values[0] == 1
        assert engine.execute(outside, regions, SpatialAggregation.count(),
                              method="accurate").values[0] == 0

    def test_huge_coordinates(self):
        base = 1e7  # web-mercator-scale offsets
        regions = RegionSet(
            "far", [regular_polygon(base + 500, base + 500, 400, 8)])
        gen = np.random.default_rng(1)
        table = PointTable.from_arrays(
            base + gen.uniform(0, 1000, 20_000),
            base + gen.uniform(0, 1000, 20_000))
        vp = Viewport.fit(regions.bbox, 256)
        got = accurate_raster_join(table, regions,
                                   SpatialAggregation.count(), vp)
        want = naive_join(table, regions, SpatialAggregation.count())
        assert got.values == pytest.approx(want.values)

    def test_sliver_polygon(self):
        """A polygon thinner than a pixel: bounded must stay within
        bounds, accurate must stay exact."""
        sliver = Polygon([[10, 50], [90, 50.001], [90, 50.3], [10, 50.301]])
        regions = RegionSet("sliver", [sliver])
        gen = np.random.default_rng(2)
        table = PointTable.from_arrays(
            gen.uniform(0, 100, 50_000), gen.uniform(49, 52, 50_000))
        vp = Viewport.fit(BBox(0, 0, 100, 100), 128)  # pixel ~ 0.8 units
        want = naive_join(table, regions, SpatialAggregation.count())
        got_exact = accurate_raster_join(table, regions,
                                         SpatialAggregation.count(), vp)
        assert got_exact.values == pytest.approx(want.values)
        got_bounded = bounded_raster_join(table, regions,
                                          SpatialAggregation.count(), vp)
        assert got_bounded.bounds_contain(want)

    def test_region_smaller_than_pixel(self):
        tiny = regular_polygon(50.05, 50.05, 0.01, 6)
        regions = RegionSet("tiny", [tiny])
        table = PointTable.from_arrays([50.05, 20.0], [50.05, 20.0])
        vp = Viewport.fit(BBox(0, 0, 100, 100), 64)
        got = accurate_raster_join(table, regions,
                                   SpatialAggregation.count(), vp)
        assert got.values[0] == 1

    def test_identical_points_pile_up(self, simple_regions):
        table = PointTable.from_arrays(
            np.full(10_000, 25.0), np.full(10_000, 25.0))
        engine = _engine()
        for method in ("bounded", "accurate", "grid"):
            result = engine.execute(table, simple_regions,
                                    SpatialAggregation.count(),
                                    method=method)
            assert result.values[0] == 10_000, method

    def test_min_max_with_negative_values(self, simple_regions):
        gen = np.random.default_rng(3)
        table = PointTable.from_arrays(
            gen.uniform(0, 100, 5000), gen.uniform(0, 100, 5000),
            delta=gen.normal(-50, 10, 5000))
        engine = _engine()
        got = engine.execute(table, simple_regions,
                             SpatialAggregation.min_of("delta"),
                             method="accurate")
        want = naive_join(table, simple_regions,
                          SpatialAggregation.min_of("delta"))
        both_nan = np.isnan(got.values) & np.isnan(want.values)
        assert (both_nan | np.isclose(got.values, want.values)).all()

    def test_sum_bounds_with_negative_values(self, simple_regions):
        """|value| mass keeps SUM bounds valid even for signed data."""
        gen = np.random.default_rng(4)
        table = PointTable.from_arrays(
            gen.uniform(0, 100, 20_000), gen.uniform(0, 100, 20_000),
            delta=gen.normal(0, 10, 20_000))
        vp = Viewport.fit(simple_regions.bbox, 64)  # coarse on purpose
        got = bounded_raster_join(table, simple_regions,
                                  SpatialAggregation.sum_of("delta"), vp)
        want = naive_join(table, simple_regions,
                          SpatialAggregation.sum_of("delta"))
        assert got.bounds_contain(want)
