"""Integration tests over the example scripts.

Every example must at least compile; the fast ones are executed end to
end in a subprocess (fresh interpreter, like a user would run them) and
their output is sanity-checked.  The heavyweight ones are executed with
a tight timeout guard only when explicitly requested (they are exercised
manually and by EXPERIMENTS.md generation).
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in ALL_EXAMPLES}
    assert {"quickstart.py", "taxi_exploration.py",
            "neighborhood_ranking.py", "accuracy_tuning.py",
            "interactive_session.py", "rhythm_analysis.py",
            "streaming_feed.py"} <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path):
    py_compile.compile(str(path), doraise=True)


def _run(name, timeout=420):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=timeout)


class TestRunExamples:
    def test_quickstart(self):
        proc = _run("quickstart.py")
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "bounded" in proc.stdout
        assert "exact values inside the bounds:       True" in proc.stdout

    def test_streaming_feed(self):
        proc = _run("streaming_feed.py")
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "planted bursts" in proc.stdout
        assert "running matrix" in proc.stdout

    def test_neighborhood_ranking(self):
        proc = _run("neighborhood_ranking.py")
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "top 8 neighborhoods" in proc.stdout
        assert "head-to-head" in proc.stdout
