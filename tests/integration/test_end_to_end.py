"""Integration tests: the full stack working together.

These tests cross modules deliberately: generators -> tables -> engine
-> views -> serialization, asserting mutual consistency rather than
unit behaviour.
"""

import numpy as np
import pytest

from repro.baselines import DataCube, assign_regions
from repro.core import (
    RegionSet,
    SpatialAggregation,
    SpatialAggregationEngine,
)
from repro.data import SECONDS_PER_DAY, month_window
from repro.table import F, load_npz, save_npz
from repro.urbane import (
    DataExplorationView,
    DataManager,
    Indicator,
    InteractiveSession,
    MapView,
    TimelineView,
)

ALL_EXACT_METHODS = ("accurate", "grid", "rtree", "quadtree", "naive")


class TestBackendConsistency:
    """Every backend answers the same realistic workload identically."""

    @pytest.mark.parametrize("query_name,query", [
        ("count", SpatialAggregation.count()),
        ("filtered-avg", SpatialAggregation.avg_of(
            "fare", F("payment") == "card")),
        ("time-window", SpatialAggregation.count().during(
            "t", *month_window(0))),
    ])
    def test_exact_methods_agree(self, demo, query_name, query):
        engine = SpatialAggregationEngine(default_resolution=256)
        taxi = demo.datasets["taxi"]
        regions = demo.regions["neighborhoods"]
        results = [engine.execute(taxi, regions, query, method=m)
                   for m in ALL_EXACT_METHODS]
        base = results[0].values
        for result in results[1:]:
            both_nan = np.isnan(base) & np.isnan(result.values)
            assert (both_nan | np.isclose(base, result.values)).all(), (
                f"{result.method} disagrees on {query_name}")

    def test_bounded_and_tiled_bracket_exact(self, demo):
        engine = SpatialAggregationEngine(default_resolution=256)
        taxi = demo.datasets["taxi"]
        regions = demo.regions["neighborhoods"]
        query = SpatialAggregation.count()
        exact = engine.execute(taxi, regions, query, method="naive")
        for method in ("bounded", "tiled"):
            approx = engine.execute(taxi, regions, query, method=method)
            assert approx.bounds_contain(exact), method

    def test_assignment_consistent_with_joins(self, demo):
        taxi = demo.datasets["taxi"].sample(10_000, seed=1)
        regions = demo.regions["neighborhoods"]
        labels = assign_regions(taxi, regions)
        engine = SpatialAggregationEngine()
        exact = engine.execute(taxi, regions, SpatialAggregation.count(),
                               method="accurate")
        counts = np.bincount(labels[labels >= 0], minlength=len(regions))
        assert counts == pytest.approx(exact.values)


class TestViewsAgree:
    """Different views computing the same quantity must agree."""

    def test_timeline_total_matches_map_total(self, demo):
        manager = DataManager()
        manager.add_dataset(demo.datasets["taxi"], "taxi")
        manager.add_region_set(demo.regions["neighborhoods"],
                               "neighborhoods")
        start, end = month_window(0)
        query = SpatialAggregation.count().during("t", start, end)
        choropleth = MapView(manager, resolution=256).choropleth(
            "taxi", "neighborhoods", query, method="accurate")
        series = TimelineView(manager).series(
            "taxi", bucket="day",
            filters=[F("t").time_range(start, end)])
        # Timeline counts all rows in the window; the map counts rows
        # inside some region — boundary clipping drops only slivers.
        assert choropleth.result.values.sum() == pytest.approx(
            series.total, rel=0.02)

    def test_exploration_matrix_matches_direct_queries(self, demo):
        manager = DataManager()
        for name, table in demo.datasets.items():
            manager.add_dataset(table, name)
        manager.add_region_set(demo.regions["neighborhoods"],
                               "neighborhoods")
        view = DataExplorationView(manager, "neighborhoods",
                                   method="accurate")
        matrix = view.compute([
            Indicator("activity", "taxi", SpatialAggregation.count())])
        direct = manager.aggregate("taxi", "neighborhoods",
                                   SpatialAggregation.count(),
                                   method="accurate")
        assert matrix.raw[:, 0] == pytest.approx(direct.values)

    def test_heat_matrix_consistent_with_timeline(self, demo):
        manager = DataManager()
        manager.add_dataset(demo.datasets["taxi"], "taxi")
        manager.add_region_set(demo.regions["neighborhoods"],
                               "neighborhoods")
        view = TimelineView(manager)
        matrix = view.matrix("taxi", "neighborhoods", bucket="day")
        name = demo.regions["neighborhoods"].region_names[0]
        series = view.series("taxi", bucket="day", region_set="neighborhoods",
                             region_name=name)
        # Exact per-region series vs. pixel-labeled series: equal up to
        # boundary-pixel misassignment.
        got = matrix.series_for(name)
        if len(got) > len(series.values):
            got = got[:len(series.values)]
        rel = np.abs(got - series.values[:len(got)]).sum() / max(
            series.total, 1)
        assert rel < 0.05


class TestSerializationPipeline:
    def test_npz_round_trip_preserves_query_results(self, demo, tmp_path):
        taxi = demo.datasets["taxi"].sample(20_000, seed=2)
        regions = demo.regions["neighborhoods"]
        engine = SpatialAggregationEngine()
        query = SpatialAggregation.avg_of("fare", F("payment") == "card")
        before = engine.execute(taxi, regions, query, method="accurate")

        path = tmp_path / "taxi.npz"
        save_npz(taxi, path)
        restored = load_npz(path)
        after = engine.execute(restored, regions, query, method="accurate")
        both_nan = np.isnan(before.values) & np.isnan(after.values)
        assert (both_nan | np.isclose(before.values, after.values)).all()

    def test_geojson_round_trip_preserves_query_results(self, demo):
        taxi = demo.datasets["taxi"].sample(20_000, seed=3)
        regions = demo.regions["neighborhoods"]
        restored = RegionSet.from_geojson("copy", regions.to_geojson())
        engine = SpatialAggregationEngine()
        query = SpatialAggregation.count()
        a = engine.execute(taxi, regions, query, method="accurate")
        b = engine.execute(taxi, restored, query, method="accurate")
        assert a.values == pytest.approx(b.values)


class TestCubeEngineAgreement:
    def test_cube_and_raster_join_agree_on_aligned_queries(self, demo):
        taxi = demo.datasets["taxi"]
        regions = demo.regions["neighborhoods"]
        cube = DataCube(taxi, regions, time_column="t",
                        time_bucket_s=SECONDS_PER_DAY,
                        category_columns=("payment",),
                        value_column="fare")
        engine = SpatialAggregationEngine()
        start, end = month_window(0)
        for query in (
            SpatialAggregation.count().during("t", start, end),
            SpatialAggregation.sum_of("fare", F("payment") == "card"),
        ):
            from_cube = cube.answer(regions, query)
            from_engine = engine.execute(taxi, regions, query,
                                         method="accurate")
            assert from_cube.values == pytest.approx(from_engine.values)


class TestSessionAgainstGroundTruth:
    def test_session_results_track_exact_answers(self, demo):
        manager = DataManager()
        for name, table in demo.datasets.items():
            manager.add_dataset(table, name)
        for name, regions in demo.regions.items():
            manager.add_region_set(regions, name)
        session = InteractiveSession(manager, "taxi", "neighborhoods",
                                     method="bounded", resolution=512)
        start, end = month_window(0)
        session.brush_time(start, end)
        approx = session.add_filter(F("payment") == "card")

        engine = manager.engine
        exact = engine.execute(
            demo.datasets["taxi"], demo.regions["neighborhoods"],
            session.state.effective_query(), method="accurate",
            resolution=512)
        assert approx.bounds_contain(exact)
        metrics = approx.compare_to(exact)
        assert metrics["max_rel_error"] < 0.1
