"""Shared fixtures: a small deterministic workload every suite reuses.

Fixtures are session-scoped where construction is expensive (the demo
workload) and function-scoped where tests mutate nothing anyway but
isolation is cheap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RegionSet, SpatialAggregationEngine
from repro.data import CityModel, load_demo_workload, voronoi_regions
from repro.geometry import Polygon, regular_polygon
from repro.table import PointTable, timestamp_column


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def simple_regions() -> RegionSet:
    """Three overlapping-free regions of varied shape in [0, 100]^2."""
    concave = Polygon([
        [5, 55], [45, 55], [45, 95], [25, 95], [25, 75], [15, 75],
        [15, 95], [5, 95]])
    holed = Polygon(
        [[55, 55], [95, 55], [95, 95], [55, 95]],
        holes=[[[70, 70], [80, 70], [80, 80], [70, 80]]])
    return RegionSet(
        "simple",
        [regular_polygon(25, 25, 18, 9), concave, holed],
        ["disc", "concave", "holed"],
    )


@pytest.fixture(scope="session")
def small_table() -> PointTable:
    """50k points over [0, 100]^2 with numeric/categorical/time columns."""
    gen = np.random.default_rng(99)
    n = 50_000
    x = gen.uniform(0, 100, n)
    y = gen.uniform(0, 100, n)
    fare = gen.exponential(10.0, n)
    t = gen.integers(1_000_000, 2_000_000, n)
    kind = gen.choice(["a", "b", "c"], n)
    return PointTable.from_arrays(
        x, y, name="small",
        fare=fare, t=timestamp_column("t", t), kind=kind)


@pytest.fixture(scope="session")
def city() -> CityModel:
    return CityModel(seed=7)


@pytest.fixture(scope="session")
def city_regions(city) -> RegionSet:
    return voronoi_regions(city, 40, name="test-neighborhoods")


@pytest.fixture(scope="session")
def demo():
    """A scaled-down demo workload shared across integration tests."""
    return load_demo_workload(
        taxi_rows=60_000, complaint_rows=20_000, crime_rows=15_000,
        months=2, region_levels={"boroughs": 5, "neighborhoods": 40})


@pytest.fixture()
def engine() -> SpatialAggregationEngine:
    return SpatialAggregationEngine(default_resolution=256)
