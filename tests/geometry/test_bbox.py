"""Unit tests for repro.geometry.bbox."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import BBox

coord = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


@st.composite
def bboxes(draw):
    x0 = draw(coord)
    y0 = draw(coord)
    w = draw(st.floats(0, 1e5, allow_nan=False))
    h = draw(st.floats(0, 1e5, allow_nan=False))
    return BBox(x0, y0, x0 + w, y0 + h)


class TestConstruction:
    def test_invalid_order_raises(self):
        with pytest.raises(GeometryError):
            BBox(1, 0, 0, 1)

    def test_of_points(self):
        box = BBox.of_points([[1, 5], [3, 2], [-1, 4]])
        assert box.as_tuple() == (-1, 2, 3, 5)

    def test_of_points_empty_raises(self):
        with pytest.raises(GeometryError):
            BBox.of_points(np.empty((0, 2)))

    def test_degenerate_allowed(self):
        box = BBox(1, 1, 1, 1)
        assert box.area == 0
        assert box.contains_point(1, 1)


class TestGeometry:
    def test_dimensions(self):
        box = BBox(0, 0, 4, 3)
        assert box.width == 4
        assert box.height == 3
        assert box.area == 12
        assert box.center == (2.0, 1.5)

    def test_contains_points_vectorized(self):
        box = BBox(0, 0, 1, 1)
        mask = box.contains_points([[0.5, 0.5], [2, 0.5], [1.0, 1.0]])
        assert mask.tolist() == [True, False, True]

    def test_corners_ccw(self):
        corners = BBox(0, 0, 2, 1).corners()
        # Shoelace must be positive (CCW).
        x, y = corners[:, 0], corners[:, 1]
        area = 0.5 * (np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))
        assert area == pytest.approx(2.0)


class TestSetOps:
    def test_intersects_touching(self):
        assert BBox(0, 0, 1, 1).intersects(BBox(1, 0, 2, 1))

    def test_disjoint(self):
        assert not BBox(0, 0, 1, 1).intersects(BBox(2, 2, 3, 3))

    def test_intersection_none_when_disjoint(self):
        assert BBox(0, 0, 1, 1).intersection(BBox(5, 5, 6, 6)) is None

    def test_intersection_value(self):
        got = BBox(0, 0, 2, 2).intersection(BBox(1, 1, 3, 3))
        assert got.as_tuple() == (1, 1, 2, 2)

    def test_union(self):
        got = BBox(0, 0, 1, 1).union(BBox(2, 2, 3, 3))
        assert got.as_tuple() == (0, 0, 3, 3)

    def test_contains_bbox(self):
        assert BBox(0, 0, 10, 10).contains_bbox(BBox(1, 1, 2, 2))
        assert not BBox(0, 0, 10, 10).contains_bbox(BBox(9, 9, 11, 11))

    @given(bboxes(), bboxes())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_bbox(a) and u.contains_bbox(b)

    @given(bboxes(), bboxes())
    def test_intersection_within_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_bbox(inter)
            assert b.contains_bbox(inter)
        else:
            assert not a.intersects(b)


class TestTransforms:
    def test_expand(self):
        assert BBox(0, 0, 2, 2).expand(1).as_tuple() == (-1, -1, 3, 3)

    def test_scale_preserves_center(self):
        box = BBox(0, 0, 4, 2)
        scaled = box.scale(0.5)
        assert scaled.center == box.center
        assert scaled.width == pytest.approx(2.0)

    def test_translate(self):
        assert BBox(0, 0, 1, 1).translate(3, -1).as_tuple() == (3, -1, 4, 0)
