"""Property tests: GeoJSON round trips on randomized geometries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    MultiPolygon,
    Polygon,
    geometry_from_geojson,
    geometry_to_geojson,
)


@st.composite
def random_polygons(draw):
    """Star-shaped simple polygons with random radii (always valid)."""
    n = draw(st.integers(3, 24))
    cx = draw(st.floats(-1000, 1000))
    cy = draw(st.floats(-1000, 1000))
    seed = draw(st.integers(0, 10_000))
    gen = np.random.default_rng(seed)
    angles = np.sort(gen.uniform(0, 2 * np.pi, n))
    # Enforce distinct angles so edges are non-degenerate.
    if len(np.unique(angles)) < 3:
        angles = np.linspace(0, 2 * np.pi, max(n, 3), endpoint=False)
    radii = gen.uniform(1.0, 50.0, len(angles))
    ring = np.column_stack([cx + radii * np.cos(angles),
                            cy + radii * np.sin(angles)])
    return Polygon(ring)


@settings(max_examples=80, deadline=None)
@given(random_polygons())
def test_polygon_round_trip_exact(poly):
    back = geometry_from_geojson(geometry_to_geojson(poly))
    assert isinstance(back, Polygon)
    assert back.area == pytest.approx(poly.area, rel=1e-12)
    assert np.allclose(back.exterior, poly.exterior)


@settings(max_examples=40, deadline=None)
@given(random_polygons(), random_polygons())
def test_multipolygon_round_trip(poly_a, poly_b):
    mp = MultiPolygon((poly_a, poly_b))
    back = geometry_from_geojson(geometry_to_geojson(mp))
    assert isinstance(back, MultiPolygon)
    assert back.area == pytest.approx(mp.area, rel=1e-12)
    assert len(back.polygons) == 2


@settings(max_examples=40, deadline=None)
@given(random_polygons())
def test_round_trip_preserves_containment(poly):
    """Membership answers survive the round trip bit-for-bit."""
    back = geometry_from_geojson(geometry_to_geojson(poly))
    box = poly.bbox.expand(5.0)
    gen = np.random.default_rng(1)
    pts = np.column_stack([
        gen.uniform(box.xmin, box.xmax, 200),
        gen.uniform(box.ymin, box.ymax, 200)])
    assert (poly.contains_points(pts) == back.contains_points(pts)).all()
