"""Unit tests for repro.geometry.polygon."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    BBox,
    MultiPolygon,
    Polygon,
    as_geometry,
    box_polygon,
    normalize_ring,
    polygon_signed_area,
    regular_polygon,
)

SQUARE = [[0, 0], [10, 0], [10, 10], [0, 10]]
HOLE = [[3, 3], [7, 3], [7, 7], [3, 7]]


class TestNormalizeRing:
    def test_forces_ccw(self):
        ring = normalize_ring(SQUARE[::-1], orientation=1)
        assert polygon_signed_area(ring) > 0

    def test_forces_cw_for_holes(self):
        ring = normalize_ring(SQUARE, orientation=-1)
        assert polygon_signed_area(ring) < 0

    def test_drops_closing_vertex(self):
        closed = SQUARE + [SQUARE[0]]
        assert len(normalize_ring(closed)) == 4

    def test_rejects_degenerate(self):
        with pytest.raises(GeometryError):
            normalize_ring([[0, 0], [1, 0], [2, 0]])

    def test_rejects_too_few(self):
        with pytest.raises(GeometryError):
            normalize_ring([[0, 0], [1, 1]])


class TestPolygon:
    def test_area_with_hole(self):
        poly = Polygon(SQUARE, holes=[HOLE])
        assert poly.area == pytest.approx(100 - 16)

    def test_perimeter_includes_holes(self):
        poly = Polygon(SQUARE, holes=[HOLE])
        assert poly.perimeter == pytest.approx(40 + 16)

    def test_bbox(self):
        assert Polygon(SQUARE).bbox == BBox(0, 0, 10, 10)

    def test_contains_respects_hole(self):
        poly = Polygon(SQUARE, holes=[HOLE])
        assert poly.contains_point(1, 1)
        assert not poly.contains_point(5, 5)  # inside the hole
        assert not poly.contains_point(20, 20)

    def test_contains_points_vectorized(self):
        poly = Polygon(SQUARE, holes=[HOLE])
        mask = poly.contains_points([[1, 1], [5, 5], [20, 20], [8, 8]])
        assert mask.tolist() == [True, False, False, True]

    def test_num_vertices(self):
        assert Polygon(SQUARE, holes=[HOLE]).num_vertices == 8

    def test_rings_iteration(self):
        poly = Polygon(SQUARE, holes=[HOLE])
        rings = list(poly.rings())
        assert len(rings) == 2

    def test_centroid_of_square(self):
        assert Polygon(SQUARE).centroid == pytest.approx((5.0, 5.0))

    def test_immutable_orientation(self):
        poly = Polygon(SQUARE[::-1])  # passed clockwise
        assert polygon_signed_area(poly.exterior) > 0
        assert all(polygon_signed_area(h) < 0 for h in poly.holes)


class TestMultiPolygon:
    def _two_parts(self):
        return MultiPolygon((
            Polygon(SQUARE),
            Polygon([[20, 0], [30, 0], [30, 10], [20, 10]]),
        ))

    def test_area_sums(self):
        assert self._two_parts().area == pytest.approx(200)

    def test_bbox_spans_parts(self):
        assert self._two_parts().bbox == BBox(0, 0, 30, 10)

    def test_contains_any_part(self):
        mp = self._two_parts()
        assert mp.contains_point(5, 5)
        assert mp.contains_point(25, 5)
        assert not mp.contains_point(15, 5)

    def test_centroid_weighted(self):
        cx, cy = self._two_parts().centroid
        assert cx == pytest.approx(15.0)
        assert cy == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            MultiPolygon(())

    def test_non_polygon_rejected(self):
        with pytest.raises(GeometryError):
            MultiPolygon((SQUARE,))  # raw ring, not a Polygon


class TestAsGeometry:
    def test_passthrough(self):
        poly = Polygon(SQUARE)
        assert as_geometry(poly) is poly

    def test_vertex_array(self):
        geom = as_geometry(np.asarray(SQUARE, dtype=float))
        assert isinstance(geom, Polygon)

    def test_ring_list_makes_holes(self):
        geom = as_geometry([SQUARE, HOLE])
        assert isinstance(geom, Polygon)
        assert len(geom.holes) == 1

    def test_plain_vertex_list(self):
        geom = as_geometry(SQUARE)
        assert isinstance(geom, Polygon)
        assert len(geom.holes) == 0


class TestHelpers:
    def test_regular_polygon_area_converges_to_circle(self):
        poly = regular_polygon(0, 0, 1.0, 256)
        assert poly.area == pytest.approx(np.pi, rel=1e-3)

    def test_regular_polygon_rejects_two_sides(self):
        with pytest.raises(GeometryError):
            regular_polygon(0, 0, 1.0, 2)

    def test_box_polygon(self):
        poly = box_polygon(BBox(0, 0, 2, 3))
        assert poly.area == pytest.approx(6.0)
