"""Unit tests for repro.geometry.point."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    as_points,
    dedupe_consecutive,
    polygon_centroid,
    polygon_perimeter,
    polygon_signed_area,
)

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestAsPoints:
    def test_list_of_pairs(self):
        pts = as_points([[1, 2], [3, 4]])
        assert pts.shape == (2, 2)
        assert pts.dtype == np.float64

    def test_single_pair(self):
        assert as_points([1.0, 2.0]).shape == (1, 2)

    def test_empty(self):
        assert as_points([]).shape == (0, 2)

    def test_rejects_bad_width(self):
        with pytest.raises(GeometryError):
            as_points([[1, 2, 3]])

    def test_rejects_odd_flat(self):
        with pytest.raises(GeometryError):
            as_points([1.0, 2.0, 3.0])

    def test_rejects_nan(self):
        with pytest.raises(GeometryError):
            as_points([[np.nan, 0.0]])

    def test_rejects_inf(self):
        with pytest.raises(GeometryError):
            as_points([[np.inf, 0.0]])


class TestDedupe:
    def test_removes_consecutive_duplicates(self):
        pts = dedupe_consecutive([[0, 0], [0, 0], [1, 1], [1, 1], [2, 2]])
        assert len(pts) == 3

    def test_keeps_nonconsecutive_duplicates(self):
        pts = dedupe_consecutive([[0, 0], [1, 1], [0, 0]])
        assert len(pts) == 3

    def test_short_input_unchanged(self):
        assert len(dedupe_consecutive([[1, 2]])) == 1


class TestSignedArea:
    def test_unit_square_ccw(self):
        sq = [[0, 0], [1, 0], [1, 1], [0, 1]]
        assert polygon_signed_area(sq) == pytest.approx(1.0)

    def test_unit_square_cw_negative(self):
        sq = [[0, 0], [0, 1], [1, 1], [1, 0]]
        assert polygon_signed_area(sq) == pytest.approx(-1.0)

    def test_triangle(self):
        tri = [[0, 0], [4, 0], [0, 3]]
        assert polygon_signed_area(tri) == pytest.approx(6.0)

    def test_degenerate_returns_zero(self):
        assert polygon_signed_area([[0, 0], [1, 1]]) == 0.0

    @given(st.lists(st.tuples(finite, finite), min_size=3, max_size=12))
    def test_reversal_negates(self, verts):
        area = polygon_signed_area(verts)
        rev = polygon_signed_area(verts[::-1])
        # Absolute tolerance scales with the rounding of the shoelace
        # products (coords up to 1e6 -> products up to 1e12).
        arr = np.asarray(verts)
        tol = 1e-12 * max(1.0, float(np.abs(arr).max()) ** 2) * len(verts)
        assert area == pytest.approx(-rev, rel=1e-9, abs=tol)

    @given(st.tuples(finite, finite),
           st.lists(st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
                    min_size=3, max_size=10))
    def test_translation_invariant(self, offset, verts):
        base = polygon_signed_area(verts)
        moved = [(x + offset[0], y + offset[1]) for x, y in verts]
        assert polygon_signed_area(moved) == pytest.approx(
            base, rel=1e-6, abs=1e-3)


class TestCentroid:
    def test_square_centroid(self):
        sq = [[0, 0], [2, 0], [2, 2], [0, 2]]
        assert polygon_centroid(sq) == pytest.approx((1.0, 1.0))

    def test_orientation_independent(self):
        sq = [[0, 0], [2, 0], [2, 2], [0, 2]]
        assert polygon_centroid(sq) == pytest.approx(polygon_centroid(sq[::-1]))

    def test_degenerate_falls_back_to_mean(self):
        line = [[0, 0], [2, 0], [4, 0]]
        assert polygon_centroid(line) == pytest.approx((2.0, 0.0))

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            polygon_centroid([])


class TestPerimeter:
    def test_unit_square(self):
        sq = [[0, 0], [1, 0], [1, 1], [0, 1]]
        assert polygon_perimeter(sq) == pytest.approx(4.0)

    def test_single_point_zero(self):
        assert polygon_perimeter([[1, 1]]) == 0.0

    def test_closing_edge_included(self):
        tri = [[0, 0], [3, 0], [3, 4]]
        assert polygon_perimeter(tri) == pytest.approx(3 + 4 + 5)
