"""Unit and property tests for repro.geometry.predicates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    orient2d,
    point_in_ring,
    points_in_ring,
    ring_is_simple,
    segment_intersection_point,
    segments_intersect,
)

SQUARE = [[0, 0], [10, 0], [10, 10], [0, 10]]
# A concave "U" shape.
U_SHAPE = [[0, 0], [10, 0], [10, 10], [7, 10], [7, 3], [3, 3], [3, 10],
           [0, 10]]


class TestOrient2d:
    def test_left_turn_positive(self):
        assert orient2d(0, 0, 1, 0, 0, 1) > 0

    def test_right_turn_negative(self):
        assert orient2d(0, 0, 1, 0, 0, -1) < 0

    def test_collinear_zero(self):
        assert orient2d(0, 0, 1, 1, 2, 2) == 0

    def test_broadcasts(self):
        cx = np.array([0.0, 2.0])
        cy = np.array([1.0, 2.0])
        out = orient2d(0, 0, 1, 0, cx, cy)
        assert out.shape == (2,)


class TestSegmentsIntersect:
    def test_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_parallel_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_touching_endpoint(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_t_junction(self):
        assert segments_intersect((0, 0), (2, 0), (1, -1), (1, 0))


class TestSegmentIntersectionPoint:
    def test_midpoint_cross(self):
        got = segment_intersection_point((0, 0), (2, 2), (0, 2), (2, 0))
        assert got == pytest.approx((1.0, 1.0))

    def test_none_for_parallel(self):
        assert segment_intersection_point((0, 0), (1, 0), (0, 1), (1, 1)) is None

    def test_none_when_outside_segments(self):
        assert segment_intersection_point((0, 0), (1, 1), (3, 0), (0, 3)) is None


class TestPointsInRing:
    def test_inside_square(self):
        assert point_in_ring(5, 5, SQUARE)

    def test_outside_square(self):
        assert not point_in_ring(15, 5, SQUARE)

    def test_concave_pocket_outside(self):
        # The notch of the U is outside the polygon.
        assert not point_in_ring(5, 6, U_SHAPE)
        assert point_in_ring(1.5, 5, U_SHAPE)
        assert point_in_ring(8.5, 5, U_SHAPE)

    def test_vectorized_matches_scalar(self):
        gen = np.random.default_rng(0)
        pts = gen.uniform(-2, 12, size=(500, 2))
        mask = points_in_ring(pts, U_SHAPE)
        for p, m in zip(pts[:50], mask[:50]):
            assert point_in_ring(p[0], p[1], U_SHAPE) == m

    def test_empty_points(self):
        assert points_in_ring(np.empty((0, 2)), SQUARE).shape == (0,)

    def test_degenerate_ring_all_false(self):
        assert not points_in_ring([[5, 5]], [[0, 0], [1, 1]]).any()

    def test_partition_property_on_shared_edge(self):
        """Two squares sharing an edge: every point on the shared edge
        belongs to exactly one (the half-open convention)."""
        left = [[0, 0], [5, 0], [5, 10], [0, 10]]
        right = [[5, 0], [10, 0], [10, 10], [5, 10]]
        ys = np.linspace(0.5, 9.5, 37)
        pts = np.column_stack([np.full_like(ys, 5.0), ys])
        in_left = points_in_ring(pts, left)
        in_right = points_in_ring(pts, right)
        assert ((in_left.astype(int) + in_right.astype(int)) == 1).all()

    def test_ring_orientation_irrelevant(self):
        gen = np.random.default_rng(1)
        pts = gen.uniform(-2, 12, size=(200, 2))
        fwd = points_in_ring(pts, U_SHAPE)
        rev = points_in_ring(pts, U_SHAPE[::-1])
        assert (fwd == rev).all()

    @given(st.floats(0.01, 9.99), st.floats(0.01, 9.99))
    def test_interior_points_inside_square(self, x, y):
        assert point_in_ring(x, y, SQUARE)

    @settings(max_examples=50)
    @given(st.floats(-100, 100), st.floats(-100, 100))
    def test_far_points_outside(self, x, y):
        if -0.5 <= x <= 10.5 and -0.5 <= y <= 10.5:
            return
        assert not point_in_ring(x, y, SQUARE)


class TestRingIsSimple:
    def test_square_simple(self):
        assert ring_is_simple(SQUARE)

    def test_bowtie_not_simple(self):
        bowtie = [[0, 0], [2, 2], [2, 0], [0, 2]]
        assert not ring_is_simple(bowtie)

    def test_concave_simple(self):
        assert ring_is_simple(U_SHAPE)

    def test_too_few_vertices(self):
        assert not ring_is_simple([[0, 0], [1, 1]])
