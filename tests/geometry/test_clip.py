"""Unit and property tests for Sutherland–Hodgman clipping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    BBox,
    clip_polygon_convex,
    clip_ring_to_bbox,
    polygon_signed_area,
    regular_polygon,
)

SQUARE = np.array([[0, 0], [10, 0], [10, 10], [0, 10]], dtype=float)


class TestClipBasics:
    def test_subject_inside_clip_unchanged_area(self):
        small = np.array([[2, 2], [4, 2], [4, 4], [2, 4]], dtype=float)
        out = clip_polygon_convex(small, SQUARE)
        assert abs(polygon_signed_area(out)) == pytest.approx(4.0)

    def test_disjoint_gives_empty(self):
        far = np.array([[20, 20], [30, 20], [30, 30]], dtype=float)
        out = clip_polygon_convex(far, SQUARE)
        assert len(out) == 0

    def test_half_overlap(self):
        subject = np.array([[5, 0], [15, 0], [15, 10], [5, 10]], dtype=float)
        out = clip_polygon_convex(subject, SQUARE)
        assert abs(polygon_signed_area(out)) == pytest.approx(50.0)

    def test_clip_orientation_insensitive(self):
        subject = np.array([[5, 0], [15, 0], [15, 10], [5, 10]], dtype=float)
        out_cw = clip_polygon_convex(subject, SQUARE[::-1])
        assert abs(polygon_signed_area(out_cw)) == pytest.approx(50.0)

    def test_concave_subject(self):
        u_shape = np.array([[0, 0], [10, 0], [10, 10], [7, 10], [7, 3],
                            [3, 3], [3, 10], [0, 10]], dtype=float)
        clip = np.array([[-1, -1], [11, -1], [11, 5], [-1, 5]], dtype=float)
        out = clip_polygon_convex(u_shape, clip)
        # Below y=5 the U is solid for y in [0, 3] (area 30) and two
        # 2x3 legs for y in [3, 5] (area 12).
        assert abs(polygon_signed_area(out)) == pytest.approx(42.0, abs=1e-9)

    def test_clip_to_bbox_helper(self):
        tri = np.array([[-5, -5], [15, -5], [5, 15]], dtype=float)
        out = clip_ring_to_bbox(tri, BBox(0, 0, 10, 10))
        area = abs(polygon_signed_area(out))
        assert 0 < area <= 100


class TestClipProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.floats(-5, 15), st.floats(-5, 15), st.floats(0.5, 8),
           st.integers(3, 9))
    def test_clipped_area_never_exceeds_either(self, cx, cy, r, sides):
        subject = regular_polygon(cx, cy, r, sides).exterior
        out = clip_polygon_convex(subject, SQUARE)
        area = abs(polygon_signed_area(out)) if len(out) >= 3 else 0.0
        assert area <= abs(polygon_signed_area(subject)) + 1e-9
        assert area <= 100.0 + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(st.floats(-5, 15), st.floats(-5, 15), st.floats(0.5, 8),
           st.integers(3, 9))
    def test_clipped_vertices_inside_clip(self, cx, cy, r, sides):
        subject = regular_polygon(cx, cy, r, sides).exterior
        out = clip_polygon_convex(subject, SQUARE)
        if len(out):
            box = BBox(0, 0, 10, 10).expand(1e-6)
            assert box.contains_points(out).all()

    @settings(max_examples=40, deadline=None)
    @given(st.floats(2, 8), st.floats(2, 8), st.floats(0.3, 1.5),
           st.integers(3, 9))
    def test_fully_inside_preserves_area(self, cx, cy, r, sides):
        subject = regular_polygon(cx, cy, r, sides).exterior
        out = clip_polygon_convex(subject, SQUARE)
        assert abs(polygon_signed_area(out)) == pytest.approx(
            abs(polygon_signed_area(subject)), rel=1e-9)
