"""Tests for convex hull."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import convex_hull, points_in_ring, polygon_signed_area

coord = st.floats(-1000, 1000, allow_nan=False, allow_infinity=False)


class TestConvexHull:
    def test_square_with_interior_points(self):
        pts = [[0, 0], [10, 0], [10, 10], [0, 10], [5, 5], [2, 7]]
        hull = convex_hull(pts)
        assert len(hull) == 4

    def test_ccw_orientation(self):
        gen = np.random.default_rng(3)
        pts = gen.uniform(0, 1, size=(50, 2))
        hull = convex_hull(pts)
        assert polygon_signed_area(hull) > 0

    def test_collinear_raises(self):
        with pytest.raises(GeometryError):
            convex_hull([[0, 0], [1, 1], [2, 2], [3, 3]])

    def test_too_few_distinct_raises(self):
        with pytest.raises(GeometryError):
            convex_hull([[0, 0], [0, 0], [1, 1]])

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(coord, coord), min_size=3, max_size=80))
    def test_all_points_inside_or_on_hull(self, pts):
        arr = np.asarray(pts, dtype=float)
        try:
            hull = convex_hull(arr)
        except GeometryError:
            return  # degenerate input is allowed to fail
        # Expand the hull a whisker about its center to absorb ties on
        # the hull boundary, then every input point must be inside (or,
        # for numerically flat hulls, within tolerance of an edge).
        center = hull.mean(axis=0)
        grown = center + (hull - center) * (1 + 1e-7)
        for p in arr:
            if not points_in_ring([p], grown)[0]:
                d = _min_edge_distance(p, hull)
                assert d < 1e-6 * (1 + np.abs(arr).max())

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(coord, coord), min_size=3, max_size=40))
    def test_hull_vertices_are_input_points(self, pts):
        arr = np.asarray(pts, dtype=float)
        try:
            hull = convex_hull(arr)
        except GeometryError:
            return
        source = {tuple(p) for p in arr}
        assert all(tuple(v) in source for v in hull)

    def test_idempotent(self):
        gen = np.random.default_rng(5)
        pts = gen.normal(size=(200, 2))
        hull1 = convex_hull(pts)
        hull2 = convex_hull(hull1)
        assert np.allclose(np.sort(hull1, axis=0), np.sort(hull2, axis=0))


def _min_edge_distance(p, hull):
    best = np.inf
    n = len(hull)
    for i in range(n):
        a = hull[i]
        b = hull[(i + 1) % n]
        ab = b - a
        t = np.clip(np.dot(p - a, ab) / (np.dot(ab, ab) + 1e-30), 0, 1)
        best = min(best, float(np.linalg.norm(a + t * ab - p)))
    return best
