"""Tests for bounded Voronoi partitions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    BBox,
    bounded_voronoi_cells,
    clip_cells_to_boundary,
    points_in_ring,
    polygon_signed_area,
    regular_polygon,
)

BOX = BBox(0, 0, 100, 100)


def _random_seeds(n, seed=0):
    gen = np.random.default_rng(seed)
    return gen.uniform(5, 95, size=(n, 2))


class TestBoundedVoronoi:
    def test_cells_tile_the_box(self):
        seeds = _random_seeds(25)
        cells = bounded_voronoi_cells(seeds, BOX)
        total = sum(abs(polygon_signed_area(c)) for c in cells)
        assert total == pytest.approx(BOX.area, rel=1e-9)

    def test_one_cell_per_seed(self):
        seeds = _random_seeds(12, seed=1)
        cells = bounded_voronoi_cells(seeds, BOX)
        assert len(cells) == 12

    def test_seed_inside_own_cell(self):
        seeds = _random_seeds(30, seed=2)
        cells = bounded_voronoi_cells(seeds, BOX)
        for seed_pt, cell in zip(seeds, cells):
            assert points_in_ring([seed_pt], cell)[0]

    def test_cells_inside_box(self):
        seeds = _random_seeds(20, seed=3)
        for cell in bounded_voronoi_cells(seeds, BOX):
            assert BOX.expand(1e-6).contains_points(cell).all()

    def test_single_seed_gets_whole_box(self):
        cells = bounded_voronoi_cells([[50, 50]], BOX)
        assert abs(polygon_signed_area(cells[0])) == pytest.approx(BOX.area)

    def test_two_seeds_split(self):
        cells = bounded_voronoi_cells([[25, 50], [75, 50]], BOX)
        areas = [abs(polygon_signed_area(c)) for c in cells]
        assert areas[0] == pytest.approx(BOX.area / 2, rel=1e-9)
        assert areas[1] == pytest.approx(BOX.area / 2, rel=1e-9)

    def test_seed_outside_box_rejected(self):
        with pytest.raises(GeometryError):
            bounded_voronoi_cells([[150, 50]], BOX)

    def test_empty_seeds_rejected(self):
        with pytest.raises(GeometryError):
            bounded_voronoi_cells(np.empty((0, 2)), BOX)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 40), st.integers(0, 1000))
    def test_tiling_property(self, n, seed):
        seeds = _random_seeds(n, seed=seed)
        # Degenerate duplicate seeds can break Voronoi; drop them.
        seeds = np.unique(seeds, axis=0)
        cells = bounded_voronoi_cells(seeds, BOX)
        total = sum(abs(polygon_signed_area(c)) for c in cells)
        assert total == pytest.approx(BOX.area, rel=1e-6)


class TestClipToBoundary:
    def test_clip_to_disc(self):
        seeds = _random_seeds(16, seed=4)
        cells = bounded_voronoi_cells(seeds, BOX)
        disc = regular_polygon(50, 50, 40, 64).exterior
        clipped = clip_cells_to_boundary(cells, disc)
        total = sum(abs(polygon_signed_area(c))
                    for c in clipped if len(c) >= 3)
        assert total == pytest.approx(abs(polygon_signed_area(disc)),
                                      rel=1e-6)

    def test_cell_outside_boundary_empty(self):
        cells = [np.array([[0, 0], [5, 0], [5, 5], [0, 5]], dtype=float)]
        disc = regular_polygon(80, 80, 10, 32).exterior
        clipped = clip_cells_to_boundary(cells, disc)
        assert len(clipped[0]) == 0
