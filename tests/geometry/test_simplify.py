"""Tests for Douglas–Peucker simplification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import regular_polygon, simplify_line, simplify_ring


class TestSimplifyLine:
    def test_collinear_collapses_to_endpoints(self):
        line = [[0, 0], [1, 0], [2, 0], [3, 0]]
        out = simplify_line(line, 0.01)
        assert len(out) == 2
        assert out[0].tolist() == [0, 0]
        assert out[-1].tolist() == [3, 0]

    def test_keeps_significant_vertex(self):
        line = [[0, 0], [5, 3], [10, 0]]
        out = simplify_line(line, 1.0)
        assert len(out) == 3

    def test_drops_insignificant_vertex(self):
        line = [[0, 0], [5, 0.1], [10, 0]]
        out = simplify_line(line, 1.0)
        assert len(out) == 2

    def test_zero_tolerance_keeps_all(self):
        line = [[0, 0], [1, 0.5], [2, 0], [3, 0.5]]
        assert len(simplify_line(line, 0.0)) == 4

    def test_short_input_unchanged(self):
        assert len(simplify_line([[0, 0], [1, 1]], 5.0)) == 2

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
                    min_size=2, max_size=60),
           st.floats(0.01, 10))
    def test_endpoints_preserved_and_subset(self, pts, tol):
        arr = np.asarray(pts, dtype=float)
        out = simplify_line(arr, tol)
        assert (out[0] == arr[0]).all()
        assert (out[-1] == arr[-1]).all()
        assert len(out) <= len(arr)
        # Every kept vertex is one of the originals.
        orig = {tuple(p) for p in arr}
        assert all(tuple(p) in orig for p in out)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.001, 0.2))
    def test_error_bounded_by_tolerance(self, tol):
        """Distance of dropped vertices to the simplified line is <= tol
        for a convex arc (a sufficient sanity check of the guarantee)."""
        angles = np.linspace(0, np.pi, 100)
        arc = np.column_stack([np.cos(angles), np.sin(angles)])
        out = simplify_line(arc, tol)
        # Chord sagitta for the widest gap must be within tolerance.
        kept = {tuple(p) for p in out}
        idx = [i for i, p in enumerate(arc) if tuple(p) in kept]
        for a, b in zip(idx[:-1], idx[1:]):
            seg = arc[a:b + 1]
            p0, p1 = arc[a], arc[b]
            dv = p1 - p0
            rel = seg - p0
            cross = dv[0] * rel[:, 1] - dv[1] * rel[:, 0]
            d = np.abs(cross) / (np.linalg.norm(dv) + 1e-30)
            assert d.max() <= tol + 1e-9


class TestSimplifyRing:
    def test_ngon_reduces(self):
        ring = regular_polygon(0, 0, 10, 128).exterior
        out = simplify_ring(ring, 0.5)
        assert 3 <= len(out) < 128

    def test_min_vertices_respected(self):
        ring = regular_polygon(0, 0, 10, 64).exterior
        out = simplify_ring(ring, 100.0)  # absurd tolerance
        assert len(out) == 64  # falls back to original

    def test_zero_tolerance_identity(self):
        ring = regular_polygon(0, 0, 10, 16).exterior
        out = simplify_ring(ring, 0.0)
        assert len(out) == 16
