"""Tests for GeoJSON encode/decode round trips."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    MultiPolygon,
    Polygon,
    feature_collection,
    geometry_from_geojson,
    geometry_to_geojson,
    parse_feature_collection,
    read_geojson,
    write_geojson,
)

SQUARE = [[0, 0], [10, 0], [10, 10], [0, 10]]
HOLE = [[3, 3], [7, 3], [7, 7], [3, 7]]


class TestGeometryRoundTrip:
    def test_polygon(self):
        poly = Polygon(SQUARE)
        doc = geometry_to_geojson(poly)
        assert doc["type"] == "Polygon"
        # GeoJSON rings are closed.
        assert doc["coordinates"][0][0] == doc["coordinates"][0][-1]
        back = geometry_from_geojson(doc)
        assert back.area == pytest.approx(poly.area)

    def test_polygon_with_hole(self):
        poly = Polygon(SQUARE, holes=[HOLE])
        back = geometry_from_geojson(geometry_to_geojson(poly))
        assert isinstance(back, Polygon)
        assert len(back.holes) == 1
        assert back.area == pytest.approx(84.0)

    def test_multipolygon(self):
        mp = MultiPolygon((
            Polygon(SQUARE),
            Polygon([[20, 0], [30, 0], [30, 10], [20, 10]]),
        ))
        doc = geometry_to_geojson(mp)
        assert doc["type"] == "MultiPolygon"
        back = geometry_from_geojson(doc)
        assert isinstance(back, MultiPolygon)
        assert back.area == pytest.approx(200.0)

    def test_unknown_type_rejected(self):
        with pytest.raises(GeometryError):
            geometry_from_geojson({"type": "Point", "coordinates": [0, 0]})

    def test_empty_polygon_rejected(self):
        with pytest.raises(GeometryError):
            geometry_from_geojson({"type": "Polygon", "coordinates": []})


class TestFeatureCollection:
    def test_round_trip_with_properties(self):
        geoms = [Polygon(SQUARE), Polygon([[20, 0], [25, 0], [25, 5]])]
        props = [{"name": "a"}, {"name": "b"}]
        doc = feature_collection(geoms, props)
        back_geoms, back_props = parse_feature_collection(doc)
        assert len(back_geoms) == 2
        assert back_props[0]["name"] == "a"

    def test_property_count_mismatch(self):
        with pytest.raises(GeometryError):
            feature_collection([Polygon(SQUARE)], [{}, {}])

    def test_wrong_root_type(self):
        with pytest.raises(GeometryError):
            parse_feature_collection({"type": "Feature"})

    def test_file_round_trip(self, tmp_path):
        geoms = [Polygon(SQUARE, holes=[HOLE])]
        path = tmp_path / "regions.geojson"
        write_geojson(path, geoms, [{"name": "sq"}])
        back, props = read_geojson(path)
        assert back[0].area == pytest.approx(84.0)
        assert props[0]["name"] == "sq"


class TestRegionSetGeoJSON:
    def test_region_set_round_trip(self, simple_regions):
        doc = simple_regions.to_geojson()
        from repro.core import RegionSet

        back = RegionSet.from_geojson("copy", doc)
        assert len(back) == len(simple_regions)
        assert back.region_names == simple_regions.region_names
        for a, b in zip(back.geometries, simple_regions.geometries):
            assert a.area == pytest.approx(b.area)
