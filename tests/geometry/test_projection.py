"""Tests for map projections."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    EARTH_RADIUS_M,
    LocalProjection,
    haversine_m,
    lonlat_to_mercator,
    mercator_to_lonlat,
)

lon = st.floats(-180, 180, allow_nan=False)
lat = st.floats(-84, 84, allow_nan=False)


class TestMercator:
    def test_origin_maps_to_zero(self):
        x, y = lonlat_to_mercator(0.0, 0.0)
        assert x == pytest.approx(0.0)
        assert y == pytest.approx(0.0, abs=1e-6)

    def test_equator_scale(self):
        x, _ = lonlat_to_mercator(180.0, 0.0)
        assert x == pytest.approx(np.pi * EARTH_RADIUS_M)

    def test_latitude_clamped(self):
        _, y_high = lonlat_to_mercator(0.0, 89.9999)
        _, y_max = lonlat_to_mercator(0.0, 90.0)
        assert np.isfinite(y_max)
        assert y_max == pytest.approx(y_high, rel=1e-2)

    @settings(max_examples=80)
    @given(lon, lat)
    def test_round_trip(self, lo, la):
        x, y = lonlat_to_mercator(lo, la)
        lo2, la2 = mercator_to_lonlat(x, y)
        assert lo2 == pytest.approx(lo, abs=1e-9)
        assert la2 == pytest.approx(la, abs=1e-9)

    def test_vectorized(self):
        lons = np.array([-74.0, 0.0, 139.7])
        lats = np.array([40.7, 0.0, 35.7])
        x, y = lonlat_to_mercator(lons, lats)
        assert x.shape == (3,)
        assert (np.diff(x) > 0).all()


class TestLocalProjection:
    def test_origin(self):
        proj = LocalProjection(-74.0, 40.7)
        x, y = proj.forward(-74.0, 40.7)
        assert x == pytest.approx(0.0)
        assert y == pytest.approx(0.0)

    def test_one_degree_north_is_111km(self):
        proj = LocalProjection(-74.0, 40.7)
        _, y = proj.forward(-74.0, 41.7)
        assert y == pytest.approx(111_319.5, rel=1e-3)

    def test_longitude_shrinks_with_latitude(self):
        eq = LocalProjection(0.0, 0.0)
        north = LocalProjection(0.0, 60.0)
        x_eq, _ = eq.forward(1.0, 0.0)
        x_no, _ = north.forward(1.0, 60.0)
        assert x_no == pytest.approx(x_eq * 0.5, rel=1e-6)

    @settings(max_examples=60)
    @given(st.floats(-75, -73), st.floats(40, 41))
    def test_round_trip(self, lo, la):
        proj = LocalProjection(-74.0, 40.7)
        lo2, la2 = proj.inverse(*proj.forward(lo, la))
        assert lo2 == pytest.approx(lo, abs=1e-9)
        assert la2 == pytest.approx(la, abs=1e-9)

    def test_agrees_with_haversine_at_city_scale(self):
        proj = LocalProjection(-74.0, 40.7)
        x, y = proj.forward(-73.9, 40.75)
        planar = float(np.hypot(x, y))
        true = float(haversine_m(-74.0, 40.7, -73.9, 40.75))
        assert planar == pytest.approx(true, rel=2e-3)

    def test_polar_reference_rejected(self):
        with pytest.raises(GeometryError):
            LocalProjection(0.0, 90.0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(10, 20, 10, 20) == pytest.approx(0.0)

    def test_quarter_circumference(self):
        d = haversine_m(0, 0, 90, 0)
        assert d == pytest.approx(np.pi / 2 * EARTH_RADIUS_M)

    def test_symmetry(self):
        assert haversine_m(-74, 40.7, 2.35, 48.85) == pytest.approx(
            haversine_m(2.35, 48.85, -74, 40.7))
