"""Tests for ear-clipping triangulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    polygon_signed_area,
    regular_polygon,
    triangle_areas,
    triangulate_ring,
    triangulate_ring_vertices,
)

SQUARE = [[0, 0], [10, 0], [10, 10], [0, 10]]
U_SHAPE = [[0, 0], [10, 0], [10, 10], [7, 10], [7, 3], [3, 3], [3, 10],
           [0, 10]]


class TestTriangulate:
    def test_triangle_passthrough(self):
        tris = triangulate_ring([[0, 0], [1, 0], [0, 1]])
        assert tris == [(0, 1, 2)]

    def test_square_two_triangles(self):
        assert len(triangulate_ring(SQUARE)) == 2

    def test_ngon_count(self):
        for n in range(3, 15):
            ring = regular_polygon(0, 0, 1.0, n).exterior
            assert len(triangulate_ring(ring)) == n - 2

    def test_concave_area_preserved(self):
        tris = triangulate_ring_vertices(U_SHAPE)
        total = triangle_areas(tris).sum()
        assert total == pytest.approx(abs(polygon_signed_area(U_SHAPE)))

    def test_concave_triangles_positive(self):
        tris = triangulate_ring_vertices(U_SHAPE)
        assert (triangle_areas(tris) > 0).all()

    def test_clockwise_input_normalized(self):
        tris = triangulate_ring_vertices(SQUARE[::-1])
        assert triangle_areas(tris).sum() == pytest.approx(100.0)

    def test_too_few_vertices(self):
        with pytest.raises(GeometryError):
            triangulate_ring([[0, 0], [1, 1]])

    @settings(max_examples=40, deadline=None)
    @given(st.integers(3, 24), st.floats(0.2, 50), st.floats(-100, 100),
           st.floats(-100, 100))
    def test_regular_polygon_area_preserved(self, n, r, cx, cy):
        ring = regular_polygon(cx, cy, r, n).exterior
        tris = triangulate_ring_vertices(ring)
        assert len(tris) == n - 2
        assert triangle_areas(tris).sum() == pytest.approx(
            abs(polygon_signed_area(ring)), rel=1e-9)

    def test_star_polygon(self):
        """A spiky star (alternating radii) is heavily concave."""
        angles = np.linspace(0, 2 * np.pi, 16, endpoint=False)
        radii = np.where(np.arange(16) % 2 == 0, 10.0, 4.0)
        ring = np.column_stack([radii * np.cos(angles),
                                radii * np.sin(angles)])
        tris = triangulate_ring_vertices(ring)
        assert len(tris) == 14
        assert triangle_areas(tris).sum() == pytest.approx(
            abs(polygon_signed_area(ring)), rel=1e-9)
