"""Tests for the command-line interface."""

import csv

import numpy as np
import pytest

from repro.cli import main
from repro.geometry import write_geojson
from repro.table import PointTable, save_npz, timestamp_column


@pytest.fixture(scope="module")
def data_files(tmp_path_factory, simple_regions):
    """A small table + region files on disk for CLI runs."""
    root = tmp_path_factory.mktemp("cli")
    gen = np.random.default_rng(3)
    n = 20_000
    table = PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n), name="pts",
        fare=gen.exponential(10, n),
        t=timestamp_column("t", np.sort(gen.integers(0, 10_000, n))),
        kind=gen.choice(["a", "b"], n))
    data = root / "pts.npz"
    save_npz(table, data)
    regions = root / "regions.geojson"
    props = [{"name": n} for n in simple_regions.region_names]
    write_geojson(regions, list(simple_regions.geometries), props)
    return {"data": str(data), "regions": str(regions), "table": table,
            "region_set": simple_regions, "root": root}


SQL = ("SELECT COUNT(*) FROM pts, regions "
       "WHERE pts.loc INSIDE regions.geometry GROUP BY regions.id")


class TestQueryCommand:
    def test_prints_results(self, data_files, capsys):
        code = main(["query", SQL, "--data", data_files["data"],
                     "--regions", data_files["regions"],
                     "--method", "accurate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "COUNT(*)" in out
        assert "disc" in out  # region names printed

    def test_csv_export_matches_exact(self, data_files, tmp_path, capsys):
        out_csv = tmp_path / "result.csv"
        code = main(["query", SQL, "--data", data_files["data"],
                     "--regions", data_files["regions"],
                     "--method", "accurate", "--csv", str(out_csv)])
        assert code == 0
        with open(out_csv) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(data_files["region_set"])

        from repro.baselines import naive_join
        from repro.core import SpatialAggregation

        want = naive_join(data_files["table"], data_files["region_set"],
                          SpatialAggregation.count())
        by_name = {r["region"]: float(r["value"]) for r in rows}
        for name, value in want.as_dict().items():
            assert by_name[name] == pytest.approx(value)

    def test_bounds_in_csv_for_bounded(self, data_files, tmp_path):
        out_csv = tmp_path / "bounded.csv"
        main(["query", SQL, "--data", data_files["data"],
              "--regions", data_files["regions"],
              "--method", "bounded", "--csv", str(out_csv)])
        with open(out_csv) as handle:
            rows = list(csv.DictReader(handle))
        assert "lower" in rows[0] and "upper" in rows[0]
        for row in rows:
            assert (float(row["lower"]) <= float(row["value"])
                    <= float(row["upper"]))

    def test_filterful_sql(self, data_files, capsys):
        sql = ("SELECT AVG(fare) FROM pts, regions "
               "WHERE pts.loc INSIDE regions.geometry "
               "AND kind = 'a' AND t BETWEEN 0 AND 5000")
        assert main(["query", sql, "--data", data_files["data"],
                     "--regions", data_files["regions"]]) == 0
        assert "AVG(fare)" in capsys.readouterr().out

    def test_bad_sql_is_clean_error(self, data_files, capsys):
        code = main(["query", "SELECT FROM", "--data", data_files["data"],
                     "--regions", data_files["regions"]])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_is_clean_error(self, data_files, capsys):
        code = main(["query", SQL, "--data", "/nope/missing.npz",
                     "--regions", data_files["regions"]])
        assert code == 2


class TestCompareCommand:
    def test_reports_agreement(self, data_files, capsys):
        code = main(["compare", SQL, "--data", data_files["data"],
                     "--regions", data_files["regions"],
                     "--methods", "bounded,accurate,grid",
                     "--resolution", "256"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bounded" in out and "accurate" in out and "grid" in out
        assert "bounds contain exact: True" in out


class TestGenerateCommand:
    def test_writes_all_files(self, tmp_path, capsys):
        code = main(["generate", "--out-dir", str(tmp_path / "demo"),
                     "--taxi-rows", "5000", "--complaint-rows", "2000",
                     "--crime-rows", "1000", "--months", "1"])
        assert code == 0
        produced = {p.name for p in (tmp_path / "demo").iterdir()}
        assert {"taxi.npz", "complaints311.npz", "crime.npz"} <= produced
        assert any(name.endswith(".geojson") for name in produced)

    def test_generated_files_queryable(self, tmp_path, capsys):
        demo = tmp_path / "demo2"
        main(["generate", "--out-dir", str(demo), "--taxi-rows", "5000",
              "--complaint-rows", "2000", "--crime-rows", "1000",
              "--months", "1"])
        sql = ("SELECT COUNT(*) FROM taxi, neighborhoods "
               "WHERE taxi.loc INSIDE neighborhoods.geometry")
        code = main(["query", sql,
                     "--data", str(demo / "taxi.npz"),
                     "--regions", str(demo / "neighborhoods.geojson"),
                     "--method", "accurate", "--resolution", "256"])
        assert code == 0


class TestSessionCommand:
    def test_session_report(self, data_files, capsys):
        code = main(["session", "--data", data_files["data"],
                     "--regions", data_files["regions"],
                     "--resolution", "256"])
        assert code == 0
        out = capsys.readouterr().out
        assert "interactions" in out
        assert "time-brush" in out
