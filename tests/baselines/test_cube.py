"""Tests for the pre-aggregation data cube.

Two sides matter: aligned queries must return exact answers instantly,
and everything ad hoc must raise :class:`CubeError` — that inflexibility
is the phenomenon the paper's motivation rests on.
"""

import numpy as np
import pytest

from repro.baselines import DataCube, naive_join
from repro.core import RegionSet, SpatialAggregation
from repro.errors import CubeError, QueryError
from repro.geometry import regular_polygon
from repro.table import F, IsIn, PointTable, timestamp_column

BUCKET = 100  # seconds per time bucket in these tests


@pytest.fixture(scope="module")
def table():
    gen = np.random.default_rng(21)
    n = 20_000
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(10, n),
        t=timestamp_column("t", gen.integers(0, 1000, n)),
        kind=gen.choice(["a", "b", "c"], n))


@pytest.fixture(scope="module")
def cube(table, simple_regions):
    return DataCube(table, simple_regions, time_column="t",
                    time_bucket_s=BUCKET, category_columns=("kind",),
                    value_column="fare")


class TestAlignedQueries:
    def test_count_matches_naive(self, table, simple_regions, cube):
        query = SpatialAggregation.count()
        got = cube.answer(simple_regions, query)
        want = naive_join(table, simple_regions, query)
        assert got.values == pytest.approx(want.values)
        assert got.exact

    def test_sum_matches_naive(self, table, simple_regions, cube):
        query = SpatialAggregation.sum_of("fare")
        got = cube.answer(simple_regions, query)
        want = naive_join(table, simple_regions, query)
        assert got.values == pytest.approx(want.values)

    def test_avg_matches_naive(self, table, simple_regions, cube):
        query = SpatialAggregation.avg_of("fare")
        got = cube.answer(simple_regions, query)
        want = naive_join(table, simple_regions, query)
        both_nan = np.isnan(got.values) & np.isnan(want.values)
        assert (both_nan | np.isclose(got.values, want.values)).all()

    def test_aligned_time_range(self, table, simple_regions, cube):
        query = SpatialAggregation.count().during("t", 200, 700)
        got = cube.answer(simple_regions, query)
        want = naive_join(table, simple_regions, query)
        assert got.values == pytest.approx(want.values)

    def test_categorical_filter(self, table, simple_regions, cube):
        query = SpatialAggregation.count(F("kind") == "b")
        got = cube.answer(simple_regions, query)
        want = naive_join(table, simple_regions, query)
        assert got.values == pytest.approx(want.values)

    def test_isin_filter(self, table, simple_regions, cube):
        query = SpatialAggregation.count(IsIn("kind", ("a", "c")))
        got = cube.answer(simple_regions, query)
        want = naive_join(table, simple_regions, query)
        assert got.values == pytest.approx(want.values)

    def test_combined_aligned_filters(self, table, simple_regions, cube):
        query = SpatialAggregation.sum_of(
            "fare", F("kind") == "a").during("t", 0, 500)
        got = cube.answer(simple_regions, query)
        want = naive_join(table, simple_regions, query)
        assert got.values == pytest.approx(want.values)

    def test_unknown_label_zero(self, simple_regions, cube):
        query = SpatialAggregation.count(F("kind") == "zebra")
        got = cube.answer(simple_regions, query)
        assert (got.values == 0).all()


class TestAdHocRejections:
    def test_ad_hoc_region_set(self, cube):
        other = RegionSet("adhoc", [regular_polygon(40, 40, 20, 6)])
        with pytest.raises(CubeError):
            cube.answer(other, SpatialAggregation.count())

    def test_unaligned_time_range(self, simple_regions, cube):
        query = SpatialAggregation.count().during("t", 150, 700)
        with pytest.raises(CubeError):
            cube.answer(simple_regions, query)

    def test_numeric_predicate(self, simple_regions, cube):
        query = SpatialAggregation.count(F("fare") > 5.0)
        with pytest.raises(CubeError):
            cube.answer(simple_regions, query)

    def test_unmaterialized_value_column(self, simple_regions, cube):
        query = SpatialAggregation.sum_of("t")
        with pytest.raises(CubeError):
            cube.answer(simple_regions, query)

    def test_min_max_unsupported(self, simple_regions, cube):
        with pytest.raises(CubeError):
            cube.answer(simple_regions, SpatialAggregation.min_of("fare"))

    def test_can_answer_reflects_all_of_it(self, simple_regions, cube):
        ok = SpatialAggregation.count().during("t", 0, 300)
        bad = SpatialAggregation.count(F("fare") > 1)
        assert cube.can_answer(simple_regions, ok)
        assert not cube.can_answer(simple_regions, bad)


class TestConstruction:
    def test_non_categorical_dimension_rejected(self, table, simple_regions):
        with pytest.raises(QueryError):
            DataCube(table, simple_regions, category_columns=("fare",))

    def test_memory_accounting(self, cube):
        assert cube.memory_bytes() == cube.counts.nbytes + cube.sums.nbytes

    def test_no_time_dimension(self, table, simple_regions):
        small = DataCube(table, simple_regions)
        got = small.answer(simple_regions, SpatialAggregation.count())
        want = naive_join(table, simple_regions, SpatialAggregation.count())
        assert got.values == pytest.approx(want.values)

    def test_build_time_recorded(self, cube):
        assert cube.build_time_s > 0

    def test_repr(self, cube):
        assert "DataCube" in repr(cube)
