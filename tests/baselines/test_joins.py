"""Tests for the exact index-join baselines and region assignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    assign_regions,
    grid_index_join,
    naive_join,
    rtree_index_join,
)
from repro.core import RegionSet, SpatialAggregation
from repro.geometry import regular_polygon
from repro.table import F, PointTable, timestamp_column


def _table(n=15_000, seed=0):
    gen = np.random.default_rng(seed)
    return PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n),
        fare=gen.exponential(10, n),
        t=timestamp_column("t", gen.integers(0, 1000, n)),
        kind=gen.choice(["a", "b"], n))


ALL_QUERIES = [
    SpatialAggregation.count(),
    SpatialAggregation.sum_of("fare"),
    SpatialAggregation.avg_of("fare"),
    SpatialAggregation.min_of("fare"),
    SpatialAggregation.max_of("fare"),
    SpatialAggregation.count(F("kind") == "a"),
    SpatialAggregation.sum_of("fare", F("t").time_range(100, 900)),
]


def _assert_equal(a, b):
    both_nan = np.isnan(a.values) & np.isnan(b.values)
    close = np.isclose(a.values, b.values, rtol=1e-9, atol=1e-6)
    assert (both_nan | close).all()


class TestIndexJoinsMatchNaive:
    @pytest.mark.parametrize("query", ALL_QUERIES)
    def test_grid_join(self, simple_regions, query):
        table = _table()
        got = grid_index_join(table, simple_regions, query)
        want = naive_join(table, simple_regions, query)
        _assert_equal(got, want)
        assert got.exact

    @pytest.mark.parametrize("query", ALL_QUERIES)
    def test_rtree_join(self, simple_regions, query):
        table = _table()
        got = rtree_index_join(table, simple_regions, query)
        want = naive_join(table, simple_regions, query)
        _assert_equal(got, want)

    @pytest.mark.parametrize("query", ALL_QUERIES)
    def test_quadtree_join(self, simple_regions, query):
        from repro.baselines import quadtree_index_join

        table = _table()
        got = quadtree_index_join(table, simple_regions, query)
        want = naive_join(table, simple_regions, query)
        _assert_equal(got, want)

    def test_grid_resolution_irrelevant(self, simple_regions):
        table = _table(seed=1)
        query = SpatialAggregation.count()
        results = [grid_index_join(table, simple_regions, query,
                                   grid_resolution=res).values
                   for res in (4, 32, 256)]
        assert (results[0] == results[1]).all()
        assert (results[1] == results[2]).all()

    def test_prebuilt_index_reused(self, simple_regions):
        from repro.index import PointGridIndex

        table = _table(2000, seed=2)
        index = PointGridIndex(table.x, table.y, table.bbox, nx=32, ny=32)
        got = grid_index_join(table, simple_regions,
                              SpatialAggregation.count(), index=index)
        want = naive_join(table, simple_regions, SpatialAggregation.count())
        _assert_equal(got, want)

    def test_stats_report_candidates(self, simple_regions):
        table = _table(2000, seed=3)
        got = grid_index_join(table, simple_regions,
                              SpatialAggregation.count())
        assert got.stats["candidates_tested"] >= got.values.sum()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 3000))
    def test_join_equivalence_property(self, seed):
        gen = np.random.default_rng(seed)
        geoms = [regular_polygon(gen.uniform(15, 85), gen.uniform(15, 85),
                                 gen.uniform(4, 30), int(gen.integers(3, 9)))
                 for __ in range(int(gen.integers(1, 4)))]
        regions = RegionSet(f"p{seed}", geoms)
        n = int(gen.integers(50, 2000))
        table = PointTable.from_arrays(gen.uniform(0, 100, n),
                                       gen.uniform(0, 100, n))
        query = SpatialAggregation.count()
        want = naive_join(table, regions, query)
        _assert_equal(grid_index_join(table, regions, query), want)
        _assert_equal(rtree_index_join(table, regions, query), want)


class TestAssignRegions:
    def test_labels_match_geometry(self, simple_regions):
        table = _table(3000, seed=4)
        labels = assign_regions(table, simple_regions)
        xy = table.xy
        for gid, geom in enumerate(simple_regions.geometries):
            inside = geom.contains_points(xy)
            assert (labels[inside] == gid).all()
        unassigned = labels == -1
        for geom in simple_regions.geometries:
            assert not geom.contains_points(xy[unassigned]).any()

    def test_label_counts_match_naive(self, simple_regions):
        table = _table(3000, seed=5)
        labels = assign_regions(table, simple_regions)
        want = naive_join(table, simple_regions, SpatialAggregation.count())
        for gid in range(len(simple_regions)):
            assert (labels == gid).sum() == want.values[gid]

    def test_empty_table(self, simple_regions):
        empty = PointTable([], [])
        assert len(assign_regions(empty, simple_regions)) == 0

    def test_overlap_lowest_id_wins(self):
        a = regular_polygon(50, 50, 20, 8)
        b = regular_polygon(50, 50, 20, 8)  # identical
        regions = RegionSet("overlap", [a, b])
        table = PointTable.from_arrays([50.0], [50.0])
        labels = assign_regions(table, regions)
        assert labels[0] == 0
