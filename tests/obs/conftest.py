"""Obs-suite fixtures: every test leaves tracing disabled behind it."""

from __future__ import annotations

import pytest

from repro.obs import disable


@pytest.fixture(autouse=True)
def _tracing_off():
    """Tracing's enable switch is process-global and sticky; reset it
    around every test so suites cannot order-couple through it."""
    disable()
    yield
    disable()
