"""Instrumentation completeness: a store-backed sharded traced query
must explain >=90% of its wall time, grafted child-process spans
included."""

from __future__ import annotations

import os

import pytest

from repro.core import ParallelConfig, SpatialAggregation, SpatialAggregationEngine
from repro.obs import Tracer, render
from repro.obs.trace import leaf_coverage
from repro.store import build_store
from repro.table import F

from tests.store.conftest import HOUR, make_store_table


@pytest.fixture(scope="module")
def traced_store(tmp_path_factory):
    table = make_store_table(30_000, seed=7)
    path = tmp_path_factory.mktemp("obs-store") / "pts"
    return build_store(table, path, partition_rows=1_024, grid=4,
                       time_column="t", time_bucket_seconds=2 * HOUR)


def _walk(node, out):
    out.append(node)
    for child in node.get("children") or []:
        _walk(child, out)
    return out


def test_sharded_store_trace_covers_wall_time(traced_store, simple_regions):
    engine = SpatialAggregationEngine(
        default_resolution=256,
        parallel=ParallelConfig(shards=2, prefetch_depth=1,
                                serial_threshold=100))
    # Warm one-time costs (partition mounts, canvas grids) so the
    # traced query measures steady-state execution; a different filter
    # keeps it a cache miss.
    engine.execute(traced_store, simple_regions,
                   SpatialAggregation.count(F("fare") > 90))

    root = Tracer().start("query")
    with root:
        result = engine.execute(traced_store, simple_regions,
                                SpatialAggregation.count(F("fare") > 5))
    tree = root.to_dict()

    nodes = _walk(tree, [])
    names = {n["name"] for n in nodes}
    assert "store.execute" in names
    assert "store.prune" in names
    assert "store.scan" in names
    assert "shard.map" in names

    shard_spans = [n for n in nodes if n["name"] == "shard.scan"]
    pooled = (result.stats.get("shards") or {}).get("pooled")
    if pooled:
        # Grafted child-process subtrees: one per shard, each recorded
        # in a different worker process.
        pids = {n["attrs"].get("pid") for n in shard_spans}
        assert len(shard_spans) >= 2
        assert os.getpid() not in pids
    assert shard_spans, "shard scans must appear in the trace"

    coverage = leaf_coverage(tree)
    assert coverage >= 0.9, f"coverage {coverage:.2f}\n{render(tree)}"


def test_untraced_query_records_nothing(traced_store, simple_regions):
    from repro.obs import current_span

    engine = SpatialAggregationEngine(
        default_resolution=256,
        parallel=ParallelConfig(shards=2, prefetch_depth=1,
                                serial_threshold=100))
    result = engine.execute(traced_store, simple_regions,
                            SpatialAggregation.count(F("fare") > 40))
    assert current_span() is None
    # No trace payload leaks into untraced response stats.
    assert "trace" not in result.stats
    shards = result.stats.get("shards") or {}
    for shard in shards.get("per_shard", []):
        assert "trace" not in shard
