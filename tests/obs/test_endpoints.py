"""The live observability surface: /v1/metrics, /v1/trace, /v1/slow,
and the counters-reconcile-with-stats invariant under concurrency."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import SpatialAggregation, SpatialAggregationEngine
from repro.obs import REGISTRY
from repro.serve import QueryService, ServeClient, ServerThread
from repro.table import F, PointTable
from repro.urbane import DataManager


def _make_manager() -> DataManager:
    gen = np.random.default_rng(21)
    n = 15_000
    manager = DataManager(SpatialAggregationEngine(default_resolution=128))
    manager.add_dataset(PointTable.from_arrays(
        gen.uniform(0, 100, n), gen.uniform(0, 100, n), name="trips",
        fare=gen.exponential(10.0, n)))
    return manager


@pytest.fixture()
def server(simple_regions):
    manager = _make_manager()
    manager.add_region_set(simple_regions)
    service = QueryService(manager, max_concurrency=4, max_queue=32,
                           slow_query_ms=0.0, trace_retain=8)
    REGISTRY.reset()
    with ServerThread(service) as thread:
        yield ServeClient(thread.server.url)


def _counter(snapshot: dict, name: str) -> float:
    return sum(c["value"] for c in snapshot["counters"]
               if c["name"] == name)


# -- /v1/metrics --------------------------------------------------------------


def test_metrics_json_schema(server):
    server.query("trips", "simple", SpatialAggregation.count())
    payload = server.metrics()
    assert payload["kind"] == "metrics"
    assert set(payload) >= {"v", "kind", "counters", "gauges",
                            "histograms"}
    for counter in payload["counters"]:
        assert set(counter) == {"name", "labels", "value"}
    assert _counter(payload, "repro_queries_total") == 1
    gauges = {g["name"] for g in payload["gauges"]}
    assert "repro_service_queries" in gauges
    assert "repro_admission_active" in gauges
    assert "repro_pool_shards" in gauges
    (hist,) = [h for h in payload["histograms"]
               if h["name"] == "repro_query_latency_ms"]
    assert hist["count"] == 1
    assert len(hist["counts"]) == len(hist["buckets_ms"]) + 1


def test_metrics_prometheus_format(server):
    server.query("trips", "simple", SpatialAggregation.count())
    text = server.metrics_prometheus()
    assert "# TYPE repro_queries_total counter" in text
    assert "# TYPE repro_service_queries gauge" in text
    assert "# TYPE repro_query_latency_ms histogram" in text
    assert 'repro_query_latency_ms_bucket{le="+Inf"} 1' in text
    assert "repro_query_latency_ms_count 1" in text


def test_metrics_reconcile_with_summed_stats(server):
    """Registry totals must equal the sums over per-response stats —
    the contract that makes /v1/metrics trustworthy."""
    thresholds = [1.0, 2.0, 3.0, 4.0] * 4

    def run(thr):
        return server.query(
            "trips", "simple",
            SpatialAggregation.count(F("fare") > thr))

    with ThreadPoolExecutor(max_workers=16) as pool:
        results = list(pool.map(run, thresholds))

    snapshot = server.metrics()
    assert _counter(snapshot, "repro_queries_total") == len(results)
    for field, name in (("query_hits", "repro_cache_query_hits_total"),
                        ("query_misses",
                         "repro_cache_query_misses_total")):
        summed = sum((r.stats.get("cache") or {}).get(field, 0)
                     for r in results)
        assert _counter(snapshot, name) == summed
    for field in ("hits", "derived", "misses"):
        summed = sum(((r.stats.get("cache") or {}).get("blocks") or {})
                     .get(field, 0) for r in results)
        assert _counter(snapshot, f"repro_block_{field}_total") == summed
    (hist,) = [h for h in snapshot["histograms"]
               if h["name"] == "repro_query_latency_ms"]
    assert hist["count"] == len(results)


# -- /v1/trace ----------------------------------------------------------------


def test_trace_endpoint_round_trip(server):
    result = server.query("trips", "simple", SpatialAggregation.count(),
                          trace=True)
    ref = result.stats["trace"]
    assert ref["request_id"].startswith("q")
    assert ref["wall_ms"] > 0

    listing = server.trace()
    assert listing["kind"] == "traces"
    assert ref["request_id"] in listing["request_ids"]

    payload = server.trace(ref["request_id"])
    assert payload["kind"] == "trace"
    tree = payload["trace"]
    assert tree["name"] == "request"
    assert tree["attrs"]["request_id"] == ref["request_id"]
    names = {c["name"] for c in tree["children"]}
    assert "execute" in names
    assert "admission.wait" in names


def test_trace_unknown_id_is_404(server):
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError):
        server.trace("q-nope")


def test_untraced_response_has_no_trace_ref(server):
    # slow_query_ms=0.0 arms tracing for every request, but only the
    # trace=True knob surfaces the reference in the response stats.
    result = server.query("trips", "simple", SpatialAggregation.count())
    assert "trace" not in result.stats


# -- /v1/slow -----------------------------------------------------------------


def test_slow_query_log_surface(server):
    server.query("trips", "simple", SpatialAggregation.count())
    payload = server.slow_queries()
    assert payload["kind"] == "slow_queries"
    assert payload["slowlog"]["enabled"] is True
    assert payload["slowlog"]["threshold_ms"] == 0.0
    assert payload["slowlog"]["noted"] >= 1
    entry = payload["entries"][0]
    assert set(entry) == {"request_id", "wall_ms", "threshold_ms",
                          "summary", "trace"}
    assert entry["trace"]["name"] == "request"
    assert entry["summary"]["dataset"] == "trips"


def test_stats_expose_tracer_and_slowlog(server):
    server.query("trips", "simple", SpatialAggregation.count())
    stats = server.stats()
    assert stats["tracer"]["held"] >= 1
    assert stats["tracer"]["retain"] == 8
    assert stats["slowlog"]["noted"] >= 1
