"""Metrics registry: primitives, exports, and the stats bridges."""

from __future__ import annotations

import threading

import pytest

from repro.obs import MetricsRegistry, record_query_stats, sample_service_stats
from repro.obs.metrics import DEFAULT_BUCKETS_MS, Histogram


# -- primitives ---------------------------------------------------------------


def test_counter_is_monotonic():
    reg = MetricsRegistry()
    c = reg.counter("hits_total")
    c.inc()
    c.inc(4)
    assert reg.counter("hits_total") is c
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_labels_key_distinct_series():
    reg = MetricsRegistry()
    a = reg.counter("queries_total", method="bounded")
    b = reg.counter("queries_total", method="grid")
    assert a is not b
    # Label order does not matter for identity.
    assert reg.gauge("g", x="1", y="2") is reg.gauge("g", y="2", x="1")


def test_histogram_buckets_and_overflow():
    h = Histogram(buckets_ms=(1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 50.0, 500.0, 5000.0):
        h.observe(value)
    assert h.counts == [1, 1, 1, 2]  # final slot is +Inf overflow
    assert h.count == 5
    assert h.sum_ms == pytest.approx(5555.5)
    with pytest.raises(ValueError):
        Histogram(buckets_ms=(10.0, 1.0))


def test_registry_snapshot_shape():
    reg = MetricsRegistry()
    reg.counter("c_total", method="x").inc(2)
    reg.gauge("g").set(7)
    reg.histogram("h_ms").observe(3.0)
    snap = reg.snapshot()
    assert snap["counters"] == [
        {"name": "c_total", "labels": {"method": "x"}, "value": 2.0}]
    assert snap["gauges"] == [{"name": "g", "labels": {}, "value": 7.0}]
    (hist,) = snap["histograms"]
    assert hist["name"] == "h_ms"
    assert hist["buckets_ms"] == list(DEFAULT_BUCKETS_MS)
    assert sum(hist["counts"]) == hist["count"] == 1
    reg.reset()
    assert reg.snapshot() == {"counters": [], "gauges": [],
                              "histograms": []}


def test_prometheus_rendering():
    reg = MetricsRegistry()
    reg.counter("repro_queries_total", method="bounded").inc(3)
    reg.gauge("repro_active").set(1)
    h = reg.histogram("repro_latency_ms", buckets_ms=(10.0, 100.0))
    h.observe(5.0)
    h.observe(50.0)
    text = reg.render_prometheus()
    lines = text.splitlines()
    assert "# TYPE repro_queries_total counter" in lines
    assert 'repro_queries_total{method="bounded"} 3' in lines
    assert "# TYPE repro_active gauge" in lines
    assert "repro_active 1" in lines
    assert "# TYPE repro_latency_ms histogram" in lines
    # Buckets cumulate on the way out; +Inf closes the series.
    assert 'repro_latency_ms_bucket{le="10"} 1' in lines
    assert 'repro_latency_ms_bucket{le="100"} 2' in lines
    assert 'repro_latency_ms_bucket{le="+Inf"} 2' in lines
    assert "repro_latency_ms_sum 55" in lines
    assert "repro_latency_ms_count 2" in lines
    assert text.endswith("\n")


def test_concurrent_increments_do_not_lose_counts():
    reg = MetricsRegistry()
    c = reg.counter("contended_total")

    def spin():
        for __ in range(10_000):
            c.inc()

    threads = [threading.Thread(target=spin) for __ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 80_000


# -- bridges ------------------------------------------------------------------


def test_record_query_stats_maps_the_stats_payload():
    reg = MetricsRegistry()
    stats = {
        "plan": {"decision": {"chosen": "bounded"},
                 "degraded": {"applied": True}},
        "cache": {"query_hits": 1, "query_misses": 2,
                  "blocks": {"hits": 10, "derived": 3, "misses": 4}},
        "store": {"partitions": {"scanned": 6, "pruned": 9},
                  "rows": {"scanned": 1234}},
        "tcube": {"slices_touched": 5},
        "speculate": {"hit": True},
    }
    record_query_stats(stats, wall_s=0.030, registry=reg)
    record_query_stats({}, wall_s=0.001, registry=reg)

    def value(name, **labels):
        return reg.counter(name, **labels).value

    assert value("repro_queries_total", method="bounded") == 1
    assert value("repro_queries_total", method="unknown") == 1
    assert value("repro_degraded_total") == 1
    assert value("repro_cache_query_hits_total") == 1
    assert value("repro_cache_query_misses_total") == 2
    assert value("repro_block_hits_total") == 10
    assert value("repro_block_derived_total") == 3
    assert value("repro_block_misses_total") == 4
    assert value("repro_store_partitions_scanned_total") == 6
    assert value("repro_store_partitions_pruned_total") == 9
    assert value("repro_store_rows_scanned_total") == 1234
    assert value("repro_tcube_slices_touched_total") == 5
    assert value("repro_speculate_hits_total") == 1
    hist = reg.histogram("repro_query_latency_ms")
    assert hist.count == 2
    assert hist.sum_ms == pytest.approx(31.0)


def test_sample_service_stats_flattens_gauges():
    reg = MetricsRegistry()
    stats = {
        "queries": 12,
        "stream_queries": 1,
        "errors": 0,
        "admission": {"active": 2, "waiting": 1,
                      "speculative": {"denied": 3}},
        "coalesce": {"leaders": 5, "coalesce_rate": 0.25},
        "cache": {"entries": 9, "bytes": 4096,
                  "blocks": {"hits": 7}},  # dropped: counters cover blocks
        "pyramid": {"block_hits": 7},
        "speculate": {"enabled": True, "issued": 4},
        "pool": {"shards": 2, "workers": [
            {"name": "w0", "queries": 8, "cache_bytes": 11},
            {"name": "w1", "queries": 4, "cache_bytes": 22}]},
    }
    sample_service_stats(stats, registry=reg)

    def value(name, **labels):
        return reg.gauge(name, **labels).value

    assert value("repro_service_queries") == 12
    assert value("repro_admission_active") == 2
    assert value("repro_admission_speculative_denied") == 3
    assert value("repro_coalesce_coalesce_rate") == 0.25
    assert value("repro_cache_bytes") == 4096
    assert value("repro_pyramid_block_hits") == 7
    assert value("repro_speculate_issued") == 4
    assert value("repro_pool_shards") == 2
    assert value("repro_worker_queries", worker="w0") == 8
    assert value("repro_worker_cache_bytes", worker="w1") == 22
    # Bools never become gauges; blocks are excluded from cache gauges.
    snap = reg.snapshot()
    names = {g["name"] for g in snap["gauges"]}
    assert "repro_speculate_enabled" not in names
    assert "repro_cache_blocks_hits" not in names
