"""Tracing core: span nesting, the disabled fast path, cross-thread
activation, cross-process grafting, rendering, and retention."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    NULL_SPAN,
    Span,
    Tracer,
    activate,
    current_span,
    disable,
    enable,
    enabled,
    graft,
    render,
    span,
)
from repro.obs.trace import leaf_coverage


# -- fast path ----------------------------------------------------------------


def test_disabled_span_is_null_singleton():
    assert not enabled()
    s = span("anything", key="value")
    assert s is NULL_SPAN
    # The null span is inert through every part of its protocol.
    with s as inner:
        assert inner is NULL_SPAN
    assert s.set(more=1) is NULL_SPAN
    assert s.to_dict() is None


def test_enabled_but_no_active_trace_is_still_null():
    enable()
    assert span("orphan") is NULL_SPAN


def test_graft_is_noop_without_active_trace():
    graft({"name": "child", "wall_s": 1.0})  # disabled: no-op
    enable()
    graft({"name": "child", "wall_s": 1.0})  # no parent: no-op


# -- recording ----------------------------------------------------------------


def test_spans_nest_under_the_entered_root():
    enable()
    root = Span("request")
    with root:
        with span("outer", k=1):
            with span("inner") as s:
                s.set(rows=42)
        with span("sibling"):
            pass
    assert [c.name for c in root.children] == ["outer", "sibling"]
    outer = root.children[0]
    assert [c.name for c in outer.children] == ["inner"]
    assert outer.attrs == {"k": 1}
    assert outer.children[0].attrs == {"rows": 42}
    assert root.wall_s > 0.0
    assert current_span() is None


def test_exception_is_recorded_and_context_restored():
    enable()
    root = Span("request")
    with pytest.raises(ValueError):
        with root:
            with span("failing"):
                raise ValueError("boom")
    assert root.children[0].attrs["error"] == "ValueError"
    assert current_span() is None


def test_round_trip_through_dict():
    enable()
    root = Span("request", {"id": "q1"})
    with root:
        with span("child", n=3):
            pass
    payload = root.to_dict()
    back = Span.from_dict(payload)
    assert back.name == "request"
    assert back.attrs == {"id": "q1"}
    assert back.children[0].name == "child"
    assert back.children[0].attrs == {"n": 3}
    assert back.to_dict() == payload


def test_activate_carries_a_trace_across_threads():
    enable()
    root = Span("request")
    with root:
        def worker():
            with activate(root), span("thread.work"):
                pass
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    assert [c.name for c in root.children] == ["thread.work"]


def test_activate_none_is_a_noop():
    with activate(None) as ctx:
        assert ctx is None
    with activate(NULL_SPAN) as ctx:
        assert ctx is None


def test_graft_attaches_serialized_subtree():
    enable()
    root = Span("request")
    shard = {"name": "shard.scan", "wall_s": 0.5, "cpu_s": 0.4,
             "attrs": {"shard": 0}, "children": []}
    with root:
        graft(shard)
        graft(None)  # untraced worker payload: no-op
    assert len(root.children) == 1
    assert root.children[0].name == "shard.scan"
    assert root.children[0].attrs == {"shard": 0}


# -- rendering / coverage -----------------------------------------------------


def test_render_shows_names_times_and_attrs():
    tree = {"name": "request", "wall_s": 0.010, "cpu_s": 0.008,
            "attrs": {}, "children": [
                {"name": "scan", "wall_s": 0.009, "cpu_s": 0.008,
                 "attrs": {"rows": 7}, "children": []}]}
    text = render(tree)
    lines = text.splitlines()
    assert lines[0].startswith("request")
    assert "  scan" in lines[1]
    assert "rows=7" in lines[1]
    assert "10.00ms" in lines[0]


def test_leaf_coverage_caps_parallel_children():
    tree = {"name": "root", "wall_s": 1.0, "children": [
        # Two "parallel" children whose walls sum past the parent.
        {"name": "a", "wall_s": 0.9, "children": []},
        {"name": "b", "wall_s": 0.9, "children": []}]}
    assert leaf_coverage(tree) == 1.0
    sparse = {"name": "root", "wall_s": 1.0, "children": [
        {"name": "a", "wall_s": 0.2, "children": []}]}
    assert leaf_coverage(sparse) == pytest.approx(0.2)
    assert leaf_coverage({"name": "empty", "wall_s": 0.0}) == 0.0


# -- retention ----------------------------------------------------------------


def test_tracer_ring_retains_last_n():
    tracer = Tracer(retain=2)
    disable()
    root = tracer.start("request")
    assert enabled()  # starting a root span arms tracing
    with root:
        pass
    ids = [tracer.new_request_id() for __ in range(3)]
    assert len(set(ids)) == 3
    for rid in ids:
        tracer.keep(rid, root)
    assert tracer.ids() == ids[-2:]
    assert tracer.get(ids[0]) is None
    assert tracer.get(ids[-1])["name"] == "request"
    stats = tracer.stats()
    assert stats["held"] == 2
    assert stats["retained"] == 3
