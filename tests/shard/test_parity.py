"""Shard-merge parity: sharded answers == single-process answers.

The acceptance contract of the coordinator: for COUNT/SUM/MIN/MAX the
per-shard merge is *bitwise* equal to single-process execution (the
store fixture's value column is integer-valued, the documented regime
where sharded SUM folds stay exact), AVG within 1e-12 — across the
bounded, tiled, and pyramid store paths, including the degenerate
shapes: empty shards, a single partition, and queries that prune
everything.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SpatialAggregation
from repro.store import build_store
from repro.table import Comparison

from .conftest import sharded_engine

AGGS = [("count", None), ("sum", "fare"), ("min", "fare"),
        ("max", "fare")]


def assert_match(got, want, agg):
    exact = agg in ("count", "sum", "min", "max")
    for name in ("values", "lower", "upper"):
        a, b = getattr(got, name), getattr(want, name)
        if a is None or b is None:
            assert a is None and b is None, name
            continue
        a, b = np.asarray(a), np.asarray(b)
        if exact:
            assert np.array_equal(a, b, equal_nan=True), name
        else:
            np.testing.assert_allclose(a, b, rtol=0, atol=1e-12)


class TestBoundedParity:
    @pytest.mark.parametrize("shards", [2, 3, 8])
    @pytest.mark.parametrize("agg,column", AGGS)
    def test_bitwise_across_shard_counts(self, shard_store, simple_regions,
                                         serial_engine, shards, agg,
                                         column):
        query = SpatialAggregation(agg, column)
        want = serial_engine.execute(shard_store, simple_regions, query,
                                     resolution=256)
        assert want.stats["plan"]["shards"]["use"] is False
        got = sharded_engine(shards).execute(shard_store, simple_regions,
                                             query, resolution=256)
        assert got.stats["plan"]["shards"]["use"] is True
        assert got.stats["shards"]["count"] >= 1
        assert_match(got, want, agg)

    def test_avg_within_tolerance(self, shard_store, simple_regions,
                                  serial_engine):
        query = SpatialAggregation("avg", "fare")
        want = serial_engine.execute(shard_store, simple_regions, query,
                                     resolution=256)
        got = sharded_engine(4).execute(shard_store, simple_regions,
                                        query, resolution=256)
        assert_match(got, want, "avg")

    def test_filtered_query_matches(self, shard_store, simple_regions,
                                    serial_engine):
        query = SpatialAggregation(
            "sum", "fare", (Comparison("kind", "==", "a"),))
        want = serial_engine.execute(shard_store, simple_regions, query,
                                     resolution=256)
        got = sharded_engine(3).execute(shard_store, simple_regions,
                                        query, resolution=256)
        assert_match(got, want, "sum")

    def test_prune_everything(self, shard_store, simple_regions,
                              serial_engine):
        """Zone maps kill every partition: zero survivors, zero shards
        of work — and identical all-empty answers."""
        query = SpatialAggregation(
            "count", None, (Comparison("fare", ">", 1e9),))
        want = serial_engine.execute(shard_store, simple_regions, query,
                                     resolution=256)
        got = sharded_engine(4).execute(shard_store, simple_regions,
                                        query, resolution=256)
        assert got.stats["store"]["partitions"]["scanned"] == 0
        assert_match(got, want, "count")

    def test_more_shards_than_partitions(self, shard_store, simple_regions,
                                         serial_engine):
        """Empty shards merge as identities."""
        query = SpatialAggregation("sum", "fare")
        want = serial_engine.execute(shard_store, simple_regions, query,
                                     resolution=256)
        got = sharded_engine(64).execute(shard_store, simple_regions,
                                         query, resolution=256)
        assert_match(got, want, "sum")

    def test_prefetch_stats_surface(self, shard_store, simple_regions):
        engine = sharded_engine(2, prefetch_depth=2)
        result = engine.execute(shard_store, simple_regions,
                                SpatialAggregation.count(),
                                resolution=256)
        shards = result.stats["shards"]
        assert shards["prefetch_depth"] == 2
        assert shards["prefetch_issued"] > 0
        assert 0.0 <= shards["prefetch_hit_fraction"] <= 1.0
        assert len(shards["per_shard"]) == shards["count"]
        for entry in shards["per_shard"]:
            assert entry["time_s"] >= 0.0
            assert "prefetch" in entry


class TestSinglePartition:
    @pytest.fixture(scope="class")
    def one_partition_store(self, shard_table, tmp_path_factory):
        path = tmp_path_factory.mktemp("one-part") / "pts"
        return build_store(shard_table, path,
                           partition_rows=len(shard_table), grid=1)

    def test_stays_serial_and_matches(self, one_partition_store,
                                      simple_regions, serial_engine):
        query = SpatialAggregation("sum", "fare")
        want = serial_engine.execute(one_partition_store, simple_regions,
                                     query, resolution=256)
        got = sharded_engine(4).execute(one_partition_store,
                                        simple_regions, query,
                                        resolution=256)
        # One partition cannot shard; the decision says so and the
        # serial path answers.
        decision = got.stats["plan"]["shards"]
        assert decision["use"] is False
        assert_match(got, want, "sum")


class TestTiledParity:
    @pytest.mark.parametrize("agg,column", AGGS)
    def test_tiled_matches_serial_tiled(self, shard_store, simple_regions,
                                        serial_engine, agg, column):
        query = SpatialAggregation(agg, column)
        want = serial_engine.execute(shard_store, simple_regions, query,
                                     method="tiled", resolution=2_048)
        got = sharded_engine(3).execute(shard_store, simple_regions,
                                        query, method="tiled",
                                        resolution=2_048)
        assert got.method == "store-tiled-bounded-raster-join"
        assert got.stats["plan"]["shards"]["use"] is True
        assert got.stats["shards"]["count"] >= 2
        assert_match(got, want, agg)

    def test_tiled_avg_within_tolerance(self, shard_store, simple_regions,
                                        serial_engine):
        query = SpatialAggregation("avg", "fare")
        want = serial_engine.execute(shard_store, simple_regions, query,
                                     method="tiled", resolution=2_048)
        got = sharded_engine(4).execute(shard_store, simple_regions,
                                        query, method="tiled",
                                        resolution=2_048)
        assert_match(got, want, "avg")


class TestPyramidParity:
    @pytest.mark.parametrize("agg,column", AGGS)
    def test_assembled_matches_serial_assembly(self, shard_store,
                                               simple_regions, agg,
                                               column):
        query = SpatialAggregation(agg, column)
        serial = sharded_engine(1)
        gv = serial.plan_grid_viewport(simple_regions, 256)
        want = serial.execute(shard_store, simple_regions, query,
                              viewport=gv)
        sharded = sharded_engine(4)
        got = sharded.execute(shard_store, simple_regions, query,
                              viewport=gv)
        assert got.method == "store-pyramid-raster-join"
        assert_match(got, want, agg)
        shards = got.stats.get("shards")
        assert shards is not None and shards["blocks_prescattered"] > 0

    def test_warm_blocks_skip_prescatter(self, shard_store,
                                         simple_regions):
        engine = sharded_engine(4)
        query = SpatialAggregation.count()
        gv = engine.plan_grid_viewport(simple_regions, 256)
        cold = engine.execute(shard_store, simple_regions, query,
                              viewport=gv)
        warm = engine.execute(shard_store, simple_regions, query,
                              viewport=gv)
        assert np.array_equal(cold.values, warm.values, equal_nan=True)
        # Every block is cached now: nothing to pre-scatter.
        assert "shards" not in warm.stats or \
            warm.stats["shards"] is None or \
            warm.stats["shards"].get("blocks_prescattered", 0) == 0
