"""Shard-suite fixtures: a mid-size store and a sharded engine maker."""

from __future__ import annotations

import pytest

from repro.core import ParallelConfig, SpatialAggregationEngine
from repro.store import build_store

from tests.store.conftest import HOUR, make_store_table


@pytest.fixture(scope="session")
def shard_table():
    return make_store_table(30_000, seed=99)


@pytest.fixture(scope="session")
def shard_store(shard_table, tmp_path_factory):
    path = tmp_path_factory.mktemp("shard-store") / "pts"
    return build_store(shard_table, path, partition_rows=1_024, grid=4,
                       time_column="t", time_bucket_seconds=2 * HOUR)


def sharded_engine(shards: int, prefetch_depth: int = 1,
                   resolution: int = 256) -> SpatialAggregationEngine:
    """An engine whose scans shard even at test-sized inputs."""
    return SpatialAggregationEngine(
        default_resolution=resolution,
        parallel=ParallelConfig(shards=shards,
                                prefetch_depth=prefetch_depth,
                                serial_threshold=100))


@pytest.fixture(scope="module")
def serial_engine():
    """The single-process reference: one shard, same thresholds."""
    return sharded_engine(shards=1)
