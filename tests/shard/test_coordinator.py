"""Shard coordinator unit coverage: assignment, decisions, prefetch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParallelConfig
from repro.core.parallel import FORK_OVERHEAD_UNITS
from repro.shard import PartitionPrefetcher, assign_shards, merge_canvases


class TestAssignShards:
    def test_covers_every_survivor_exactly_once(self, shard_store):
        survivors = list(range(shard_store.num_partitions))
        shards = assign_shards(shard_store, survivors, 4)
        flat = [i for shard in shards for i in shard]
        assert sorted(flat) == survivors

    def test_manifest_order_within_and_across_shards(self, shard_store):
        survivors = list(range(shard_store.num_partitions))
        shards = assign_shards(shard_store, survivors, 3)
        flat = [i for shard in shards for i in shard]
        # Contiguous split: concatenating shards reproduces manifest
        # order, which is what makes shard-order merges a refold of
        # the serial accumulation.
        assert flat == survivors
        for shard in shards:
            assert shard == sorted(shard)

    def test_grid_cells_never_split(self, shard_store):
        survivors = list(range(shard_store.num_partitions))
        shards = assign_shards(shard_store, survivors, 5)
        owner = {}
        for shard_id, shard in enumerate(shards):
            for index in shard:
                cell = shard_store.partitions[index].key[0]
                owner.setdefault(cell, shard_id)
                assert owner[cell] == shard_id, \
                    f"grid cell {cell} split across shards"

    def test_more_shards_than_partitions_leaves_empties(self, shard_store):
        survivors = [0, 1]
        shards = assign_shards(shard_store, survivors, 8)
        assert len(shards) == 8
        flat = [i for shard in shards for i in shard]
        assert sorted(flat) == survivors

    def test_empty_survivors(self, shard_store):
        shards = assign_shards(shard_store, [], 4)
        assert len(shards) == 4
        assert all(shard == [] for shard in shards)

    def test_single_partition(self, shard_store):
        shards = assign_shards(shard_store, [3], 4)
        flat = [i for shard in shards for i in shard]
        assert flat == [3]

    def test_rows_roughly_balanced(self, shard_store):
        survivors = list(range(shard_store.num_partitions))
        shards = assign_shards(shard_store, survivors, 4)
        rows = [sum(shard_store.partitions[i].rows for i in shard)
                for shard in shards]
        total = sum(rows)
        assert total == len(shard_store)
        # Whole-cell assignment caps skew at one cell's rows; with a
        # 4x4 grid each shard should land in the same ballpark.
        assert max(rows) <= total  # sanity
        assert min(rows) > 0


class TestDecideShards:
    def test_serial_when_one_shard(self):
        cfg = ParallelConfig(shards=1)
        decision = cfg.decide_shards(10, 1_000_000)
        assert decision["use"] is False
        assert "one shard" in decision["reason"]

    def test_serial_below_threshold(self):
        cfg = ParallelConfig(shards=4, serial_threshold=10_000)
        decision = cfg.decide_shards(10, 9_999)
        assert decision["use"] is False
        assert "threshold" in decision["reason"]

    def test_serial_single_partition(self):
        cfg = ParallelConfig(shards=4, serial_threshold=100)
        decision = cfg.decide_shards(1, 1_000_000)
        assert decision["use"] is False

    def test_use_caps_at_partition_count(self):
        cfg = ParallelConfig(shards=8, serial_threshold=100)
        decision = cfg.decide_shards(3, 1_000_000)
        assert decision["use"] is True
        assert decision["shards"] == 3

    def test_prefetch_depth_rides_along(self):
        cfg = ParallelConfig(shards=4, prefetch_depth=3,
                             serial_threshold=100)
        decision = cfg.decide_shards(8, 1_000_000)
        assert decision["prefetch_depth"] == 3

    def test_resolve_and_with_shards(self):
        cfg = ParallelConfig(workers=6)
        assert cfg.resolve_shards() == 6  # shards default to workers
        cfg2 = cfg.with_shards(2, prefetch_depth=5)
        assert cfg2.resolve_shards() == 2
        assert cfg2.prefetch_depth == 5

    def test_shard_cost_prices_fork_overhead(self):
        cfg = ParallelConfig(shards=4, serial_threshold=100)
        rows = 1_000_000
        cost = cfg.shard_cost(8, rows)
        assert cost == rows / 4 + FORK_OVERHEAD_UNITS * 4
        serial = ParallelConfig(shards=1).shard_cost(8, rows)
        assert serial == float(rows)


class TestPrefetcher:
    def test_advises_ahead_of_scan(self, shard_store):
        indices = list(range(min(6, shard_store.num_partitions)))
        prefetcher = PartitionPrefetcher(shard_store, indices, depth=2)
        prefetcher.advance(0)
        # Positions 1 and 2 advised; position 0 never (it is current).
        assert prefetcher.issued == 2
        prefetcher.advance(1)
        assert prefetcher.issued == 3
        for pos in range(2, len(indices)):
            prefetcher.advance(pos)
        # Window never runs past the end of the shard.
        assert prefetcher.issued == len(indices) - 1

    def test_depth_zero_is_a_noop(self, shard_store):
        prefetcher = PartitionPrefetcher(shard_store, [0, 1, 2], depth=0)
        for pos in range(3):
            prefetcher.advance(pos)
        assert prefetcher.issued == 0
        assert prefetcher.stats()["hit_fraction"] == 0.0

    def test_madvise_reaches_the_kernel_on_linux(self, shard_store):
        import mmap

        if not hasattr(mmap, "MADV_WILLNEED"):
            pytest.skip("madvise not available on this platform")
        assert shard_store.prefetch_partition(0) is True
        prefetcher = PartitionPrefetcher(shard_store, [0, 1], depth=1)
        prefetcher.advance(0)
        stats = prefetcher.stats()
        assert stats["advised"] == stats["issued"] == 1
        assert stats["hit_fraction"] == 1.0


class TestMergeCanvases:
    def test_min_max_reduce_additive_add(self):
        kinds = ["count", "sum", "min", "max"]
        dst = {"count": np.array([1.0, 0.0]), "sum": np.array([5.0, 0.0]),
               "min": np.array([2.0, np.inf]),
               "max": np.array([2.0, -np.inf])}
        src = {"count": np.array([2.0, 1.0]), "sum": np.array([1.0, 3.0]),
               "min": np.array([4.0, 1.0]), "max": np.array([4.0, 1.0])}
        merge_canvases(dst, src, kinds)
        assert dst["count"].tolist() == [3.0, 1.0]
        assert dst["sum"].tolist() == [6.0, 3.0]
        assert dst["min"].tolist() == [2.0, 1.0]
        assert dst["max"].tolist() == [4.0, 1.0]
