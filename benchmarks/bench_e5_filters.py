"""E5: ad-hoc filters and selectivity.

Pre-aggregation cannot serve ad-hoc predicates; on-the-fly evaluation
not only serves them, it gets *faster* as filters become more selective
(fewer points survive to the render pass).  The sweep applies fare
thresholds of decreasing selectivity; expected shape: bounded-join
latency decreases monotonically with selectivity while the index joins
improve less (they still visit candidates before post-filtering).
"""

import numpy as np
import pytest

from repro.core import SpatialAggregation
from repro.table import F

pytestmark = pytest.mark.benchmark(group="E5 filter selectivity")

# Fare thresholds chosen for ~100% / ~50% / ~10% / ~1% selectivity on the
# exponential-ish fare distribution.
SELECTIVITY_FILTERS = {
    "1.00": None,
    "0.50": 6.0,
    "0.10": 14.0,
    "0.01": 26.0,
}


def _query(threshold):
    if threshold is None:
        return SpatialAggregation.count()
    return SpatialAggregation.count(F("fare") > threshold)


@pytest.mark.parametrize("label", list(SELECTIVITY_FILTERS))
@pytest.mark.parametrize("method", ["bounded", "grid"])
def test_filter_selectivity(benchmark, warm_engine, bench_taxi,
                            bench_regions, label, method):
    taxi = bench_taxi["800k"]
    regions = bench_regions["neighborhoods"]
    query = _query(SELECTIVITY_FILTERS[label])
    warm_engine.execute(taxi, regions, query, method=method)

    result = benchmark(warm_engine.execute, taxi, regions, query,
                       method=method)
    benchmark.extra_info["selectivity"] = round(
        result.stats["points_after_filter"] / len(taxi), 4)


def test_compound_adhoc_filter(benchmark, warm_engine, bench_taxi,
                               bench_regions):
    """An arbitrary predicate combination no cube could anticipate."""
    taxi = bench_taxi["800k"]
    regions = bench_regions["neighborhoods"]
    query = SpatialAggregation.avg_of(
        "tip",
        (F("payment") == "card") & (F("fare") > 8.0),
        F("distance_km").between(1.0, 10.0),
    )
    warm_engine.execute(taxi, regions, query, method="bounded")
    result = benchmark(warm_engine.execute, taxi, regions, query,
                       method="bounded")
    benchmark.extra_info["rows_matching"] = result.stats[
        "points_after_filter"]
