"""E9: pre-aggregation vs. on-the-fly evaluation.

The trade-off the paper motivates Raster Join with.  The cube answers
*anticipated* queries fastest of all — but only those: it pays a heavy
build, and every ad-hoc polygon set or predicate raises CubeError.
Expected shape: cube slice << bounded raster join on aligned queries;
cube build >> any single query; cube coverage of an ad-hoc workload is
a small fraction while raster join answers all of it.
"""

import pytest

from repro.baselines import DataCube
from repro.core import SpatialAggregation
from repro.data import SECONDS_PER_DAY
from repro.table import F

pytestmark = pytest.mark.benchmark(group="E9 cube vs raster join")

ALIGNED = SpatialAggregation.count().during(
    "t", 1_230_768_000, 1_230_768_000 + 30 * SECONDS_PER_DAY)

AD_HOC_WORKLOAD = [
    SpatialAggregation.count(F("fare") > 12.0),
    SpatialAggregation.avg_of("tip", F("payment") == "card"),
    SpatialAggregation.count().during("t", 1_230_768_000 + 3_600,
                                      1_230_768_000 + 90_000),
    SpatialAggregation.sum_of("fare", F("distance_km") > 3.0),
    SpatialAggregation.count(F("payment") == "card"),
]


@pytest.fixture(scope="module")
def cube(bench_taxi, bench_regions):
    return DataCube(bench_taxi["800k"], bench_regions["neighborhoods"],
                    time_column="t", time_bucket_s=SECONDS_PER_DAY,
                    category_columns=("payment",), value_column="fare")


def test_cube_build(benchmark, bench_taxi, bench_regions):
    result = benchmark.pedantic(
        DataCube,
        args=(bench_taxi["200k"], bench_regions["neighborhoods"]),
        kwargs={"time_column": "t", "time_bucket_s": SECONDS_PER_DAY,
                "category_columns": ("payment",), "value_column": "fare"},
        rounds=2, iterations=1)
    benchmark.extra_info["cube_bytes"] = result.memory_bytes()


def test_cube_aligned_query(benchmark, cube, bench_regions):
    result = benchmark(cube.answer, bench_regions["neighborhoods"], ALIGNED)
    assert result.exact


def test_raster_join_same_query(benchmark, warm_engine, bench_taxi,
                                bench_regions, cube):
    taxi = bench_taxi["800k"]
    regions = bench_regions["neighborhoods"]
    warm_engine.execute(taxi, regions, ALIGNED, method="bounded")

    raster = benchmark(warm_engine.execute, taxi, regions, ALIGNED,
                       method="bounded")
    # Cross-check: the cube's exact answer lies inside the raster bounds.
    exact = cube.answer(regions, ALIGNED)
    assert raster.bounds_contain(exact)


def test_adhoc_workload_coverage(benchmark, warm_engine, cube, bench_taxi,
                                 bench_regions):
    """Run the ad-hoc workload through the raster join and record how
    little of it the cube could have served."""
    taxi = bench_taxi["800k"]
    regions = bench_regions["neighborhoods"]
    for query in AD_HOC_WORKLOAD:
        warm_engine.execute(taxi, regions, query, method="bounded")

    def run_workload():
        for query in AD_HOC_WORKLOAD:
            warm_engine.execute(taxi, regions, query, method="bounded")

    benchmark(run_workload)
    answerable = sum(cube.can_answer(regions, q) for q in AD_HOC_WORKLOAD)
    benchmark.extra_info["cube_answerable"] = (
        f"{answerable}/{len(AD_HOC_WORKLOAD)}")
    benchmark.extra_info["raster_answerable"] = (
        f"{len(AD_HOC_WORKLOAD)}/{len(AD_HOC_WORKLOAD)}")
    assert answerable <= 1  # only the payment-equality query aligns
