"""E8: end-to-end interactive session.

Replays a representative 13-gesture exploration (time brushes, filter
toggles, aggregation and resolution switches) and times the whole
session; extra_info records the per-gesture p95.  The demo's claim is
that *every* gesture stays under the interactivity bar on laptop-scale
data.
"""

import numpy as np
import pytest

from repro.core import SpatialAggregation
from repro.data import month_window
from repro.table import F
from repro.urbane import DataManager, InteractiveSession

pytestmark = pytest.mark.benchmark(group="E8 interactive session")


@pytest.fixture(scope="module")
def manager(bench_datasets, bench_regions):
    dm = DataManager()
    for name, table in bench_datasets.items():
        dm.add_dataset(table, name)
    dm.add_region_set(bench_regions["boroughs"], "boroughs")
    dm.add_region_set(bench_regions["neighborhoods"], "neighborhoods")
    dm.add_region_set(bench_regions["tracts"], "tracts")
    return dm


def _run_session(manager):
    session = InteractiveSession(manager, "taxi", "neighborhoods",
                                 method="bounded", resolution=512)
    start, end = month_window(0)
    session.brush_time(start, end)
    session.add_filter(F("payment") == "card")
    session.add_filter(F("fare") > 10.0)
    session.set_aggregation(SpatialAggregation.avg_of("tip"))
    session.clear_filters()
    session.set_aggregation(SpatialAggregation.count())
    session.set_region_level("boroughs")
    session.set_region_level("tracts")
    session.set_region_level("neighborhoods")
    session.set_dataset("crime")
    session.set_aggregation(SpatialAggregation.sum_of("severity"))
    session.set_dataset("taxi")
    session.clear_time_brush()
    return session


def test_full_session(benchmark, manager):
    _run_session(manager)  # warm every fragment cache the session touches

    session = benchmark(_run_session, manager)
    lat = session.latencies()
    summary = session.summary()
    benchmark.extra_info["gestures"] = len(lat)
    benchmark.extra_info["p95_gesture_ms"] = round(
        float(np.quantile(lat, 0.95)) * 1000, 1)
    benchmark.extra_info["max_gesture_ms"] = round(
        float(lat.max()) * 1000, 1)
    benchmark.extra_info["interactive_fraction"] = summary[
        "interactive_fraction"]
    # The repeated-gesture claim: re-queries reuse the unified cache
    # within a bounded memory budget.
    benchmark.extra_info["cache_hit_rate"] = round(
        summary["cache_hit_rate"], 3)
    engine_cache = manager.cache_stats()
    benchmark.extra_info["cache_resident_mb"] = round(
        engine_cache["bytes"] / 1e6, 1)
    assert summary["cache_hit_rate"] > 0
    assert engine_cache["bytes"] <= engine_cache["max_bytes"]
