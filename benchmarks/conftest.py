"""Shared benchmark workloads.

Everything is session-scoped and deterministic: one synthetic city, the
region hierarchy at four resolutions, and taxi tables at three sizes
(subsets of one generation so distributions match across scales).
Engines are pre-warmed where a benchmark measures the *interactive*
path (polygon raster cached), mirroring how Urbane actually re-queries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SpatialAggregationEngine
from repro.data import (
    CityModel,
    generate_complaints,
    generate_crimes,
    generate_taxi_trips,
    voronoi_regions,
)

POINT_SCALES = {"50k": 50_000, "200k": 200_000, "800k": 800_000}
REGION_LEVELS = {"boroughs": 5, "neighborhoods": 71, "districts": 297,
                 "tracts": 1000}


@pytest.fixture(scope="session")
def bench_city():
    return CityModel(seed=7)


@pytest.fixture(scope="session")
def bench_regions(bench_city):
    """Region sets at every resolution level, keyed by level name."""
    return {name: voronoi_regions(bench_city, count, name=name)
            for name, count in REGION_LEVELS.items()}


@pytest.fixture(scope="session")
def bench_taxi(bench_city):
    """Taxi tables at several scales (nested subsets of one draw)."""
    full = generate_taxi_trips(bench_city, max(POINT_SCALES.values()),
                               seed=8)
    return {name: full.take(np.arange(n)).rename(f"taxi-{name}")
            for name, n in POINT_SCALES.items()}


@pytest.fixture(scope="session")
def bench_datasets(bench_city, bench_taxi):
    """The three-data-set mix used by the view-level experiments."""
    return {
        "taxi": bench_taxi["200k"],
        "complaints311": generate_complaints(bench_city, 60_000, seed=9),
        "crime": generate_crimes(bench_city, 40_000, seed=10),
    }


@pytest.fixture(scope="session")
def warm_engine(bench_regions, bench_taxi):
    """Engine with its unified cache pre-warmed (polygon rasters and
    baseline indexes resident), so benchmarks measure per-query work
    (the interactive scenario)."""
    engine = SpatialAggregationEngine(default_resolution=512)
    from repro.core import SpatialAggregation

    query = SpatialAggregation.count()
    for regions in bench_regions.values():
        engine.execute(bench_taxi["50k"], regions, query, method="bounded")
        engine.execute(bench_taxi["50k"], regions, query, method="accurate")
    for table in bench_taxi.values():
        engine.execute(table, bench_regions["neighborhoods"], query,
                       method="grid")
        engine.execute(table, bench_regions["neighborhoods"], query,
                       method="rtree")
        engine.execute(table, bench_regions["neighborhoods"], query,
                       method="quadtree")
    assert engine.cache_stats()["entries"] > 0
    return engine
