"""Timeline brush-step latency: temporal canvas cube vs. re-scatter.

The cube's claim is O(pixels) per brush step: once the prefix-summed
time slices exist, any aligned ``[t0, t1)`` materializes as a two-slice
difference, independent of point count — while the baseline re-runs the
whole point pass per gesture.  This benchmark slides a multi-day brush
across a month of taxi data and times each step both ways, verifying
per step that the cube answer is bitwise-identical (COUNT, and SUM over
integer-valued fares; AVG within float round-off).

Two faces:

* pytest-benchmark (``pytest benchmarks/bench_tcube_brush.py``) —
  statistical timings in the shared benchmark session;
* standalone (``python benchmarks/bench_tcube_brush.py [--points N]
  [--resolution 512] [--out BENCH_tcube.json]``) — emits the
  machine-readable record future PRs compare against, and exits
  non-zero if any brush diverges (CI's benchmark-smoke job runs this
  at tiny sizes; the full-size acceptance bar is >= 10x per step).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

DAY = 86_400
BRUSH_DAYS = 7


def run_brush(table, regions, resolution: int = 512, repeats: int = 5,
              brush_days: int = BRUSH_DAYS, speedup_floor: float | None
              = None) -> dict:
    """Time sliding brushes via the cube vs. fresh bounded joins.

    Returns the BENCH_tcube.json payload: per-aggregate median
    brush-step latency for both paths, the speedup, the one-time cube
    build cost, and per-step equality verdicts.
    """
    from repro.core import (
        SpatialAggregation,
        bounded_raster_join,
        build_temporal_canvas_cube,
    )
    from repro.raster import Viewport, build_fragment_table
    from repro.table import TimeRange

    viewport = Viewport.fit(regions.bbox, resolution)
    fragments = build_fragment_table(list(regions.geometries), viewport)

    tvals = table.column("t").values
    origin = int(tvals.min()) // DAY * DAY
    num_days = (int(tvals.max()) - origin) // DAY + 1
    steps = max(1, num_days - brush_days)
    brushes = [(origin + d * DAY, origin + (d + brush_days) * DAY)
               for d in range(steps)]

    def median_ms(fn):
        fn()  # warmup
        times = []
        for __ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return float(np.median(times) * 1000)

    aggregates = [("count", None), ("sum", "fare"), ("avg", "fare")]
    results = []
    for agg, value_column in aggregates:
        t0 = time.perf_counter()
        cube = build_temporal_canvas_cube(table, viewport, "t", DAY,
                                          value_column=value_column)
        build_ms = (time.perf_counter() - t0) * 1000

        queries = [SpatialAggregation(agg, value_column,
                                      (TimeRange("t", lo, hi),))
                   for lo, hi in brushes]

        equal = True
        max_rel_err = 0.0
        for query in queries:
            got = cube.answer(regions, fragments, query)
            want = bounded_raster_join(table, regions, query, viewport,
                                       fragments=fragments)
            if agg == "avg":
                denom = np.where(want.values == 0, 1.0,
                                 np.abs(want.values))
                err = np.nanmax(np.abs(got.values - want.values) / denom)
                max_rel_err = max(max_rel_err, float(err))
                equal = equal and max_rel_err <= 1e-12
            else:
                equal = equal and (
                    np.array_equal(got.values, want.values)
                    and np.array_equal(got.lower, want.lower)
                    and np.array_equal(got.upper, want.upper))

        def sweep_cube(qs=queries):
            for q in qs:
                cube.answer(regions, fragments, q)

        def sweep_scatter(qs=queries):
            for q in qs:
                bounded_raster_join(table, regions, q, viewport,
                                    fragments=fragments)

        cube_ms = median_ms(sweep_cube) / steps
        scatter_ms = median_ms(sweep_scatter) / steps
        results.append({
            "agg": agg,
            "value_column": value_column,
            "build_ms": build_ms,
            "brush_step_cube_ms": cube_ms,
            "brush_step_rescatter_ms": scatter_ms,
            "speedup": scatter_ms / cube_ms if cube_ms > 0 else
            float("inf"),
            "equal": bool(equal),
            "max_avg_rel_err": max_rel_err,
            "slices": cube.num_buckets,
            "active_pixels": cube.num_active_pixels,
            "cube_bytes": cube.memory_bytes(),
        })

    return {
        "benchmark": "tcube-brush-step",
        "points": len(table),
        "regions": len(regions),
        "resolution": resolution,
        "brush_days": brush_days,
        "brush_steps": steps,
        "repeats": repeats,
        "speedup_floor": speedup_floor,
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.machine(),
        },
        "results": results,
    }


# -- pytest-benchmark face ---------------------------------------------------

try:
    import pytest
except ImportError:  # standalone invocation without pytest installed
    pytest = None

if pytest is not None:
    pytestmark = pytest.mark.benchmark(group="tcube brush")

    @pytest.mark.parametrize("path", ["tcube", "rescatter"])
    def test_brush_step_latency(benchmark, bench_taxi, bench_regions, path):
        from repro.core import (
            SpatialAggregation,
            bounded_raster_join,
            build_temporal_canvas_cube,
        )
        from repro.raster import Viewport, build_fragment_table
        from repro.table import TimeRange

        table = bench_taxi["200k"]
        regions = bench_regions["neighborhoods"]
        viewport = Viewport.fit(regions.bbox, 512)
        fragments = build_fragment_table(list(regions.geometries), viewport)
        tvals = table.column("t").values
        origin = int(tvals.min()) // DAY * DAY
        query = SpatialAggregation.count().during(
            "t", origin + 3 * DAY, origin + 10 * DAY)

        if path == "tcube":
            cube = build_temporal_canvas_cube(table, viewport, "t", DAY)
            run = lambda: cube.answer(regions, fragments, query)  # noqa: E731
        else:
            run = lambda: bounded_raster_join(  # noqa: E731
                table, regions, query, viewport, fragments=fragments)
        run()
        result = benchmark(run)
        benchmark.extra_info["path"] = path
        benchmark.extra_info["total_count"] = float(result.values.sum())


# -- standalone face ---------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="tcube brush-step latency vs. re-scatter -> JSON")
    parser.add_argument("--points", type=int, default=1_000_000)
    parser.add_argument("--regions", type=int, default=71)
    parser.add_argument("--resolution", type=int, default=512)
    parser.add_argument("--brush-days", type=int, default=BRUSH_DAYS)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--speedup-floor", type=float, default=None,
                        help="fail if any aggregate's brush-step speedup "
                             "lands below this (full-size bar: 10)")
    parser.add_argument("--out", default="BENCH_tcube.json")
    args = parser.parse_args(argv)

    from repro.data import CityModel, generate_taxi_trips, voronoi_regions
    from repro.table import numeric_column

    city = CityModel(seed=7)
    table = generate_taxi_trips(city, args.points, seed=8)
    # Integer-valued fares so SUM prefix differences are bitwise-exact
    # (the equality check, not the timing, needs this).
    table = table.with_column(
        numeric_column("fare", np.round(table.values("fare"))))
    regions = voronoi_regions(city, args.regions, name="neighborhoods")

    payload = run_brush(table, regions, resolution=args.resolution,
                        repeats=args.repeats, brush_days=args.brush_days,
                        speedup_floor=args.speedup_floor)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"{'agg':>6} {'build':>9} {'cube/step':>10} "
          f"{'scatter/step':>13} {'speedup':>8}  equal")
    for row in payload["results"]:
        print(f"{row['agg']:>6} {row['build_ms']:>7.1f}ms "
              f"{row['brush_step_cube_ms']:>8.2f}ms "
              f"{row['brush_step_rescatter_ms']:>11.1f}ms "
              f"{row['speedup']:>7.1f}x  {row['equal']}")
    print(f"wrote {out}")

    diverged = [r["agg"] for r in payload["results"] if not r["equal"]]
    if diverged:
        print(f"ERROR: cube answers diverged for {diverged}",
              file=sys.stderr)
        return 1
    if args.speedup_floor is not None:
        slow = [r["agg"] for r in payload["results"]
                if r["agg"] != "avg" and r["speedup"] < args.speedup_floor]
        if slow:
            print(f"ERROR: brush-step speedup below "
                  f"{args.speedup_floor}x for {slow}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
