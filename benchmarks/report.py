"""Regenerate EXPERIMENTS.md: every experiment, paper-shape vs. measured.

Runs a condensed version of the full E1-E10 matrix (the pytest-benchmark
files in this directory time the same code paths with statistical
rigor; this script favors one readable document) and rewrites
EXPERIMENTS.md at the repository root.

Run:  python benchmarks/report.py
      python benchmarks/report.py --summary   # just read BENCH_*.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.baselines import DataCube
from repro.core import (
    SpatialAggregation,
    SpatialAggregationEngine,
    bounded_raster_join,
    relative_bound_width,
)
from repro.data import (
    CityModel,
    SECONDS_PER_DAY,
    generate_complaints,
    generate_crimes,
    generate_taxi_trips,
    month_window,
    voronoi_regions,
)
from repro.raster import Viewport
from repro.table import F
from repro.urbane import (
    DataExplorationView,
    DataManager,
    Indicator,
    InteractiveSession,
)

ROOT = Path(__file__).resolve().parent.parent
REPEATS = 5

#: Machine-readable records the benchmark scripts emit at the repo
#: root, with the script that regenerates each.
BENCH_FILES = {
    "BENCH_parallel.json": "benchmarks/bench_parallel_scaling.py",
    "BENCH_tcube.json": "benchmarks/bench_tcube_brush.py",
    "BENCH_serve.json": "benchmarks/bench_serve_throughput.py",
    "BENCH_store.json": "benchmarks/bench_store_outofcore.py",
    "BENCH_pyramid.json": "benchmarks/bench_pyramid_panzoom.py",
    "BENCH_shard.json": "benchmarks/bench_shard_scaling.py",
    "BENCH_accurate.json": "benchmarks/bench_accurate_intervals.py",
    "BENCH_speculate.json": "benchmarks/bench_speculate_session.py",
    "BENCH_obs.json": "benchmarks/bench_obs_overhead.py",
}


def load_bench(name: str) -> dict | None:
    """Read one BENCH record; warn (never crash) when it is absent,
    unparseable, or not a JSON object, so a partial or damaged
    checkout still gets a report."""
    path = ROOT / name
    if not path.exists():
        print(f"WARN: {name} missing — regenerate with "
              f"`PYTHONPATH=src python {BENCH_FILES.get(name, '?')}`",
              file=sys.stderr)
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"WARN: {name} unreadable ({exc}) — regenerate with "
              f"`PYTHONPATH=src python {BENCH_FILES.get(name, '?')}`",
              file=sys.stderr)
        return None
    if not isinstance(payload, dict):
        print(f"WARN: {name} malformed (expected a JSON object, got "
              f"{type(payload).__name__}) — regenerate with "
              f"`PYTHONPATH=src python {BENCH_FILES.get(name, '?')}`",
              file=sys.stderr)
        return None
    return payload


def summarize_benches() -> int:
    """One aligned table across every committed BENCH record.

    Every file gets a row — present records show their benchmark name
    and machine context, absent or malformed ones show their status —
    so the table is a complete inventory, not just the healthy subset.
    """
    headers = ("file", "benchmark", "points", "cores", "python", "status")
    rows = []
    present = 0
    for name in BENCH_FILES:
        path = ROOT / name
        payload = load_bench(name)
        if payload is None:
            status = "missing" if not path.exists() else "malformed"
            rows.append((name, "-", "-", "-", "-", status))
            continue
        present += 1
        machine = payload.get("machine") or {}
        points = payload.get("points")
        rows.append((name,
                     str(payload.get("benchmark", "?")),
                     f"{points:,}" if isinstance(points, int) else "?",
                     str(machine.get("cpu_count", "?")),
                     str(machine.get("python", "?")),
                     "ok"))
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    print(fmt.format(*headers))
    print(fmt.format(*("-" * w for w in widths)))
    for row in rows:
        print(fmt.format(*row))
    print(f"{present}/{len(BENCH_FILES)} records present")
    return 0


def _median_ms(fn, repeats=REPEATS):
    """Median wall-clock of ``fn()`` in milliseconds (after one warmup)."""
    fn()
    times = []
    for __ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times) * 1000)


def _table(headers, rows):
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for __ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


class Report:
    def __init__(self):
        self.sections: list[str] = []

    def add(self, title: str, expected: str, body: str, verdict: str):
        self.sections.append(
            f"## {title}\n\n**Expected shape (paper).** {expected}\n\n"
            f"{body}\n\n**Verdict.** {verdict}\n")

    def write(self, path: Path):
        head = (
            "# EXPERIMENTS — paper vs. measured\n\n"
            "Regenerated by `python benchmarks/report.py`; the pytest "
            "benches in `benchmarks/` time the same code paths with "
            "pytest-benchmark statistics.\n\n"
            "The substrate is the software rasterization pipeline (no "
            "GPU in this environment; see DESIGN.md §2), so absolute "
            "numbers are not comparable to the paper's GPU testbed — "
            "the reproduced claims are the *shapes*: who wins, by "
            "roughly what factor, and how error behaves.\n\n"
            f"Environment: Python {platform.python_version()}, "
            f"{platform.machine()}, single process, NumPy pipeline.\n\n")
        path.write_text(head + "\n".join(self.sections))


def main() -> None:
    print("building workloads...")
    city = CityModel(seed=7)
    start, end = month_window(0)
    window_end = start + 3 * 30 * SECONDS_PER_DAY
    taxi_full = generate_taxi_trips(city, 800_000, start, window_end, seed=8)
    taxi = {n: taxi_full.take(np.arange(n))
            for n in (50_000, 200_000, 800_000)}
    complaints = generate_complaints(city, 60_000, start, window_end, seed=9)
    crime = generate_crimes(city, 40_000, start, window_end, seed=10)
    levels = {name: voronoi_regions(city, cnt, name=name)
              for name, cnt in (("boroughs", 5), ("neighborhoods", 71),
                                ("districts", 297), ("tracts", 1000))}
    neighborhoods = levels["neighborhoods"]

    engine = SpatialAggregationEngine(default_resolution=512,
                                      max_canvas_resolution=8192)
    count = SpatialAggregation.count()
    report = Report()

    # -- E1: the Figure-1 map view refresh -----------------------------
    print("E1 mapview...")
    month_query = count.during("t", start, end)
    rows = []
    lat = {}
    for method in ("bounded", "accurate", "grid", "rtree"):
        ms = _median_ms(lambda m=method: engine.execute(
            taxi[800_000], neighborhoods, month_query, method=m))
        lat[method] = ms
        rows.append((method, f"{ms:.1f} ms"))
    report.add(
        "E1 (Fig. 1) — map view refresh: taxi pickups, one month, by "
        "neighborhood",
        "The raster join answers the demo's headline gesture at "
        "interactive rates while exact index joins are an order of "
        "magnitude slower.",
        _table(("method", "median latency"), rows)
        + f"\n\n800,000 taxi rows, 71 neighborhoods, 512px canvas.",
        f"Reproduced: bounded raster join is "
        f"{lat['grid'] / lat['bounded']:.1f}x faster than the grid "
        f"index join ({lat['rtree'] / lat['bounded']:.1f}x vs. R-tree) "
        f"and stays below 100 ms.")

    # -- E2: latency vs |P| ---------------------------------------------
    print("E2 scale points...")
    rows = []
    e2 = {}
    for n, table in taxi.items():
        row = [f"{n:,}"]
        for method in ("bounded", "accurate", "grid", "rtree"):
            ms = _median_ms(lambda m=method, t=table: engine.execute(
                t, neighborhoods, count, method=m))
            e2[(n, method)] = ms
            row.append(f"{ms:.1f}")
        rows.append(row)
    naive_ms = _median_ms(lambda: engine.execute(
        taxi[50_000], neighborhoods, count, method="naive"), repeats=2)
    report.add(
        "E2 — query latency vs. number of points",
        "All methods scale ~linearly in |P|; the bounded raster join's "
        "constant is far smaller than the exact index joins'; the "
        "accurate variant sits between.",
        _table(("points", "bounded (ms)", "accurate (ms)", "grid (ms)",
                "rtree (ms)"), rows)
        + f"\n\nNaive brute-force anchor at 50k points: "
          f"{naive_ms:.0f} ms.",
        f"Reproduced: at 800k points the bounded join wins "
        f"{e2[(800_000, 'grid')] / e2[(800_000, 'bounded')]:.1f}x over "
        f"grid and {e2[(800_000, 'rtree')] / e2[(800_000, 'bounded')]:.1f}x "
        f"over R-tree; ordering bounded < accurate < grid < rtree holds "
        f"at every scale.")

    # -- E3: latency vs |R| ---------------------------------------------
    print("E3 scale regions...")
    rows = []
    e3 = {}
    for name, regions in levels.items():
        row = [f"{name} ({len(regions)})"]
        for method in ("bounded", "accurate", "grid"):
            ms = _median_ms(lambda m=method, r=regions: engine.execute(
                taxi[200_000], r, count, method=m))
            e3[(name, method)] = ms
            row.append(f"{ms:.1f}")
        rows.append(row)
    worst_bounded = max(e3[(name, "bounded")] for name in levels)
    min_ratio = min(e3[(name, "grid")] / e3[(name, "bounded")]
                    for name in levels)
    report.add(
        "E3 — query latency vs. polygon resolution",
        "Index-join latency climbs with polygon count/complexity "
        "(every candidate point pays a per-polygon test); the raster "
        "join's point pass is polygon-independent, so it stays "
        "interactive at every resolution and keeps a large constant "
        "advantage.",
        _table(("region set", "bounded (ms)", "accurate (ms)",
                "grid (ms)"), rows) + "\n\n200,000 taxi rows.",
        f"Reproduced: the bounded raster join stays under "
        f"{worst_bounded:.0f} ms at every resolution (>= "
        f"{min_ratio:.1f}x faster than the grid join at each level), "
        f"while the exact methods leave the interactive envelope at "
        f"tract scale.")

    # -- E4: accuracy vs resolution --------------------------------------
    print("E4 accuracy...")
    exact = engine.execute(taxi[200_000], neighborhoods, count,
                           method="accurate")
    rows = []
    errs = []
    for resolution in (64, 128, 256, 512, 1024, 2048):
        viewport = Viewport.fit(neighborhoods.bbox, resolution)
        fragments = engine.fragments_for(neighborhoods, viewport)
        result = bounded_raster_join(taxi[200_000], neighborhoods, count,
                                     viewport, fragments=fragments)
        ms = _median_ms(lambda v=viewport, f=fragments: bounded_raster_join(
            taxi[200_000], neighborhoods, count, v, fragments=f),
            repeats=3)
        err = result.compare_to(exact)["max_rel_error"]
        errs.append(err)
        assert result.bounds_contain(exact)
        rows.append((f"{resolution}px",
                     f"{result.stats['epsilon_world_units']:.1f} m",
                     f"{relative_bound_width(result.lower, result.upper, result.values) * 100:.2f}%",
                     f"{err * 100:.3f}%", f"{ms:.1f} ms"))
    report.add(
        "E4 — bounded raster join: accuracy vs. canvas resolution "
        "(the epsilon knob)",
        "Observed error stays within the hard bound; both shrink "
        "roughly linearly with pixel size; the guaranteed epsilon is "
        "the pixel diagonal.",
        _table(("canvas", "epsilon", "rel. bound width",
                "observed max rel. error", "latency"), rows),
        f"Reproduced: bounds contained the exact answer at every "
        f"resolution; max observed error fell from "
        f"{errs[0] * 100:.1f}% at 64px to {errs[-1] * 100:.3f}% at "
        f"2048px.")

    # -- E5: filters ------------------------------------------------------
    print("E5 filters...")
    rows = []
    sel_lat = {}
    for label, threshold in (("1.00", None), ("0.50", 6.0),
                             ("0.10", 14.0), ("0.01", 26.0)):
        query = count if threshold is None else SpatialAggregation.count(
            F("fare") > threshold)
        r = engine.execute(taxi[800_000], neighborhoods, query,
                           method="bounded")
        selectivity = r.stats["points_after_filter"] / 800_000
        row = [f"{selectivity:.3f}"]
        for method in ("bounded", "grid"):
            ms = _median_ms(lambda q=query, m=method: engine.execute(
                taxi[800_000], neighborhoods, q, method=m))
            sel_lat[(label, method)] = ms
            row.append(f"{ms:.1f}")
        rows.append(row)
    report.add(
        "E5 — ad-hoc filters: latency vs. selectivity",
        "On-the-fly evaluation accelerates as filters get more "
        "selective (fewer points reach the render pass) — the workload "
        "pre-aggregation fundamentally cannot serve.",
        _table(("selectivity", "bounded (ms)", "grid (ms)"), rows)
        + "\n\n800,000 taxi rows, fare-threshold predicates.",
        f"Reproduced: bounded-join latency drops "
        f"{sel_lat[('1.00', 'bounded')] / sel_lat[('0.01', 'bounded')]:.1f}x "
        f"from selectivity 1.0 to 0.01 and every ad-hoc predicate was "
        f"answered on the fly.")

    # -- E6: aggregates --------------------------------------------------
    print("E6 aggregates...")
    rows = []
    for agg, query in (("COUNT", count),
                       ("SUM", SpatialAggregation.sum_of("fare")),
                       ("AVG", SpatialAggregation.avg_of("fare")),
                       ("MIN", SpatialAggregation.min_of("fare")),
                       ("MAX", SpatialAggregation.max_of("fare"))):
        ms_b = _median_ms(lambda q=query: engine.execute(
            taxi[800_000], neighborhoods, q, method="bounded"))
        ms_a = _median_ms(lambda q=query: engine.execute(
            taxi[800_000], neighborhoods, q, method="accurate"))
        rows.append((agg, f"{ms_b:.1f}", f"{ms_a:.1f}"))
    report.add(
        "E6 — aggregate-function coverage",
        "All five AGG functions of the query template run at "
        "interactive rates; COUNT/SUM are the cheapest (single "
        "additive canvas), MIN/MAX pay for order-based blending.",
        _table(("aggregate", "bounded (ms)", "accurate (ms)"), rows)
        + "\n\n800,000 taxi rows, 71 neighborhoods.",
        "Reproduced: every aggregate interactive; accurate variant "
        "returns exact answers for all five (validated in the test "
        "suite against brute force).")

    # -- E7: exploration view ---------------------------------------------
    print("E7 exploration...")
    manager = DataManager(engine)
    manager.add_dataset(taxi[200_000], "taxi")
    manager.add_dataset(complaints, "complaints311")
    manager.add_dataset(crime, "crime")
    for name, regions in levels.items():
        manager.add_region_set(regions, name)
    indicators = [
        Indicator("activity", "taxi", count),
        Indicator("avg-fare", "taxi", SpatialAggregation.avg_of("fare")),
        Indicator("complaints", "complaints311", count,
                  higher_is_better=False),
        Indicator("crime-severity", "crime",
                  SpatialAggregation.sum_of("severity"),
                  higher_is_better=False),
    ]
    view = DataExplorationView(manager, "neighborhoods", method="bounded")
    ms_matrix = _median_ms(lambda: view.compute(indicators), repeats=3)
    matrix = view.compute(indicators)
    ms_rank = _median_ms(lambda: matrix.ranking({"activity": 2.0}))
    report.add(
        "E7 — data exploration view: multi-data-set ranking",
        "Comparing every region across several data sets (one spatial "
        "aggregation per indicator) refreshes at interactive rates; "
        "re-weighting is instant on the cached matrix.",
        _table(("operation", "median latency"),
               [("4-indicator matrix (3 data sets x 71 regions)",
                 f"{ms_matrix:.1f} ms"),
                ("re-weight + re-rank", f"{ms_rank:.3f} ms")]),
        "Reproduced: the full exploration-view refresh is well under "
        "the interactivity bar; weight changes are effectively free.")

    # -- E8: session --------------------------------------------------------
    print("E8 session...")
    session = InteractiveSession(manager, "taxi", "neighborhoods",
                                 method="bounded", resolution=512)
    session.brush_time(start, end)
    session.add_filter(F("payment") == "card")
    session.add_filter(F("fare") > 10.0)
    session.set_aggregation(SpatialAggregation.avg_of("tip"))
    session.clear_filters()
    session.set_aggregation(count)
    session.set_region_level("boroughs")
    session.set_region_level("tracts")
    session.set_region_level("neighborhoods")
    session.set_dataset("crime")
    session.set_dataset("taxi")
    session.clear_time_brush()
    stats = session.summary()
    report.add(
        "E8 — end-to-end interactive session",
        "Every exploration gesture (time brush, filter toggle, "
        "aggregation switch, resolution switch, data set switch) stays "
        "under the 1 s interactivity bar.",
        _table(("metric", "value"),
               [("gestures", stats["interactions"]),
                ("mean latency", f"{stats['mean_latency_s'] * 1000:.1f} ms"),
                ("p95 latency", f"{stats['p95_latency_s'] * 1000:.1f} ms"),
                ("max latency", f"{stats['max_latency_s'] * 1000:.1f} ms"),
                ("fraction interactive (<= 1 s)",
                 f"{stats['interactive_fraction'] * 100:.0f}%")]),
        f"Reproduced: {stats['interactive_fraction'] * 100:.0f}% of "
        f"gestures interactive (max "
        f"{stats['max_latency_s'] * 1000:.0f} ms).")

    # -- E9: cube ------------------------------------------------------------
    print("E9 cube...")
    t0 = time.perf_counter()
    cube = DataCube(taxi[800_000], neighborhoods, time_column="t",
                    time_bucket_s=SECONDS_PER_DAY,
                    category_columns=("payment",), value_column="fare")
    build_s = time.perf_counter() - t0
    aligned = count.during("t", start, end)
    ms_cube = _median_ms(lambda: cube.answer(neighborhoods, aligned))
    ms_raster = _median_ms(lambda: engine.execute(
        taxi[800_000], neighborhoods, aligned, method="bounded"))
    ad_hoc = [
        SpatialAggregation.count(F("fare") > 12.0),
        SpatialAggregation.avg_of("tip", F("payment") == "card"),
        count.during("t", start + 3600, start + 90_000),
        SpatialAggregation.sum_of("fare", F("distance_km") > 3.0),
        SpatialAggregation.count(F("payment") == "card"),
    ]
    answerable = sum(cube.can_answer(neighborhoods, q) for q in ad_hoc)
    report.add(
        "E9 — pre-aggregation (data cube) vs. on-the-fly raster join",
        "The cube wins only on anticipated (aligned) queries, pays a "
        "heavy build, and cannot answer ad-hoc polygons, non-aligned "
        "time ranges or unanticipated predicates at all.",
        _table(("metric", "cube", "bounded raster join"),
               [("build / preprocessing", f"{build_s:.2f} s", "none"),
                ("aligned month query", f"{ms_cube:.2f} ms",
                 f"{ms_raster:.1f} ms"),
                ("ad-hoc workload answered",
                 f"{answerable}/{len(ad_hoc)}",
                 f"{len(ad_hoc)}/{len(ad_hoc)}"),
                ("memory for measures",
                 f"{cube.memory_bytes() / 1e6:.1f} MB", "canvas only")]),
        f"Reproduced: the cube answers the anticipated query "
        f"{ms_raster / max(ms_cube, 1e-9):.0f}x faster than the raster "
        f"join but covers only {answerable} of {len(ad_hoc)} ad-hoc "
        f"queries; the raster join answers all of them with no "
        f"preprocessing.")

    # -- E10: ablations ---------------------------------------------------
    print("E10 ablations...")
    from repro.geometry import triangulate_ring_vertices
    from repro.raster import (
        boundary_pixels,
        boundary_pixels_sampled,
        coverage_fragments,
        rasterize_triangles,
    )

    viewport = Viewport.fit(neighborhoods.bbox, 512)
    geoms = list(neighborhoods.geometries)
    ms_scan = _median_ms(lambda: [coverage_fragments(g, viewport)
                                  for g in geoms], repeats=3)
    soups = [triangulate_ring_vertices(g.exterior) for g in geoms]
    ms_tri = _median_ms(lambda: [rasterize_triangles(s, viewport)
                                 for s in soups], repeats=3)
    ms_exact = _median_ms(lambda: [boundary_pixels(g, viewport)
                                   for g in geoms], repeats=3)
    ms_sampled = _median_ms(lambda: [boundary_pixels_sampled(g, viewport)
                                     for g in geoms], repeats=3)
    n_exact = sum(len(boundary_pixels(g, viewport)) for g in geoms)
    n_sampled = sum(len(boundary_pixels_sampled(g, viewport))
                    for g in geoms)
    report.add(
        "E10 — ablations of design choices",
        "Direct scanline beats tessellate-then-rasterize in software "
        "(the GPU needs triangles; a scanline rasterizer does not); "
        "exact grid-traversal boundary detection is both tighter and "
        "cheaper than sampling + 3x3 dilation.",
        _table(("variant", "latency", "note"),
               [("polygon raster: scanline", f"{ms_scan:.1f} ms",
                 "71 polygons, 512px"),
                ("polygon raster: triangulated", f"{ms_tri:.1f} ms",
                 "pre-tessellated"),
                ("boundary: exact traversal", f"{ms_exact:.1f} ms",
                 f"{n_exact:,} pixels"),
                ("boundary: sampled + dilated", f"{ms_sampled:.1f} ms",
                 f"{n_sampled:,} pixels")]),
        f"Scanline is {ms_tri / ms_scan:.1f}x faster than the "
        f"triangulated path; exact boundary traversal marks "
        f"{n_sampled / n_exact:.1f}x fewer pixels, which tightens E4's "
        f"bounds and speeds up the accurate variant's exact pass by "
        f"the same factor.")

    # -- E11: extension features -----------------------------------------
    print("E11 extensions...")
    from repro.core import bounded_raster_join_multi, parse_query
    from repro.core.heatmatrix import region_time_matrix

    multi_queries = [count, SpatialAggregation.sum_of("fare"),
                     SpatialAggregation.avg_of("fare"),
                     SpatialAggregation.avg_of("tip")]
    viewport512 = Viewport.fit(neighborhoods.bbox, 512)
    frags512 = engine.fragments_for(neighborhoods, viewport512)
    ms_sep = _median_ms(lambda: [bounded_raster_join(
        taxi[800_000], neighborhoods, q, viewport512, fragments=frags512)
        for q in multi_queries], repeats=3)
    ms_shared = _median_ms(lambda: bounded_raster_join_multi(
        taxi[800_000], neighborhoods, multi_queries, viewport512,
        fragments=frags512), repeats=3)
    ms_hm = _median_ms(lambda: region_time_matrix(
        taxi[200_000], neighborhoods, viewport512, bucket_seconds=86_400,
        fragments=frags512), repeats=3)
    sql_text = ("SELECT AVG(tip) FROM taxi, neighborhoods WHERE "
                "taxi.loc INSIDE neighborhoods.geometry AND "
                "payment = 'card' AND fare BETWEEN 5 AND 50 "
                "GROUP BY neighborhoods.id")
    ms_parse = _median_ms(lambda: parse_query(sql_text), repeats=20)
    report.add(
        "E11 — extension features (beyond the demo's minimum)",
        "Shared-pass multi-aggregate (the GPU multiple-render-targets "
        "analog) beats separate passes; the one-pass region x time "
        "matrix replaces per-bucket joins; SQL parsing is negligible "
        "next to execution.",
        _table(("operation", "median latency"),
               [("4 aggregates, separate passes", f"{ms_sep:.1f} ms"),
                ("4 aggregates, shared pass", f"{ms_shared:.1f} ms"),
                ("region x day matrix (one labeling pass)",
                 f"{ms_hm:.1f} ms"),
                ("SQL parse (5-condition query)",
                 f"{ms_parse * 1000:.0f} us")]),
        f"Shared pass is {ms_sep / ms_shared:.1f}x faster than separate "
        f"passes; the matrix and the SQL front end are interactive-"
        f"grade.")

    # -- E12: streaming ----------------------------------------------------
    print("E12 streaming...")
    from repro.data import generate_social_posts
    from repro.stream import PointStream
    from repro.table import timestamp_column as _ts_col

    posts, __ = generate_social_posts(city, 400_000, seed=11)
    stream = PointStream(neighborhoods, resolution=512,
                         bucket_seconds=1_800)
    stream.append(posts)
    stream.table()
    tail = posts.take(np.arange(len(posts) - 25_000, len(posts)))
    tmax = int(posts.values("t").max())
    batch = tail.with_column(_ts_col(
        "t", np.full(len(tail), tmax, dtype=np.int64)))
    ms_append = _median_ms(lambda: stream.append(batch), repeats=5)
    ms_snapshot = _median_ms(stream.matrix, repeats=5)
    now = stream.last_timestamp
    window_query = SpatialAggregation.count(F("topic") == "events")
    ms_window = _median_ms(lambda: engine.execute(
        stream.window_table(now - 6 * 3_600, now + 1), neighborhoods,
        window_query, viewport=stream.viewport, method="bounded"))
    ms_history = _median_ms(lambda: engine.execute(
        stream.table(), neighborhoods, window_query,
        viewport=stream.viewport, method="bounded"))
    report.add(
        "E12 — social-sensor streaming",
        "Batches keep arriving while views stay open: per-batch "
        "ingestion is cheap and flat, live snapshots are O(1), and a "
        "sliding-window query costs O(window) rather than O(history).",
        _table(("operation", "median latency"),
               [("append 25k-row batch (incremental state)",
                 f"{ms_append:.2f} ms"),
                ("region x time snapshot", f"{ms_snapshot:.2f} ms"),
                ("6h sliding-window filtered query", f"{ms_window:.1f} ms"),
                ("same query over full history", f"{ms_history:.1f} ms")]),
        f"Reproduced the streaming claim: ingestion sustains "
        f"~{25_000 / ms_append * 1000 / 1e6:.0f}M rows/s and window "
        f"queries are {ms_history / ms_window:.1f}x cheaper than "
        f"re-aggregating the history.")

    # -- E13: multi-core scaling of the point pass ----------------------
    print("E13 parallel scaling...")
    from bench_parallel_scaling import run_scaling

    payload = run_scaling(taxi[800_000], neighborhoods, resolution=512,
                          repeats=3)
    bench_out = ROOT / "BENCH_parallel.json"
    bench_out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {bench_out}")
    rows = [(r["workers"], f"{r['median_ms']:.1f} ms",
             f"{r['speedup']:.2f}x",
             "yes" if r["count_bitwise_equal"] else "NO")
            for r in payload["results"]]
    cores = payload["machine"]["cpu_count"]
    best = max(payload["results"], key=lambda r: r["speedup"])
    report.add(
        "E13 — multi-core scaling of the bounded raster join",
        "The point pass data-parallelizes across worker processes via "
        "shared-memory canvases; with the polygon raster cached, "
        "latency should drop near-linearly up to the core count and "
        "results must stay bitwise-identical to serial.",
        _table(("workers", "median latency", "speedup vs serial",
                "bitwise equal"), rows)
        + f"\n\n800,000 taxi rows, 71 neighborhoods, 512px canvas, "
          f"{cores} core(s) available. Machine-readable record in "
          f"`BENCH_parallel.json`.",
        f"Best speedup {best['speedup']:.2f}x at {best['workers']} "
        f"workers on {cores} core(s); all runs bitwise-equal to "
        f"serial. On a single-core host fork overhead makes parallel "
        f"runs slower — the planner's serial threshold exists exactly "
        f"for that regime.")

    # -- E14: temporal canvas cube brush latency -------------------------
    print("E14 tcube brush...")
    from bench_tcube_brush import run_brush

    from repro.table import numeric_column

    tcube_table = taxi[800_000].with_column(
        numeric_column("fare", np.round(taxi[800_000].values("fare"))))
    payload = run_brush(tcube_table, neighborhoods, resolution=512,
                        repeats=3)
    bench_out = ROOT / "BENCH_tcube.json"
    bench_out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {bench_out}")
    rows = [(r["agg"], f"{r['build_ms']:.0f} ms",
             f"{r['brush_step_rescatter_ms']:.1f} ms",
             f"{r['brush_step_cube_ms']:.2f} ms",
             f"{r['speedup']:.0f}x",
             "yes" if r["equal"] else "NO")
            for r in payload["results"]]
    best = max(payload["results"], key=lambda r: r["speedup"])
    report.add(
        "E14 — temporal canvas cube: O(pixels) timeline brushing",
        "Brushing the timeline re-runs the point pass per gesture even "
        "though only the TimeRange changed.  Prefix-summed time-sliced "
        "canvases answer any aligned brush as a two-slice difference — "
        "per-step cost independent of point count — while feeding the "
        "same gather join and boundary-mass bounds, so the error "
        "guarantees survive verbatim.",
        _table(("aggregate", "cube build (once)", "re-scatter / step",
                "cube / step", "speedup", "equal"), rows)
        + f"\n\n{payload['points']:,} taxi rows, "
          f"{payload['regions']} neighborhoods, "
          f"{payload['resolution']}px canvas, {payload['brush_steps']} "
          f"sliding {payload['brush_days']}-day brushes. "
          f"Machine-readable record in `BENCH_tcube.json`.",
        f"Reproduced the interactivity claim: brush steps answer up to "
        f"{best['speedup']:.0f}x faster than re-scattering (COUNT and "
        f"SUM bitwise-identical to the bounded join, AVG within "
        f"1e-12), and the one-time build costs about one re-scatter "
        f"sweep.")

    # -- E15: concurrent serving throughput -------------------------------
    print("E15 serve throughput...")
    from bench_serve_throughput import run_serve

    payload = run_serve(taxi[200_000], neighborhoods, max_concurrency=4,
                        requests_per_client=8, resolution=512)
    bench_out = ROOT / "BENCH_serve.json"
    bench_out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {bench_out}")
    rows = [(f"{r['load_factor']}x", r["clients"], r["served"], r["shed"],
             f"{r['p50_ms']:.1f} ms", f"{r['p99_ms']:.1f} ms",
             f"{r['qps']:.0f}",
             f"{r['coalesce_hit_rate'] * 100:.0f}%",
             "yes" if r["all_equal"] else "NO")
            for r in payload["results"]]
    worst = payload["results"][-1]
    report.add(
        "E15 — concurrent query serving under load",
        "Many analysts share one engine through the asyncio query "
        "server: identical in-flight queries coalesce into a single "
        "execution, excess load is shed with a structured retry hint "
        "instead of queueing unboundedly, and every served answer must "
        "stay bitwise-identical to a solo engine run.",
        _table(("load", "clients", "served", "shed", "p50", "p99",
                "QPS", "coalesce", "equal"), rows)
        + f"\n\n{payload['points']:,} taxi rows, {payload['regions']} "
          f"neighborhoods, {payload['max_concurrency']} engine slots, "
          f"queue depth {payload['max_queue']}, "
          f"{payload['requests_per_client']} requests per client over "
          f"HTTP. Machine-readable record in `BENCH_serve.json`.",
        f"Served answers stayed bitwise-equal to direct execution at "
        f"every load; at 16x overload the server shed "
        f"{worst['shed_rate'] * 100:.0f}% of requests with retry "
        f"hints while holding p99 at {worst['p99_ms']:.0f} ms for the "
        f"admitted, and no admission slot leaked.")

    # -- E16: out-of-core dataset store -----------------------------------
    print("E16 out-of-core store...")
    import tempfile

    from bench_store_outofcore import run_store

    store_table = taxi[800_000].with_column(
        numeric_column("fare", np.round(taxi[800_000].values("fare"))))
    with tempfile.TemporaryDirectory() as tmp:
        payload = run_store(store_table, neighborhoods,
                            Path(tmp) / "store", resolution=512,
                            repeats=3)
    bench_out = ROOT / "BENCH_store.json"
    bench_out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {bench_out}")
    rows = [(r["zoom"], r["partitions_scanned"], r["partitions_pruned"],
             f"{r['rows_scanned']:,}", f"{r['store_ms']:.1f} ms",
             f"{r['in_memory_ms']:.1f} ms",
             "yes" if r["equal"] else "NO")
            for r in payload["zooms"]]
    build = payload["build"]
    brush = payload["time_brush"]
    report.add(
        "E16 — out-of-core dataset store",
        "Data sets beyond the memory budget stay explorable: queries "
        "stream mmap-backed partitions, zone maps prune everything a "
        "viewport or time brush provably cannot touch, and the "
        "streamed answers are bitwise-identical to materializing the "
        "whole table in memory.",
        _table(("zoom", "scanned", "pruned", "rows scanned",
                "store query", "in-memory query", "equal"), rows)
        + f"\n\n{payload['points']:,} taxi rows written as "
          f"{build['partitions']} partitions "
          f"({build['store_bytes'] / 1e6:.0f} MB) at "
          f"{build['rows_per_s'] / 1e6:.2f}M rows/s; queries ran under "
          f"a {payload['memory_budget_bytes'] / 1e6:.1f} MB mount "
          f"budget ({payload['mounts']['evictions']} evictions). "
          f"Machine-readable record in `BENCH_store.json`.",
        f"Out-of-core answers matched in-memory bitwise at every zoom "
        f"and for the 7-day brush (which pruned "
        f"{brush['pruned_fraction'] * 100:.0f}% of partitions); "
        f"zooming in cut the scanned-partition count "
        f"{payload['zooms'][0]['partitions_scanned']} -> "
        f"{payload['zooms'][-1]['partitions_scanned']}, so work tracks "
        f"the window, not the data set.")

    # -- E17: canvas pyramid pan/zoom reuse --------------------------------
    print("E17 pyramid pan/zoom...")
    from bench_pyramid_panzoom import run_panzoom

    payload = run_panzoom(taxi[800_000], neighborhoods, resolution=512,
                          repeats=3)
    bench_out = ROOT / "BENCH_pyramid.json"
    bench_out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {bench_out}")
    rows = [(g["gesture"], f"L{g['level']}",
             f"{g['direct_ms']:.1f} ms", f"{g['assembled_ms']:.2f} ms",
             f"{g['speedup']:.1f}x",
             f"{g['reuse_fraction'] * 100:.0f}%",
             "yes" if g["equal"] else "NO")
            for g in payload["gestures"]]
    report.add(
        "E17 — canvas pyramid: partial-aggregate reuse across gestures",
        "Exploration gestures are near-duplicates of each other, yet "
        "the direct join re-scatters every point per frame.  Caching "
        "scattered canvases as blocks on a world-anchored mip grid "
        "lets a pan re-scatter only its uncovered margin and a "
        "zoom-out 2x2-reduce cached children, while every assembled "
        "answer stays bitwise identical to the direct path.",
        _table(("gesture", "level", "re-scatter", "assembled", "speedup",
                "reuse", "equal"), rows)
        + f"\n\n{payload['points']:,} taxi rows, {payload['regions']} "
          f"neighborhoods, {payload['resolution']}px canvas, "
          f"{payload['pan_step_pixels']}px pan steps after one cold "
          f"frame. Machine-readable record in `BENCH_pyramid.json`.",
        f"Reproduced the gesture-reuse claim: "
        f"{payload['reuse_fraction'] * 100:.0f}% of "
        f"warm-ladder pixels assembled from cached "
        f"blocks ({payload['block_hits']} block hits, "
        f"{payload['block_derived']} derived) for a "
        f"{payload['median_speedup']:.0f}x median per-gesture speedup, "
        f"bitwise-equal to re-scattering at every step.")

    # -- E18: sharded scatter-gather scaling -------------------------------
    print("E18 shard scaling...")
    from bench_shard_scaling import run_shard

    shard_table = taxi[200_000].with_column(
        numeric_column("fare", np.round(taxi[200_000].values("fare"))))
    with tempfile.TemporaryDirectory() as tmp:
        payload = run_shard(shard_table, neighborhoods, tmp,
                            resolution=512, repeats=3)
    bench_out = ROOT / "BENCH_shard.json"
    bench_out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {bench_out}")
    store_rows = [(r["shards"], f"{r['median_ms']:.1f} ms",
                   f"{r['speedup']:.2f}x",
                   "forked" if r["pooled"] else "in-process",
                   "yes" if r["equal"] else "NO")
                  for r in payload["store"]]
    serve_rows = [(r["shards"], f"{r['load_factor']}x", r["served"],
                   r["shed"], f"{r['p50_ms']:.1f} ms",
                   f"{r['p99_ms']:.1f} ms", f"{r['qps']:.0f}",
                   "yes" if r["all_equal"] else "NO")
                  for r in payload["serve"]]
    cores = payload["machine"]["cpu_count"]
    report.add(
        "E18 — sharded scatter-gather execution",
        "Store-backed queries fork the partition scan into N shards "
        "over the same mmap'd files (pipelining the next partition's "
        "page-in against the current scatter), and the serve layer "
        "routes queries across a worker pool by consistent hash so "
        "caches shard instead of duplicating.  Answers must stay "
        "bitwise-equal to single-process execution at every shard "
        "count and load.",
        _table(("shards", "store query", "speedup", "mode", "equal"),
               store_rows)
        + "\n\n"
        + _table(("shards", "load", "served", "shed", "p50", "p99",
                  "QPS", "equal"), serve_rows)
        + f"\n\n{payload['points']:,} taxi rows in "
          f"{payload['partitions']} partitions, {payload['regions']} "
          f"neighborhoods, {cores} core(s) available. Machine-readable "
          f"record in `BENCH_shard.json`.",
        f"All sharded answers bitwise-equal to single-process at every "
        f"shard count and load factor on {cores} core(s); on a "
        f"single-core host fork fan-out cannot beat serial (the "
        f"planner's shard threshold keeps production defaults honest), "
        f"so the scaling columns are the cross-machine record, parity "
        f"is the gate.")

    # -- E19: accurate-join interval classification ------------------------
    print("E19 accurate intervals...")
    from bench_accurate_intervals import run_sweep

    payload = run_sweep(taxi[200_000], neighborhoods,
                        resolutions=(128, 256, 512, 1024), repeats=3)
    bench_out = ROOT / "BENCH_accurate.json"
    bench_out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {bench_out}")
    rows = [(r["resolution"], f"{r['accurate_ms']:.1f} ms",
             f"{r['legacy_accurate_ms']:.1f} ms",
             f"{r['bounded_ms']:.1f} ms",
             f"{r['ratio_accurate_vs_bounded']:.2f}x",
             f"{r['speedup_vs_legacy']:.2f}x",
             f"{100 * r['pip_fraction']:.1f}%",
             "yes" if r["equal_legacy_bitwise"] and r["equal_naive"]
             else "NO")
            for r in payload["results"]]
    report.add(
        "E19 — accurate join via FULL/PARTIAL interval classification",
        "The scanline pass now classifies every polygon's raster cells "
        "into FULL interval runs (guaranteed interior — credited by "
        "the raster gather alone) and PARTIAL runs (cells the boundary "
        "may cross).  Only points in genuinely PARTIAL cells pay an "
        "exact point-in-polygon test, fetched one CSR slice per "
        "interval run; results stay bitwise-identical to the legacy "
        "per-pixel accurate join.  Compute kernels (scatter, gather, "
        "range expansion) dispatch through a registry "
        f"(selected: {payload['kernel']['selected']}) with a numba "
        "tier when available.",
        _table(("resolution", "accurate", "legacy", "bounded", "vs "
                "bounded", "vs legacy", "PIP tested", "equal"), rows)
        + f"\n\n{payload['points']:,} taxi rows, {payload['regions']} "
          f"neighborhoods, COUNT timed; 'PIP tested' is the fraction "
          f"of in-viewport points whose cell is PARTIAL for some "
          f"region. Machine-readable record in `BENCH_accurate.json`.",
        "The PIP fraction falls with resolution (boundary cells cover "
        "proportionally less area), so the exact join converges toward "
        "bounded-join latency at display resolutions while remaining "
        "exact; every rung is bitwise-equal to both the legacy "
        "implementation and brute force.")

    # -- E20: gesture-speculative prefetch ---------------------------------
    print("E20 speculative prefetch...")
    from bench_speculate_session import run_speculate

    payload = run_speculate(taxi[100_000], neighborhoods,
                            max_concurrency=4, resolution=256)
    bench_out = ROOT / "BENCH_speculate.json"
    bench_out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {bench_out}")
    rows = [(f"{r['load_factor']}x", r["clients"],
             f"{r['p50_off_ms']:.1f} ms", f"{r['p50_on_ms']:.1f} ms",
             f"{r['p99_off_ms']:.1f} ms", f"{r['p99_on_ms']:.1f} ms",
             f"{r['hit_rate'] * 100:.0f}%", r["spec_shed"],
             "yes" if r["all_equal"] else "NO")
            for r in payload["results"]]
    idle = payload["results"][0]
    report.add(
        "E20 — gesture-speculative prefetch",
        "The serving layer watches each analyst's gesture stream "
        "(time brushes, pans, zooms), predicts the next query from "
        "per-session transition statistics, and warms caches for the "
        "top candidates on otherwise-idle slots — a strictly "
        "lower-priority tier that is shed the moment any real request "
        "needs capacity.  Each load cell replays the E8-style ladder "
        "through concurrent remote sessions with speculation off, then "
        "on, from a cold cache both times; answers must match bitwise.",
        _table(("load", "analysts", "p50 off", "p50 on", "p99 off",
                "p99 on", "hits", "spec shed", "equal"), rows)
        + f"\n\n{payload['points']:,} taxi rows, {payload['regions']} "
          f"regions, {payload['max_concurrency']} engine slots, "
          f"{payload['brush_steps']}-step brush sweep + "
          f"{payload['pan_steps']}-pan run + zoom toggles per analyst, "
          f"{payload['think_ms']:.0f} ms think time. Machine-readable "
          f"record in `BENCH_speculate.json`.",
        f"During think-time idleness speculation pre-builds the "
        f"predicted next gesture: at 1x load "
        f"{idle['hit_rate'] * 100:.0f}% of gestures landed on warmed "
        f"state and p99 dropped {idle['p99_off_ms']:.0f} -> "
        f"{idle['p99_on_ms']:.0f} ms; under saturation the idle-only "
        f"grant plus shed-first preemption keeps latency at parity "
        f"with speculation off (no real request ever queues behind a "
        f"warm-up), and every answer stayed bitwise-identical.")

    out = ROOT / "EXPERIMENTS.md"
    report.write(out)
    print(f"wrote {out}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="regenerate EXPERIMENTS.md or summarize BENCH files")
    parser.add_argument("--summary", action="store_true",
                        help="summarize committed BENCH_*.json without "
                             "re-running experiments")
    cli_args = parser.parse_args()
    if cli_args.summary:
        sys.exit(summarize_benches())
    main()
