"""Accurate-join interval sweep: FULL/PARTIAL classification payoff.

PR 8 rewired the accurate raster join around per-polygon FULL/PARTIAL
interval runs: points in FULL cells are credited by the raster pass
alone and only points in genuinely PARTIAL cells pay an exact
point-in-polygon test.  This benchmark replays the paper's E4 accuracy
sweep (resolution ladder, fixed workload) three ways — interval-driven
accurate, legacy per-pixel accurate, and the bounded approximate join —
and records for each resolution the latency ratio accurate/bounded,
the PIP workload actually paid (tested vs. skipped), and the interval
census (FULL/PARTIAL pixels and run counts), under the kernel the
registry selected.

Two faces:

* pytest-benchmark (``pytest benchmarks/bench_accurate_intervals.py``)
  — statistical timings in the shared benchmark session;
* standalone (``python benchmarks/bench_accurate_intervals.py
  [--points N] [--resolutions 128,256,512] [--out
  BENCH_accurate.json]``) — emits the machine-readable record and
  exits non-zero if the interval-driven join diverges from the legacy
  implementation (bitwise, every aggregate) or from brute force
  (bitwise COUNT, 1e-9 relative for float folds).  The full-size
  acceptance bar is accurate <= 2x bounded per step
  (``--ratio-ceiling 2``); CI smoke sizes gate on parity only.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

DEFAULT_RESOLUTIONS = (128, 256, 512)


def _median_ms(fn, repeats: int) -> float:
    fn()  # warmup
    times = []
    for __ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times) * 1000)


def run_sweep(table, regions, resolutions=DEFAULT_RESOLUTIONS,
              repeats: int = 5, ratio_ceiling: float | None = None) -> dict:
    """Time accurate (interval) vs. legacy accurate vs. bounded across
    a resolution ladder and verify exactness at every rung.

    Returns the BENCH_accurate.json payload.
    """
    from repro import kernels
    from repro.baselines import naive_join
    from repro.core import (
        SpatialAggregation,
        accurate_raster_join,
        bounded_raster_join,
        legacy_accurate_raster_join,
    )
    from repro.raster import Viewport, build_fragment_table

    aggregates = [("count", None), ("sum", "fare"), ("avg", "fare")]
    queries = [SpatialAggregation(agg, col) for agg, col in aggregates]
    naive = {q.agg: naive_join(table, regions, q) for q in queries}

    results = []
    for resolution in resolutions:
        viewport = Viewport.fit(regions.bbox, resolution)
        t0 = time.perf_counter()
        fragments = build_fragment_table(list(regions.geometries), viewport)
        fragment_ms = (time.perf_counter() - t0) * 1000
        intervals = fragments.intervals

        equal_legacy = True
        equal_naive = True
        max_rel_err = 0.0
        stats = None
        for query in queries:
            got = accurate_raster_join(table, regions, query, viewport,
                                       fragments=fragments)
            ref = legacy_accurate_raster_join(table, regions, query,
                                              viewport, fragments=fragments)
            equal_legacy = equal_legacy and (
                got.values.tobytes() == ref.values.tobytes())
            want = naive[query.agg]
            if query.agg == "count":
                equal_naive = equal_naive and np.array_equal(
                    got.values, want.values)
            else:
                denom = np.where(want.values == 0, 1.0,
                                 np.abs(want.values))
                err = float(np.nanmax(
                    np.abs(got.values - want.values) / denom))
                max_rel_err = max(max_rel_err, err)
                equal_naive = equal_naive and err <= 1e-9
            if query.agg == "count":
                stats = got.stats

        count = queries[0]
        accurate_ms = _median_ms(
            lambda: accurate_raster_join(table, regions, count, viewport,
                                         fragments=fragments), repeats)
        legacy_ms = _median_ms(
            lambda: legacy_accurate_raster_join(table, regions, count,
                                               viewport,
                                               fragments=fragments), repeats)
        bounded_ms = _median_ms(
            lambda: bounded_raster_join(table, regions, count, viewport,
                                        fragments=fragments), repeats)

        acc = stats["accurate"]
        tested = acc["pip_points_tested"]
        skipped = acc["pip_points_skipped"]
        results.append({
            "resolution": resolution,
            "fragment_build_ms": fragment_ms,
            "accurate_ms": accurate_ms,
            "legacy_accurate_ms": legacy_ms,
            "bounded_ms": bounded_ms,
            "ratio_accurate_vs_bounded": accurate_ms / bounded_ms
            if bounded_ms > 0 else float("inf"),
            "speedup_vs_legacy": legacy_ms / accurate_ms
            if accurate_ms > 0 else float("inf"),
            "full_pixels": acc["full_pixels"],
            "partial_pixels": acc["partial_pixels"],
            "full_runs": acc["full_runs"],
            "partial_runs": acc["partial_runs"],
            "pip_points_tested": tested,
            "pip_points_skipped": skipped,
            "pip_fraction": tested / max(1, tested + skipped),
            "equal_legacy_bitwise": bool(equal_legacy),
            "equal_naive": bool(equal_naive),
            "max_rel_err": max_rel_err,
        })

    return {
        "benchmark": "accurate-interval-sweep",
        "points": len(table),
        "regions": len(regions),
        "resolutions": list(resolutions),
        "repeats": repeats,
        "ratio_ceiling": ratio_ceiling,
        "kernel": kernels.info(),
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.machine(),
        },
        "results": results,
    }


# -- pytest-benchmark face ---------------------------------------------------

try:
    import pytest
except ImportError:  # standalone invocation without pytest installed
    pytest = None

if pytest is not None:
    pytestmark = pytest.mark.benchmark(group="accurate intervals")

    @pytest.mark.parametrize("path", ["intervals", "legacy", "bounded"])
    def test_accurate_join_latency(benchmark, bench_taxi, bench_regions,
                                   path):
        from repro.core import (
            SpatialAggregation,
            accurate_raster_join,
            bounded_raster_join,
            legacy_accurate_raster_join,
        )
        from repro.raster import Viewport, build_fragment_table

        table = bench_taxi["200k"]
        regions = bench_regions["neighborhoods"]
        viewport = Viewport.fit(regions.bbox, 512)
        fragments = build_fragment_table(list(regions.geometries), viewport)
        query = SpatialAggregation.count()
        join = {"intervals": accurate_raster_join,
                "legacy": legacy_accurate_raster_join,
                "bounded": bounded_raster_join}[path]

        run = lambda: join(table, regions, query, viewport,  # noqa: E731
                           fragments=fragments)
        run()
        result = benchmark(run)
        benchmark.extra_info["path"] = path
        benchmark.extra_info["total_count"] = float(result.values.sum())
        if path == "intervals":
            acc = result.stats["accurate"]
            benchmark.extra_info["pip_fraction"] = (
                acc["pip_points_tested"]
                / max(1, acc["pip_points_tested"]
                      + acc["pip_points_skipped"]))


# -- standalone face ---------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="accurate interval sweep vs. legacy/bounded -> JSON")
    parser.add_argument("--points", type=int, default=500_000)
    parser.add_argument("--regions", type=int, default=71)
    parser.add_argument("--resolutions", default="128,256,512",
                        help="comma-separated canvas resolutions")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--ratio-ceiling", type=float, default=None,
                        help="fail if accurate/bounded exceeds this at any "
                             "resolution (full-size bar: 2)")
    parser.add_argument("--out", default="BENCH_accurate.json")
    args = parser.parse_args(argv)
    resolutions = [int(r) for r in args.resolutions.split(",")]

    from repro.data import CityModel, generate_taxi_trips, voronoi_regions

    city = CityModel(seed=7)
    table = generate_taxi_trips(city, args.points, seed=8)
    regions = voronoi_regions(city, args.regions, name="neighborhoods")

    payload = run_sweep(table, regions, resolutions=resolutions,
                        repeats=args.repeats,
                        ratio_ceiling=args.ratio_ceiling)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"kernel: {payload['kernel']['selected']} "
          f"(requested={payload['kernel']['requested']})")
    print(f"{'res':>5} {'accurate':>9} {'legacy':>9} {'bounded':>9} "
          f"{'vs bnd':>7} {'vs leg':>7} {'pip%':>6}  equal")
    for row in payload["results"]:
        print(f"{row['resolution']:>5} {row['accurate_ms']:>7.1f}ms "
              f"{row['legacy_accurate_ms']:>7.1f}ms "
              f"{row['bounded_ms']:>7.1f}ms "
              f"{row['ratio_accurate_vs_bounded']:>6.2f}x "
              f"{row['speedup_vs_legacy']:>6.2f}x "
              f"{100 * row['pip_fraction']:>5.1f}%  "
              f"{row['equal_legacy_bitwise'] and row['equal_naive']}")
    print(f"wrote {out}")

    diverged = [r["resolution"] for r in payload["results"]
                if not (r["equal_legacy_bitwise"] and r["equal_naive"])]
    if diverged:
        print(f"ERROR: accurate join diverged at resolutions {diverged}",
              file=sys.stderr)
        return 1
    if args.ratio_ceiling is not None:
        slow = [r["resolution"] for r in payload["results"]
                if r["ratio_accurate_vs_bounded"] > args.ratio_ceiling]
        if slow:
            print(f"ERROR: accurate/bounded ratio above "
                  f"{args.ratio_ceiling}x at resolutions {slow}",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
