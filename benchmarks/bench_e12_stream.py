"""E12 (extensions): streaming ingestion and sliding-window queries.

The social-sensor scenario: batches keep arriving while the view stays
open.  Expected shape: per-batch append cost is small and flat (the
incremental state is O(batch)), the O(1) matrix snapshot is effectively
free, and a sliding-window query costs O(window) — far below
re-aggregating the whole history.
"""

import numpy as np
import pytest

from repro.core import SpatialAggregation, SpatialAggregationEngine
from repro.data import CityModel, generate_social_posts, voronoi_regions
from repro.stream import PointStream
from repro.table import F


@pytest.fixture(scope="module")
def feed():
    city = CityModel(seed=42)
    regions = voronoi_regions(city, 71, name="stream-hoods")
    posts, __ = generate_social_posts(city, 400_000, seed=11)
    return regions, posts


@pytest.fixture(scope="module")
def loaded_stream(feed):
    regions, posts = feed
    stream = PointStream(regions, resolution=512, bucket_seconds=1_800)
    stream.append(posts)
    stream.table()  # consolidate
    return stream


@pytest.mark.benchmark(group="E12a stream ingestion")
def test_append_batch(benchmark, feed):
    regions, posts = feed
    # Pin the batch's timestamps to the feed's max so re-appending it on
    # every bench round stays legal (non-decreasing) — this isolates the
    # per-batch append cost from the one-time polygon raster the stream
    # builds at construction.
    from repro.table import timestamp_column

    tail = posts.take(np.arange(len(posts) - 25_000, len(posts)))
    tmax = int(posts.values("t").max())
    batch = tail.with_column(
        timestamp_column("t", np.full(len(tail), tmax, dtype=np.int64)))
    stream = PointStream(regions, resolution=512, bucket_seconds=1_800)
    stream.append(batch)

    benchmark(stream.append, batch)
    benchmark.extra_info["batch_rows"] = len(batch)


@pytest.mark.benchmark(group="E12b live views")
def test_matrix_snapshot(benchmark, loaded_stream):
    matrix = benchmark(loaded_stream.matrix)
    benchmark.extra_info["buckets"] = matrix.num_buckets


@pytest.mark.benchmark(group="E12b live views")
def test_hot_region_scan(benchmark, loaded_stream):
    benchmark(loaded_stream.hot_regions, 1, 48, 2.0)


@pytest.mark.benchmark(group="E12c window query vs history")
@pytest.mark.parametrize("scope", ["6h-window", "full-history"])
def test_window_query(benchmark, feed, loaded_stream, scope):
    regions, posts = feed
    engine = SpatialAggregationEngine(default_resolution=512)
    engine.fragments_for(regions, loaded_stream.viewport)
    query = SpatialAggregation.count(F("topic") == "events")
    now = loaded_stream.last_timestamp

    if scope == "6h-window":
        def run():
            window = loaded_stream.window_table(now - 6 * 3_600, now + 1)
            return engine.execute(window, regions, query,
                                  viewport=loaded_stream.viewport,
                                  method="bounded")
    else:
        def run():
            return engine.execute(loaded_stream.table(), regions, query,
                                  viewport=loaded_stream.viewport,
                                  method="bounded")

    result = benchmark(run)
    benchmark.extra_info["rows_scanned"] = result.stats["points_total"]
