"""E11 (extensions): features beyond the demo's minimum.

* **Shared-pass multi-aggregate** — the GPU multiple-render-targets
  analog: several aggregates over one filter signature share the filter
  mask and point projection.  Expected: shared pass beats issuing the
  aggregates separately.
* **Region x time heat matrix** — one labeling pass for all (region,
  bucket) pairs vs. one bounded raster join per bucket.  Expected: the
  labeling pass wins by roughly the bucket count.
* **SQL front end** — parsing overhead must be negligible next to
  execution.
"""

import numpy as np
import pytest

from repro.core import (
    SpatialAggregation,
    bounded_raster_join,
    bounded_raster_join_multi,
    parse_query,
    region_time_matrix,
)
from repro.raster import Viewport
from repro.table import TimeRange

MULTI_QUERIES = [
    SpatialAggregation.count(),
    SpatialAggregation.sum_of("fare"),
    SpatialAggregation.avg_of("fare"),
    SpatialAggregation.avg_of("tip"),
]


@pytest.mark.benchmark(group="E11a multi-aggregate pass")
@pytest.mark.parametrize("mode", ["separate", "shared"])
def test_multi_aggregate(benchmark, warm_engine, bench_taxi, bench_regions,
                         mode):
    taxi = bench_taxi["800k"]
    regions = bench_regions["neighborhoods"]
    viewport = Viewport.fit(regions.bbox, 512)
    fragments = warm_engine.fragments_for(regions, viewport)

    if mode == "separate":
        def run():
            return [bounded_raster_join(taxi, regions, q, viewport,
                                        fragments=fragments)
                    for q in MULTI_QUERIES]
    else:
        def run():
            return bounded_raster_join_multi(taxi, regions, MULTI_QUERIES,
                                             viewport, fragments=fragments)

    results = benchmark(run)
    benchmark.extra_info["aggregates"] = len(results)


@pytest.mark.benchmark(group="E11b region x time matrix")
@pytest.mark.parametrize("mode", ["per-bucket-joins", "labeling-pass"])
def test_heat_matrix(benchmark, warm_engine, bench_taxi, bench_regions,
                     mode):
    taxi = bench_taxi["200k"]
    regions = bench_regions["neighborhoods"]
    viewport = Viewport.fit(regions.bbox, 512)
    fragments = warm_engine.fragments_for(regions, viewport)
    bucket_s = 7 * 86_400  # weekly buckets over the generated window
    t = taxi.values("t")
    t0 = int(t.min()) // bucket_s * bucket_s
    nbuckets = int((int(t.max()) - t0) // bucket_s) + 1

    if mode == "per-bucket-joins":
        def run():
            out = []
            for b in range(nbuckets):
                query = SpatialAggregation.count(
                    TimeRange("t", t0 + b * bucket_s,
                              t0 + (b + 1) * bucket_s))
                out.append(bounded_raster_join(
                    taxi, regions, query, viewport,
                    fragments=fragments).values)
            return np.column_stack(out)
    else:
        def run():
            return region_time_matrix(
                taxi, regions, viewport, bucket_seconds=bucket_s,
                fragments=fragments).values

    matrix = benchmark(run)
    benchmark.extra_info["buckets"] = nbuckets
    benchmark.extra_info["total"] = float(np.asarray(matrix).sum())


@pytest.mark.benchmark(group="E11c SQL front end")
def test_sql_parse_overhead(benchmark):
    sql = ("SELECT AVG(tip) FROM taxi, neighborhoods "
           "WHERE taxi.loc INSIDE neighborhoods.geometry "
           "AND payment = 'card' AND fare BETWEEN 5 AND 50 "
           "AND (distance_km > 2 OR tip > 3) "
           "GROUP BY neighborhoods.id")
    parsed = benchmark(parse_query, sql)
    assert parsed.aggregation.agg == "avg"
