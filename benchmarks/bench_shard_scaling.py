"""Sharded scatter-gather scaling: store shards and the serve pool.

Two measurements, both against the acceptance bar of the sharding
work:

* **store scatter-gather** — one store-backed bounded join at
  1/2/4/8 shards (forked over the same mmap'd partitions), median
  latency and bitwise parity against the single-process answer;
* **serve soak** — a :class:`~repro.serve.service.QueryService`
  fronting the same store with a routed worker pool at each shard
  count, hammered in-process at 1x / 4x / 16x the configured
  concurrency with distinct (uncacheable) queries, recording QPS,
  p50/p99 latency, shed rate and per-worker routing spread.

Two faces:

* pytest-benchmark (``pytest benchmarks/bench_shard_scaling.py``) —
  sharded store query latency in the shared benchmark session;
* standalone (``python benchmarks/bench_shard_scaling.py
  [--points N] [--out BENCH_shard.json]``) — emits the
  machine-readable record and exits non-zero if any sharded answer
  diverges from single-process execution.

Scaling expectations are hardware-honest: on a single-core host the
fork fan-out cannot beat serial (the planner's shard threshold exists
for exactly that regime), so parity is the hard gate here and the
QPS/latency columns are the record to compare across machines.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

SHARD_COUNTS = (1, 2, 4, 8)
LOAD_FACTORS = (1, 4, 16)
#: Shard even at smoke sizes: the bench states its own threshold
#: instead of inheriting the planner's interactive-scale default.
BENCH_SERIAL_THRESHOLD = 10_000


def _percentile_ms(samples: list[float], q: float) -> float:
    if not samples:
        return float("nan")
    return float(np.percentile(np.array(samples) * 1000, q))


def _engine(shards: int, resolution: int):
    from repro.core import ParallelConfig, SpatialAggregationEngine

    return SpatialAggregationEngine(
        default_resolution=resolution,
        parallel=ParallelConfig(shards=shards,
                                serial_threshold=BENCH_SERIAL_THRESHOLD))


def _equal(a, b) -> bool:
    return (np.array_equal(a.values, b.values, equal_nan=True)
            and np.array_equal(a.lower, b.lower, equal_nan=True)
            and np.array_equal(a.upper, b.upper, equal_nan=True))


def run_store_scaling(store, regions, shard_counts=SHARD_COUNTS,
                      resolution: int = 256, repeats: int = 3) -> list:
    """Median sharded store-query latency + parity per shard count."""
    from repro.core import SpatialAggregation

    query = SpatialAggregation.sum_of("fare")
    reference = _engine(1, resolution).execute(
        store, regions, query, resolution=resolution)
    rows = []
    serial_ms = None
    for shards in shard_counts:
        engine = _engine(shards, resolution)
        result = engine.execute(store, regions, query,
                                resolution=resolution)
        times = []
        for __ in range(repeats):
            t0 = time.perf_counter()
            engine.execute(store, regions, query, resolution=resolution)
            times.append(time.perf_counter() - t0)
        median_ms = float(np.median(times) * 1000)
        if serial_ms is None:
            serial_ms = median_ms
        shard_stats = result.stats.get("shards") or {}
        rows.append({
            "shards": shards,
            "median_ms": median_ms,
            "speedup": serial_ms / median_ms if median_ms else 0.0,
            "equal": _equal(result, reference),
            "pooled": bool(shard_stats.get("pooled", False)),
            "shards_used": shard_stats.get("count", 1),
            "prefetch_hit_fraction":
                shard_stats.get("prefetch_hit_fraction", 0.0),
        })
    return rows


def run_serve_soak(store_path, regions, shard_counts=SHARD_COUNTS,
                   load_factors=LOAD_FACTORS, max_concurrency: int = 4,
                   requests_per_client: int = 6,
                   resolution: int = 256) -> list:
    """Drive a routed serve pool over the store at increasing load."""
    from repro.core import SpatialAggregation
    from repro.errors import OverloadedError
    from repro.serve import QueryService
    from repro.serve.protocol import decode_request, encode_request
    from repro.table import F
    from repro.urbane import DataManager

    rows = []
    for shards in shard_counts:
        manager = DataManager(_engine(1, resolution))
        manager.add_store(store_path, name="trips")
        region_name = manager.add_region_set(regions)

        # The whole soak for one service runs on one event loop: the
        # admission semaphore binds to the loop it first waits on.
        async def soak_all(manager=manager, shards=shards,
                           region_name=region_name):
            service = QueryService(
                manager, max_concurrency=max_concurrency,
                max_queue=2 * max_concurrency, max_wait_s=5.0,
                shards=shards)
            loop_rows = []
            try:
                for load in load_factors:
                    clients = load * max_concurrency
                    thresholds = [0.5 * k
                                  for k in range(max(2, clients // 2))]
                    direct = {
                        thr: manager.engine.execute(
                            manager.dataset("trips"), regions,
                            SpatialAggregation.count(F("fare") > thr),
                            resolution=resolution)
                        for thr in thresholds
                    }
                    latencies: list[float] = []
                    mismatches: list[float] = []
                    shed = 0

                    async def one_client(cid, thresholds=thresholds,
                                         direct=direct,
                                         latencies=latencies,
                                         mismatches=mismatches,
                                         service=service):
                        nonlocal shed
                        for r in range(requests_per_client):
                            thr = thresholds[(cid + r) % len(thresholds)]
                            req = decode_request(encode_request(
                                "trips", region_name,
                                query=SpatialAggregation.count(
                                    F("fare") > thr),
                                resolution=resolution, cache=False,
                                timeout_s=5.0))
                            t0 = time.perf_counter()
                            try:
                                result = await service.execute(req)
                            except OverloadedError:
                                shed += 1
                                continue
                            latencies.append(time.perf_counter() - t0)
                            if not _equal(result, direct[thr]):
                                mismatches.append(thr)

                    t0 = time.perf_counter()
                    await asyncio.gather(
                        *(one_client(c) for c in range(clients)))
                    wall_s = time.perf_counter() - t0
                    total = clients * requests_per_client
                    pool_stats = service.stats()["pool"]
                    loop_rows.append({
                        "shards": shards,
                        "load_factor": load,
                        "clients": clients,
                        "requests": total,
                        "served": len(latencies),
                        "shed": shed,
                        "shed_rate": shed / total if total else 0.0,
                        "p50_ms": _percentile_ms(latencies, 50),
                        "p99_ms": _percentile_ms(latencies, 99),
                        "qps": len(latencies) / wall_s if wall_s
                        else 0.0,
                        "all_equal": not mismatches,
                        "worker_queries": [
                            w["queries"]
                            for w in pool_stats["workers"]],
                    })
            finally:
                service.close()
            return loop_rows

        rows.extend(asyncio.run(soak_all()))
    return rows


def run_shard(table, regions, store_dir,
              shard_counts=SHARD_COUNTS, load_factors=LOAD_FACTORS,
              max_concurrency: int = 4, requests_per_client: int = 6,
              resolution: int = 256, repeats: int = 3) -> dict:
    """The full BENCH_shard.json payload."""
    from repro.store import build_store

    # Spatial partitioning only: time-bucketed zone maps would shred
    # this workload into thousands of tiny partitions (and as many
    # open mmaps), which benchmarks the page cache, not the shards.
    store = build_store(table, Path(store_dir) / "store",
                        partition_rows=max(2_048, len(table) // 64),
                        grid=4)
    return {
        "benchmark": "shard-scaling",
        "points": len(table),
        "regions": len(regions),
        "resolution": resolution,
        "partitions": store.num_partitions,
        "max_concurrency": max_concurrency,
        "requests_per_client": requests_per_client,
        "serial_threshold": BENCH_SERIAL_THRESHOLD,
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.machine(),
        },
        "store": run_store_scaling(store, regions,
                                   shard_counts=shard_counts,
                                   resolution=resolution,
                                   repeats=repeats),
        "serve": run_serve_soak(store.path, regions,
                                shard_counts=shard_counts,
                                load_factors=load_factors,
                                max_concurrency=max_concurrency,
                                requests_per_client=requests_per_client,
                                resolution=resolution),
    }


# -- pytest-benchmark face ---------------------------------------------------

try:
    import pytest
except ImportError:  # standalone invocation without pytest installed
    pytest = None

if pytest is not None:
    pytestmark = pytest.mark.benchmark(group="shard")

    @pytest.fixture(scope="module")
    def shard_bench_store(bench_taxi, tmp_path_factory):
        from repro.store import build_store
        from repro.table import numeric_column

        table = bench_taxi["200k"]
        table = table.with_column(numeric_column(
            "fare", np.round(table.values("fare"))))
        path = tmp_path_factory.mktemp("shard-bench") / "store"
        return build_store(table, path, partition_rows=8_192, grid=4)

    @pytest.mark.parametrize("shards", [1, 2])
    def test_sharded_store_query(benchmark, shard_bench_store,
                                 bench_regions, shards):
        from repro.core import SpatialAggregation

        regions = bench_regions["neighborhoods"]
        engine = _engine(shards, 256)
        query = SpatialAggregation.sum_of("fare")
        engine.execute(shard_bench_store, regions, query)  # warm raster

        def run():
            return engine.execute(shard_bench_store, regions, query)

        result = benchmark(run)
        benchmark.extra_info["shards"] = shards
        benchmark.extra_info["pooled"] = bool(
            (result.stats.get("shards") or {}).get("pooled", False))


# -- standalone face ---------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="sharded scatter-gather scaling -> JSON")
    parser.add_argument("--points", type=int, default=200_000)
    parser.add_argument("--regions", type=int, default=71)
    parser.add_argument("--resolution", type=int, default=256)
    parser.add_argument("--shards", default="1,2,4,8",
                        help="comma-separated shard counts")
    parser.add_argument("--load", default="1,4,16",
                        help="comma-separated load factors")
    parser.add_argument("--max-concurrency", type=int, default=4)
    parser.add_argument("--requests-per-client", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_shard.json")
    args = parser.parse_args(argv)

    from repro.data import CityModel, generate_taxi_trips, voronoi_regions
    from repro.table import numeric_column

    city = CityModel(seed=7)
    table = generate_taxi_trips(city, args.points, seed=8)
    # Integer-valued fares: the regime where sharded SUM folds stay
    # bitwise-exact (the store benches use the same convention).
    table = table.with_column(numeric_column(
        "fare", np.round(table.values("fare"))))
    regions = voronoi_regions(city, args.regions, name="neighborhoods")
    shard_counts = tuple(int(s) for s in args.shards.split(","))
    load_factors = tuple(int(s) for s in args.load.split(","))

    with tempfile.TemporaryDirectory() as tmp:
        payload = run_shard(
            table, regions, tmp, shard_counts=shard_counts,
            load_factors=load_factors,
            max_concurrency=args.max_concurrency,
            requests_per_client=args.requests_per_client,
            resolution=args.resolution, repeats=args.repeats)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"{'shards':>6} {'median':>9} {'speedup':>8} {'pooled':>7}  equal")
    for row in payload["store"]:
        print(f"{row['shards']:>6} {row['median_ms']:>7.1f}ms "
              f"{row['speedup']:>7.2f}x {str(row['pooled']):>7}  "
              f"{row['equal']}")
    print(f"{'shards':>6} {'load':>5} {'served':>7} {'shed':>6} "
          f"{'p50':>8} {'p99':>8} {'qps':>7}  equal")
    for row in payload["serve"]:
        print(f"{row['shards']:>6} {row['load_factor']:>4}x "
              f"{row['served']:>7} {row['shed']:>6} "
              f"{row['p50_ms']:>6.1f}ms {row['p99_ms']:>6.1f}ms "
              f"{row['qps']:>7.1f}  {row['all_equal']}")
    print(f"wrote {out}")

    bad_store = [r["shards"] for r in payload["store"] if not r["equal"]]
    if bad_store:
        print(f"ERROR: sharded store answers diverged at {bad_store} "
              f"shards", file=sys.stderr)
        return 1
    bad_serve = [(r["shards"], r["load_factor"])
                 for r in payload["serve"] if not r["all_equal"]]
    if bad_serve:
        print(f"ERROR: served answers diverged at {bad_serve}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
