"""Concurrent serving throughput: latency, coalescing, and shedding.

The serving layer's claim is graceful concurrency: identical in-flight
queries coalesce into one engine run, excess load is shed with a
structured retry hint instead of queueing unboundedly, and every served
answer stays bitwise-identical to a solo engine execution.  This
benchmark stands up a real :class:`~repro.serve.server.QueryServer` on
a private event loop and hammers it over HTTP at 1x / 4x / 16x the
configured concurrency, recording per-load p50/p99 latency, QPS,
coalesce hit-rate and shed rate.

Two faces:

* pytest-benchmark (``pytest benchmarks/bench_serve_throughput.py``) —
  single-client round-trip latency in the shared benchmark session;
* standalone (``python benchmarks/bench_serve_throughput.py
  [--points N] [--out BENCH_serve.json]``) — emits the machine-readable
  record and exits non-zero if any served answer diverges from the
  direct engine run or an admission slot leaks.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

LOAD_FACTORS = (1, 4, 16)


def _percentile_ms(samples: list[float], q: float) -> float:
    if not samples:
        return float("nan")
    return float(np.percentile(np.array(samples) * 1000, q))


def run_serve(table, regions, max_concurrency: int = 4,
              requests_per_client: int = 8,
              load_factors=LOAD_FACTORS, resolution: int = 256) -> dict:
    """Drive a live server at increasing load; returns the
    BENCH_serve.json payload."""
    from repro.core import SpatialAggregation, SpatialAggregationEngine
    from repro.errors import OverloadedError
    from repro.serve import QueryService, ServeClient, ServerThread
    from repro.table import F
    from repro.urbane import DataManager

    manager = DataManager(SpatialAggregationEngine(
        default_resolution=resolution))
    dataset = manager.add_dataset(table)
    region_name = manager.add_region_set(regions)
    service = QueryService(manager, max_concurrency=max_concurrency,
                           max_queue=2 * max_concurrency, max_wait_s=5.0)
    thread = ServerThread(service)
    url = thread.start()

    results = []
    try:
        for load in load_factors:
            clients = load * max_concurrency
            # Each client cycles a small pool of distinct filters: the
            # sharing drives coalescing, the distinctness drives real
            # queue depth.  cache=False so repeats measure execution
            # (and coalescing), not the unified cache.
            thresholds = [0.5 * k for k in
                          range(max(2, clients // 2))]
            direct = {
                thr: manager.engine.execute(
                    manager.dataset(dataset), regions,
                    SpatialAggregation.count(F("fare") > thr))
                for thr in thresholds
            }
            flight_before = dict(service.flight.stats())
            shed_before = service.admission.stats()["shed_total"]
            mismatches = []
            latencies: list[float] = []
            shed = 0

            def one_client(cid, thresholds=thresholds, direct=direct,
                           latencies=latencies, mismatches=mismatches):
                nonlocal shed
                client = ServeClient(url, timeout_s=30)
                for r in range(requests_per_client):
                    thr = thresholds[(cid + r) % len(thresholds)]
                    t0 = time.perf_counter()
                    try:
                        remote = client.query(
                            dataset, region_name,
                            query=SpatialAggregation.count(
                                F("fare") > thr),
                            cache=False, timeout_s=5.0)
                    except OverloadedError:
                        shed += 1
                        continue
                    latencies.append(time.perf_counter() - t0)
                    want = direct[thr]
                    if not (np.array_equal(remote.values, want.values)
                            and np.array_equal(remote.lower, want.lower)
                            and np.array_equal(remote.upper,
                                               want.upper)):
                        mismatches.append(thr)

            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=clients) as pool:
                list(pool.map(one_client, range(clients)))
            wall_s = time.perf_counter() - t0

            # Give the loop a beat to unwind finished handlers, then
            # check for leaked capacity.
            deadline = time.monotonic() + 5.0
            while (service.admission.active or service.admission.waiting
                   ) and time.monotonic() < deadline:
                time.sleep(0.01)
            leaked = (service.admission.active
                      + service.admission.waiting)

            flight_after = service.flight.stats()
            leaders = flight_after["leaders"] - flight_before["leaders"]
            coalesced = (flight_after["coalesced"]
                         - flight_before["coalesced"])
            lookups = leaders + coalesced
            total = clients * requests_per_client
            results.append({
                "load_factor": load,
                "clients": clients,
                "requests": total,
                "served": len(latencies),
                "shed": shed,
                "shed_rate": shed / total if total else 0.0,
                "shed_counter_delta":
                    service.admission.stats()["shed_total"] - shed_before,
                "p50_ms": _percentile_ms(latencies, 50),
                "p99_ms": _percentile_ms(latencies, 99),
                "qps": len(latencies) / wall_s if wall_s > 0 else 0.0,
                "coalesce_leaders": leaders,
                "coalesced": coalesced,
                "coalesce_hit_rate": (coalesced / lookups) if lookups
                else 0.0,
                "distinct_queries": len(thresholds),
                "all_equal": not mismatches,
                "leaked_slots": int(leaked),
            })
    finally:
        thread.stop()
        service.close()

    return {
        "benchmark": "serve-throughput",
        "points": len(table),
        "regions": len(regions),
        "resolution": resolution,
        "max_concurrency": max_concurrency,
        "max_queue": 2 * max_concurrency,
        "requests_per_client": requests_per_client,
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.machine(),
        },
        "results": results,
    }


# -- pytest-benchmark face ---------------------------------------------------

try:
    import pytest
except ImportError:  # standalone invocation without pytest installed
    pytest = None

if pytest is not None:
    pytestmark = pytest.mark.benchmark(group="serve")

    def test_unary_query_round_trip(benchmark, bench_taxi, bench_regions):
        from repro.core import SpatialAggregation, SpatialAggregationEngine
        from repro.serve import QueryService, ServeClient, ServerThread
        from repro.urbane import DataManager

        manager = DataManager(SpatialAggregationEngine(
            default_resolution=256))
        dataset = manager.add_dataset(bench_taxi["200k"])
        region_name = manager.add_region_set(bench_regions["neighborhoods"])
        service = QueryService(manager)
        thread = ServerThread(service)
        url = thread.start()
        try:
            client = ServeClient(url, timeout_s=30)
            query = SpatialAggregation.count()

            def run():
                return client.query(dataset, region_name, query=query)

            run()  # warm the polygon raster
            remote = benchmark(run)
            benchmark.extra_info["regions"] = len(remote.values)
        finally:
            thread.stop()
            service.close()


# -- standalone face ---------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="concurrent serving throughput -> JSON")
    parser.add_argument("--points", type=int, default=200_000)
    parser.add_argument("--regions", type=int, default=71)
    parser.add_argument("--resolution", type=int, default=256)
    parser.add_argument("--max-concurrency", type=int, default=4)
    parser.add_argument("--requests-per-client", type=int, default=8)
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    from repro.data import CityModel, generate_taxi_trips, voronoi_regions

    city = CityModel(seed=7)
    table = generate_taxi_trips(city, args.points, seed=8)
    regions = voronoi_regions(city, args.regions, name="neighborhoods")

    payload = run_serve(table, regions,
                        max_concurrency=args.max_concurrency,
                        requests_per_client=args.requests_per_client,
                        resolution=args.resolution)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"{'load':>5} {'clients':>8} {'served':>7} {'shed':>6} "
          f"{'p50':>8} {'p99':>8} {'qps':>7} {'coalesce':>9}  equal")
    for row in payload["results"]:
        print(f"{row['load_factor']:>4}x {row['clients']:>8} "
              f"{row['served']:>7} {row['shed']:>6} "
              f"{row['p50_ms']:>6.1f}ms {row['p99_ms']:>6.1f}ms "
              f"{row['qps']:>7.1f} "
              f"{row['coalesce_hit_rate'] * 100:>8.1f}%  "
              f"{row['all_equal']}")
    print(f"wrote {out}")

    bad_equal = [r["load_factor"] for r in payload["results"]
                 if not r["all_equal"]]
    if bad_equal:
        print(f"ERROR: served answers diverged at load {bad_equal}",
              file=sys.stderr)
        return 1
    leaked = [r["load_factor"] for r in payload["results"]
              if r["leaked_slots"]]
    if leaked:
        print(f"ERROR: admission slots leaked at load {leaked}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
