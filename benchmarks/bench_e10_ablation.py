"""E10 (ablations): design choices called out in DESIGN.md.

* Polygon rasterization path: direct scanline vs. the GPU-style
  tessellate-then-rasterize-triangles pipeline.
* Index-join grid sizing: candidate-set quality vs. cell resolution.
* Boundary handling cost: what the accurate variant's exact pass adds
  over the bounded one, as canvas resolution changes the boundary-pixel
  population.
"""

import pytest

from repro.core import SpatialAggregation, accurate_raster_join, bounded_raster_join
from repro.geometry import triangulate_ring_vertices
from repro.raster import (
    Viewport,
    coverage_fragments,
    rasterize_triangles,
)
from repro.baselines import grid_index_join

QUERY = SpatialAggregation.count()


@pytest.mark.benchmark(group="E10a polygon rasterization path")
@pytest.mark.parametrize("path", ["scanline", "triangulated"])
def test_rasterization_path(benchmark, bench_regions, path):
    regions = bench_regions["neighborhoods"]
    viewport = Viewport.fit(regions.bbox, 512)
    geometries = list(regions.geometries)

    if path == "scanline":
        def run():
            for geom in geometries:
                coverage_fragments(geom, viewport)
    else:
        # Tessellation happens once (the GPU uploads triangles once);
        # per-frame cost is triangle rasterization.
        triangle_soups = [triangulate_ring_vertices(g.exterior)
                          for g in geometries]

        def run():
            for soup in triangle_soups:
                rasterize_triangles(soup, viewport)

    benchmark(run)
    benchmark.extra_info["polygons"] = len(geometries)


@pytest.mark.benchmark(group="E10a2 boundary detection path")
@pytest.mark.parametrize("path", ["exact-traversal", "sampled-dilated"])
def test_boundary_detection_path(benchmark, bench_regions, path):
    from repro.raster import boundary_pixels, boundary_pixels_sampled

    regions = bench_regions["neighborhoods"]
    viewport = Viewport.fit(regions.bbox, 512)
    geometries = list(regions.geometries)
    fn = boundary_pixels if path == "exact-traversal" else (
        boundary_pixels_sampled)

    def run():
        return sum(len(fn(g, viewport)) for g in geometries)

    total = benchmark(run)
    benchmark.extra_info["boundary_pixels_total"] = total


@pytest.mark.benchmark(group="E10b index grid sizing")
@pytest.mark.parametrize("grid_resolution", [16, 64, 256])
def test_grid_cell_sizing(benchmark, bench_taxi, bench_regions,
                          grid_resolution):
    from repro.index import PointGridIndex

    taxi = bench_taxi["200k"]
    regions = bench_regions["neighborhoods"]
    index = PointGridIndex(taxi.x, taxi.y, taxi.bbox,
                           nx=grid_resolution, ny=grid_resolution)

    result = benchmark(grid_index_join, taxi, regions, QUERY, index=index)
    benchmark.extra_info["grid"] = f"{grid_resolution}x{grid_resolution}"
    benchmark.extra_info["candidates_tested"] = result.stats[
        "candidates_tested"]


@pytest.mark.benchmark(group="E10c boundary handling cost")
@pytest.mark.parametrize("resolution", [128, 512])
@pytest.mark.parametrize("variant", ["bounded", "accurate"])
def test_boundary_cost(benchmark, warm_engine, bench_taxi, bench_regions,
                       resolution, variant):
    taxi = bench_taxi["200k"]
    regions = bench_regions["neighborhoods"]
    viewport = Viewport.fit(regions.bbox, resolution)
    fragments = warm_engine.fragments_for(regions, viewport)
    run = bounded_raster_join if variant == "bounded" else accurate_raster_join

    result = benchmark(run, taxi, regions, QUERY, viewport,
                       fragments=fragments)
    benchmark.extra_info["boundary_fragments"] = result.stats[
        "boundary_fragments"]
    if variant == "accurate":
        benchmark.extra_info["boundary_points_tested"] = result.stats[
            "boundary_points_tested"]
