"""CI smoke for the live observability surface.

Stands up a real server, drives a small concurrent query mix, and then
interrogates the endpoints the dashboards depend on:

* ``GET /v1/metrics`` — JSON schema (counter/gauge/histogram field
  sets) and the reconciliation invariant: registry totals must equal
  the sums over per-response stats;
* ``GET /v1/metrics?format=prometheus`` — exposition-format markers;
* ``GET /v1/trace`` / ``GET /v1/trace/<request_id>`` — listing and
  round-trip of a retained span tree, including leaf coverage;
* ``GET /v1/slow`` — threshold-gated slow-query entries.

Exits non-zero on any schema drift or reconciliation failure, so a
wire-format regression fails CI before it reaches a consumer.
"""

from __future__ import annotations

import argparse
import sys
from concurrent.futures import ThreadPoolExecutor

import numpy as np

FAILURES: list[str] = []


def check(ok: bool, what: str) -> None:
    tag = "ok" if ok else "FAIL"
    print(f"  [{tag}] {what}")
    if not ok:
        FAILURES.append(what)


def counter_total(snapshot: dict, name: str) -> float:
    return sum(c["value"] for c in snapshot["counters"]
               if c["name"] == name)


def run_smoke(points: int, clients: int, resolution: int) -> int:
    from repro.core import SpatialAggregation, SpatialAggregationEngine
    from repro.data import CityModel, voronoi_regions
    from repro.obs import REGISTRY
    from repro.obs.trace import leaf_coverage
    from repro.serve import QueryService, ServeClient, ServerThread
    from repro.table import F, PointTable
    from repro.urbane import DataManager

    city = CityModel(seed=7)
    gen = np.random.default_rng(11)
    manager = DataManager(SpatialAggregationEngine(
        default_resolution=resolution))
    manager.add_dataset(PointTable.from_arrays(
        gen.uniform(0, 100, points), gen.uniform(0, 100, points),
        name="trips", fare=gen.exponential(10.0, points)))
    regions = voronoi_regions(city, 12, name="neighborhoods")
    manager.add_region_set(regions)

    REGISTRY.reset()
    service = QueryService(manager, max_concurrency=4, max_queue=32,
                           slow_query_ms=0.0, trace_retain=16)
    with ServerThread(service) as thread:
        client = ServeClient(thread.server.url)

        print(f"-- soak: {clients} clients")
        thresholds = [0.5 * (k % 4) for k in range(clients)]

        def run(thr):
            return client.query(
                "trips", "neighborhoods",
                SpatialAggregation.count(F("fare") > thr))

        with ThreadPoolExecutor(max_workers=clients) as pool:
            results = list(pool.map(run, thresholds))

        traced = client.query("trips", "neighborhoods",
                              SpatialAggregation.count(), trace=True)
        results.append(traced)

        print("-- /v1/metrics (json)")
        snapshot = client.metrics()
        check(snapshot.get("kind") == "metrics", "kind == metrics")
        check(set(snapshot) >= {"v", "kind", "counters", "gauges",
                                "histograms"},
              "top-level fields present")
        check(all(set(c) == {"name", "labels", "value"}
                  for c in snapshot["counters"]),
              "counter field set {name, labels, value}")
        check(all(set(g) == {"name", "labels", "value"}
                  for g in snapshot["gauges"]),
              "gauge field set {name, labels, value}")
        check(all(set(h) == {"name", "labels", "buckets_ms", "counts",
                             "sum_ms", "count"}
                  for h in snapshot["histograms"]),
              "histogram field set")

        check(counter_total(snapshot, "repro_queries_total")
              == len(results),
              f"repro_queries_total == {len(results)} served responses")
        for field, name in (
                ("query_hits", "repro_cache_query_hits_total"),
                ("query_misses", "repro_cache_query_misses_total")):
            summed = sum((r.stats.get("cache") or {}).get(field, 0)
                         for r in results)
            check(counter_total(snapshot, name) == summed,
                  f"{name} reconciles ({summed})")
        hists = [h for h in snapshot["histograms"]
                 if h["name"] == "repro_query_latency_ms"]
        check(len(hists) == 1
              and hists[0]["count"] == len(results),
              "latency histogram count == served responses")

        print("-- /v1/metrics (prometheus)")
        text = client.metrics_prometheus()
        for marker in ("# TYPE repro_queries_total counter",
                       "# TYPE repro_query_latency_ms histogram",
                       'repro_query_latency_ms_bucket{le="+Inf"}'):
            check(marker in text, f"prometheus marker {marker!r}")

        print("-- /v1/trace")
        ref = traced.stats.get("trace") or {}
        check(bool(ref.get("request_id")),
              "traced response carries stats.trace.request_id")
        listing = client.trace()
        check(listing.get("kind") == "traces"
              and ref.get("request_id") in listing.get("request_ids", []),
              "trace listing contains the traced request")
        payload = client.trace(ref["request_id"])
        tree = payload.get("trace") or {}
        check(payload.get("kind") == "trace"
              and tree.get("name") == "request",
              "trace round trip returns the span tree")
        coverage = leaf_coverage(tree) if tree else 0.0
        check(coverage >= 0.5,
              f"span leaves explain wall time (coverage {coverage:.2f})")

        print("-- /v1/slow")
        slow = client.slow_queries()
        check(slow.get("kind") == "slow_queries", "kind == slow_queries")
        entries = slow.get("entries") or []
        check(bool(entries) and all(
            set(e) == {"request_id", "wall_ms", "threshold_ms",
                       "summary", "trace"} for e in entries),
              "slow-query entry field set")

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) FAILED:")
        for what in FAILURES:
            print(f"  - {what}")
        return 1
    print("\nall observability surface checks passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=30_000)
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--resolution", type=int, default=128)
    args = parser.parse_args(argv)
    return run_smoke(args.points, args.clients, args.resolution)


if __name__ == "__main__":
    sys.exit(main())
