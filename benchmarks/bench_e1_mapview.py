"""E1 (Figure 1): the map-view refresh.

The paper's headline interaction: taxi pickups for one month aggregated
over the neighborhoods, rendered as a choropleth.  We benchmark the
spatial aggregation behind the refresh for each backend; the paper's
claim is that raster join keeps this gesture interactive where exact
index joins struggle as data grows.
"""

import pytest

from repro.core import SpatialAggregation
from repro.data import month_window

pytestmark = pytest.mark.benchmark(group="E1 mapview refresh")

START, END = month_window(0)
QUERY = SpatialAggregation.count().during("t", START, END)


@pytest.mark.parametrize("method", ["bounded", "accurate", "grid", "rtree"])
def test_mapview_refresh(benchmark, warm_engine, bench_taxi, bench_regions,
                         method):
    taxi = bench_taxi["800k"]
    regions = bench_regions["neighborhoods"]
    warm_engine.execute(taxi, regions, QUERY, method=method)  # warm indexes

    result = benchmark(warm_engine.execute, taxi, regions, QUERY,
                       method=method)
    benchmark.extra_info["rows_in_month"] = result.stats.get(
        "points_after_filter", 0)
    benchmark.extra_info["regions"] = len(regions)


def test_mapview_full_choropleth_pipeline(benchmark, bench_datasets,
                                          bench_regions):
    """End-to-end view refresh: aggregation + color mapping + painting."""
    from repro.urbane import DataManager, MapView

    manager = DataManager()
    manager.add_dataset(bench_datasets["taxi"], "taxi")
    manager.add_region_set(bench_regions["neighborhoods"], "neighborhoods")
    view = MapView(manager, resolution=512)
    view.choropleth("taxi", "neighborhoods", QUERY)  # warm fragment cache

    choropleth = benchmark(view.choropleth, "taxi", "neighborhoods", QUERY)
    benchmark.extra_info["canvas_pixels"] = choropleth.viewport.num_pixels
