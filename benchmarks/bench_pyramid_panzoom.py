"""Pan/zoom gesture latency: canvas-pyramid assembly vs. re-scatter.

The pyramid's claim is that exploration gestures are near-duplicates of
each other: once one frame has scattered, a pan re-scatters only the
uncovered margin blocks, a zoom-out 2x2-reduces cached children, and a
revisited window assembles entirely from cache — with answers bitwise
identical to the direct bounded join.  This benchmark replays a gesture
ladder (pans out and back, zoom out, zoom back) against a warm engine
and times each gesture both ways, verifying parity per gesture.

Two faces:

* pytest-benchmark (``pytest benchmarks/bench_pyramid_panzoom.py``) —
  statistical timings in the shared benchmark session;
* standalone (``python benchmarks/bench_pyramid_panzoom.py [--points N]
  [--resolution 512] [--out BENCH_pyramid.json]``) — emits the
  machine-readable record future PRs compare against, and exits
  non-zero if any gesture diverges (CI's benchmark-smoke job runs this
  at tiny sizes; the full-size acceptance bar is reuse >= 0.5 and a
  >= 5x median warm-gesture speedup).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np


def _ladder(gv, step: int):
    """Distinct gestures after the cold frame: pans out and back, a
    zoom-out, and the zoom back in — revisit-heavy, like a session."""
    frames = []
    frames.append(("pan right", gv.pan(step, 0)))
    frames.append(("pan down", frames[-1][1].pan(0, -step)))
    frames.append(("pan back", frames[-1][1].pan(-step, step)))
    frames.append(("zoom out", frames[-1][1].zoom(2.0)))
    frames.append(("zoom in", frames[-1][1].zoom(0.5)))
    frames.append(("pan revisit", frames[-1][1].pan(step, 0)))
    return frames


def run_panzoom(table, regions, resolution: int = 512, repeats: int = 5,
                reuse_floor: float | None = None,
                speedup_floor: float | None = None) -> dict:
    """Time the gesture ladder assembled vs. re-scattered.

    Returns the BENCH_pyramid.json payload: per-gesture latency for
    both paths, block reuse, and per-gesture equality verdicts.
    """
    from repro.core import (
        SpatialAggregation,
        SpatialAggregationEngine,
        bounded_raster_join,
    )
    from repro.core.pyramid import Viewport
    from repro.raster import build_fragment_table

    engine = SpatialAggregationEngine(default_resolution=resolution)
    gv = engine.plan_grid_viewport(regions, resolution)
    query = SpatialAggregation.count()
    step = max(16, resolution // 8)
    frames = _ladder(gv, step)

    # Cold frame: scatter and cache the base window (not measured —
    # the claim is about *warm* gestures).
    engine.execute(table, regions, query, method="bounded", viewport=gv)

    # Direct path gets the same head start the warm engine has: the
    # polygon pass is prefetched per window, so the comparison times
    # the point pass, which is what assembly avoids.
    direct_inputs = {}
    for name, vp in frames:
        plain = Viewport(vp.bbox, vp.width, vp.height)
        direct_inputs[name] = (
            plain, build_fragment_table(list(regions.geometries), plain))

    def median_ms(fn):
        times = []
        for __ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return float(np.median(times) * 1000)

    gestures = []
    hits = misses = derived = 0
    assembled_px = scattered_px = 0
    for name, vp in frames:
        got = engine.execute(table, regions, query, method="bounded",
                             viewport=vp)
        plain, fragments = direct_inputs[name]
        want = bounded_raster_join(table, regions, query, plain,
                                   fragments=fragments)
        equal = (np.array_equal(got.values, want.values)
                 and np.array_equal(got.lower, want.lower)
                 and np.array_equal(got.upper, want.upper))
        blocks = got.stats["cache"]["blocks"]
        hits += blocks["hits"]
        misses += blocks["misses"]
        derived += blocks["derived"]
        assembled_px += blocks["assembled_pixels"]
        scattered_px += blocks["scattered_pixels"]

        assembled_ms = median_ms(lambda v=vp: engine.execute(
            table, regions, query, method="bounded", viewport=v))
        direct_ms = median_ms(lambda p=plain, f=fragments:
                              bounded_raster_join(table, regions, query,
                                                  p, fragments=f))
        gestures.append({
            "gesture": name,
            "level": vp.level,
            "assembled_ms": assembled_ms,
            "direct_ms": direct_ms,
            "speedup": direct_ms / assembled_ms if assembled_ms > 0
            else float("inf"),
            "block_hits": blocks["hits"],
            "block_derived": blocks["derived"],
            "block_misses": blocks["misses"],
            "reuse_fraction": blocks["reuse_fraction"],
            "equal": bool(equal),
        })

    total_px = assembled_px + scattered_px
    return {
        "benchmark": "pyramid-panzoom",
        "points": len(table),
        "regions": len(regions),
        "resolution": resolution,
        "pan_step_pixels": step,
        "repeats": repeats,
        "reuse_floor": reuse_floor,
        "speedup_floor": speedup_floor,
        "reuse_fraction": assembled_px / total_px if total_px else 0.0,
        "block_hits": hits,
        "block_derived": derived,
        "block_misses": misses,
        "median_speedup": float(np.median(
            [g["speedup"] for g in gestures])),
        "parity_ok": all(g["equal"] for g in gestures),
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.machine(),
        },
        "gestures": gestures,
    }


# -- pytest-benchmark face ---------------------------------------------------

try:
    import pytest
except ImportError:  # standalone invocation without pytest installed
    pytest = None

if pytest is not None:
    pytestmark = pytest.mark.benchmark(group="pyramid panzoom")

    @pytest.mark.parametrize("path", ["assembled", "rescatter"])
    def test_warm_pan_latency(benchmark, bench_taxi, bench_regions, path):
        from repro.core import (
            SpatialAggregation,
            SpatialAggregationEngine,
            bounded_raster_join,
        )
        from repro.core.pyramid import Viewport
        from repro.raster import build_fragment_table

        table = bench_taxi["200k"]
        regions = bench_regions["neighborhoods"]
        engine = SpatialAggregationEngine(default_resolution=512)
        gv = engine.plan_grid_viewport(regions, 512)
        query = SpatialAggregation.count()
        engine.execute(table, regions, query, method="bounded",
                       viewport=gv)
        panned = gv.pan(64, 0).pan(-64, 0)  # warm revisit

        if path == "assembled":
            run = lambda: engine.execute(  # noqa: E731
                table, regions, query, method="bounded", viewport=panned)
        else:
            plain = Viewport(panned.bbox, panned.width, panned.height)
            fragments = build_fragment_table(
                list(regions.geometries), plain)
            run = lambda: bounded_raster_join(  # noqa: E731
                table, regions, query, plain, fragments=fragments)
        run()
        result = benchmark(run)
        benchmark.extra_info["path"] = path
        benchmark.extra_info["total_count"] = float(result.values.sum())


# -- standalone face ---------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="pan/zoom gesture latency: pyramid assembly vs. "
                    "re-scatter -> JSON")
    parser.add_argument("--points", type=int, default=800_000)
    parser.add_argument("--regions", type=int, default=71)
    parser.add_argument("--resolution", type=int, default=512)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--reuse-floor", type=float, default=None,
                        help="fail if the ladder's assembled-pixel "
                             "fraction lands below this (full-size "
                             "bar: 0.5)")
    parser.add_argument("--speedup-floor", type=float, default=None,
                        help="fail if the median warm-gesture speedup "
                             "lands below this (full-size bar: 5)")
    parser.add_argument("--out", default="BENCH_pyramid.json")
    args = parser.parse_args(argv)

    from repro.data import CityModel, generate_taxi_trips, voronoi_regions

    city = CityModel(seed=7)
    table = generate_taxi_trips(city, args.points, seed=8)
    regions = voronoi_regions(city, args.regions, name="neighborhoods")

    payload = run_panzoom(table, regions, resolution=args.resolution,
                          repeats=args.repeats,
                          reuse_floor=args.reuse_floor,
                          speedup_floor=args.speedup_floor)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"{'gesture':>12} {'assembled':>10} {'direct':>9} "
          f"{'speedup':>8} {'reuse':>6}  equal")
    for g in payload["gestures"]:
        print(f"{g['gesture']:>12} {g['assembled_ms']:>8.2f}ms "
              f"{g['direct_ms']:>7.1f}ms {g['speedup']:>7.1f}x "
              f"{g['reuse_fraction'] * 100:>5.0f}%  {g['equal']}")
    print(f"ladder reuse {payload['reuse_fraction'] * 100:.0f}%, "
          f"median speedup {payload['median_speedup']:.1f}x")
    print(f"wrote {out}")

    if not payload["parity_ok"]:
        diverged = [g["gesture"] for g in payload["gestures"]
                    if not g["equal"]]
        print(f"ERROR: assembled answers diverged for {diverged}",
              file=sys.stderr)
        return 1
    if (args.reuse_floor is not None
            and payload["reuse_fraction"] < args.reuse_floor):
        print(f"ERROR: reuse fraction "
              f"{payload['reuse_fraction']:.2f} below "
              f"{args.reuse_floor}", file=sys.stderr)
        return 1
    if (args.speedup_floor is not None
            and payload["median_speedup"] < args.speedup_floor):
        print(f"ERROR: median gesture speedup "
              f"{payload['median_speedup']:.1f}x below "
              f"{args.speedup_floor}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
