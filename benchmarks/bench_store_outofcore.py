"""Out-of-core store: build throughput, zone-map pruning, query parity.

The store's claim is that exploration over data that does not fit the
memory budget stays interactive *and* exact: partitions are mmapped on
demand under an LRU budget, zone maps prune everything the query
provably cannot touch, and the streamed scan returns answers
bitwise-identical to materializing the whole table.  This benchmark
builds a partitioned store from taxi trips, then drives viewport zooms
(each cutting the touched-partition count ~4x) and a time brush
against both the out-of-core path and the in-memory bounded join.

Two faces:

* pytest-benchmark (``pytest benchmarks/bench_store_outofcore.py``) —
  statistical timings in the shared benchmark session;
* standalone (``python benchmarks/bench_store_outofcore.py [--points N]
  [--out BENCH_store.json]``) — emits the machine-readable record and
  exits non-zero if any answer diverges from in-memory (CI's
  benchmark-smoke job runs this at tiny sizes).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

DAY = 86_400
#: (label, shrink factor of the viewport window per axis).
ZOOMS = (("city", 1.0), ("district", 0.5), ("block", 0.25))


def _median_ms(fn, repeats: int) -> float:
    fn()  # warmup
    times = []
    for __ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times) * 1000)


def _zoom_viewport(bbox, factor: float, resolution: int):
    from repro.geometry import BBox
    from repro.raster import Viewport

    cx = (bbox.xmin + bbox.xmax) / 2
    cy = (bbox.ymin + bbox.ymax) / 2
    w = bbox.width * factor / 2
    h = bbox.height * factor / 2
    return Viewport.fit(BBox(cx - w, cy - h, cx + w, cy + h), resolution)


def _results_equal(got, want) -> bool:
    for name in ("values", "lower", "upper"):
        a, b = getattr(got, name), getattr(want, name)
        if (a is None) != (b is None):
            return False
        if a is not None and not np.array_equal(
                np.asarray(a), np.asarray(b), equal_nan=True):
            return False
    return True


def run_store(table, regions, store_dir, resolution: int = 512,
              repeats: int = 5, partition_rows: int = 8_192,
              grid: int = 4, bucket_days: int = 7,
              budget_partitions: int = 2) -> dict:
    """Build the store, then measure pruning and parity per zoom level.

    Returns the BENCH_store.json payload: build throughput, per-zoom
    partition counts and store-vs-in-memory latency, the time-brush
    pruned fraction, and equality verdicts throughout.
    """
    from repro.core import SpatialAggregation, SpatialAggregationEngine
    from repro.store import Dataset, build_store
    from repro.table import TimeRange

    t0 = time.perf_counter()
    built = build_store(table, Path(store_dir), grid=grid,
                        partition_rows=partition_rows,
                        time_column="t",
                        time_bucket_seconds=bucket_days * DAY)
    build_s = time.perf_counter() - t0
    budget = max(p.nbytes for p in built.partitions) * budget_partitions
    dataset = Dataset.open(built.path, memory_budget_bytes=budget)

    engine = SpatialAggregationEngine(default_resolution=resolution)
    reference = built.to_table()
    query = SpatialAggregation("sum", "fare")

    zooms = []
    all_equal = True
    for label, factor in ZOOMS:
        viewport = _zoom_viewport(regions.bbox, factor, resolution)
        got = engine.execute(dataset, regions, query, viewport=viewport)
        want = engine.execute(reference, regions, query, method="bounded",
                              viewport=viewport)
        equal = _results_equal(got, want)
        all_equal = all_equal and equal
        store_ms = _median_ms(
            lambda: engine.execute(dataset, regions, query,
                                   viewport=viewport), repeats)
        memory_ms = _median_ms(
            lambda: engine.execute(reference, regions, query,
                                   method="bounded", viewport=viewport),
            repeats)
        parts = got.stats["store"]["partitions"]
        zooms.append({
            "zoom": label,
            "window_factor": factor,
            "partitions_scanned": parts["scanned"],
            "partitions_pruned": parts["pruned"],
            "rows_scanned": got.stats["store"]["rows"]["scanned"],
            "store_ms": store_ms,
            "in_memory_ms": memory_ms,
            "equal": bool(equal),
        })

    tvals = table.column("t").values
    origin = int(tvals.min()) // DAY * DAY
    brush_query = SpatialAggregation(
        "count", None, (TimeRange("t", origin, origin + 7 * DAY),))
    got = engine.execute(dataset, regions, brush_query,
                         resolution=resolution)
    want = engine.execute(reference, regions, brush_query,
                          method="bounded", resolution=resolution)
    brush_equal = _results_equal(got, want)
    all_equal = all_equal and brush_equal
    brush_parts = got.stats["store"]["partitions"]

    mounts = dataset.mount_stats()
    return {
        "benchmark": "store-outofcore",
        "points": len(table),
        "regions": len(regions),
        "resolution": resolution,
        "repeats": repeats,
        "partition_rows": partition_rows,
        "build": {
            "seconds": build_s,
            "rows_per_s": len(table) / build_s if build_s > 0 else 0.0,
            "partitions": built.num_partitions,
            "store_bytes": built.total_nbytes,
        },
        "memory_budget_bytes": budget,
        "mounts": mounts,
        "zooms": zooms,
        "time_brush": {
            "days": 7,
            "partitions_scanned": brush_parts["scanned"],
            "partitions_pruned": brush_parts["pruned"],
            "pruned_fraction": (brush_parts["pruned"]
                                / max(1, brush_parts["total"])),
            "equal": bool(brush_equal),
        },
        "all_equal": bool(all_equal),
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.machine(),
        },
    }


# -- pytest-benchmark face ---------------------------------------------------

try:
    import pytest
except ImportError:  # standalone invocation without pytest installed
    pytest = None

if pytest is not None:
    pytestmark = pytest.mark.benchmark(group="store out-of-core")

    @pytest.fixture(scope="module")
    def bench_store(bench_taxi, tmp_path_factory):
        from repro.store import build_store

        return build_store(
            bench_taxi["200k"], tmp_path_factory.mktemp("bench") / "store",
            grid=4, partition_rows=8_192,
            time_column="t", time_bucket_seconds=7 * DAY)

    @pytest.mark.parametrize("path", ["store", "in-memory"])
    def test_zoomed_query_latency(benchmark, bench_store, bench_regions,
                                  path):
        from repro.core import SpatialAggregation, SpatialAggregationEngine

        regions = bench_regions["neighborhoods"]
        engine = SpatialAggregationEngine(default_resolution=512)
        viewport = _zoom_viewport(regions.bbox, 0.25, 512)
        query = SpatialAggregation("sum", "fare")
        table = (bench_store if path == "store"
                 else bench_store.to_table())
        method = "auto" if path == "store" else "bounded"
        run = lambda: engine.execute(  # noqa: E731
            table, regions, query, method=method, viewport=viewport)
        result = benchmark(run)
        benchmark.extra_info["path"] = path
        benchmark.extra_info["total_sum"] = float(
            np.asarray(result.values).sum())


# -- standalone face ---------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="out-of-core store build/prune/parity -> JSON")
    parser.add_argument("--points", type=int, default=400_000)
    parser.add_argument("--regions", type=int, default=71)
    parser.add_argument("--resolution", type=int, default=512)
    parser.add_argument("--partition-rows", type=int, default=8_192)
    parser.add_argument("--grid", type=int, default=4)
    parser.add_argument("--bucket-days", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--store-dir", default=None,
                        help="where to build the store (default: a "
                             "temporary directory)")
    parser.add_argument("--out", default="BENCH_store.json")
    args = parser.parse_args(argv)

    import tempfile

    from repro.data import CityModel, generate_taxi_trips, voronoi_regions
    from repro.table import numeric_column

    city = CityModel(seed=7)
    table = generate_taxi_trips(city, args.points, seed=8)
    # Integer-valued fares keep SUM exact under any scan fold (the
    # equality check, not the timing, needs this).
    table = table.with_column(
        numeric_column("fare", np.round(table.values("fare"))))
    regions = voronoi_regions(city, args.regions, name="neighborhoods")

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = args.store_dir or str(Path(tmp) / "store")
        payload = run_store(table, regions, store_dir,
                            resolution=args.resolution,
                            repeats=args.repeats,
                            partition_rows=args.partition_rows,
                            grid=args.grid, bucket_days=args.bucket_days)

    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    build = payload["build"]
    print(f"build: {build['partitions']} partitions, "
          f"{build['store_bytes'] / 1e6:.1f} MB, "
          f"{build['rows_per_s'] / 1e6:.2f}M rows/s")
    print(f"{'zoom':>9} {'scanned':>8} {'pruned':>7} {'store':>9} "
          f"{'in-memory':>10}  equal")
    for row in payload["zooms"]:
        print(f"{row['zoom']:>9} {row['partitions_scanned']:>8} "
              f"{row['partitions_pruned']:>7} {row['store_ms']:>7.1f}ms "
              f"{row['in_memory_ms']:>8.1f}ms  {row['equal']}")
    brush = payload["time_brush"]
    print(f"7-day brush: pruned {brush['pruned_fraction'] * 100:.0f}% "
          f"of partitions, equal={brush['equal']}")
    print(f"mounts: {payload['mounts']['evictions']} evictions under "
          f"{payload['memory_budget_bytes'] / 1e6:.1f} MB budget")
    print(f"wrote {out}")

    if not payload["all_equal"]:
        print("ERROR: out-of-core answers diverged from in-memory",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
