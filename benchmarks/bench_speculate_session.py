"""E20: gesture-speculative prefetch under interactive session load.

Replays the E8-style exploration ladder — a time-brush sweep, a pan
run, zoom toggles — through :class:`~repro.urbane.session.RemoteSession`
clients against a live server at 1x / 4x / 16x the configured
concurrency, once with speculation off and once on.  Between gestures
each analyst "thinks" for a few tens of milliseconds; that think time
is exactly the idle window the speculator mines, so the measurable
claim is: per-gesture p50/p99 latency drops and a meaningful fraction
of gestures land on pre-warmed cache entries, while every answer stays
bitwise-identical to the unspeculated run (speculation may only change
*when* work happens, never *what* it computes).

Two faces:

* pytest-benchmark (``pytest benchmarks/bench_speculate_session.py``) —
  a single analyst's brush sweep with speculation on, asserting hits;
* standalone (``python benchmarks/bench_speculate_session.py
  [--points N] [--out BENCH_speculate.json]``) — emits the
  machine-readable record and exits non-zero if any gesture's answer
  with speculation on diverges from the same gesture with it off.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

LOAD_FACTORS = (1, 4, 16)
BRUSH_STEPS = 6
PAN_STEPS = 3
THINK_S = 0.02


def _percentile_ms(samples, q: float) -> float:
    if not samples:
        return float("nan")
    return float(np.percentile(np.asarray(samples) * 1000, q))


def _ladder(session, thr, day, epoch, block_px):
    """The per-analyst gesture script: filter, brush sweep (+1 ladder),
    pan run (momentum), zoom out/in.  Returns the per-gesture values."""
    from repro.table import F

    values = [session.last_result.values.copy()]  # the opening query

    def think():
        time.sleep(THINK_S)

    think()
    session.add_filter(F("fare") > thr)
    values.append(session.last_result.values.copy())
    for k in range(BRUSH_STEPS):
        think()
        session.brush_time(epoch + k * day, epoch + (k + 1) * day)
        values.append(session.last_result.values.copy())
    for __ in range(PAN_STEPS):
        think()
        session.pan(block_px, 0)
        values.append(session.last_result.values.copy())
    think()
    session.zoom(2.0)
    values.append(session.last_result.values.copy())
    think()
    session.zoom(0.5)
    values.append(session.last_result.values.copy())
    return values


def _run_mode(manager, dataset, region_name, *, speculate, clients,
              max_concurrency, resolution, budget_ms, day, epoch):
    """One (load, mode) cell: fresh service, ``clients`` concurrent
    analysts, each replaying the deterministic ladder for its index."""
    from repro.serve import QueryService, ServeClient, ServerThread
    from repro.urbane import RemoteSession

    service = QueryService(manager, max_concurrency=max_concurrency,
                           max_queue=4 * max_concurrency, max_wait_s=10.0,
                           speculate=speculate,
                           speculate_budget_ms=budget_ms)
    thread = ServerThread(service)
    url = thread.start()
    latencies: list[float] = []
    all_values: dict[int, list] = {}
    spec_hits = 0
    gestures = 0
    errors: list[Exception] = []
    try:
        block_px = float(
            manager.engine.plan_grid_viewport(
                manager.region_set(region_name), resolution).grid.block)

        def analyst(i):
            nonlocal spec_hits, gestures
            try:
                # Staggered arrivals: analysts do not all open their
                # dashboards in the same millisecond.  Without this the
                # opening burst sheds half the fleet into retry back-off
                # and the p99 measures sleep chains, not serving.
                time.sleep((i % clients) * 0.01)
                client = ServeClient(url, timeout_s=30, max_retries=8)
                session = RemoteSession(client, dataset, region_name,
                                        resolution=resolution)
                # Distinct per-analyst threshold: sessions share the
                # polygon raster but not each other's query cache
                # entries, so load (and speculation) is real.
                vals = _ladder(session, 2.0 + 0.5 * i, day, epoch,
                               block_px)
                all_values[i] = vals
                latencies.extend(session.latencies())
                summary = session.summary()
                spec_hits += summary["spec_hits"]
                gestures += summary["interactions"]
            except Exception as exc:  # noqa: BLE001 - recorded
                errors.append(exc)

        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            list(pool.map(analyst, range(clients)))
        wall_s = time.perf_counter() - t0
        stats = service.stats()
    finally:
        thread.stop()
        service.close()
    if errors:
        raise errors[0]
    return {
        "latencies": latencies,
        "values": all_values,
        "wall_s": wall_s,
        "spec_hits": spec_hits,
        "gestures": gestures,
        "speculate": stats["speculate"],
        "shed_total": stats["admission"]["shed_total"],
    }


def run_speculate(table, regions, max_concurrency: int = 4,
                  load_factors=LOAD_FACTORS, resolution: int = 256,
                  budget_ms: float = 250.0) -> dict:
    """Drive the session replay at increasing load with speculation
    off/on; returns the BENCH_speculate.json payload."""
    from repro.core import SpatialAggregationEngine
    from repro.data import month_window
    from repro.urbane import DataManager

    epoch, month_end = month_window(0)
    day = (month_end - epoch) // 30

    results = []
    for load in load_factors:
        clients = load * max_concurrency
        modes = {}
        for speculate in (False, True):
            # A fresh manager per cell: the comparison is cold-cache
            # vs cold-cache, and no warmth leaks between modes.
            manager = DataManager(SpatialAggregationEngine(
                default_resolution=resolution))
            dataset = manager.add_dataset(table)
            region_name = manager.add_region_set(regions)
            modes[speculate] = _run_mode(
                manager, dataset, region_name, speculate=speculate,
                clients=clients, max_concurrency=max_concurrency,
                resolution=resolution, budget_ms=budget_ms,
                day=day, epoch=epoch)

        off, on = modes[False], modes[True]
        mismatches = sum(
            1
            for i in off["values"]
            for a, b in zip(off["values"][i], on["values"][i])
            if not np.array_equal(a, b))
        spec = on["speculate"]
        results.append({
            "load_factor": load,
            "clients": clients,
            "gestures": on["gestures"],
            "p50_off_ms": _percentile_ms(off["latencies"], 50),
            "p99_off_ms": _percentile_ms(off["latencies"], 99),
            "p50_on_ms": _percentile_ms(on["latencies"], 50),
            "p99_on_ms": _percentile_ms(on["latencies"], 99),
            "p99_speedup": (_percentile_ms(off["latencies"], 99)
                            / _percentile_ms(on["latencies"], 99))
            if on["latencies"] else float("nan"),
            "hit_rate": (on["spec_hits"] / on["gestures"])
            if on["gestures"] else 0.0,
            "spec_issued": spec["issued"],
            "spec_completed": spec["completed"],
            "spec_shed": spec["shed"],
            "spec_errors": spec["errors"],
            "shed_total_on": on["shed_total"],
            "shed_total_off": off["shed_total"],
            "all_equal": mismatches == 0,
            "mismatches": mismatches,
        })

    return {
        "benchmark": "speculate-session",
        "points": len(table),
        "regions": len(regions),
        "resolution": resolution,
        "max_concurrency": max_concurrency,
        "speculate_budget_ms": budget_ms,
        "brush_steps": BRUSH_STEPS,
        "pan_steps": PAN_STEPS,
        "think_ms": THINK_S * 1000,
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.machine(),
        },
        "results": results,
    }


# -- pytest-benchmark face ---------------------------------------------------

try:
    import pytest
except ImportError:  # standalone invocation without pytest installed
    pytest = None

if pytest is not None:
    pytestmark = pytest.mark.benchmark(group="E20 speculative prefetch")

    def test_single_analyst_brush_sweep(benchmark, bench_taxi,
                                        bench_regions):
        from repro.core import SpatialAggregationEngine
        from repro.data import month_window
        from repro.serve import QueryService, ServerThread
        from repro.urbane import DataManager, RemoteSession

        manager = DataManager(SpatialAggregationEngine(
            default_resolution=256))
        dataset = manager.add_dataset(bench_taxi["200k"])
        region_name = manager.add_region_set(
            bench_regions["neighborhoods"])
        service = QueryService(manager, speculate=True)
        thread = ServerThread(service)
        url = thread.start()
        epoch, month_end = month_window(0)
        day = (month_end - epoch) // 30
        try:
            def sweep():
                session = RemoteSession(url, dataset, region_name,
                                        resolution=256)
                for k in range(BRUSH_STEPS):
                    time.sleep(THINK_S)
                    session.brush_time(epoch + k * day,
                                       epoch + (k + 1) * day)
                return session

            sweep()  # warm rasters; teach the model the ladder
            session = benchmark(sweep)
            summary = session.summary()
            benchmark.extra_info["spec_hits"] = summary["spec_hits"]
            benchmark.extra_info["spec_stats"] = {
                k: v for k, v in service.stats()["speculate"].items()
                if isinstance(v, (int, float))}
            assert service.stats()["speculate"]["issued"] > 0
        finally:
            thread.stop()
            service.close()


# -- standalone face ---------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="gesture-speculative prefetch session replay -> JSON")
    parser.add_argument("--points", type=int, default=100_000)
    parser.add_argument("--regions", type=int, default=40)
    parser.add_argument("--resolution", type=int, default=256)
    parser.add_argument("--max-concurrency", type=int, default=4)
    parser.add_argument("--budget-ms", type=float, default=250.0)
    parser.add_argument("--loads", default="1,4,16",
                        help="comma-separated load factors")
    parser.add_argument("--out", default="BENCH_speculate.json")
    args = parser.parse_args(argv)

    from repro.data import CityModel, generate_taxi_trips, voronoi_regions

    city = CityModel(seed=7)
    table = generate_taxi_trips(city, args.points, seed=8)
    regions = voronoi_regions(city, args.regions, name="neighborhoods")
    loads = tuple(int(x) for x in args.loads.split(","))

    payload = run_speculate(table, regions,
                            max_concurrency=args.max_concurrency,
                            load_factors=loads,
                            resolution=args.resolution,
                            budget_ms=args.budget_ms)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"{'load':>5} {'p50 off':>9} {'p50 on':>9} {'p99 off':>9} "
          f"{'p99 on':>9} {'hits':>6} {'shed':>6}  equal")
    for row in payload["results"]:
        print(f"{row['load_factor']:>4}x "
              f"{row['p50_off_ms']:>7.1f}ms {row['p50_on_ms']:>7.1f}ms "
              f"{row['p99_off_ms']:>7.1f}ms {row['p99_on_ms']:>7.1f}ms "
              f"{row['hit_rate'] * 100:>5.1f}% "
              f"{row['spec_shed']:>6}  {row['all_equal']}")
    print(f"wrote {out}")

    bad = [r["load_factor"] for r in payload["results"]
           if not r["all_equal"]]
    if bad:
        print(f"ERROR: speculated answers diverged at load {bad}",
              file=sys.stderr)
        return 1
    stuck = [r["load_factor"] for r in payload["results"]
             if r["spec_errors"]]
    if stuck:
        print(f"ERROR: speculative executor errors at load {stuck}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
