"""E4: bounded raster join accuracy vs. canvas resolution.

The epsilon knob.  Each benchmark times the bounded join at one canvas
resolution and records, in extra_info, the geometric guarantee
(epsilon), the hard numeric bound width, and the error actually
observed against the exact answer.  Expected shape: observed error <=
bound, both shrinking roughly linearly in pixel size; latency grows
only mildly with resolution (the scatter dominates).
"""

import pytest

from repro.core import (
    SpatialAggregation,
    bounded_raster_join,
    relative_bound_width,
)
from repro.raster import Viewport

pytestmark = pytest.mark.benchmark(group="E4 accuracy vs resolution")

QUERY = SpatialAggregation.count()


@pytest.mark.parametrize("resolution", [64, 128, 256, 512, 1024, 2048])
def test_accuracy_vs_resolution(benchmark, warm_engine, bench_taxi,
                                bench_regions, resolution):
    taxi = bench_taxi["200k"]
    regions = bench_regions["neighborhoods"]
    exact = warm_engine.execute(taxi, regions, QUERY, method="accurate")
    viewport = Viewport.fit(regions.bbox, resolution)
    fragments = warm_engine.fragments_for(regions, viewport)

    result = benchmark(bounded_raster_join, taxi, regions, QUERY, viewport,
                       fragments=fragments)

    metrics = result.compare_to(exact)
    assert result.bounds_contain(exact)
    benchmark.extra_info["epsilon_m"] = round(
        result.stats["epsilon_world_units"], 2)
    benchmark.extra_info["max_rel_error_pct"] = round(
        metrics["max_rel_error"] * 100, 4)
    benchmark.extra_info["rel_bound_width_pct"] = round(
        relative_bound_width(result.lower, result.upper, result.values)
        * 100, 4)
