"""E21: the cost of carrying tracing instrumentation while it is off.

The observability subsystem's design center is its disabled fast path:
``span()`` is one module-global bool check returning a shared null
singleton, so the instrumentation sprinkled through the executor,
raster backends, pyramid assembly, store scans and shard coordinator
must cost <2% of end-to-end query latency while no trace is active.

Two measurements back that claim:

* **micro** — the per-call cost of a disabled ``span()`` in
  nanoseconds, straight-line (no query around it);
* **end-to-end** — interleaved A/B rounds of the E2-style bounded
  raster join, one arm with the real (disabled) ``span`` and one with
  a stub patched into every instrumented module.  The stub arm is the
  closest runtime approximation of an uninstrumented build: it removes
  the enabled-check so the remaining difference is exactly what the
  instrumentation adds.  Rounds interleave and alternate order so
  thermal/allocator drift cancels; the verdict is the ratio of
  medians.

Standalone (``python benchmarks/bench_obs_overhead.py [--points N]
[--out BENCH_obs.json] [--tolerance 0.02]``) emits the
machine-readable record and exits non-zero when the measured overhead
exceeds the tolerance — the CI tracing-overhead smoke.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import SpatialAggregationEngine, SpatialAggregation  # noqa: E402
from repro.data import CityModel, generate_taxi_trips, voronoi_regions  # noqa: E402
from repro.obs.trace import NULL_SPAN, disable, span  # noqa: E402
from repro.table import F  # noqa: E402

#: Every module that imported ``span`` by name; the baseline arm
#: patches the stub into each so not a single call site still pays the
#: enabled-check.
_INSTRUMENTED_MODULES = (
    "repro.core.executor",
    "repro.core.bounded",
    "repro.core.pyramid",
    "repro.store.execute",
    "repro.store.dataset",
    "repro.shard.coordinator",
    "repro.serve.admission",
    "repro.serve.coalesce",
    "repro.serve.service",
)


def _stub_span(_name, **_attrs):
    return NULL_SPAN


def _patch_span(fn) -> None:
    import importlib

    for name in _INSTRUMENTED_MODULES:
        setattr(importlib.import_module(name), "span", fn)


def micro_span_ns(calls: int = 1_000_000) -> float:
    """Nanoseconds per disabled ``span()`` call, attrs included."""
    disable()
    t0 = time.perf_counter()
    for __ in range(calls):
        span("bench.micro", k=1)
    return (time.perf_counter() - t0) / calls * 1e9


def run_overhead(table, regions, *, resolution: int, rounds: int,
                 queries_per_round: int) -> dict:
    disable()
    engines = {
        "baseline": SpatialAggregationEngine(default_resolution=resolution),
        "disabled": SpatialAggregationEngine(default_resolution=resolution),
    }
    arms = {"baseline": _stub_span, "disabled": span}

    def one_round(arm: str, round_index: int) -> float:
        # Distinct filter thresholds per round keep every execution a
        # cache miss — the arms see identical work because they share
        # the threshold schedule.
        _patch_span(arms[arm])
        engine = engines[arm]
        t0 = time.perf_counter()
        for j in range(queries_per_round):
            thr = 1.0 + 0.25 * (round_index * queries_per_round + j)
            engine.execute(table, regions,
                           SpatialAggregation.count(F("fare") > thr),
                           method="bounded")
        return time.perf_counter() - t0

    samples: dict[str, list[float]] = {"baseline": [], "disabled": []}
    # Warm both arms (canvas grids, allocator pools) outside the clock.
    one_round("baseline", -2)
    one_round("disabled", -1)
    for r in range(rounds):
        order = (("baseline", "disabled") if r % 2 == 0
                 else ("disabled", "baseline"))
        for arm in order:
            samples[arm].append(one_round(arm, r))
    _patch_span(span)  # leave the process as it was found

    median = {arm: float(np.median(vals) * 1000)
              for arm, vals in samples.items()}
    # Verdict on the median of *paired* per-round ratios: each round's
    # arms run back to back, so pairing cancels the slow drift (thermal,
    # page cache) that a ratio of global medians would conflate with
    # instrumentation cost.
    ratios = [d / b for b, d in zip(samples["baseline"],
                                    samples["disabled"])]
    return {
        "baseline_ms": [v * 1000 for v in samples["baseline"]],
        "disabled_ms": [v * 1000 for v in samples["disabled"]],
        "median_baseline_ms": median["baseline"],
        "median_disabled_ms": median["disabled"],
        "round_ratios": ratios,
        "overhead_fraction": float(np.median(ratios)) - 1.0,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--points", type=int, default=200_000)
    parser.add_argument("--regions", type=int, default=30)
    parser.add_argument("--resolution", type=int, default=256)
    parser.add_argument("--rounds", type=int, default=15)
    parser.add_argument("--queries-per-round", type=int, default=8)
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="maximum tolerated disabled-tracing "
                             "overhead fraction (default 2%%)")
    parser.add_argument("--out", default="BENCH_obs.json")
    args = parser.parse_args()

    city = CityModel(seed=7)
    table = generate_taxi_trips(city, args.points, seed=8)
    regions = voronoi_regions(city, args.regions, name="neighborhoods")

    span_ns = micro_span_ns()
    results = run_overhead(table, regions, resolution=args.resolution,
                           rounds=args.rounds,
                           queries_per_round=args.queries_per_round)
    results["disabled_span_ns"] = span_ns

    payload = {
        "benchmark": "obs-overhead",
        "points": args.points,
        "regions": args.regions,
        "resolution": args.resolution,
        "rounds": args.rounds,
        "queries_per_round": args.queries_per_round,
        "tolerance": args.tolerance,
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.machine(),
        },
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"disabled span(): {span_ns:.0f}ns/call")
    print(f"baseline (stubbed): {results['median_baseline_ms']:.1f}ms "
          f"median/round")
    print(f"disabled tracing:   {results['median_disabled_ms']:.1f}ms "
          f"median/round")
    print(f"overhead: {results['overhead_fraction'] * 100:+.2f}% "
          f"(tolerance {args.tolerance * 100:.0f}%)")
    print(f"wrote {out}")

    if results["overhead_fraction"] > args.tolerance:
        print(f"ERROR: disabled-tracing overhead "
              f"{results['overhead_fraction'] * 100:.2f}% exceeds "
              f"{args.tolerance * 100:.0f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
