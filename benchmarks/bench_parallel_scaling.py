"""Parallel scaling of the bounded raster join (E2-style point scaling).

Times the bounded raster join point pass at worker counts {1, 2, 4, 8}
over the E2 taxi workload, with the polygon raster cached (the
interactive steady state).  Workers beyond the machine's core count
cannot speed anything up — the interesting read-out is workers <=
cores, where the point pass should approach linear scaling.

Two faces:

* pytest-benchmark (``pytest benchmarks/bench_parallel_scaling.py``) —
  statistical timings in the shared benchmark session;
* standalone (``python benchmarks/bench_parallel_scaling.py [--points N]
  [--workers 1,2,4,8] [--out BENCH_parallel.json]``) — emits the
  machine-readable scaling record future PRs compare against, and
  exits non-zero if any parallel run diverges from serial (CI's
  benchmark-smoke job runs this at tiny sizes).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

WORKER_COUNTS = (1, 2, 4, 8)


def run_scaling(table, regions, resolution: int = 512,
                worker_counts=WORKER_COUNTS, repeats: int = 5) -> dict:
    """Time serial vs. parallel bounded joins; verify equivalence.

    Returns the BENCH_parallel.json payload: per-worker-count median
    latency, speedup over serial, and whether the COUNT results match
    serial bitwise.
    """
    from repro.core import (
        ParallelConfig,
        SpatialAggregation,
        bounded_raster_join,
        parallel_bounded_raster_join,
    )
    from repro.raster import Viewport, build_fragment_table

    query = SpatialAggregation.count()
    viewport = Viewport.fit(regions.bbox, resolution)
    fragments = build_fragment_table(list(regions.geometries), viewport)

    def median_ms(fn):
        fn()  # warmup
        times = []
        for __ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return float(np.median(times) * 1000)

    serial_result = bounded_raster_join(table, regions, query, viewport,
                                        fragments=fragments)
    serial_ms = median_ms(lambda: bounded_raster_join(
        table, regions, query, viewport, fragments=fragments))

    results = []
    for workers in worker_counts:
        if workers <= 1:
            results.append({
                "workers": 1,
                "median_ms": serial_ms,
                "speedup": 1.0,
                "pooled": False,
                "count_bitwise_equal": True,
            })
            continue
        # Force the chunked path regardless of input size; one chunk
        # per worker keeps fork overhead minimal.
        config = ParallelConfig(
            workers=workers,
            chunk_size=max(1, -(-len(table) // workers)),
            serial_threshold=0)
        result = parallel_bounded_raster_join(
            table, regions, query, viewport, fragments=fragments,
            config=config)
        ms = median_ms(lambda c=config: parallel_bounded_raster_join(
            table, regions, query, viewport, fragments=fragments, config=c))
        results.append({
            "workers": workers,
            "median_ms": ms,
            "speedup": serial_ms / ms if ms > 0 else float("inf"),
            "pooled": bool(result.stats["parallel"]["point_pass"]["pooled"]),
            "count_bitwise_equal": bool(
                np.array_equal(result.values, serial_result.values)),
        })

    return {
        "benchmark": "parallel-scaling-bounded-raster-join",
        "points": len(table),
        "regions": len(regions),
        "resolution": resolution,
        "repeats": repeats,
        "serial_median_ms": serial_ms,
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.machine(),
        },
        "results": results,
    }


# -- pytest-benchmark face ---------------------------------------------------

try:
    import pytest
except ImportError:  # standalone invocation without pytest installed
    pytest = None

if pytest is not None:
    pytestmark = pytest.mark.benchmark(group="parallel scaling")

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_parallel_point_scaling(benchmark, bench_taxi, bench_regions,
                                    workers):
        from repro.core import (
            ParallelConfig,
            SpatialAggregation,
            bounded_raster_join,
            parallel_bounded_raster_join,
        )
        from repro.raster import Viewport, build_fragment_table

        table = bench_taxi["200k"]
        regions = bench_regions["neighborhoods"]
        query = SpatialAggregation.count()
        viewport = Viewport.fit(regions.bbox, 512)
        fragments = build_fragment_table(list(regions.geometries), viewport)

        if workers == 1:
            run = lambda: bounded_raster_join(  # noqa: E731
                table, regions, query, viewport, fragments=fragments)
        else:
            config = ParallelConfig(
                workers=workers,
                chunk_size=max(1, -(-len(table) // workers)),
                serial_threshold=0)
            run = lambda: parallel_bounded_raster_join(  # noqa: E731
                table, regions, query, viewport, fragments=fragments,
                config=config)
        run()
        result = benchmark(run)
        benchmark.extra_info["workers"] = workers
        benchmark.extra_info["cpu_count"] = os.cpu_count()
        benchmark.extra_info["total_count"] = float(result.values.sum())


# -- standalone face ---------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="bounded raster join parallel scaling -> JSON")
    parser.add_argument("--points", type=int, default=800_000)
    parser.add_argument("--regions", type=int, default=71)
    parser.add_argument("--resolution", type=int, default=512)
    parser.add_argument("--workers", default="1,2,4,8",
                        help="comma-separated worker counts")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args(argv)

    from repro.data import CityModel, generate_taxi_trips, voronoi_regions

    worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]
    city = CityModel(seed=7)
    table = generate_taxi_trips(city, args.points, seed=8)
    regions = voronoi_regions(city, args.regions, name="neighborhoods")

    payload = run_scaling(table, regions, resolution=args.resolution,
                          worker_counts=worker_counts,
                          repeats=args.repeats)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"{'workers':>7} {'median':>10} {'speedup':>8}  equal")
    for row in payload["results"]:
        print(f"{row['workers']:>7} {row['median_ms']:>8.1f}ms "
              f"{row['speedup']:>7.2f}x  {row['count_bitwise_equal']}")
    print(f"wrote {out}")

    diverged = [r["workers"] for r in payload["results"]
                if not r["count_bitwise_equal"]]
    if diverged:
        print(f"ERROR: parallel output diverged from serial at "
              f"workers={diverged}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
