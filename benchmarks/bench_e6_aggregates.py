"""E6: aggregate-function coverage.

The query template supports COUNT / SUM / AVG / MIN / MAX.  COUNT and
SUM are single-canvas scatters; AVG blends two canvases; MIN/MAX use
sort-based blending (the GPU analog is min/max blend equations).
Expected shape: COUNT ~ SUM < AVG < MIN ~ MAX, all interactive.
"""

import pytest

from repro.core import SpatialAggregation

pytestmark = pytest.mark.benchmark(group="E6 aggregates")

QUERIES = {
    "count": SpatialAggregation.count(),
    "sum": SpatialAggregation.sum_of("fare"),
    "avg": SpatialAggregation.avg_of("fare"),
    "min": SpatialAggregation.min_of("fare"),
    "max": SpatialAggregation.max_of("fare"),
}


@pytest.mark.parametrize("agg", list(QUERIES))
@pytest.mark.parametrize("method", ["bounded", "accurate"])
def test_aggregates(benchmark, warm_engine, bench_taxi, bench_regions,
                    agg, method):
    taxi = bench_taxi["800k"]
    regions = bench_regions["neighborhoods"]
    query = QUERIES[agg]
    warm_engine.execute(taxi, regions, query, method=method)

    benchmark(warm_engine.execute, taxi, regions, query, method=method)
    benchmark.extra_info["aggregate"] = agg
