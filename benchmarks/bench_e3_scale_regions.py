"""E3: query latency vs. polygon resolution.

Sweeping the region hierarchy from 5 boroughs to ~1000 tracts.  The
index joins pay per candidate point *per polygon test* and their
latency climbs with polygon count and boundary complexity; the raster
join's point pass is independent of the polygon set, so its latency
should stay nearly flat (only the fragment join grows, mildly).
"""

import pytest

from repro.core import SpatialAggregation

pytestmark = pytest.mark.benchmark(group="E3 scale regions")

QUERY = SpatialAggregation.count()


@pytest.mark.parametrize("level", ["boroughs", "neighborhoods",
                                   "districts", "tracts"])
@pytest.mark.parametrize("method", ["bounded", "accurate", "grid"])
def test_scale_regions(benchmark, warm_engine, bench_taxi, bench_regions,
                       level, method):
    taxi = bench_taxi["200k"]
    regions = bench_regions[level]
    warm_engine.execute(taxi, regions, QUERY, method=method)

    result = benchmark(warm_engine.execute, taxi, regions, QUERY,
                       method=method)
    benchmark.extra_info["regions"] = len(regions)
    benchmark.extra_info["total_vertices"] = regions.total_vertices
