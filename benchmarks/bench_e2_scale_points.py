"""E2: query latency vs. number of points.

The core performance experiment of the Raster Join evaluation: how each
backend scales as |P| grows.  Expected shape: every method is ~linear
in |P|, but the bounded raster join's constant is far smaller than the
exact index joins'; the accurate variant sits between them.  The naive
comparator is included only at the smallest scale to anchor the plot.
"""

import pytest

from repro.core import SpatialAggregation

pytestmark = pytest.mark.benchmark(group="E2 scale points")

QUERY = SpatialAggregation.count()


@pytest.mark.parametrize("scale", ["50k", "200k", "800k"])
@pytest.mark.parametrize("method", ["bounded", "accurate", "grid", "rtree",
                                    "quadtree"])
def test_scale_points(benchmark, warm_engine, bench_taxi, bench_regions,
                      scale, method):
    taxi = bench_taxi[scale]
    regions = bench_regions["neighborhoods"]
    warm_engine.execute(taxi, regions, QUERY, method=method)

    result = benchmark(warm_engine.execute, taxi, regions, QUERY,
                       method=method)
    benchmark.extra_info["points"] = len(taxi)
    benchmark.extra_info["total_count"] = float(result.values.sum())


def test_scale_points_naive_anchor(benchmark, warm_engine, bench_taxi,
                                   bench_regions):
    result = benchmark.pedantic(
        warm_engine.execute,
        args=(bench_taxi["50k"], bench_regions["neighborhoods"], QUERY),
        kwargs={"method": "naive"}, rounds=2, iterations=1)
    benchmark.extra_info["points"] = 50_000
