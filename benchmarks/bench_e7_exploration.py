"""E7: the data-exploration view.

The view issues one spatial aggregation per (data set, indicator) and
normalizes/ranks the matrix.  Expected shape: the whole multi-data-set
matrix refresh remains interactive through the bounded raster join, and
re-weighting (scores/ranking on the cached matrix) is effectively free.
"""

import pytest

from repro.core import SpatialAggregation
from repro.urbane import DataExplorationView, DataManager, Indicator

pytestmark = pytest.mark.benchmark(group="E7 exploration view")


@pytest.fixture(scope="module")
def manager(bench_datasets, bench_regions):
    dm = DataManager()
    for name, table in bench_datasets.items():
        dm.add_dataset(table, name)
    dm.add_region_set(bench_regions["neighborhoods"], "neighborhoods")
    return dm


INDICATORS = [
    Indicator("activity", "taxi", SpatialAggregation.count()),
    Indicator("avg-fare", "taxi", SpatialAggregation.avg_of("fare")),
    Indicator("complaints", "complaints311", SpatialAggregation.count(),
              higher_is_better=False),
    Indicator("crime-severity", "crime",
              SpatialAggregation.sum_of("severity"),
              higher_is_better=False),
]


@pytest.mark.parametrize("method", ["bounded", "accurate"])
def test_exploration_matrix(benchmark, manager, method):
    view = DataExplorationView(manager, "neighborhoods", method=method)
    view.compute(INDICATORS)  # warm the fragment cache

    matrix = benchmark(view.compute, INDICATORS)
    benchmark.extra_info["indicators"] = len(INDICATORS)
    benchmark.extra_info["regions"] = matrix.raw.shape[0]


def test_reweight_and_rank(benchmark, manager):
    view = DataExplorationView(manager, "neighborhoods", method="bounded")
    matrix = view.compute(INDICATORS)

    def reweight():
        matrix.ranking({"activity": 2.0, "avg-fare": 0.5,
                        "complaints": 1.0, "crime-severity": 3.0})

    benchmark(reweight)


def test_similarity_search(benchmark, manager):
    view = DataExplorationView(manager, "neighborhoods", method="bounded")
    matrix = view.compute(INDICATORS)
    target = matrix.ranking()[0][0]
    benchmark(matrix.similar_to, target, 10)
