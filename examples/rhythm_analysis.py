"""Why do two neighborhoods feel similar? — rhythm + profile analysis.

The paper opens with this question.  This example answers it with the
two signal families the system computes:

1. the **region x time heat matrix** (one labeling pass) gives every
   neighborhood's temporal rhythm — commuter double-peaks vs. nightlife;
2. the **exploration matrix** gives every neighborhood's indicator
   profile across the three data sets;
3. the **RegionComparator** fuses both into "feel similar / different"
   verdicts with per-indicator explanations.

Also demonstrates the SQL front end: the same queries written in the
paper's SQL dialect.

Run:  python examples/rhythm_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SpatialAggregation
from repro.data import load_demo_workload
from repro.urbane import (
    DataExplorationView,
    DataManager,
    Indicator,
    RegionComparator,
    TimelineView,
)


def main() -> None:
    workload = load_demo_workload(taxi_rows=400_000, complaint_rows=100_000,
                                  crime_rows=60_000)
    manager = DataManager()
    for name, table in workload.datasets.items():
        manager.add_dataset(table, name)
    for name, regions in workload.regions.items():
        manager.add_region_set(regions, name)

    # The SQL front end answers the paper's query template directly.
    print("running the paper's query through the SQL front end:")
    sql = ("SELECT COUNT(*) FROM taxi, neighborhoods "
           "WHERE taxi.loc INSIDE neighborhoods.geometry "
           "AND payment = 'card' GROUP BY neighborhoods.id")
    result = manager.sql(sql)
    print(f"  {sql}")
    print(f"  -> top neighborhood: {result.top_k(1)[0]}\n")

    # Temporal rhythms: one pass for all neighborhoods x hours, folded
    # onto one week — daily noise averages out, the rhythm remains.
    timeline = TimelineView(manager)
    hourly = timeline.matrix("taxi", "neighborhoods", bucket="hour")
    rhythm = hourly.fold_weekly()
    print(f"heat matrix: {hourly.values.shape[0]} neighborhoods x "
          f"{hourly.num_buckets} hours in "
          f"{hourly.stats['time_total_s'] * 1000:.0f}ms, folded onto "
          f"{rhythm.num_buckets} weekly hours")

    # Show the three busiest neighborhoods' rhythms as sparklines.
    totals = rhythm.totals_per_region()
    top3 = np.argsort(totals)[::-1][:3]
    glyphs = "▁▂▃▄▅▆▇█"
    for idx in top3:
        series = rhythm.values[idx]
        hi = series.max() or 1.0
        line = "".join(glyphs[min(int(v / hi * 7), 7)] for v in series[:60])
        name = rhythm.regions.region_names[idx]
        print(f"  {name:<24} {line}")
    print()

    # Indicator profiles across the three data sets.
    view = DataExplorationView(manager, "neighborhoods", method="bounded")
    matrix = view.compute([
        Indicator("taxi-activity", "taxi", SpatialAggregation.count()),
        Indicator("avg-fare", "taxi", SpatialAggregation.avg_of("fare")),
        Indicator("complaints", "complaints311",
                  SpatialAggregation.count(), higher_is_better=False),
        Indicator("crime-severity", "crime",
                  SpatialAggregation.sum_of("severity"),
                  higher_is_better=False),
    ])

    comparator = RegionComparator(matrix, rhythm)

    # The two most alike neighborhoods in the whole city, explained.
    a, b, similarity = comparator.most_similar_pair()
    print(f"most similar pair city-wide (profile similarity "
          f"{similarity:.2f}):")
    print(comparator.explain(a, b).render())
    print()

    # And the sharpest contrast: best vs. worst under the default
    # weighting.
    ranking = matrix.ranking()
    best, worst = ranking[0][0], ranking[-1][0]
    print("best vs. worst ranked neighborhood:")
    print(comparator.explain(best, worst).render())


if __name__ == "__main__":
    main()
