"""The data exploration view: benchmark a neighborhood against the city.

The paper's architect persona wants to know how a candidate development
site's neighborhood compares with the rest of the city across several
data sets at once.  This example builds the exploration matrix over
three indicators (taxi activity up-weighted as "vibrancy"; 311
complaints and crime severity counted against), ranks all neighborhoods,
and drills into the best one: its most similar peers and a head-to-head
comparison with the runner-up.

Run:  python examples/neighborhood_ranking.py
"""

from __future__ import annotations

from repro.core import SpatialAggregation
from repro.data import load_demo_workload
from repro.urbane import DataExplorationView, DataManager, Indicator


def main() -> None:
    workload = load_demo_workload(taxi_rows=300_000, complaint_rows=80_000,
                                  crime_rows=50_000)
    manager = DataManager()
    for name, table in workload.datasets.items():
        manager.add_dataset(table, name)
    for name, regions in workload.regions.items():
        manager.add_region_set(regions, name)

    indicators = [
        Indicator("vibrancy", "taxi", SpatialAggregation.count(),
                  weight=2.0),
        Indicator("complaints", "complaints311",
                  SpatialAggregation.count(), weight=1.0,
                  higher_is_better=False),
        Indicator("crime-severity", "crime",
                  SpatialAggregation.sum_of("severity"), weight=1.5,
                  higher_is_better=False),
    ]
    view = DataExplorationView(manager, "neighborhoods", method="bounded")
    matrix = view.compute(indicators)
    print(f"exploration matrix computed: {matrix.raw.shape[0]} regions x "
          f"{matrix.raw.shape[1]} indicators "
          f"({matrix.stats['time_total_s'] * 1000:.1f}ms of queries)\n")

    ranking = matrix.ranking()
    print("top 8 neighborhoods (weighted composite score):")
    print(f"  {'rank':<5} {'neighborhood':<24} {'score':>6}")
    for rank, (name, score) in enumerate(ranking[:8], start=1):
        print(f"  {rank:<5} {name:<24} {score:6.3f}")
    print(f"  ...")
    for rank, (name, score) in enumerate(ranking[-2:],
                                         start=len(ranking) - 1):
        print(f"  {rank:<5} {name:<24} {score:6.3f}")

    best, runner_up = ranking[0][0], ranking[1][0]
    print(f"\nneighborhoods most similar to {best}:")
    for name, distance in matrix.similar_to(best, k=4):
        print(f"  {name:<24} distance {distance:.3f}")

    print(f"\nhead-to-head, {best} vs {runner_up}:")
    for indicator, row in matrix.compare(best, runner_up).items():
        delta = row["normalized_delta"]
        verdict = "ahead" if delta > 0 else "behind"
        print(f"  {indicator:<16} {row[best]:>12,.0f} vs "
              f"{row[runner_up]:>12,.0f}  ({verdict} by {abs(delta):.2f})")

    # Re-weight interactively: what if the architect only cares about
    # safety?
    safety_rank = matrix.ranking({"vibrancy": 0.0, "complaints": 1.0,
                                  "crime-severity": 3.0})
    print(f"\nunder a safety-only weighting the winner becomes: "
          f"{safety_rank[0][0]}")
    print(f"(the previous winner {best} drops to rank "
          f"{matrix.rank_of(best, {'vibrancy': 0.0, 'complaints': 1.0, 'crime-severity': 3.0})})")


if __name__ == "__main__":
    main()
