"""A scripted demo-floor session: 20 gestures, every one interactive.

Replays the kind of exploration a SIGMOD demo visitor performs —
brushing months on the timeline, toggling attribute filters, switching
data sets and spatial resolutions — and prints the per-gesture latency
log plus the interactivity summary the paper's claim rests on.

Run:  python examples/interactive_session.py
"""

from __future__ import annotations

from repro.core import SpatialAggregation
from repro.data import load_demo_workload, month_window
from repro.table import F
from repro.urbane import Dashboard, DataManager, InteractiveSession


def main() -> None:
    workload = load_demo_workload(taxi_rows=500_000, complaint_rows=120_000,
                                  crime_rows=80_000)
    manager = DataManager()
    for name, table in workload.datasets.items():
        manager.add_dataset(table, name)
    for name, regions in workload.regions.items():
        manager.add_region_set(regions, name)

    session = InteractiveSession(manager, "taxi", "neighborhoods",
                                 method="bounded", resolution=512)

    # -- a month-by-month sweep on the timeline ------------------------
    for month in range(workload.months):
        start, end = month_window(month)
        session.brush_time(start, end)

    # -- drill into payment behaviour during month 0 -------------------
    start, end = month_window(0)
    session.brush_time(start, end)
    session.add_filter(F("payment") == "card")
    session.add_filter(F("fare") > 10.0)
    session.set_aggregation(SpatialAggregation.avg_of("tip"))
    session.clear_filters()
    session.set_aggregation(SpatialAggregation.count())

    # -- switch spatial resolution (the expensive gesture) -------------
    session.set_region_level("boroughs")
    session.set_region_level("tracts")
    session.set_region_level("neighborhoods")

    # -- compare data sets over the same window ------------------------
    session.set_dataset("complaints311")
    session.add_filter(F("kind") == "noise")
    session.set_dataset("crime")
    session.set_aggregation(SpatialAggregation.sum_of("severity"))
    session.set_dataset("taxi")
    session.clear_time_brush()

    print(session.report())
    stats = session.summary()
    print(f"\nall gestures under 1s: "
          f"{stats['interactive_fraction'] == 1.0} "
          f"(p95 = {stats['p95_latency_s'] * 1000:.1f}ms over "
          f"{len(workload.datasets['taxi']):,} taxi rows)")

    # The coordinated-views dashboard for the final session state.
    dashboard = Dashboard(manager, "taxi", "neighborhoods",
                          resolution=384, map_rows=18, top_k=4)
    print()
    print(dashboard.frame(session.state.effective_query()).render())


if __name__ == "__main__":
    main()
