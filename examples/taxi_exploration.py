"""Figure 1 of the paper, headless: taxi pickups for one month,
aggregated over neighborhoods, rendered as a choropleth.

Recreates the demo's map-view scenario:

1. register the taxi data and the region resolutions with Urbane's
   data manager;
2. brush the timeline to the first month (the paper shows Jan 2009);
3. render the neighborhood choropleth (PPM file + ASCII preview);
4. re-render at a finer resolution, as a demo visitor switching from
   neighborhoods to tracts would.

Run:  python examples/taxi_exploration.py
"""

from __future__ import annotations

from pathlib import Path

from repro.core import SpatialAggregation
from repro.data import load_demo_workload, month_window
from repro.urbane import DataManager, MapView, TimelineView

OUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    workload = load_demo_workload(taxi_rows=400_000, complaint_rows=50_000,
                                  crime_rows=30_000)
    manager = DataManager()
    for name, table in workload.datasets.items():
        manager.add_dataset(table, name)
    for name, regions in workload.regions.items():
        manager.add_region_set(regions, name)

    # Timeline: find the first month and brush it.
    timeline = TimelineView(manager)
    series = timeline.series("taxi", bucket="day")
    print("taxi pickups per day:")
    print(" ", series.sparkline(70))
    start, end = month_window(0)
    brush = series.brush(0, min(30, len(series)))
    print(f"  brushed window: [{brush.start}, {brush.end}) "
          f"(~{(brush.end - brush.start) // 86_400} days)\n")

    # Map view: the Figure-1 choropleth.
    view = MapView(manager, resolution=512, ramp="viridis", mode="sqrt")
    query = SpatialAggregation.count().during("t", start, end)
    choropleth = view.choropleth("taxi", "neighborhoods", query)

    print("taxi pickups, month 1, by neighborhood:")
    print(choropleth.ascii(max_cols=72, max_rows=26))
    print()
    for name, value in choropleth.result.top_k(5):
        print(f"  {name:<24} {value:>12,.0f}")

    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "taxi_neighborhoods.ppm"
    choropleth.save_ppm(out)
    print(f"\nchoropleth image written to {out}")

    # Switch the spatial resolution, as the demo visitors do.
    fine = view.choropleth("taxi", "tracts", query)
    fine.save_ppm(OUT_DIR / "taxi_tracts.ppm")
    print(f"tract-level version written to {OUT_DIR / 'taxi_tracts.ppm'}")
    print(f"  ({len(fine.result)} regions, "
          f"query time {fine.result.stats['time_execute_s'] * 1000:.1f}ms)")

    # Raw point-density layer (no regions), the map's context heatmap.
    from repro.urbane import density_image, write_ppm

    canvas, heat_vp = view.heatmap("taxi")
    write_ppm(OUT_DIR / "taxi_density.ppm",
              density_image(canvas, heat_vp.width, heat_vp.height))
    print(f"density heatmap written to {OUT_DIR / 'taxi_density.ppm'}")


if __name__ == "__main__":
    main()
