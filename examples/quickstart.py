"""Quickstart: one spatial aggregation query, every way the library can run it.

Builds the demo city + taxi data, then answers the paper's headline query

    SELECT COUNT(*) FROM taxi, neighborhoods
    WHERE taxi.loc INSIDE neighborhoods.geometry
    GROUP BY neighborhood

with the bounded raster join, the accurate raster join, and the exact
index-join baselines — printing values, guaranteed error bounds, and
latencies side by side.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro.core import SpatialAggregation, SpatialAggregationEngine
from repro.data import load_demo_workload


def main() -> None:
    print("Generating the demo city (synthetic stand-in for NYC)...")
    workload = load_demo_workload(taxi_rows=300_000, complaint_rows=50_000,
                                  crime_rows=30_000)
    taxi = workload.datasets["taxi"]
    neighborhoods = workload.regions["neighborhoods"]
    print(f"  {taxi.describe()}")
    print(f"  {neighborhoods!r}\n")

    engine = SpatialAggregationEngine(default_resolution=512)
    query = SpatialAggregation.count()
    print(f"Query: {query.describe()}\n")

    methods = ("bounded", "accurate", "grid", "rtree")
    results = {}
    print(f"{'method':<10} {'latency':>9}   result (top neighborhood)")
    for method in methods:
        engine.execute(taxi, neighborhoods, query, method=method)  # warm
        t0 = time.perf_counter()
        result = engine.execute(taxi, neighborhoods, query, method=method)
        latency = time.perf_counter() - t0
        results[method] = result
        top_name, top_value = result.top_k(1)[0]
        print(f"{method:<10} {latency * 1000:7.1f}ms   "
              f"{top_name} = {top_value:,.0f}")

    bounded = results["bounded"]
    exact = results["accurate"]
    print("\nBounded raster join guarantees:")
    print(f"  epsilon (max misassignment distance): "
          f"{bounded.stats['epsilon_world_units']:.1f} m")
    print(f"  widest numeric bound interval:        "
          f"{bounded.max_bound_width():,.0f} points")
    print(f"  exact values inside the bounds:       "
          f"{bounded.bounds_contain(exact)}")
    metrics = bounded.compare_to(exact)
    print(f"  observed max relative error:          "
          f"{metrics['max_rel_error'] * 100:.3f}%")

    print("\nAd-hoc filters come free — add one and re-run:")
    from repro.table import F

    filtered = query.where(F("payment") == "card").during(
        "t", workload.start, workload.start + 30 * 86_400)
    t0 = time.perf_counter()
    result = engine.execute(taxi, neighborhoods, filtered, method="bounded")
    latency = time.perf_counter() - t0
    print(f"  card-only, first month: "
          f"{result.stats['points_after_filter']:,} rows pass the filter, "
          f"answered in {latency * 1000:.1f}ms")


if __name__ == "__main__":
    main()
