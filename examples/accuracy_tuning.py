"""The epsilon knob: trading canvas resolution for guaranteed accuracy.

The bounded raster join misassigns only points within one pixel
diagonal of a region boundary, so the canvas resolution *is* the
accuracy contract.  This example sweeps the canvas, reporting for each
resolution the geometric guarantee (epsilon in meters), the hard
numeric bounds, the error actually observed against the exact answer,
and the latency — then shows the engine picking the resolution for a
requested epsilon automatically.

Run:  python examples/accuracy_tuning.py
"""

from __future__ import annotations

import time

from repro.core import (
    SpatialAggregation,
    SpatialAggregationEngine,
    bounded_raster_join,
    relative_bound_width,
)
from repro.data import load_demo_workload
from repro.raster import Viewport


def main() -> None:
    workload = load_demo_workload(taxi_rows=400_000, complaint_rows=10_000,
                                  crime_rows=10_000)
    taxi = workload.datasets["taxi"]
    regions = workload.regions["neighborhoods"]
    engine = SpatialAggregationEngine(max_canvas_resolution=8192)
    query = SpatialAggregation.count()

    exact = engine.execute(taxi, regions, query, method="accurate",
                           resolution=1024)

    header = (f"{'canvas':>8} {'eps (m)':>9} {'bound width':>12} "
              f"{'max rel err':>12} {'latency':>9}")
    print(header)
    print("-" * len(header))
    for resolution in (64, 128, 256, 512, 1024, 2048):
        viewport = Viewport.fit(regions.bbox, resolution)
        fragments = engine.fragments_for(regions, viewport)
        t0 = time.perf_counter()
        result = bounded_raster_join(taxi, regions, query, viewport,
                                     fragments=fragments)
        latency = time.perf_counter() - t0
        err = result.compare_to(exact)["max_rel_error"]
        rel_width = relative_bound_width(result.lower, result.upper,
                                         result.values)
        print(f"{resolution:>7}px {result.stats['epsilon_world_units']:>8.1f} "
              f"{rel_width * 100:>11.2f}% {err * 100:>11.3f}% "
              f"{latency * 1000:>7.1f}ms")
        assert result.bounds_contain(exact)

    print("\nAsking the engine for epsilon <= 25 m instead:")
    result = engine.execute(taxi, regions, query, epsilon=25.0)
    print(f"  engine chose a {result.stats['canvas_pixels']:,}-pixel canvas; "
          f"realized epsilon "
          f"{result.stats['epsilon_world_units']:.1f} m")
    print(f"  bounds still contain the exact answer: "
          f"{result.bounds_contain(exact)}")

    print("\nWhen the tolerance exceeds one texture, tile the canvas:")
    t0 = time.perf_counter()
    tiled = engine.execute(taxi, regions, query, method="tiled",
                           resolution=4096)
    latency = time.perf_counter() - t0
    print(f"  4096px virtual canvas in {tiled.stats['tiles']} tiles, "
          f"{latency * 1000:.0f}ms, epsilon "
          f"{tiled.stats['epsilon_world_units']:.1f} m")


if __name__ == "__main__":
    main()
