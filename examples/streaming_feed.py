"""Live social-sensor feed: ingest, sliding windows, burst detection.

Simulates the social-media layer the paper's intro motivates: a
geotagged post stream arrives in batches while the analyst keeps an
Urbane view open.  The stream maintains incremental raster-join state,
so after every batch we can

* read the running region x time matrix in O(1),
* answer ad-hoc filtered queries over a sliding window at interactive
  latency, and
* watch the hot-region detector surface the planted bursts.

Run:  python examples/streaming_feed.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import SpatialAggregation, SpatialAggregationEngine
from repro.data import CityModel, generate_social_posts, voronoi_regions
from repro.stream import PointStream
from repro.table import F


def main() -> None:
    city = CityModel(seed=42)
    regions = voronoi_regions(city, 71, name="neighborhoods")
    posts, bursts = generate_social_posts(
        city, 300_000, num_bursts=2, burst_fraction=0.12, seed=11)
    print(f"feed: {len(posts):,} posts over "
          f"{(posts.values('t').max() - posts.values('t').min()) // 86_400}"
          f" days, {len(bursts)} planted bursts\n")

    stream = PointStream(regions, resolution=512, bucket_seconds=1_800)
    engine = SpatialAggregationEngine(default_resolution=512)
    engine.fragments_for(regions, stream.viewport)  # warm once, like a view

    # Replay the feed in 12 batches, probing the stream after each.
    edges = np.linspace(0, len(posts), 13).astype(int)
    window_s = 6 * 3_600
    print(f"{'batch':>5} {'rows':>8} {'append':>9} {'window query':>13} "
          f"{'hot regions (ratio)'}")
    for step, (a, b) in enumerate(zip(edges[:-1], edges[1:]), start=1):
        batch = posts.take(np.arange(a, b))
        stats = stream.append(batch)

        now = stream.last_timestamp
        window = stream.window_table(now - window_s, now + 1)
        t0 = time.perf_counter()
        engine.execute(window, regions,
                       SpatialAggregation.count(F("topic") == "events"),
                       viewport=stream.viewport, method="bounded")
        query_ms = (time.perf_counter() - t0) * 1000

        hot = stream.hot_regions(window_buckets=1, history_buckets=48,
                                 min_rate=2.5)
        hot_text = ", ".join(f"{name} ({ratio:.1f}x)"
                             for name, ratio in hot[:2]) or "-"
        print(f"{step:>5} {stats['rows']:>8,} "
              f"{stats['time_append_s'] * 1000:>7.1f}ms "
              f"{query_ms:>11.1f}ms   {hot_text}")

    # Verify against the ground truth: where were the bursts planted?
    print("\nplanted bursts:")
    for burst in bursts:
        for gid, geom in enumerate(regions.geometries):
            if geom.contains_point(burst.x, burst.y):
                print(f"  region {regions.region_names[gid]}, "
                      f"{burst.posts:,} posts over "
                      f"{burst.duration_s // 60} min")
                break

    matrix = stream.matrix()
    print(f"\nrunning matrix: {matrix.values.shape[0]} regions x "
          f"{matrix.num_buckets} half-hour buckets, "
          f"{matrix.stats['rows_ingested']:,} rows ingested in "
          f"{matrix.stats['time_append_total_s'] * 1000:.0f}ms total")


if __name__ == "__main__":
    main()
