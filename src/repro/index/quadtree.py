"""Point quadtree (PR quadtree).

Adaptive alternative to the uniform point grid: nodes split when they
exceed a capacity, so skewed urban data (hotspots) gets deeper subdivision
where the points are.  Used by the ablation benchmarks that compare index
layouts for the exact-join baseline.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError
from ..geometry import BBox


class _Node:
    __slots__ = ("bbox", "point_ids", "children", "depth")

    def __init__(self, bbox: BBox, depth: int):
        self.bbox = bbox
        self.point_ids: np.ndarray | None = np.empty(0, dtype=np.int64)
        self.children: list["_Node"] | None = None
        self.depth = depth


class QuadTree:
    """PR quadtree over a fixed point set (bulk-loaded)."""

    def __init__(self, x, y, bbox: BBox, capacity: int = 256, max_depth: int = 12):
        if capacity < 1:
            raise GeometryError("capacity must be >= 1")
        self._x = np.asarray(x, dtype=np.float64)
        self._y = np.asarray(y, dtype=np.float64)
        if len(self._x) != len(self._y):
            raise GeometryError("x and y must have equal length")
        self.bbox = bbox
        self.capacity = int(capacity)
        self.max_depth = int(max_depth)
        self.root = _Node(bbox, 0)
        self._build(self.root, np.arange(len(self._x), dtype=np.int64))

    def _build(self, node: _Node, ids: np.ndarray) -> None:
        if len(ids) <= self.capacity or node.depth >= self.max_depth:
            node.point_ids = ids
            return
        node.point_ids = None
        cx, cy = node.bbox.center
        b = node.bbox
        quadrants = [
            BBox(b.xmin, b.ymin, cx, cy),
            BBox(cx, b.ymin, b.xmax, cy),
            BBox(b.xmin, cy, cx, b.ymax),
            BBox(cx, cy, b.xmax, b.ymax),
        ]
        x = self._x[ids]
        y = self._y[ids]
        west = x < cx
        south = y < cy
        masks = [west & south, ~west & south, west & ~south, ~west & ~south]
        node.children = []
        for quad, mask in zip(quadrants, masks):
            child = _Node(quad, node.depth + 1)
            self._build(child, ids[mask])
            node.children.append(child)

    def query_bbox(self, query: BBox) -> np.ndarray:
        """Point ids exactly inside ``query``."""
        out: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.bbox.intersects(query):
                continue
            if node.children is not None:
                stack.extend(node.children)
                continue
            ids = node.point_ids
            if ids is None or len(ids) == 0:
                continue
            if query.contains_bbox(node.bbox):
                out.append(ids)
            else:
                x = self._x[ids]
                y = self._y[ids]
                keep = (
                    (x >= query.xmin) & (x <= query.xmax)
                    & (y >= query.ymin) & (y <= query.ymax)
                )
                if keep.any():
                    out.append(ids[keep])
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def count_bbox(self, query: BBox) -> int:
        return int(len(self.query_bbox(query)))

    def depth(self) -> int:
        """Maximum leaf depth actually reached."""
        best = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.children is not None:
                stack.extend(node.children)
            else:
                best = max(best, node.depth)
        return best

    def num_leaves(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.children is not None:
                stack.extend(node.children)
            else:
                count += 1
        return count
