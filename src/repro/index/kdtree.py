"""2-D k-d tree for points, built from scratch.

Median-split, array-backed (no node objects): ``split_dim``, ``split_val``
and subtree ranges are stored in flat arrays, and leaves reference runs of
a permuted id array.  Supports bbox range queries and nearest-neighbour
lookups (used by the data-exploration view to find similar neighborhoods
in feature space and by generators for spacing checks).
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError
from ..geometry import BBox


class KDTree:
    """Static 2-D k-d tree with leaf buckets."""

    def __init__(self, points, leaf_size: int = 32):
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
        if len(pts) == 0:
            raise GeometryError("cannot build a k-d tree over zero points")
        if leaf_size < 1:
            raise GeometryError("leaf_size must be >= 1")
        self.points = pts
        self.leaf_size = int(leaf_size)

        # Nodes in preorder; children of node i are i+1 (left) and
        # self._right[i].  Leaves have _right[i] == -1 and reference
        # self.ids[lo:hi].
        n = len(pts)
        max_nodes = 4 * max(1, n // leaf_size + 1) + 64
        self._split_dim = np.full(max_nodes, -1, dtype=np.int8)
        self._split_val = np.zeros(max_nodes, dtype=np.float64)
        self._right = np.full(max_nodes, -1, dtype=np.int64)
        self._lo = np.zeros(max_nodes, dtype=np.int64)
        self._hi = np.zeros(max_nodes, dtype=np.int64)
        self.ids = np.arange(n, dtype=np.int64)
        self._count = 0
        self._build(0, n, 0)
        # Trim arrays to the node count.
        c = self._count
        self._split_dim = self._split_dim[:c]
        self._split_val = self._split_val[:c]
        self._right = self._right[:c]
        self._lo = self._lo[:c]
        self._hi = self._hi[:c]

    def _new_node(self) -> int:
        i = self._count
        if i >= len(self._right):
            # Grow the arrays (rare; sizing heuristic usually suffices).
            grow = len(self._right)
            self._split_dim = np.concatenate(
                [self._split_dim, np.full(grow, -1, dtype=np.int8)])
            self._split_val = np.concatenate(
                [self._split_val, np.zeros(grow)])
            self._right = np.concatenate(
                [self._right, np.full(grow, -1, dtype=np.int64)])
            self._lo = np.concatenate([self._lo, np.zeros(grow, dtype=np.int64)])
            self._hi = np.concatenate([self._hi, np.zeros(grow, dtype=np.int64)])
        self._count += 1
        return i

    def _build(self, lo: int, hi: int, depth: int) -> int:
        node = self._new_node()
        self._lo[node] = lo
        self._hi[node] = hi
        if hi - lo <= self.leaf_size:
            return node
        seg = self.ids[lo:hi]
        coords = self.points[seg]
        # Split the wider dimension at the median.
        spread = coords.max(axis=0) - coords.min(axis=0)
        dim = int(np.argmax(spread))
        order = np.argsort(coords[:, dim], kind="stable")
        self.ids[lo:hi] = seg[order]
        mid = (hi - lo) // 2
        split_val = self.points[self.ids[lo + mid], dim]
        self._split_dim[node] = dim
        self._split_val[node] = split_val
        self._build(lo, lo + mid, depth + 1)
        right = self._build(lo + mid, hi, depth + 1)
        self._right[node] = right
        return node

    def query_bbox(self, query: BBox) -> np.ndarray:
        """Ids of points inside the closed box ``query``."""
        out: list[np.ndarray] = []
        stack = [0]
        bounds = (query.xmin, query.ymin, query.xmax, query.ymax)
        while stack:
            node = stack.pop()
            dim = self._split_dim[node]
            if dim < 0:  # leaf
                seg = self.ids[self._lo[node] : self._hi[node]]
                pts = self.points[seg]
                keep = (
                    (pts[:, 0] >= bounds[0]) & (pts[:, 0] <= bounds[2])
                    & (pts[:, 1] >= bounds[1]) & (pts[:, 1] <= bounds[3])
                )
                if keep.any():
                    out.append(seg[keep])
                continue
            val = self._split_val[node]
            lo_bound = bounds[dim]
            hi_bound = bounds[dim + 2]
            if lo_bound < val:
                stack.append(node + 1)
            if hi_bound >= val:
                stack.append(self._right[node])
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def nearest(self, x: float, y: float) -> tuple[int, float]:
        """(point id, distance) of the nearest neighbour of (x, y)."""
        best_id = -1
        best_d2 = np.inf
        query = np.array([x, y])
        stack = [0]
        while stack:
            node = stack.pop()
            dim = self._split_dim[node]
            if dim < 0:
                seg = self.ids[self._lo[node] : self._hi[node]]
                pts = self.points[seg]
                d2 = ((pts - query) ** 2).sum(axis=1)
                k = int(np.argmin(d2))
                if d2[k] < best_d2:
                    best_d2 = float(d2[k])
                    best_id = int(seg[k])
                continue
            val = self._split_val[node]
            diff = query[dim] - val
            near, far = (node + 1, self._right[node]) if diff < 0 else (
                self._right[node], node + 1)
            # Visit the near side first; prune the far side by the split
            # plane distance.
            if diff * diff <= best_d2:
                stack.append(far)
            stack.append(near)
        return best_id, float(np.sqrt(best_d2))

    def count_bbox(self, query: BBox) -> int:
        return int(len(self.query_bbox(query)))
