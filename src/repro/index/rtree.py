"""STR-packed R-tree.

A static, bulk-loaded R-tree using Sort-Tile-Recursive packing, stored
as flat NumPy arrays per level (no per-node Python objects).  Indexes
either rectangles (polygon envelopes) or points (zero-area rectangles),
and answers bbox-overlap queries — the structure behind the
``rtree_join`` baseline.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import GeometryError
from ..geometry import BBox


class RTree:
    """Static STR-packed R-tree over rectangles."""

    def __init__(self, rects: np.ndarray, leaf_capacity: int = 16):
        """``rects`` is an ``(n, 4)`` array of (xmin, ymin, xmax, ymax)."""
        rects = np.asarray(rects, dtype=np.float64).reshape(-1, 4)
        if len(rects) == 0:
            raise GeometryError("cannot build an R-tree over zero rectangles")
        if (rects[:, 0] > rects[:, 2]).any() or (rects[:, 1] > rects[:, 3]).any():
            raise GeometryError("malformed rectangles (min > max)")
        if leaf_capacity < 2:
            raise GeometryError("leaf capacity must be >= 2")
        self.leaf_capacity = int(leaf_capacity)

        # STR pack: sort by x-center into vertical slices, then each slice
        # by y-center; consecutive runs of `leaf_capacity` become leaves.
        n = len(rects)
        cx = 0.5 * (rects[:, 0] + rects[:, 2])
        cy = 0.5 * (rects[:, 1] + rects[:, 3])
        num_leaves = math.ceil(n / leaf_capacity)
        num_slices = max(1, math.ceil(math.sqrt(num_leaves)))
        per_slice = math.ceil(n / num_slices)

        order_x = np.argsort(cx, kind="stable")
        order = np.empty(n, dtype=np.int64)
        pos = 0
        for s in range(num_slices):
            sl = order_x[s * per_slice : (s + 1) * per_slice]
            if len(sl) == 0:
                continue
            sl_sorted = sl[np.argsort(cy[sl], kind="stable")]
            order[pos : pos + len(sl_sorted)] = sl_sorted
            pos += len(sl_sorted)

        # self.item_ids maps packed order back to original rect ids.
        self.item_ids = order
        packed = rects[order]

        # Build levels bottom-up; each level is an (m, 4) bbox array plus
        # child-range offsets into the level below.
        self.levels: list[np.ndarray] = []       # bboxes per level, root last
        self.child_offsets: list[np.ndarray] = []  # (m+1,) offsets per level
        current = packed
        while len(current) > 1:
            m = math.ceil(len(current) / leaf_capacity)
            boxes = np.empty((m, 4), dtype=np.float64)
            offsets = np.empty(m + 1, dtype=np.int64)
            for i in range(m):
                lo = i * leaf_capacity
                hi = min((i + 1) * leaf_capacity, len(current))
                offsets[i] = lo
                boxes[i, 0] = current[lo:hi, 0].min()
                boxes[i, 1] = current[lo:hi, 1].min()
                boxes[i, 2] = current[lo:hi, 2].max()
                boxes[i, 3] = current[lo:hi, 3].max()
            offsets[m] = len(current)
            self.levels.append(boxes)
            self.child_offsets.append(offsets)
            current = boxes
        self._packed = packed

    @classmethod
    def from_points(cls, x, y, leaf_capacity: int = 64) -> "RTree":
        """R-tree over points (degenerate rectangles)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rects = np.column_stack([x, y, x, y])
        return cls(rects, leaf_capacity=leaf_capacity)

    @classmethod
    def from_geometries(cls, geometries, leaf_capacity: int = 8) -> "RTree":
        """R-tree over polygon envelopes."""
        rects = np.array([g.bbox.as_tuple() for g in geometries])
        return cls(rects, leaf_capacity=leaf_capacity)

    @property
    def height(self) -> int:
        """Number of internal levels above the packed items."""
        return len(self.levels)

    def query_bbox(self, query: BBox) -> np.ndarray:
        """Ids of indexed rectangles overlapping ``query`` (exact)."""
        qx0, qy0, qx1, qy1 = query.as_tuple()
        if not self.levels:
            # Single item.
            r = self._packed[0]
            hit = not (r[0] > qx1 or r[2] < qx0 or r[1] > qy1 or r[3] < qy0)
            return self.item_ids[:1] if hit else np.empty(0, dtype=np.int64)

        # Descend from the root level collecting overlapping child ranges.
        level = len(self.levels) - 1
        nodes = np.arange(len(self.levels[level]))
        while level >= 0:
            boxes = self.levels[level][nodes]
            hit = ~(
                (boxes[:, 0] > qx1) | (boxes[:, 2] < qx0)
                | (boxes[:, 1] > qy1) | (boxes[:, 3] < qy0)
            )
            nodes = nodes[hit]
            if len(nodes) == 0:
                return np.empty(0, dtype=np.int64)
            offsets = self.child_offsets[level]
            child_ranges = [np.arange(offsets[n], offsets[n + 1]) for n in nodes]
            nodes = np.concatenate(child_ranges)
            level -= 1

        # `nodes` now indexes into the packed item array.
        boxes = self._packed[nodes]
        hit = ~(
            (boxes[:, 0] > qx1) | (boxes[:, 2] < qx0)
            | (boxes[:, 1] > qy1) | (boxes[:, 3] < qy0)
        )
        return self.item_ids[nodes[hit]]

    def count_bbox(self, query: BBox) -> int:
        """Number of indexed rectangles overlapping ``query``."""
        return int(len(self.query_bbox(query)))
