"""Uniform grid indexes.

Two flavors, matching the structures the index-join baseline in the
paper's evaluation uses:

* :class:`PointGridIndex` — buckets points into a uniform grid (CSR
  layout: points sorted by cell with per-cell offsets).  Range queries
  return candidate point ids.
* :class:`PolygonGridIndex` — maps each grid cell to the polygons whose
  bounding box overlaps it.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError
from ..geometry import BBox
from ..geometry.polygon import Geometry


class PointGridIndex:
    """Uniform grid over a point set with CSR cell buckets."""

    def __init__(self, x: np.ndarray, y: np.ndarray, bbox: BBox,
                 nx: int = 64, ny: int = 64):
        if nx < 1 or ny < 1:
            raise GeometryError("grid needs at least one cell per axis")
        self.bbox = bbox
        self.nx = int(nx)
        self.ny = int(ny)
        self._x = np.asarray(x, dtype=np.float64)
        self._y = np.asarray(y, dtype=np.float64)

        width = max(bbox.width, 1e-300)
        height = max(bbox.height, 1e-300)
        cx = np.clip(((self._x - bbox.xmin) / width * nx).astype(np.int64), 0, nx - 1)
        cy = np.clip(((self._y - bbox.ymin) / height * ny).astype(np.int64), 0, ny - 1)
        cell_ids = cy * nx + cx

        # CSR: order[i] lists point ids sorted by cell; offsets per cell.
        self.order = np.argsort(cell_ids, kind="stable")
        sorted_cells = cell_ids[self.order]
        self.offsets = np.searchsorted(
            sorted_cells, np.arange(nx * ny + 1), side="left"
        )

    def __len__(self) -> int:
        return len(self._x)

    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        """Grid cell (ix, iy) containing a point (clamped to the grid)."""
        width = max(self.bbox.width, 1e-300)
        height = max(self.bbox.height, 1e-300)
        ix = int(np.clip((x - self.bbox.xmin) / width * self.nx, 0, self.nx - 1))
        iy = int(np.clip((y - self.bbox.ymin) / height * self.ny, 0, self.ny - 1))
        return ix, iy

    def cell_points(self, ix: int, iy: int) -> np.ndarray:
        """Ids of the points bucketed in cell (ix, iy)."""
        cell = iy * self.nx + ix
        return self.order[self.offsets[cell] : self.offsets[cell + 1]]

    def _cell_range(self, query: BBox) -> tuple[int, int, int, int]:
        """Inclusive cell-index ranges overlapped by ``query``."""
        width = max(self.bbox.width, 1e-300)
        height = max(self.bbox.height, 1e-300)
        ix0 = int(np.floor((query.xmin - self.bbox.xmin) / width * self.nx))
        ix1 = int(np.floor((query.xmax - self.bbox.xmin) / width * self.nx))
        iy0 = int(np.floor((query.ymin - self.bbox.ymin) / height * self.ny))
        iy1 = int(np.floor((query.ymax - self.bbox.ymin) / height * self.ny))
        ix0 = max(ix0, 0)
        iy0 = max(iy0, 0)
        ix1 = min(ix1, self.nx - 1)
        iy1 = min(iy1, self.ny - 1)
        return ix0, ix1, iy0, iy1

    def query_bbox(self, query: BBox) -> np.ndarray:
        """Candidate point ids whose cells overlap ``query``.

        Candidates are a superset of the true answer (cell granularity);
        callers refine with exact coordinate tests.
        """
        if not self.bbox.intersects(query):
            return np.empty(0, dtype=np.int64)
        ix0, ix1, iy0, iy1 = self._cell_range(query)
        if ix0 > ix1 or iy0 > iy1:
            return np.empty(0, dtype=np.int64)
        chunks = []
        for iy in range(iy0, iy1 + 1):
            # Cells in a row are contiguous in the CSR layout.
            start = self.offsets[iy * self.nx + ix0]
            stop = self.offsets[iy * self.nx + ix1 + 1]
            if stop > start:
                chunks.append(self.order[start:stop])
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def query_bbox_exact(self, query: BBox) -> np.ndarray:
        """Point ids exactly inside ``query`` (candidates + refinement)."""
        cand = self.query_bbox(query)
        if len(cand) == 0:
            return cand
        x = self._x[cand]
        y = self._y[cand]
        keep = (
            (x >= query.xmin) & (x <= query.xmax)
            & (y >= query.ymin) & (y <= query.ymax)
        )
        return cand[keep]


class PolygonGridIndex:
    """Uniform grid mapping cells to overlapping polygon ids (by bbox)."""

    def __init__(self, geometries: list[Geometry], bbox: BBox,
                 nx: int = 64, ny: int = 64):
        if nx < 1 or ny < 1:
            raise GeometryError("grid needs at least one cell per axis")
        self.bbox = bbox
        self.nx = int(nx)
        self.ny = int(ny)
        self.geometries = list(geometries)

        width = max(bbox.width, 1e-300)
        height = max(bbox.height, 1e-300)
        buckets: list[list[int]] = [[] for _ in range(nx * ny)]
        for gid, geom in enumerate(self.geometries):
            gb = geom.bbox
            inter = bbox.intersection(gb)
            if inter is None:
                continue
            ix0 = max(int(np.floor((inter.xmin - bbox.xmin) / width * nx)), 0)
            ix1 = min(int(np.floor((inter.xmax - bbox.xmin) / width * nx)), nx - 1)
            iy0 = max(int(np.floor((inter.ymin - bbox.ymin) / height * ny)), 0)
            iy1 = min(int(np.floor((inter.ymax - bbox.ymin) / height * ny)), ny - 1)
            for iy in range(iy0, iy1 + 1):
                row = iy * nx
                for ix in range(ix0, ix1 + 1):
                    buckets[row + ix].append(gid)
        self._buckets = [np.asarray(b, dtype=np.int64) for b in buckets]

    def candidates_for_cells(self, cell_x: np.ndarray, cell_y: np.ndarray):
        """Candidate polygon-id arrays for an array of cell coordinates."""
        cells = cell_y * self.nx + cell_x
        return [self._buckets[c] for c in cells]

    def candidates_at(self, x: float, y: float) -> np.ndarray:
        """Candidate polygon ids for one query point."""
        width = max(self.bbox.width, 1e-300)
        height = max(self.bbox.height, 1e-300)
        ix = int(np.clip((x - self.bbox.xmin) / width * self.nx, 0, self.nx - 1))
        iy = int(np.clip((y - self.bbox.ymin) / height * self.ny, 0, self.ny - 1))
        return self._buckets[iy * self.nx + ix]

    def cell_ids_of_points(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Flat cell id of each point (clamped to the grid)."""
        width = max(self.bbox.width, 1e-300)
        height = max(self.bbox.height, 1e-300)
        cx = np.clip(((np.asarray(x) - self.bbox.xmin) / width * self.nx)
                     .astype(np.int64), 0, self.nx - 1)
        cy = np.clip(((np.asarray(y) - self.bbox.ymin) / height * self.ny)
                     .astype(np.int64), 0, self.ny - 1)
        return cy * self.nx + cx

    def bucket(self, cell_id: int) -> np.ndarray:
        """Candidate polygon ids of a flat cell id."""
        return self._buckets[cell_id]

    @property
    def num_cells(self) -> int:
        return self.nx * self.ny

    def stats(self) -> dict:
        """Occupancy statistics (used to tune cell sizes in benchmarks)."""
        sizes = np.array([len(b) for b in self._buckets])
        return {
            "cells": int(sizes.size),
            "empty_cells": int((sizes == 0).sum()),
            "max_candidates": int(sizes.max(initial=0)),
            "mean_candidates": float(sizes.mean()) if sizes.size else 0.0,
        }
