"""Spatial index substrate.

The exact comparators in the paper's evaluation are index-based joins;
this package provides the structures they build on: uniform grids for
points and polygons, an STR-packed R-tree, a PR quadtree and a k-d tree.
"""

from .grid import PointGridIndex, PolygonGridIndex
from .kdtree import KDTree
from .quadtree import QuadTree
from .rtree import RTree

__all__ = [
    "KDTree",
    "PointGridIndex",
    "PolygonGridIndex",
    "QuadTree",
    "RTree",
]
