"""Reading stores: mmap-backed partitions with an LRU mount budget.

A :class:`Dataset` opens a store directory from its manifest alone —
no column bytes are touched until a partition is actually scanned.
:meth:`Dataset.partition_table` maps a partition's raw column files
with :class:`numpy.memmap` and wraps them in a zero-copy
:class:`~repro.table.PointTable` (float64/int64/int32 files satisfy the
table's dtype contracts exactly, so no conversion copies happen).
Mounted partitions are kept in an LRU keyed by partition index; when
``memory_budget_bytes`` is set, least-recently-scanned mappings are
dropped once the mapped total exceeds it — the OS reclaims the pages,
and a later touch simply remaps the file.

The pages a query actually reads are resident only transiently, so
peak RSS of an out-of-core scan is O(partition + canvas), never
O(dataset) — the property the acceptance benchmark measures.
"""

from __future__ import annotations

import mmap
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..errors import SchemaError
from ..obs.trace import span
from ..table import PointTable
from ..table.column import CATEGORICAL, Column
from .format import (
    KIND_DTYPES,
    Manifest,
    PartitionInfo,
    column_filename,
    read_manifest,
)


def _backing_mmap(arr) -> "mmap.mmap | None":
    """The ``mmap.mmap`` behind an array, if any.

    ``PointTable`` wraps partition memmaps in plain ndarray views, so
    the mapping sits somewhere down the ``.base`` chain (the same walk
    ``estimate_nbytes`` does to charge mmap-backed arrays zero bytes).
    Returns ``None`` for in-memory arrays or platforms whose mappings
    lack ``madvise``.
    """
    obj = arr
    for _ in range(8):
        if obj is None:
            return None
        raw = getattr(obj, "_mmap", None)
        if raw is not None and hasattr(raw, "madvise"):
            return raw
        if isinstance(obj, mmap.mmap):
            return obj if hasattr(obj, "madvise") else None
        obj = getattr(obj, "base", None)
    return None


class Dataset:
    """An opened store: manifest + lazily mounted mmap partitions."""

    def __init__(self, path, manifest: Manifest,
                 memory_budget_bytes: int | None = None):
        self.path = Path(path)
        self.manifest = manifest
        self.memory_budget_bytes = memory_budget_bytes
        self._mounted: OrderedDict[int, tuple[PointTable, int]] = \
            OrderedDict()
        self._mapped_bytes = 0
        self.mounts = 0
        self.mount_hits = 0
        self.evictions = 0
        # Serve-pool threads and shard coordinators share one Dataset;
        # the mount LRU (dict + byte counter) must mutate atomically.
        self._mount_lock = threading.RLock()

    @classmethod
    def open(cls, path, memory_budget_bytes: int | None = None) -> "Dataset":
        """Open a store directory (reads only the manifest)."""
        return cls(path, read_manifest(Path(path)),
                   memory_budget_bytes=memory_budget_bytes)

    # -- schema ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.manifest.name

    @property
    def partitions(self) -> list[PartitionInfo]:
        return self.manifest.partitions

    @property
    def num_partitions(self) -> int:
        return len(self.manifest.partitions)

    def __len__(self) -> int:
        return self.manifest.rows

    @property
    def column_names(self) -> list[str]:
        return [spec.name for spec in self.manifest.columns]

    @property
    def total_nbytes(self) -> int:
        """Raw column bytes across every partition."""
        return sum(p.nbytes for p in self.manifest.partitions)

    def describe(self) -> str:
        cols = ", ".join(f"{c.name}:{c.kind}" for c in self.manifest.columns)
        return (f"Dataset({self.name!r}, rows={len(self)}, "
                f"partitions={self.num_partitions}, cols=[{cols}])")

    __repr__ = describe

    # -- partition access --------------------------------------------------

    def partition_table(self, index: int) -> PointTable:
        """The mmap-backed table of one partition (LRU-mounted)."""
        with self._mount_lock:
            entry = self._mounted.get(index)
            if entry is not None:
                self._mounted.move_to_end(index)
                self.mount_hits += 1
                return entry[0]
            info = self.manifest.partitions[index]
            with span("store.mount", partition=index):
                table = self._map_partition(info)
            self.mounts += 1
            self._mounted[index] = (table, info.nbytes)
            self._mapped_bytes += info.nbytes
            budget = self.memory_budget_bytes
            if budget is not None:
                # Keep at least the partition being handed out mapped.
                while self._mapped_bytes > budget and len(self._mounted) > 1:
                    _, (_, nbytes) = self._mounted.popitem(last=False)
                    self._mapped_bytes -= nbytes
                    self.evictions += 1
            return table

    def prefetch_partition(self, index: int) -> bool:
        """Advise the OS to page in one partition's column files.

        Mounts the partition (so the mapping exists to advise on) and
        issues ``madvise(MADV_WILLNEED)`` on every column mapping — the
        kernel starts readahead while the caller keeps scattering the
        *current* partition, which is what keeps page faults off the
        hot path.  Returns ``True`` when at least one advise was
        issued; platforms without ``mmap.madvise`` (or non-mmap arrays,
        e.g. empty partitions) fall back to a no-op so behavior is
        identical everywhere.
        """
        table = self.partition_table(index)
        advised = False
        arrays = [table.x, table.y]
        arrays.extend(table.column(name).values
                      for name in table.column_names)
        for arr in arrays:
            raw = _backing_mmap(arr)
            if raw is None:
                continue
            try:
                raw.madvise(mmap.MADV_WILLNEED)
                advised = True
            except (OSError, ValueError):
                continue
        return advised

    def _map_partition(self, info: PartitionInfo) -> PointTable:
        pdir = self.path / info.directory
        x = self._map_file(pdir / "x.bin", "<f8", info.rows)
        y = self._map_file(pdir / "y.bin", "<f8", info.rows)
        columns: dict[str, Column] = {}
        for i, spec in enumerate(self.manifest.columns):
            raw = self._map_file(pdir / column_filename(i, spec.name),
                                 KIND_DTYPES[spec.kind], info.rows)
            if spec.kind == CATEGORICAL:
                columns[spec.name] = Column(spec.name, spec.kind, raw,
                                            spec.categories)
            else:
                columns[spec.name] = Column(spec.name, spec.kind, raw)
        return PointTable(x, y, columns,
                          name=f"{self.name}/{info.directory}")

    @staticmethod
    def _map_file(path: Path, dtype: str, rows: int) -> np.ndarray:
        if rows == 0:
            return np.empty(0, dtype=dtype)
        if not path.exists():
            raise SchemaError(f"store is missing column file {path}")
        expected = rows * np.dtype(dtype).itemsize
        actual = path.stat().st_size
        if actual != expected:
            raise SchemaError(
                f"{path} holds {actual} bytes, footer says {expected}")
        return np.memmap(path, dtype=dtype, mode="r", shape=(rows,))

    def iter_partition_tables(self, indices=None):
        """Yield (index, table) over (surviving) partitions in manifest
        order — the canonical out-of-core scan order."""
        if indices is None:
            indices = range(self.num_partitions)
        for index in indices:
            yield index, self.partition_table(index)

    # -- whole-table materialization ---------------------------------------

    def to_table(self, name: str | None = None) -> PointTable:
        """Materialize the full dataset in memory, in manifest order.

        The in-memory reference the out-of-core engine is bitwise-equal
        against; intended for tests and small stores only.
        """
        tables = [self.partition_table(i)
                  for i in range(self.num_partitions)
                  if self.manifest.partitions[i].rows]
        if not tables:
            columns = {}
            for spec in self.manifest.columns:
                raw = np.empty(0, dtype=KIND_DTYPES[spec.kind])
                columns[spec.name] = (
                    Column(spec.name, spec.kind, raw, spec.categories)
                    if spec.kind == CATEGORICAL
                    else Column(spec.name, spec.kind, raw))
            return PointTable(np.empty(0), np.empty(0), columns,
                              name=name or self.name)
        return PointTable.concat(tables, name=name or self.name)

    # -- introspection -----------------------------------------------------

    def mount_stats(self) -> dict:
        """Mapping counters: what the LRU budget is doing."""
        with self._mount_lock:
            return {
                "partitions_mapped": len(self._mounted),
                "mapped_bytes": self._mapped_bytes,
                "memory_budget_bytes": self.memory_budget_bytes,
                "mounts": self.mounts,
                "hits": self.mount_hits,
                "evictions": self.evictions,
            }

    def drop_mounts(self) -> None:
        """Release every mounted partition (tests / manual trimming)."""
        with self._mount_lock:
            self._mounted.clear()
            self._mapped_bytes = 0

    def _after_fork(self) -> None:
        """Called at the top of a forked shard worker.

        The inherited mount lock may have been held by a parent thread
        that does not exist in the child — replace it.  Mounted tables
        stay: the inherited mappings are exactly the zero-copy reuse
        forking buys.  Must never run in the parent process (it would
        swap the lock out from under concurrent serve threads).
        """
        self._mount_lock = threading.RLock()
