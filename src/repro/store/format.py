"""On-disk format of the out-of-core dataset store (schema v1).

A store is a directory of fixed-size **partitions** sorted by a spatial
grid key (x/y cell, optional time bucket)::

    store/
      manifest.json           # schema, grid, category domains, partition index
      p00000/
        footer.json           # zone maps for this partition
        x.bin  y.bin          # raw little-endian float64 coordinates
        c0_fare.bin ...       # one raw column file per attribute

Column files are raw little-endian arrays (``<f8`` numeric, ``<i8``
timestamp, ``<i4`` categorical codes) so a :class:`numpy.memmap` over
the file *is* the column — zero parse, zero copy.  Categorical codes
refer to one **global, append-only** category list per column stored in
the manifest, so partitions written at different times stay mutually
consistent and concatenate without re-encoding.

Each partition's ``footer.json`` holds its **zone maps** — the metadata
pruning runs on (GeoBlocks-style): point bbox, per-column min/max (NaNs
counted separately), time min/max, and a category-presence bitset.  The
manifest duplicates every footer so a query prunes the whole store from
one small JSON read; the footer remains the per-partition authority
(``repro store inspect --check`` verifies the two agree).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import SchemaError
from ..geometry import BBox
from ..table.column import CATEGORICAL, NUMERIC, TIMESTAMP

#: Version stamped into manifests and footers; readers reject anything newer.
STORE_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
FOOTER_NAME = "footer.json"

#: Column kind -> the little-endian dtype of its raw ``.bin`` file.
KIND_DTYPES = {
    NUMERIC: "<f8",
    TIMESTAMP: "<i8",
    CATEGORICAL: "<i4",
}


def column_filename(index: int, name: str) -> str:
    """Filesystem-safe ``.bin`` name for attribute column ``index``."""
    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", name)[:48]
    return f"c{index}_{safe}.bin"


@dataclass(frozen=True)
class ColumnSpec:
    """One attribute column of the store schema."""

    name: str
    kind: str
    #: Global category list (categorical columns only).  Append-only:
    #: codes written into earlier partitions never change meaning.
    categories: tuple[str, ...] = ()

    def to_json(self) -> dict:
        payload = {"name": self.name, "kind": self.kind}
        if self.kind == CATEGORICAL:
            payload["categories"] = list(self.categories)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "ColumnSpec":
        return cls(payload["name"], payload["kind"],
                   tuple(payload.get("categories") or ()))


@dataclass
class PartitionInfo:
    """One partition's manifest entry: location, size, and zone maps."""

    directory: str
    rows: int
    key: tuple[int, int]                 #: (grid cell id, time bucket)
    bbox: BBox | None                    #: point envelope; None when empty
    zones: dict[str, dict] = field(default_factory=dict)
    nbytes: int = 0                      #: total raw column bytes

    def to_json(self) -> dict:
        return {
            "dir": self.directory,
            "rows": self.rows,
            "key": list(self.key),
            "bbox": ([self.bbox.xmin, self.bbox.ymin,
                      self.bbox.xmax, self.bbox.ymax]
                     if self.bbox is not None else None),
            "zones": self.zones,
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PartitionInfo":
        box = payload.get("bbox")
        return cls(
            directory=payload["dir"],
            rows=int(payload["rows"]),
            key=tuple(payload["key"]),
            bbox=BBox(*box) if box is not None else None,
            zones=payload.get("zones") or {},
            nbytes=int(payload.get("nbytes", 0)),
        )


# -- zone maps ---------------------------------------------------------------


def _scalar(value):
    """JSON-safe scalar (numpy types -> Python, non-finite -> repr str)."""
    value = float(value)
    if np.isfinite(value):
        return value
    return repr(value)  # 'inf' / '-inf' survive a JSON round trip below


def _unscalar(value):
    if value is None:
        return None
    return float(value)


def column_zone(kind: str, values: np.ndarray) -> dict:
    """The zone map of one column's raw values.

    * numeric: min/max over non-NaN entries (None when all-NaN or
      empty) plus the NaN count — ``!=`` pruning must know whether NaN
      rows exist, since ``NaN != v`` is True;
    * timestamp: integer min/max;
    * categorical: a presence bitset over global codes (hex string).
    """
    zone: dict = {"kind": kind}
    if kind == NUMERIC:
        nan_count = int(np.isnan(values).sum()) if len(values) else 0
        live = len(values) - nan_count
        zone["nan_count"] = nan_count
        if live:
            zone["min"] = _scalar(np.nanmin(values))
            zone["max"] = _scalar(np.nanmax(values))
        else:
            zone["min"] = zone["max"] = None
    elif kind == TIMESTAMP:
        if len(values):
            zone["min"] = int(values.min())
            zone["max"] = int(values.max())
        else:
            zone["min"] = zone["max"] = None
    else:  # CATEGORICAL
        bits = 0
        for code in np.unique(values):
            bits |= 1 << int(code)
        zone["bitset"] = hex(bits)
    return zone


def zone_min(zone: dict):
    value = zone.get("min")
    return _unscalar(value) if not isinstance(value, str) else float(value)


def zone_max(zone: dict):
    value = zone.get("max")
    return _unscalar(value) if not isinstance(value, str) else float(value)


def zone_bitset(zone: dict) -> int:
    return int(zone.get("bitset", "0x0"), 16)


def build_zones(x: np.ndarray, y: np.ndarray,
                columns: dict[str, tuple[str, np.ndarray]]
                ) -> tuple[BBox | None, dict[str, dict]]:
    """(bbox, per-column zone maps) for one partition's raw arrays."""
    bbox = None
    if len(x):
        bbox = BBox(float(x.min()), float(y.min()),
                    float(x.max()), float(y.max()))
    zones = {name: column_zone(kind, values)
             for name, (kind, values) in columns.items()}
    return bbox, zones


# -- manifest ----------------------------------------------------------------


@dataclass
class Manifest:
    """The store's one-file index: schema + grid + partition zone maps."""

    name: str
    partition_rows: int
    grid_nx: int
    grid_ny: int
    grid_bbox: BBox | None
    time_column: str | None
    time_bucket_seconds: int | None
    columns: list[ColumnSpec]
    partitions: list[PartitionInfo]

    @property
    def rows(self) -> int:
        return sum(p.rows for p in self.partitions)

    def column(self, name: str) -> ColumnSpec:
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise SchemaError(
            f"store has no column {name!r}; "
            f"available: {[c.name for c in self.columns]}")

    def to_json(self) -> dict:
        return {
            "format_version": STORE_FORMAT_VERSION,
            "name": self.name,
            "rows": self.rows,
            "partition_rows": self.partition_rows,
            "grid": {
                "nx": self.grid_nx,
                "ny": self.grid_ny,
                "bbox": ([self.grid_bbox.xmin, self.grid_bbox.ymin,
                          self.grid_bbox.xmax, self.grid_bbox.ymax]
                         if self.grid_bbox is not None else None),
            },
            "time": ({"column": self.time_column,
                      "bucket_seconds": self.time_bucket_seconds}
                     if self.time_column is not None else None),
            "columns": [c.to_json() for c in self.columns],
            "partitions": [p.to_json() for p in self.partitions],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Manifest":
        version = int(payload.get("format_version", -1))
        if version > STORE_FORMAT_VERSION:
            raise SchemaError(
                f"store format v{version} is newer than this reader "
                f"(v{STORE_FORMAT_VERSION})")
        grid = payload.get("grid") or {}
        gbox = grid.get("bbox")
        tinfo = payload.get("time")
        return cls(
            name=payload.get("name", "store"),
            partition_rows=int(payload["partition_rows"]),
            grid_nx=int(grid.get("nx", 1)),
            grid_ny=int(grid.get("ny", 1)),
            grid_bbox=BBox(*gbox) if gbox is not None else None,
            time_column=tinfo["column"] if tinfo else None,
            time_bucket_seconds=(int(tinfo["bucket_seconds"])
                                 if tinfo else None),
            columns=[ColumnSpec.from_json(c) for c in payload["columns"]],
            partitions=[PartitionInfo.from_json(p)
                        for p in payload["partitions"]],
        )


def write_manifest(path: Path, manifest: Manifest) -> None:
    tmp = path / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest.to_json(), indent=1) + "\n")
    tmp.replace(path / MANIFEST_NAME)


def read_manifest(path: Path) -> Manifest:
    manifest_path = Path(path) / MANIFEST_NAME
    if not manifest_path.exists():
        raise SchemaError(f"{path} is not a dataset store "
                          f"(no {MANIFEST_NAME})")
    return Manifest.from_json(json.loads(manifest_path.read_text()))


def write_footer(partition_dir: Path, info: PartitionInfo) -> None:
    payload = {"format_version": STORE_FORMAT_VERSION, **info.to_json()}
    (partition_dir / FOOTER_NAME).write_text(
        json.dumps(payload, indent=1) + "\n")


def read_footer(partition_dir: Path) -> PartitionInfo:
    payload = json.loads((Path(partition_dir) / FOOTER_NAME).read_text())
    return PartitionInfo.from_json(payload)
