"""Partition pruning: zone maps vs. viewport, filters, and time brush.

:class:`PartitionPruner` decides which partitions a query can skip
*without changing the answer*.  Every rule is conservative — a
partition is pruned only when its zone maps prove **no row can
contribute**:

* **viewport** — the partition's point bbox misses the canvas window;
  out-of-window points fail the raster pass's validity mask anyway, so
  skipping the partition is answer-preserving;
* **filters** — the filter AST is walked with per-node ``maybe_match``
  rules against column min/max, NaN counts, and category bitsets.
  The subtle cases are encoded exactly against the semantics of
  :mod:`repro.table.filters`: ``!=`` keeps any partition containing
  NaNs (``NaN != v`` is True), an unknown categorical label under
  ``==`` matches nothing (prunable) but under ``!=`` matches
  everything (never prunable), and ``Not(...)`` is never pruned —
  a sound "maybe" for an inner node does not negate to a sound
  "maybe not";
* **time brush** — a :class:`~repro.table.TimeRange` is half-open
  ``[start, end)``, so ``zone.min >= end`` prunes but touching ``end``
  exactly does not keep.

The scanned set is therefore always a superset of the needed set, and
the scan over survivors is bitwise-equal to a scan over everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..raster import Viewport
from ..table.column import CATEGORICAL, NUMERIC, TIMESTAMP
from ..table.filters import (
    And,
    Between,
    Comparison,
    FilterExpr,
    IsIn,
    Not,
    Or,
    TimeRange,
    TrueFilter,
)
from .dataset import Dataset
from .format import ColumnSpec, PartitionInfo, zone_bitset, zone_max, zone_min


@dataclass
class PruneResult:
    """Survivor indices (manifest order) plus accounting."""

    indices: list[int]
    total: int
    pruned_empty: int = 0
    pruned_viewport: int = 0
    pruned_filter: int = 0
    rows_total: int = 0
    rows_scanned: int = 0
    bytes_scanned: int = 0

    @property
    def pruned(self) -> int:
        return self.total - len(self.indices)

    def stats(self) -> dict:
        """The ``stats["store"]`` partition payload."""
        return {
            "partitions": {
                "total": self.total,
                "pruned": self.pruned,
                "scanned": len(self.indices),
            },
            "pruned_by": {
                "empty": self.pruned_empty,
                "viewport": self.pruned_viewport,
                "filter": self.pruned_filter,
            },
            "rows": {
                "total": self.rows_total,
                "scanned": self.rows_scanned,
            },
            "bytes_scanned": self.bytes_scanned,
        }


@dataclass
class PartitionPruner:
    """Zone-map pruning over one dataset's manifest."""

    dataset: Dataset
    _schema: dict[str, ColumnSpec] = field(init=False)

    def __post_init__(self):
        self._schema = {spec.name: spec
                        for spec in self.dataset.manifest.columns}

    def prune(self, filters: tuple[FilterExpr, ...] = (),
              viewport: Viewport | None = None) -> PruneResult:
        """Survivors of ``filters`` + ``viewport`` in manifest order."""
        partitions = self.dataset.partitions
        result = PruneResult(indices=[], total=len(partitions),
                             rows_total=sum(p.rows for p in partitions))
        for index, info in enumerate(partitions):
            if info.rows == 0:
                result.pruned_empty += 1
                continue
            if (viewport is not None and info.bbox is not None
                    and not info.bbox.intersects(viewport.bbox)):
                result.pruned_viewport += 1
                continue
            if any(not self.maybe_match(expr, info) for expr in filters):
                result.pruned_filter += 1
                continue
            result.indices.append(index)
            result.rows_scanned += info.rows
            result.bytes_scanned += info.nbytes
        return result

    # -- per-node rules ----------------------------------------------------

    def maybe_match(self, expr: FilterExpr, info: PartitionInfo) -> bool:
        """Could any row of ``info`` satisfy ``expr``?  False only when
        the zone maps prove it; unknown node types answer True."""
        if isinstance(expr, TrueFilter):
            return True
        if isinstance(expr, And):
            return (self.maybe_match(expr.left, info)
                    and self.maybe_match(expr.right, info))
        if isinstance(expr, Or):
            return (self.maybe_match(expr.left, info)
                    or self.maybe_match(expr.right, info))
        if isinstance(expr, Not):
            # "no row can match inner" does not imply "every row
            # matches Not(inner)" is false — stay conservative.
            return True
        if isinstance(expr, Comparison):
            return self._maybe_comparison(expr, info)
        if isinstance(expr, Between):
            return self._maybe_between(expr, info)
        if isinstance(expr, IsIn):
            return self._maybe_isin(expr, info)
        if isinstance(expr, TimeRange):
            return self._maybe_time_range(expr, info)
        return True

    def _zone(self, column: str, info: PartitionInfo
              ) -> tuple[ColumnSpec, dict] | None:
        spec = self._schema.get(column)
        zone = info.zones.get(column)
        if spec is None or zone is None:
            return None  # unknown column: scan, let execution raise
        return spec, zone

    def _maybe_comparison(self, expr: Comparison,
                          info: PartitionInfo) -> bool:
        found = self._zone(expr.column, info)
        if found is None:
            return True
        spec, zone = found
        if spec.kind == CATEGORICAL:
            return self._maybe_categorical(expr, spec, zone)
        if not isinstance(expr.value, (int, float, np.integer, np.floating)):
            return True
        value = float(expr.value)
        lo, hi = zone_min(zone), zone_max(zone)
        nan_count = int(zone.get("nan_count", 0))
        if expr.op == "!=":
            # NaN != v is True, so NaN rows always match.
            if nan_count > 0:
                return True
            if lo is None:
                return False  # no rows with values at all
            return not (lo == hi == value)
        if lo is None:
            # All-NaN (or valueless): <, <=, >, >=, == all evaluate
            # False against NaN.
            return False
        if expr.op == "<":
            return lo < value
        if expr.op == "<=":
            return lo <= value
        if expr.op == ">":
            return hi > value
        if expr.op == ">=":
            return hi >= value
        return lo <= value <= hi  # ==

    @staticmethod
    def _maybe_categorical(expr: Comparison, spec: ColumnSpec,
                           zone: dict) -> bool:
        value = expr.value
        if isinstance(value, str):
            try:
                code = spec.categories.index(value)
            except ValueError:
                # Unknown label: == matches nothing, != matches all.
                return expr.op == "!="
        elif isinstance(value, (int, np.integer)):
            code = int(value)
        else:
            return True
        bits = zone_bitset(zone)
        if code < 0:
            # A negative code matches no stored row: == prunes, != keeps.
            return expr.op != "=="
        if expr.op == "==":
            return bool(bits >> code & 1)
        if expr.op == "!=":
            # Prunable only when every row holds exactly this code.
            return bits != (1 << code)
        return True  # <, <= etc. raise at scan time; don't hide that

    def _maybe_between(self, expr: Between, info: PartitionInfo) -> bool:
        found = self._zone(expr.column, info)
        if found is None:
            return True
        spec, zone = found
        if spec.kind not in (NUMERIC, TIMESTAMP):
            return True
        lo, hi = zone_min(zone), zone_max(zone)
        if lo is None:
            return False  # all-NaN: NaN fails both closed comparisons
        try:
            want_lo, want_hi = float(expr.lo), float(expr.hi)
        except (TypeError, ValueError):
            return True
        return hi >= want_lo and lo <= want_hi

    def _maybe_isin(self, expr: IsIn, info: PartitionInfo) -> bool:
        found = self._zone(expr.column, info)
        if found is None:
            return True
        spec, zone = found
        if spec.kind == CATEGORICAL:
            bits = zone_bitset(zone)
            for value in expr.values:
                code = None
                if isinstance(value, str):
                    if value in spec.categories:
                        code = spec.categories.index(value)
                elif isinstance(value, (int, np.integer)):
                    code = int(value)
                if code is not None and code >= 0 and bits >> code & 1:
                    return True
            return False  # no listed label present (or none resolvable)
        lo, hi = zone_min(zone), zone_max(zone)
        if lo is None:
            return False  # all-NaN: NaN is not isin anything
        for value in expr.values:
            if isinstance(value, (int, float, np.integer, np.floating)) \
                    and lo <= float(value) <= hi:
                return True
        return False

    def _maybe_time_range(self, expr: TimeRange,
                          info: PartitionInfo) -> bool:
        found = self._zone(expr.column, info)
        if found is None:
            return True
        spec, zone = found
        if spec.kind != TIMESTAMP:
            return True  # scan raises the proper QueryError
        lo, hi = zone_min(zone), zone_max(zone)
        if lo is None:
            return False
        # Half-open [start, end): a partition whose minimum sits exactly
        # at `end` holds no matching rows.
        return hi >= int(expr.start) and lo < int(expr.end)
