"""Out-of-core execution: raster joins over pruned store partitions.

The raster join is partition-pipelined (3DPipe-style): zone maps prune
the manifest, then the surviving partitions stream one at a time
through filter → project → scatter into a **shared canvas**, and the
polygon/gather passes run once against the finished canvases.  Peak
memory is O(partition + canvas), never O(dataset).

**Bitwise equality with the in-memory engine is a design invariant,
not an accident.**  The in-memory point pass accumulates each canvas
with one ``np.bincount`` over the whole table — a strictly
element-sequential ``canvas[pix[i]] += v[i]`` loop.  ``np.add.at`` is
the same sequential loop, so continuing it partition-by-partition in
manifest order reproduces the exact floating-point fold of one
bincount over the concatenated table (COUNT partials are
integer-valued, hence exact under any fold; MIN/MAX are order-free
reductions).  Everything downstream of the canvases (gather join,
boundary-mass bounds) is byte-identical shared code.  The parallel
scan shards *partitions* across fork workers and merges per-worker
canvases — exact for COUNT/MIN/MAX, and for SUM/AVG within the usual
<= 1e-12 reassociation tolerance (bitwise when values are
integer-valued).

Three paths, mirroring the in-memory backends:

* ``store-bounded`` — one canvas at the planned resolution;
* ``store-tiled``   — virtual canvases beyond the texture cap; each
  tile's canvases are accumulated from the partitions whose bbox
  touches the tile, then folded through the *same*
  :func:`~repro.core.tiling.fold_tile_join` the in-memory tiled join
  uses;
* the parallel scan — engaged by the shared
  :class:`~repro.core.parallel.ParallelConfig` decision once enough
  rows survive pruning.
"""

from __future__ import annotations

import time

import numpy as np

from .. import kernels
from ..core.aggregates import (
    AVG,
    BOUNDABLE_AGGREGATES,
    COUNT,
    MAX,
    MIN,
    SUM,
    PartialAggregate,
)
from ..core.bounded import _join_covered
from ..core.bounds import (
    boundary_mass_bounds,
    epsilon_for_viewport,
    resolution_for_epsilon,
)
from ..core.parallel import _even_ranges, _fork_map
from ..core.pyramid import GridViewport, assembled_bounded_join
from ..core.result import AggregationResult
from ..core.tiling import fold_tile_join, make_tiles
from ..errors import QueryCancelled, QueryError
from ..geometry import BBox
from ..obs.trace import span
from ..raster import Viewport
from ..shard import (
    prescatter_blocks,
    scatter_gather_canvases,
    scatter_gather_tiles,
)
from .dataset import Dataset
from .format import zone_min
from .pruner import PartitionPruner

#: Methods the out-of-core path accepts (the store plans its own
#: bounded/tiled split; index and cube backends need resident data).
STORE_METHODS = ("auto", "bounded", "tiled")

DEFAULT_TILE_PIXELS = 1024

#: Hard ceiling for epsilon-derived virtual resolutions on the tiled
#: path (2^20 pixels along the long axis ~ a trillion-pixel canvas).
MAX_VIRTUAL_RESOLUTION = 1 << 20


# -- canvas accumulation -----------------------------------------------------


def _canvas_kinds(agg: str, with_mass: bool) -> list[str]:
    kinds: list[str] = []
    if agg in (COUNT, AVG):
        kinds.append("count")
    if agg in (SUM, AVG):
        kinds.append("sum")
    if agg == MIN:
        kinds.append("min")
    if agg == MAX:
        kinds.append("max")
    if with_mass:
        kinds.append("mass")
    return kinds


def _empty_canvases(kinds: list[str], num_pixels: int
                    ) -> dict[str, np.ndarray]:
    fills = {"min": np.inf, "max": -np.inf}
    return {kind: np.full(num_pixels, fills.get(kind, 0.0))
            for kind in kinds}


def _project_partition(table, query, viewport
                       ) -> tuple[np.ndarray, np.ndarray | None, int]:
    """Filter + project one partition exactly like
    :func:`repro.core.bounded.rasterize_points` does for the full
    table — same masks, same gathers, same float ops."""
    keep = np.flatnonzero(query.filter_mask(table))
    after_filter = len(keep)
    pixel_ids, valid = viewport.pixel_ids_of(table.x[keep], table.y[keep])
    if not valid.all():
        keep = keep[valid]
        pixel_ids = pixel_ids[valid]
    values = query.values_for(table)
    if values is not None:
        values = values[keep]
    return pixel_ids, values, after_filter


def _accumulate(canvases: dict[str, np.ndarray], pixel_ids: np.ndarray,
                values: np.ndarray | None) -> None:
    """Continue the global element-sequential scatter with one
    partition's points.

    ``scatter_add_at`` (``np.add.at``, or the jitted loop when the
    numba kernel is selected) is unbuffered and applies contributions
    in element order — the same loop ``np.bincount`` runs — so
    chaining it across partitions in manifest order equals one
    bincount over the concatenated table, bit for bit.  COUNT uses
    per-partition bincount partials: integer-valued floats add exactly
    under any grouping.
    """
    kernel = kernels.active()
    if "count" in canvases:
        canvases["count"] += np.bincount(pixel_ids,
                                         minlength=len(canvases["count"]))
    if "sum" in canvases:
        kernel.scatter_add_at(canvases["sum"], pixel_ids, values)
    if "mass" in canvases:
        kernel.scatter_add_at(canvases["mass"], pixel_ids, np.abs(values))
    if len(pixel_ids):
        if "min" in canvases:
            np.minimum.at(canvases["min"], pixel_ids, values)
        if "max" in canvases:
            np.maximum.at(canvases["max"], pixel_ids, values)


def _sum_values_nonnegative(dataset: Dataset, survivors: list[int],
                            value_column: str) -> bool:
    """Zone-map proof that every surviving value is >= 0 and non-NaN.

    When it holds, the sum canvas doubles as the boundary-mass canvas
    (|v| == v), mirroring the in-memory fast path.  When it cannot be
    proven the scan accumulates a separate |v| canvas — which is still
    bitwise-identical to the sum canvas whenever the values turn out
    non-negative, so conservatism never costs equality.
    """
    for index in survivors:
        zone = dataset.partitions[index].zones.get(value_column)
        if zone is None:
            return False
        if int(zone.get("nan_count", 0)) > 0:
            return False
        lo = zone_min(zone)
        if lo is None or lo < 0:
            return False
    return True


# -- the scan ----------------------------------------------------------------


def _scan_canvases(dataset: Dataset, survivors: list[int], query,
                   viewport: Viewport, kinds: list[str], cancel
                   ) -> tuple[dict[str, np.ndarray], dict]:
    """Serial partition scan: the bitwise-reference accumulation."""
    canvases = _empty_canvases(kinds, viewport.num_pixels)
    after_filter = in_viewport = 0
    for index in survivors:
        if cancel is not None and cancel.is_set():
            raise QueryCancelled("store scan cancelled between partitions")
        table = dataset.partition_table(index)
        pixel_ids, values, n_filter = _project_partition(
            table, query, viewport)
        after_filter += n_filter
        in_viewport += len(pixel_ids)
        _accumulate(canvases, pixel_ids, values)
    stats = {"points_after_filter": after_filter,
             "points_in_viewport": in_viewport}
    return canvases, stats


def _scan_canvases_parallel(dataset: Dataset, survivors: list[int], query,
                            viewport: Viewport, kinds: list[str],
                            workers: int, cancel
                            ) -> tuple[dict[str, np.ndarray], dict, bool]:
    """Partition-sharded scan across fork workers.

    Workers inherit the dataset copy-on-write and mmap their own
    shards; per-worker canvases merge in shard order (additive kinds
    add, min/max reduce).  Fork children cannot observe a parent-set
    cancel token — the caller rechecks after the pool returns.
    """
    def shard(lo: int, hi: int):
        canvases = _empty_canvases(kinds, viewport.num_pixels)
        after_filter = in_viewport = 0
        for index in survivors[lo:hi]:
            table = dataset.partition_table(index)
            pixel_ids, values, n_filter = _project_partition(
                table, query, viewport)
            after_filter += n_filter
            in_viewport += len(pixel_ids)
            _accumulate(canvases, pixel_ids, values)
        return canvases, after_filter, in_viewport

    ranges = _even_ranges(len(survivors), min(workers, len(survivors)))
    results, pooled = _fork_map(shard, ranges, workers)
    merged = _empty_canvases(kinds, viewport.num_pixels)
    after_filter = in_viewport = 0
    for canvases, n_filter, n_viewport in results:
        after_filter += n_filter
        in_viewport += n_viewport
        for kind in kinds:
            if kind == "min":
                np.minimum(merged[kind], canvases[kind], out=merged[kind])
            elif kind == "max":
                np.maximum(merged[kind], canvases[kind], out=merged[kind])
            else:
                merged[kind] += canvases[kind]
    stats = {"points_after_filter": after_filter,
             "points_in_viewport": in_viewport,
             "shards": len(ranges)}
    return merged, stats, pooled


# -- entry point -------------------------------------------------------------


def execute_dataset(ctx, plan, method: str = "auto") -> AggregationResult:
    """Run one spatial aggregation out-of-core over a :class:`Dataset`.

    Mirrors the engine contract: fills ``plan.decision`` (the
    ``stats["plan"]`` payload) and returns a result carrying
    ``stats["store"]`` with partition pruning and mount accounting.
    """
    t0 = time.perf_counter()
    dataset: Dataset = plan.table
    regions, query = plan.regions, plan.query
    if method not in STORE_METHODS:
        raise QueryError(
            f"method {method!r} is not available out-of-core; a dataset "
            f"store accepts {STORE_METHODS} (materialize with "
            f"Dataset.to_table() for the full backend registry)")
    if plan.exact:
        raise QueryError(
            "exact=True is not supported out-of-core; materialize with "
            "Dataset.to_table() for exact execution")

    # -- plan the canvas ---------------------------------------------------
    if plan.epsilon is not None:
        resolution = resolution_for_epsilon(
            regions.bbox, plan.epsilon,
            max_resolution=MAX_VIRTUAL_RESOLUTION)
    elif plan.resolution is not None:
        resolution = int(plan.resolution)
    elif plan.viewport is not None:
        resolution = max(plan.viewport.width, plan.viewport.height)
    else:
        resolution = ctx.default_resolution

    over_cap = (plan.viewport is None
                and resolution > ctx.max_canvas_resolution)
    if method == "tiled":
        if plan.viewport is not None:
            raise QueryError(
                "the tiled store path plans its own viewport; pass "
                "resolution/epsilon instead")
        tiled = True
    elif method == "bounded":
        if over_cap:
            raise QueryError(
                f"resolution {resolution} exceeds the canvas cap "
                f"{ctx.max_canvas_resolution}; use method='tiled'")
        tiled = False
    else:
        tiled = over_cap

    pruner = PartitionPruner(dataset)
    if tiled:
        result = _execute_tiled(ctx, dataset, pruner, plan, resolution)
    elif isinstance(plan.viewport, GridViewport):
        result = _execute_assembled(ctx, dataset, pruner, plan, resolution)
    else:
        result = _execute_bounded(ctx, dataset, pruner, plan, resolution)
    result.stats["store"]["dataset"] = dataset.name
    result.stats["store"]["path"] = str(dataset.path)
    result.stats["store"]["mounted"] = dataset.mount_stats()
    result.stats["time_total_s"] = time.perf_counter() - t0
    return result


def _plan_payload(ctx, plan, dataset, prune, chosen, method,
                  resolution, parallel_decision,
                  shard_decision=None) -> dict:
    if shard_decision is None:
        shard_decision = ctx.parallel.decide_shards(
            len(prune.indices), prune.rows_scanned)
    return {
        "inputs": {
            "n_points": len(dataset),
            "n_regions": len(plan.regions),
            "agg": plan.query.agg,
            "n_filters": len(plan.query.filters),
            "resolution": resolution,
            "canvas_cap": ctx.max_canvas_resolution,
            "store_partitions": prune.total,
            "store_scanned": len(prune.indices),
            "rows_scanned": prune.rows_scanned,
        },
        "decision": {"chosen": chosen, "planned": False,
                     "requested": method},
        "parallel": parallel_decision,
        "shards": shard_decision,
        "degraded": None,
    }


def _execute_bounded(ctx, dataset, pruner, plan,
                     resolution) -> AggregationResult:
    regions, query = plan.regions, plan.query
    viewport = plan.viewport or ctx.plan_viewport(regions, resolution,
                                                  None)
    with span("store.prune") as sp:
        prune = pruner.prune(query.filters, viewport)
    sp.set(scanned=len(prune.indices), pruned=prune.pruned)
    survivors = prune.indices

    agg = query.agg
    nonneg = (agg == SUM and _sum_values_nonnegative(
        dataset, survivors, query.value_column))
    with_mass = agg == SUM and not nonneg
    kinds = _canvas_kinds(agg, with_mass)

    decision = ctx.parallel.decide(prune.rows_scanned)
    shard_decision = ctx.parallel.decide_shards(len(survivors),
                                                prune.rows_scanned)
    plan.decision = _plan_payload(ctx, plan, dataset, prune,
                                  "store-bounded", plan.method, resolution,
                                  decision, shard_decision)

    t_points0 = time.perf_counter()
    pooled = False
    with span("store.scan") as sp:
        if shard_decision["use"]:
            canvases, scan_stats, pooled = scatter_gather_canvases(
                dataset, survivors, query, viewport, kinds,
                shard_decision, plan.cancel)
            if plan.cancel is not None and plan.cancel.is_set():
                raise QueryCancelled("store scan cancelled")
        elif decision["use"] and len(survivors) > 1:
            canvases, scan_stats, pooled = _scan_canvases_parallel(
                dataset, survivors, query, viewport, kinds,
                decision["workers"], plan.cancel)
            if plan.cancel is not None and plan.cancel.is_set():
                raise QueryCancelled("store scan cancelled")
        else:
            canvases, scan_stats = _scan_canvases(
                dataset, survivors, query, viewport, kinds, plan.cancel)
    sp.set(mode="parallel" if pooled else "serial",
           partitions=len(survivors))
    t_points = time.perf_counter() - t_points0

    t_join0 = time.perf_counter()
    with span("store.join"):
        fragments = ctx.fragments_for(regions, viewport)
        estimate = _join_covered(fragments, canvases, agg)
        lower = upper = None
        if agg in BOUNDABLE_AGGREGATES:
            if agg == COUNT:
                mass = canvases["count"]
            elif with_mass:
                mass = canvases["mass"]
            else:
                # Proven non-negative: |v| == v, the sum canvas is the
                # mass.
                mass = canvases["sum"]
            lower, upper = boundary_mass_bounds(fragments, estimate, mass)
    t_join = time.perf_counter() - t_join0

    stats = {
        "store": prune.stats(),
        "points_total": len(dataset),
        **scan_stats,
        "canvas_pixels": viewport.num_pixels,
        "epsilon_world_units": epsilon_for_viewport(viewport),
        "time_point_pass_s": t_points,
        "time_join_s": t_join,
        "parallel": {"mode": "parallel" if pooled else "serial",
                     "pooled": pooled,
                     "workers": (shard_decision["shards"]
                                 if shard_decision["use"]
                                 else decision.get("workers", 1))},
    }
    return AggregationResult(
        regions=regions, values=estimate,
        method="store-bounded-raster-join",
        lower=lower, upper=upper, exact=False, stats=stats)


def _store_block_scatter(dataset, survivors, query, viewport):
    """Block scatter source streaming store partitions.

    Partitions stream in manifest order and accumulate with the same
    unbuffered ops as :func:`_accumulate`, so each pixel's contribution
    sequence matches the serial reference scan bit for bit (the block
    merely restricts *which* pixels are accumulated).  ``survivors``
    must be pruned by **filters only** — a block cached at a viewport
    edge covers pixels outside that viewport, and viewport pruning
    would silently drop their mass, poisoning the block for the next
    pan that exposes them.
    """
    grid = viewport.grid
    level = viewport.level
    size = grid.block
    scale = 1 << level
    infos = dataset.partitions
    # after_filter keyed by partition — a partition paged for several
    # blocks counts its surviving rows once, like the reference scan.
    scanned = {"after_filter": {}, "partitions": 0}

    def scatter(bx, by, kinds):
        c0 = bx * size * scale
        r0 = by * size * scale
        bbox = BBox(grid.x0 + (c0 - 1) * grid.pw,
                    grid.y0 + (r0 - 1) * grid.ph,
                    grid.x0 + (c0 + size * scale + 1) * grid.pw,
                    grid.y0 + (r0 + size * scale + 1) * grid.ph)
        flat = _empty_canvases(list(kinds), size * size)
        points = 0
        for index in survivors:
            info = infos[index]
            if info.bbox is not None and not info.bbox.intersects(bbox):
                continue
            scanned["partitions"] += 1
            table = dataset.partition_table(index)
            rows = np.flatnonzero(query.filter_mask(table))
            scanned["after_filter"][index] = len(rows)
            gx = np.floor((table.x[rows] - grid.x0)
                          / grid.pw).astype(np.int64)
            gy = np.floor((table.y[rows] - grid.y0)
                          / grid.ph).astype(np.int64)
            lx = (gx >> level) - bx * size
            ly = (gy >> level) - by * size
            keep = (lx >= 0) & (lx < size) & (ly >= 0) & (ly < size)
            if not keep.all():
                rows, lx, ly = rows[keep], lx[keep], ly[keep]
            pix = ly * size + lx
            values = query.values_for(table)
            if values is not None:
                values = values[rows]
            _accumulate(flat, pix, values)
            points += len(pix)
        return ({kind: plane.reshape(size, size)
                 for kind, plane in flat.items()}, points)

    return scatter, scanned


def _execute_assembled(ctx, dataset, pruner, plan,
                       resolution) -> AggregationResult:
    """The bounded store path under a grid-snapped viewport: canvases
    assemble from cached pyramid blocks and only uncovered blocks
    stream partitions.  Answers are bitwise-equal to
    :func:`_execute_bounded`'s serial reference (SUM's mass canvas is
    the ``|v|`` scatter, which *is* the sum canvas bitwise whenever the
    values are non-negative — the fast path the direct scan proves via
    zone maps)."""
    regions, query = plan.regions, plan.query
    viewport: GridViewport = plan.viewport
    # Filters only — block content must be viewport-independent (see
    # _store_block_scatter); the viewport still prunes the per-block
    # partition stream via the block/partition bbox test.
    with span("store.prune") as sp:
        prune = pruner.prune(query.filters, None)
    sp.set(scanned=len(prune.indices), pruned=prune.pruned)
    shard_decision = ctx.parallel.decide_shards(len(prune.indices),
                                                prune.rows_scanned)
    plan.decision = _plan_payload(
        ctx, plan, dataset, prune, "store-pyramid", plan.method, resolution,
        {"use": False, "reason": "pyramid assembly"}, shard_decision)

    scatter, scanned = _store_block_scatter(dataset, prune.indices, query,
                                            viewport)
    shard_stats = None
    if shard_decision["use"]:
        # Scatter the uncovered blocks across forked shards first; the
        # returned block-cache deltas install under the same keys, so
        # the assembly below finds every block hot and the answer stays
        # bitwise-identical to the serial scatter.
        shard_stats = prescatter_blocks(
            ctx, dataset, dataset, query, viewport, scatter, scanned,
            shard_decision, plan.cancel)
    # Coarse SUM/mass blocks are never derived by reduction out-of-core
    # (no integer-valuedness proof without scanning); COUNT/MIN/MAX
    # still derive.
    with span("store.join"):
        result = assembled_bounded_join(
            ctx, dataset, regions, query, viewport,
            fragments=ctx.fragments_for(regions, viewport),
            scatter=scatter, derive_sums=False,
            method="store-pyramid-raster-join")
    result.stats["points_after_filter"] = sum(
        scanned["after_filter"].values())
    result.stats["store"] = prune.stats()
    result.stats["store"]["partitions_paged"] = scanned["partitions"]
    if shard_stats is not None:
        result.stats["shards"] = shard_stats
        pooled = shard_stats["pooled"]
        result.stats["parallel"] = {
            "mode": "parallel" if pooled else "serial", "pooled": pooled,
            "workers": shard_decision["shards"],
            "reason": "sharded block pre-scatter"}
    else:
        result.stats["parallel"] = {"mode": "serial", "pooled": False,
                                    "workers": 1,
                                    "reason": "pyramid assembly"}
    return result


def _execute_tiled(ctx, dataset, pruner, plan, resolution,
                   tile_pixels: int = DEFAULT_TILE_PIXELS
                   ) -> AggregationResult:
    regions, query = plan.regions, plan.query
    agg = query.agg
    viewport = Viewport.fit(regions.bbox, resolution)
    with span("store.prune") as sp:
        prune = pruner.prune(query.filters, viewport)
    sp.set(scanned=len(prune.indices), pruned=prune.pruned)
    survivors = prune.indices
    plan.decision = _plan_payload(
        ctx, plan, dataset, prune, "store-tiled", plan.method, resolution,
        {"use": False, "reason": "store tiled path scans serially"})

    tiles = make_tiles(viewport, tile_pixels)
    geometries = list(regions.geometries)
    geom_boxes = [g.bbox for g in geometries]
    kinds = _canvas_kinds(agg, with_mass=(agg == SUM))

    shard_decision = ctx.parallel.decide_shards(len(survivors),
                                                prune.rows_scanned)
    if shard_decision["use"] and len(tiles) <= 1:
        shard_decision = {**shard_decision, "use": False,
                          "reason": "single tile"}
    plan.decision["shards"] = shard_decision
    if shard_decision["use"]:
        return _finish_tiled(ctx, dataset, plan, prune, resolution,
                             viewport, tiles, tile_pixels, kinds,
                             shard_decision)

    part = PartialAggregate.empty(agg, len(regions))
    mass_in = np.zeros(len(regions))
    mass_out = np.zeros(len(regions))
    partitions_paged = 0

    with span("store.scan", mode="tiled", tiles=len(tiles)):
        for tile_vp, col0, row0 in tiles:
            if plan.cancel is not None and plan.cancel.is_set():
                raise QueryCancelled(
                    "tiled store scan cancelled between tiles")
            local_ids = [gid for gid, gb in enumerate(geom_boxes)
                         if gb.intersects(tile_vp.bbox)]
            if not local_ids:
                # The in-memory tiled join also folds nothing here.
                continue
            canvases = _empty_canvases(kinds, tile_vp.num_pixels)
            for index in survivors:
                info = dataset.partitions[index]
                if info.bbox is not None and \
                        not info.bbox.intersects(tile_vp.bbox):
                    continue
                partitions_paged += 1
                table = dataset.partition_table(index)
                mask = query.filter_mask(table)
                values = query.values_for(table)
                x = table.x[mask]
                y = table.y[mask]
                if values is not None:
                    values = values[mask]
                ix, iy = viewport.pixel_of(x, y)
                sel = ((ix >= col0) & (ix < col0 + tile_vp.width)
                       & (iy >= row0) & (iy < row0 + tile_vp.height))
                local_pix = ((iy[sel] - row0) * tile_vp.width
                             + (ix[sel] - col0))
                local_vals = values[sel] if values is not None else None
                _accumulate(canvases, local_pix, local_vals)
            mass = None
            if agg in BOUNDABLE_AGGREGATES:
                mass = (canvases["count"] if agg == COUNT
                        else canvases["mass"])
            fold_tile_join(geometries, local_ids, query, tile_vp, canvases,
                           mass, part, mass_in, mass_out)

    estimate = part.finalize()
    lower = upper = None
    if agg in BOUNDABLE_AGGREGATES:
        lower = estimate - mass_in
        upper = estimate + mass_out

    stats = {
        "store": prune.stats(),
        "points_total": len(dataset),
        "tiles": len(tiles),
        "resolution": resolution,
        "tile_pixels": tile_pixels,
        "partitions_paged": partitions_paged,
        "epsilon_world_units": viewport.pixel_diag,
        "parallel": {"mode": "serial", "pooled": False, "workers": 1},
    }
    return AggregationResult(
        regions=regions, values=estimate,
        method="store-tiled-bounded-raster-join",
        lower=lower, upper=upper, exact=False, stats=stats)


def _finish_tiled(ctx, dataset, plan, prune, resolution, viewport, tiles,
                  tile_pixels, kinds, shard_decision) -> AggregationResult:
    """The tiled path's sharded finish: contiguous tile ranges fan out
    across fork workers and the per-shard region vectors merge in
    shard order (see :func:`repro.shard.scatter_gather_tiles`)."""
    regions, query = plan.regions, plan.query
    agg = query.agg
    with span("store.scan", mode="sharded-tiled", tiles=len(tiles)):
        part, mass_in, mass_out, scan_stats, pooled = scatter_gather_tiles(
            dataset, prune.indices, query, regions, viewport, tiles, kinds,
            shard_decision, plan.cancel)
    if plan.cancel is not None and plan.cancel.is_set():
        raise QueryCancelled("tiled store scan cancelled")
    estimate = part.finalize()
    lower = upper = None
    if agg in BOUNDABLE_AGGREGATES:
        lower = estimate - mass_in
        upper = estimate + mass_out
    stats = {
        "store": prune.stats(),
        "points_total": len(dataset),
        "tiles": len(tiles),
        "resolution": resolution,
        "tile_pixels": tile_pixels,
        "partitions_paged": scan_stats["partitions_paged"],
        "shards": scan_stats["shards"],
        "epsilon_world_units": viewport.pixel_diag,
        "parallel": {"mode": "parallel" if pooled else "serial",
                     "pooled": pooled,
                     "workers": shard_decision["shards"]},
    }
    return AggregationResult(
        regions=regions, values=estimate,
        method="store-tiled-bounded-raster-join",
        lower=lower, upper=upper, exact=False, stats=stats)
