"""Building stores: chunked, bounded-memory partition writing.

:class:`DatasetWriter` ingests :class:`~repro.table.PointTable` chunks
and lays them out as fixed-size partitions grouped by a spatial grid
key (x/y cell, optional time bucket).  Ingestion is bounded-memory:
rows are buffered per key, any key reaching ``partition_rows`` is
flushed to disk immediately, and when the total buffered rows exceed
``buffer_rows`` the largest buffers are evicted as (possibly partial)
partitions.  The writer never needs more than one chunk plus the
buffer budget resident — that is what lets it sit at the end of a
chunked CSV reader or a live :class:`~repro.stream.PointStream`.

Category domains are **global and append-only**: each categorical
column keeps one label list in the manifest, chunk codes are re-encoded
on ingest, and new labels append — so partitions written years apart
remain code-compatible and zone-map bitsets never go stale.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import numpy as np

from ..errors import SchemaError
from ..geometry import BBox
from ..table import PointTable
from ..table.column import CATEGORICAL, TIMESTAMP
from .format import (
    KIND_DTYPES,
    ColumnSpec,
    Manifest,
    PartitionInfo,
    build_zones,
    column_filename,
    read_manifest,
    write_footer,
    write_manifest,
)

DEFAULT_PARTITION_ROWS = 65_536
DEFAULT_GRID = 8


class DatasetWriter:
    """Write a partitioned columnar store from table chunks.

    Use as a context manager; :meth:`close` flushes every buffer and
    writes the manifest.  ``append=True`` reopens an existing store and
    adds partitions (schema and grid come from its manifest).
    """

    def __init__(self, path, *, partition_rows: int = DEFAULT_PARTITION_ROWS,
                 grid: int = DEFAULT_GRID,
                 time_column: str | None = None,
                 time_bucket_seconds: int | None = None,
                 grid_bbox: BBox | None = None,
                 name: str | None = None,
                 buffer_rows: int | None = None,
                 append: bool = False):
        if partition_rows < 1:
            raise SchemaError("partition_rows must be >= 1")
        self.path = Path(path)
        self.partition_rows = int(partition_rows)
        self.buffer_rows = int(buffer_rows or 4 * self.partition_rows)
        self.grid_nx = self.grid_ny = max(1, int(grid))
        self.grid_bbox = grid_bbox
        self.time_column = time_column
        self.time_bucket_seconds = (int(time_bucket_seconds)
                                    if time_bucket_seconds else None)
        self.name = name
        self._specs: list[ColumnSpec] | None = None
        #: label -> global code, per categorical column.
        self._cat_codes: dict[str, dict[str, int]] = {}
        self._seq = 0
        #: (key, seq, info) triples; manifest is sorted by (key, seq).
        self._partitions: list[tuple[tuple, int, PartitionInfo]] = []
        #: key -> list of field dicts ({"x","y",attr...}) awaiting flush.
        self._buffers: dict[tuple, list[dict[str, np.ndarray]]] = {}
        self._buffered: dict[tuple, int] = {}
        self._buffered_total = 0
        self._closed = False

        if append:
            self._load_existing()
        elif self.path.exists() and any(self.path.iterdir()):
            raise SchemaError(
                f"{self.path} exists and is not empty; pass append=True "
                f"to add partitions to an existing store")
        else:
            self.path.mkdir(parents=True, exist_ok=True)

    def _load_existing(self) -> None:
        manifest = read_manifest(self.path)
        self.name = manifest.name
        self.partition_rows = manifest.partition_rows
        self.grid_nx = manifest.grid_nx
        self.grid_ny = manifest.grid_ny
        self.grid_bbox = manifest.grid_bbox
        self.time_column = manifest.time_column
        self.time_bucket_seconds = manifest.time_bucket_seconds
        self._specs = list(manifest.columns)
        for spec in self._specs:
            if spec.kind == CATEGORICAL:
                self._cat_codes[spec.name] = {
                    label: code for code, label
                    in enumerate(spec.categories)}
        for info in manifest.partitions:
            seq = int(info.directory.lstrip("p"))
            self._partitions.append((info.key, seq, info))
            self._seq = max(self._seq, seq + 1)

    # -- schema ------------------------------------------------------------

    def _init_schema(self, table: PointTable) -> None:
        self._specs = []
        for cname in table.column_names:
            col = table.column(cname)
            self._specs.append(ColumnSpec(cname, col.kind))
            if col.kind == CATEGORICAL:
                self._cat_codes[cname] = {}
        if self.name is None:
            self.name = table.name
        if self.time_bucket_seconds and self.time_column is None:
            # Default to the first timestamp column when bucketing.
            for spec in self._specs:
                if spec.kind == TIMESTAMP:
                    self.time_column = spec.name
                    break
        if self.time_bucket_seconds and self.time_column is not None:
            tspec = next((s for s in self._specs
                          if s.name == self.time_column), None)
            if tspec is None or tspec.kind != TIMESTAMP:
                raise SchemaError(
                    f"time_column {self.time_column!r} is not a timestamp "
                    f"column of the ingested schema")
        if self.grid_bbox is None and len(table):
            self.grid_bbox = table.bbox

    def _check_schema(self, table: PointTable) -> None:
        names = [s.name for s in self._specs]
        if table.column_names != names:
            raise SchemaError(
                f"chunk schema {table.column_names} does not match the "
                f"store's {names}")
        for spec in self._specs:
            kind = table.column(spec.name).kind
            if kind != spec.kind:
                raise SchemaError(
                    f"column {spec.name!r} is {kind}, store has {spec.kind}")

    def _encode(self, table: PointTable) -> dict[str, np.ndarray]:
        """Chunk columns as raw arrays with global categorical codes."""
        fields: dict[str, np.ndarray] = {"x": table.x, "y": table.y}
        for spec in self._specs:
            col = table.column(spec.name)
            if spec.kind != CATEGORICAL:
                fields[spec.name] = col.values
                continue
            lookup = self._cat_codes[spec.name]
            remap = np.empty(len(col.categories), dtype=np.int32)
            for local_code, label in enumerate(col.categories):
                if label not in lookup:
                    lookup[label] = len(lookup)
                remap[local_code] = lookup[label]
            fields[spec.name] = remap[col.values]
        return fields

    # -- keys --------------------------------------------------------------

    def _keys_of(self, table: PointTable) -> np.ndarray:
        """The (cell, bucket) sort key of every row, as one int64."""
        box = self.grid_bbox
        if box is None or box.width <= 0 or box.height <= 0:
            cell = np.zeros(len(table), dtype=np.int64)
        else:
            cx = np.floor((table.x - box.xmin) / box.width
                          * self.grid_nx).astype(np.int64)
            cy = np.floor((table.y - box.ymin) / box.height
                          * self.grid_ny).astype(np.int64)
            # Out-of-grid points clamp to edge cells: the grid is only a
            # locality hint — zone maps are computed from actual data.
            np.clip(cx, 0, self.grid_nx - 1, out=cx)
            np.clip(cy, 0, self.grid_ny - 1, out=cy)
            cell = cy * self.grid_nx + cx
        if self.time_bucket_seconds and self.time_column is not None:
            tvals = table.column(self.time_column).values
            bucket = tvals // self.time_bucket_seconds
        else:
            bucket = np.zeros(len(table), dtype=np.int64)
        return cell * (1 << 32) + (bucket & 0xFFFFFFFF)

    @staticmethod
    def _unpack_key(packed: int) -> tuple[int, int]:
        return (int(packed) >> 32, int(packed) & 0xFFFFFFFF)

    # -- ingestion ---------------------------------------------------------

    def add_chunk(self, table: PointTable) -> None:
        """Buffer one chunk, flushing any partition-sized key groups."""
        if self._closed:
            raise SchemaError("writer is closed")
        if len(table) == 0:
            return
        if self._specs is None:
            self._init_schema(table)
        else:
            self._check_schema(table)
        fields = self._encode(table)

        keys = self._keys_of(table)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        starts = np.flatnonzero(np.concatenate(
            ([True], sorted_keys[1:] != sorted_keys[:-1])))
        bounds = np.append(starts, len(sorted_keys))
        for gi in range(len(starts)):
            sel = order[bounds[gi]:bounds[gi + 1]]
            key = self._unpack_key(sorted_keys[starts[gi]])
            group = {name: np.ascontiguousarray(arr[sel])
                     for name, arr in fields.items()}
            self._buffers.setdefault(key, []).append(group)
            self._buffered[key] = self._buffered.get(key, 0) + len(sel)
            self._buffered_total += len(sel)
            if self._buffered[key] >= self.partition_rows:
                self._flush_key(key, keep_remainder=True)
        # Over the global budget: evict the largest buffers outright so
        # peak memory stays O(chunk + buffer budget).
        while self._buffered_total > self.buffer_rows and self._buffers:
            largest = max(self._buffered, key=self._buffered.get)
            self._flush_key(largest, keep_remainder=False)

    def write_table(self, table: PointTable) -> None:
        """Ingest a whole in-memory table (one big chunk)."""
        self.add_chunk(table)

    # -- flushing ----------------------------------------------------------

    def _flush_key(self, key: tuple, keep_remainder: bool) -> None:
        groups = self._buffers.pop(key, [])
        count = self._buffered.pop(key, 0)
        if not count:
            return
        fields = {name: (np.concatenate([g[name] for g in groups])
                         if len(groups) > 1 else groups[0][name])
                  for name in groups[0]}
        pos = 0
        while count - pos >= self.partition_rows:
            self._write_partition(
                key, {n: a[pos:pos + self.partition_rows]
                      for n, a in fields.items()})
            pos += self.partition_rows
        self._buffered_total -= pos
        if pos == count:
            return
        tail = {n: a[pos:] for n, a in fields.items()}
        if keep_remainder:
            self._buffers[key] = [tail]
            self._buffered[key] = count - pos
        else:
            self._write_partition(key, tail)
            self._buffered_total -= count - pos

    def _write_partition(self, key: tuple,
                         fields: dict[str, np.ndarray]) -> None:
        directory = f"p{self._seq:05d}"
        seq = self._seq
        self._seq += 1
        pdir = self.path / directory
        pdir.mkdir(parents=True, exist_ok=False)
        rows = len(fields["x"])
        nbytes = 0
        zone_inputs: dict[str, tuple[str, np.ndarray]] = {}
        for label, arr, dtype in (("x", fields["x"], "<f8"),
                                  ("y", fields["y"], "<f8")):
            raw = np.ascontiguousarray(arr).astype(dtype, copy=False)
            raw.tofile(pdir / f"{label}.bin")
            nbytes += raw.nbytes
        for i, spec in enumerate(self._specs):
            dtype = KIND_DTYPES[spec.kind]
            raw = np.ascontiguousarray(
                fields[spec.name]).astype(dtype, copy=False)
            raw.tofile(pdir / column_filename(i, spec.name))
            nbytes += raw.nbytes
            zone_inputs[spec.name] = (spec.kind, fields[spec.name])
        bbox, zones = build_zones(fields["x"], fields["y"], zone_inputs)
        info = PartitionInfo(directory, rows, key, bbox, zones,
                             nbytes=nbytes)
        write_footer(pdir, info)
        self._partitions.append((key, seq, info))

    # -- finish ------------------------------------------------------------

    def close(self) -> Path:
        """Flush every buffer (partial partitions included) and write
        the manifest; returns the store path."""
        if self._closed:
            return self.path
        for key in sorted(self._buffers):
            self._flush_key(key, keep_remainder=False)
        self._closed = True
        specs = []
        for spec in (self._specs or []):
            if spec.kind == CATEGORICAL:
                lookup = self._cat_codes[spec.name]
                labels = tuple(sorted(lookup, key=lookup.get))
                specs.append(ColumnSpec(spec.name, spec.kind, labels))
            else:
                specs.append(spec)
        manifest = Manifest(
            name=self.name or "store",
            partition_rows=self.partition_rows,
            grid_nx=self.grid_nx,
            grid_ny=self.grid_ny,
            grid_bbox=self.grid_bbox,
            time_column=(self.time_column
                         if self.time_bucket_seconds else None),
            time_bucket_seconds=self.time_bucket_seconds,
            columns=specs,
            partitions=[info for _, _, info
                        in sorted(self._partitions,
                                  key=lambda item: (item[0], item[1]))],
        )
        write_manifest(self.path, manifest)
        return self.path

    def __enter__(self) -> "DatasetWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif not self._closed:
            # A failed build leaves no half-store behind on fresh paths.
            if not (self.path / "manifest.json").exists():
                shutil.rmtree(self.path, ignore_errors=True)


def build_store(table: PointTable, path, **writer_kwargs):
    """Write ``table`` as a store at ``path`` and open the result."""
    from .dataset import Dataset

    with DatasetWriter(path, **writer_kwargs) as writer:
        writer.write_table(table)
    return Dataset.open(path)


def build_store_from_csv(csv_path, store_path,
                         chunk_rows: int = 100_000,
                         timestamp_columns: tuple[str, ...] = ("t",
                                                               "timestamp"),
                         **writer_kwargs):
    """Stream a CSV into a store without materializing the full table.

    Uses :func:`repro.table.io.iter_csv_chunks`, so peak memory is one
    chunk of parsed rows plus the writer's buffer budget.
    """
    from ..table.io import iter_csv_chunks
    from .dataset import Dataset

    with DatasetWriter(store_path, **writer_kwargs) as writer:
        for chunk in iter_csv_chunks(csv_path, chunk_rows=chunk_rows,
                                     timestamp_columns=timestamp_columns):
            writer.add_chunk(chunk)
    return Dataset.open(store_path)
