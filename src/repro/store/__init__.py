"""Out-of-core dataset store.

Columnar, partitioned, mmap-backed storage for point tables larger
than memory: :class:`DatasetWriter` ingests tables or chunk streams
into spatially-sorted fixed-size partitions with zone-map footers;
:class:`Dataset` opens a store directory and exposes partitions as
zero-copy memmap views; :class:`PartitionPruner` turns zone maps into
answer-preserving partition skips; :func:`execute_dataset` runs the
raster-join pipeline partition-streamed, bitwise-equal to the
in-memory engine.
"""

from .dataset import Dataset
from .execute import execute_dataset
from .format import (
    STORE_FORMAT_VERSION,
    ColumnSpec,
    Manifest,
    PartitionInfo,
    read_manifest,
)
from .pruner import PartitionPruner, PruneResult
from .writer import DatasetWriter, build_store, build_store_from_csv

__all__ = [
    "STORE_FORMAT_VERSION",
    "ColumnSpec",
    "Dataset",
    "DatasetWriter",
    "Manifest",
    "PartitionInfo",
    "PartitionPruner",
    "PruneResult",
    "build_store",
    "build_store_from_csv",
    "execute_dataset",
    "read_manifest",
]
