"""Headless image output.

Urbane renders to an OpenGL window; offline we rasterize choropleths to
plain PPM files (viewable everywhere, zero dependencies) and to ASCII
art for terminal inspection in the examples.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import QueryError

#: Luminance-ordered glyphs for ASCII rendering.
_ASCII_GLYPHS = " .:-=+*#%@"


def image_from_pixels(pixel_values: np.ndarray, width: int, height: int,
                      colors: np.ndarray,
                      background=(255, 255, 255)) -> np.ndarray:
    """Build an (H, W, 3) image from a flat per-pixel class array.

    ``pixel_values`` holds a class index per flat pixel id (-1 =
    background); ``colors`` is the (num_classes, 3) palette.
    """
    flat = np.asarray(pixel_values, dtype=np.int64)
    if flat.size != width * height:
        raise QueryError(
            f"pixel array size {flat.size} != {width}x{height}")
    img = np.empty((width * height, 3), dtype=np.uint8)
    img[:] = np.asarray(background, dtype=np.uint8)
    drawn = flat >= 0
    if drawn.any():
        img[drawn] = colors[flat[drawn]]
    # Flat ids grow upward in y (world convention); images grow downward.
    return img.reshape(height, width, 3)[::-1]


def write_ppm(path, image: np.ndarray) -> None:
    """Write an (H, W, 3) uint8 image as binary PPM (P6)."""
    img = np.ascontiguousarray(image, dtype=np.uint8)
    if img.ndim != 3 or img.shape[2] != 3:
        raise QueryError(f"expected (H, W, 3) image, got {img.shape}")
    height, width, _ = img.shape
    with open(Path(path), "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(img.tobytes())


def read_ppm(path) -> np.ndarray:
    """Read a binary PPM written by :func:`write_ppm`."""
    raw = Path(path).read_bytes()
    if not raw.startswith(b"P6"):
        raise QueryError("not a binary PPM (P6) file")
    # Header: magic, width, height, maxval — whitespace separated.
    parts = raw.split(maxsplit=4)
    width = int(parts[1])
    height = int(parts[2])
    data = parts[4]
    img = np.frombuffer(data[: width * height * 3], dtype=np.uint8)
    return img.reshape(height, width, 3)


def density_image(canvas: np.ndarray, width: int, height: int,
                  ramp: str = "reds", mode: str = "log",
                  background=(255, 255, 255)) -> np.ndarray:
    """Render a per-pixel density canvas (point counts/sums) as an image.

    Zero pixels take the background color; positive values run through
    ``normalize_values`` (log by default — urban densities are heavily
    skewed) and the chosen color ramp.
    """
    from .color import normalize_values, ramp_colors

    flat = np.asarray(canvas, dtype=np.float64)
    if flat.size != width * height:
        raise QueryError(
            f"canvas size {flat.size} != {width}x{height}")
    img = np.empty((width * height, 3), dtype=np.uint8)
    img[:] = np.asarray(background, dtype=np.uint8)
    live = flat > 0
    if live.any():
        t = normalize_values(flat[live], mode=mode)
        img[live] = ramp_colors(ramp, t)
    return img.reshape(height, width, 3)[::-1]


def ascii_render(values: np.ndarray, width: int, height: int,
                 max_cols: int = 78, max_rows: int = 36) -> str:
    """ASCII-art rendering of a flat scalar field (NaN = blank).

    Downsamples the field to the terminal budget by block-averaging and
    maps intensity onto a glyph ramp.  Used by the examples to show the
    choropleth without any image viewer.
    """
    field = np.asarray(values, dtype=np.float64).reshape(height, width)[::-1]
    row_step = max(1, height // max_rows)
    col_step = max(1, width // max_cols)
    rows_out = []
    finite = field[np.isfinite(field)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 1.0
    span = (hi - lo) or 1.0
    for r0 in range(0, height, row_step):
        block_row = field[r0:r0 + row_step]
        line = []
        for c0 in range(0, width, col_step):
            block = block_row[:, c0:c0 + col_step]
            good = block[np.isfinite(block)]
            if good.size == 0:
                line.append(" ")
                continue
            t = (float(good.mean()) - lo) / span
            idx = min(int(t * (len(_ASCII_GLYPHS) - 1) + 0.5),
                      len(_ASCII_GLYPHS) - 1)
            line.append(_ASCII_GLYPHS[idx])
        rows_out.append("".join(line).rstrip())
    return "\n".join(rows_out)
