"""The map view: choropleths over any region resolution.

Figure 1 of the paper shows this view — taxi pickups for one month,
aggregated over the neighborhoods of NYC and colored by value.  The
view runs one spatial aggregation per refresh and paints each region's
rasterized pixels with its value's color; both passes reuse the raster
join's fragment machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import AggregationResult, RegionSet, SpatialAggregation
from ..raster import Viewport
from ..table import PointTable
from .color import colors_for_values
from .datamanager import DataManager
from .render import ascii_render, image_from_pixels, write_ppm


@dataclass
class Choropleth:
    """A rendered choropleth: per-region values + the painted canvas."""

    result: AggregationResult
    viewport: Viewport
    pixel_regions: np.ndarray  # flat region id per pixel, -1 = background
    ramp: str
    mode: str

    @property
    def values(self) -> np.ndarray:
        return self.result.values

    def image(self, background=(255, 255, 255)) -> np.ndarray:
        """(H, W, 3) uint8 image of the choropleth."""
        colors = colors_for_values(self.values, ramp=self.ramp,
                                   mode=self.mode)
        return image_from_pixels(self.pixel_regions, self.viewport.width,
                                 self.viewport.height, colors, background)

    def save_ppm(self, path) -> None:
        write_ppm(path, self.image())

    def ascii(self, max_cols: int = 78, max_rows: int = 36) -> str:
        """Terminal rendering: per-pixel region value as intensity."""
        field = np.full(self.viewport.num_pixels, np.nan)
        drawn = self.pixel_regions >= 0
        vals = self.values[self.pixel_regions[drawn]]
        field[drawn] = vals
        return ascii_render(field, self.viewport.width,
                            self.viewport.height, max_cols, max_rows)


class MapView:
    """Urbane's map view against a :class:`DataManager`."""

    def __init__(self, manager: DataManager, resolution: int = 512,
                 ramp: str = "viridis", mode: str = "sqrt"):
        self.manager = manager
        self.resolution = int(resolution)
        self.ramp = ramp
        self.mode = mode

    def _region_pixels(self, regions: RegionSet,
                       viewport: Viewport) -> np.ndarray:
        """Flat region-id-per-pixel layer (cached via the engine's
        fragment cache; covered boundary pixels paint like interiors)."""
        fragments = self.manager.engine.fragments_for(regions, viewport)
        layer = np.full(viewport.num_pixels, -1, dtype=np.int64)
        layer[fragments.covered_boundary_pixels] = \
            fragments.covered_boundary_polys
        layer[fragments.interior_pixels] = fragments.interior_polys
        return layer

    def choropleth(self, dataset: str, regions: str,
                   query: SpatialAggregation,
                   method: str = "bounded",
                   viewport: Viewport | None = None) -> Choropleth:
        """Aggregate and paint one choropleth layer.

        ``viewport`` customizes the *painted* window (zoom/pan); the
        aggregation itself always runs over the full region extent —
        like Urbane, zooming changes what you see, not what the regions
        count.
        """
        region_set = self.manager.region_set(regions)
        agg_viewport = Viewport.fit(region_set.bbox, self.resolution)
        result = self.manager.aggregate(dataset, regions, query,
                                        method=method,
                                        viewport=agg_viewport)
        paint_viewport = viewport or agg_viewport
        pixel_regions = self._region_pixels(region_set, paint_viewport)
        return Choropleth(result=result, viewport=paint_viewport,
                          pixel_regions=pixel_regions, ramp=self.ramp,
                          mode=self.mode)

    def zoom_to(self, dataset: str, regions: str,
                query: SpatialAggregation, region_name: str,
                margin: float = 0.25,
                method: str = "bounded") -> Choropleth:
        """Choropleth zoomed onto one region (plus a relative margin)."""
        region_set = self.manager.region_set(regions)
        geom = region_set[region_set.id_of(region_name)]
        box = geom.bbox
        pad = margin * max(box.width, box.height)
        viewport = Viewport.fit(box.expand(pad), self.resolution)
        return self.choropleth(dataset, regions, query, method=method,
                               viewport=viewport)

    def heatmap(self, dataset: str, resolution: int | None = None,
                query: SpatialAggregation | None = None
                ) -> tuple[np.ndarray, Viewport]:
        """Raw point-density heat map (no regions), for context layers."""
        from ..raster import scatter_count

        table: PointTable = self.manager.dataset(dataset)
        viewport = Viewport.fit(table.bbox, resolution or self.resolution)
        query = query or SpatialAggregation.count()
        mask = query.filter_mask(table)
        pixel_ids, valid = viewport.pixel_ids_of(table.x[mask],
                                                 table.y[mask])
        canvas = scatter_count(pixel_ids[valid], viewport.num_pixels)
        return canvas, viewport
