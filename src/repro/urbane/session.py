"""Interactive session driver.

The demo's claim is *interactivity*: every user gesture — brushing the
timeline, toggling a filter, switching the spatial resolution, panning
the map — triggers fresh spatial aggregations that must return at
human-in-the-loop latency.  :class:`InteractiveSession` replays such
gesture sequences headlessly against a :class:`DataManager` and records
per-interaction latency; the E8 benchmark and the session example are
built on it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core import AggregationResult, SpatialAggregation
from ..errors import QueryError, ReproError
from ..table import FilterExpr, TimeRange
from .datamanager import DataManager

#: Latency below which an update feels interactive (the usual HCI bar).
INTERACTIVE_THRESHOLD_S = 1.0


def _snap_bbox_viewport(gv, bbox):
    """A world window snapped onto ``gv``'s canvas grid at its level.

    Edges round to the nearest pixel boundary *before* the query is
    keyed, so a window dragged back to (almost) a previous position
    fingerprints identically to it and reuses its cached blocks.
    """
    grid = gv.grid
    pw = grid.pw * (1 << gv.level)
    ph = grid.ph * (1 << gv.level)
    col0 = int(round((bbox.xmin - grid.x0) / pw))
    row0 = int(round((bbox.ymin - grid.y0) / ph))
    width = max(1, int(round((bbox.xmax - bbox.xmin) / pw)))
    height = max(1, int(round((bbox.ymax - bbox.ymin) / ph)))
    return grid.viewport(gv.level, col0, row0, width, height)


@dataclass
class Interaction:
    """One logged gesture: what changed and how long the refresh took."""

    op: str
    detail: str
    latency_s: float
    rows_aggregated: int = 0
    #: Unified-cache lookups this gesture reused / had to build.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Backend the plan resolved to for this gesture.
    backend: str = ""
    #: Execution mode the backend ran in ("parallel" / "serial" / "").
    parallel: str = ""
    #: Pyramid block-cache traffic (zeros off the pyramid path).
    block_hits: int = 0
    block_misses: int = 0
    #: Fraction of canvas pixels served from cached blocks.
    block_reuse: float = 0.0
    #: Whether the server's gesture-speculative prefetcher had already
    #: warmed (or was mid-way through building) this gesture's answer.
    spec_hit: bool = False


@dataclass
class SessionState:
    """Current exploration state (what the UI widgets would show)."""

    dataset: str
    regions: str
    agg: SpatialAggregation = field(
        default_factory=SpatialAggregation.count)
    filters: tuple[FilterExpr, ...] = ()
    time_brush: TimeRange | None = None

    def effective_query(self) -> SpatialAggregation:
        """The aggregation with the session's filters applied."""
        query = SpatialAggregation(self.agg.agg, self.agg.value_column,
                                   self.agg.filters + self.filters)
        if self.time_brush is not None:
            query = query.where(self.time_brush)
        return query


class InteractiveSession:
    """Replays exploration gestures and logs refresh latency."""

    def __init__(self, manager: DataManager, dataset: str, regions: str,
                 method: str = "bounded", resolution: int = 512,
                 workers: int | None = None, tcube: bool = True):
        self.manager = manager
        self.method = method
        self.resolution = int(resolution)
        #: Route timeline brushes through the temporal canvas cube when
        #: one can serve them (built on the first brush, hit afterwards).
        self.tcube = bool(tcube)
        if workers is not None:
            # Per-session worker override; the engine's other parallel
            # knobs (chunk size, thresholds) are left as configured.
            ctx = manager.engine.ctx
            ctx.parallel = ctx.parallel.with_workers(workers)
        self.state = SessionState(dataset=dataset, regions=regions)
        self.log: list[Interaction] = []
        self.last_result: AggregationResult | None = None
        # Grid-snapped viewport driving map gestures; created lazily on
        # the first pan/zoom so sessions that never move the map keep
        # the plain planned-viewport path (and its cache keys).
        self._viewport = None
        # Initial render so the cache state matches a real session
        # (polygons rasterized once when the view opens).
        self._refresh("open", f"{dataset} x {regions}")

    # -- gestures ---------------------------------------------------------

    def set_aggregation(self, agg: SpatialAggregation) -> AggregationResult:
        self.state.agg = agg
        return self._refresh("aggregate", agg.describe())

    def add_filter(self, expr: FilterExpr) -> AggregationResult:
        self.state.filters = self.state.filters + (expr,)
        return self._refresh("filter+", type(expr).__name__)

    def clear_filters(self) -> AggregationResult:
        self.state.filters = ()
        return self._refresh("filter-clear", "")

    def brush_time(self, start: int, end: int,
                   time_column: str = "t") -> AggregationResult:
        if end <= start:
            raise QueryError(f"empty time brush [{start}, {end})")
        self.state.time_brush = TimeRange(time_column, start, end)
        return self._refresh("time-brush", f"[{start}, {end})")

    def clear_time_brush(self) -> AggregationResult:
        self.state.time_brush = None
        return self._refresh("time-brush-clear", "")

    def set_region_level(self, regions: str) -> AggregationResult:
        self.manager.region_set(regions)  # validate early
        self.state.regions = regions
        # The canvas grid is planned per region set; a stale viewport
        # would pin the old world window over the new polygons.
        self._viewport = None
        return self._refresh("resolution", regions)

    # -- map gestures ------------------------------------------------------

    def grid_viewport(self):
        """The session's grid-snapped viewport (created on first use).

        Pinning the canvas to a :class:`~repro.core.pyramid.CanvasGrid`
        makes every later pan/zoom land on block-aligned cache keys, so
        overlapping gestures assemble from cached pyramid blocks
        instead of re-scattering the points.
        """
        if self._viewport is None:
            regions = self.manager.region_set(self.state.regions)
            self._viewport = self.manager.engine.plan_grid_viewport(
                regions, self.resolution)
        return self._viewport

    def pan(self, dx_pixels: float, dy_pixels: float) -> AggregationResult:
        """Shift the map window; snaps to whole pixels on the canvas
        grid so the new frame reuses every block it still overlaps."""
        self._viewport = self.grid_viewport().pan(dx_pixels, dy_pixels)
        return self._refresh("pan", f"({dx_pixels:+g}, {dy_pixels:+g})")

    def zoom(self, factor: float) -> AggregationResult:
        """Zoom the map window; snaps to the pyramid's power-of-two
        levels, so zooming out serves from 2x2-reduced cached blocks."""
        self._viewport = self.grid_viewport().zoom(factor)
        return self._refresh("zoom", f"x{factor:g}")

    def set_viewport(self, bbox) -> AggregationResult:
        """Jump to a world window, snapped to the canvas pixel grid.

        Edges round to the nearest pixel boundary at the current level
        *before* the query is keyed, so a window dragged back to
        (almost) a previous position fingerprints identically to it and
        reuses its cached blocks.
        """
        gv = _snap_bbox_viewport(self.grid_viewport(), bbox)
        self._viewport = gv
        return self._refresh(
            "viewport",
            f"[{gv.col0},{gv.row0}) {gv.width}x{gv.height}@L{gv.level}")

    def set_dataset(self, dataset: str) -> AggregationResult:
        """Switch data set.  Attribute filters are dropped (they refer to
        the old schema, as Urbane's per-dataset filter widgets do); the
        time brush carries over since every data set shares the
        timeline."""
        table = self.manager.dataset(dataset)  # validate early
        self.state.dataset = dataset
        self.state.filters = ()
        # An aggregation over a column the new data set lacks falls back
        # to COUNT (the UI resets its measure dropdown the same way).
        value_column = self.state.agg.value_column
        if value_column is not None and not table.has_column(value_column):
            self.state.agg = SpatialAggregation.count()
        return self._refresh("dataset", dataset)

    # -- internals ----------------------------------------------------------

    def _refresh(self, op: str, detail: str) -> AggregationResult:
        query = self.state.effective_query()
        method = self.method
        if self.tcube and op == "time-brush":
            method = self._brush_method(query)
        t0 = time.perf_counter()
        try:
            result = self.manager.aggregate(
                self.state.dataset, self.state.regions, query,
                method=method, resolution=self.resolution,
                viewport=self._viewport)
        except ReproError:
            # The cube path can decline late (e.g. a brush that stopped
            # aligning after an append); the configured method is always
            # a valid answer.
            if method == self.method:
                raise
            method = self.method
            result = self.manager.aggregate(
                self.state.dataset, self.state.regions, query,
                method=method, resolution=self.resolution,
                viewport=self._viewport)
        latency = time.perf_counter() - t0
        self.last_result = result
        cache = result.stats.get("cache", {})
        blocks = cache.get("blocks", {})
        plan = result.stats.get("plan", {})
        self.log.append(Interaction(
            op=op, detail=detail, latency_s=latency,
            rows_aggregated=result.stats.get("points_after_filter", 0),
            cache_hits=cache.get("query_hits", 0),
            cache_misses=cache.get("query_misses", 0),
            backend=(plan.get("decision") or {}).get("chosen",
                                                     result.method),
            parallel=result.stats.get("parallel", {}).get("mode", ""),
            block_hits=(blocks.get("hits", 0) + blocks.get("derived", 0)),
            block_misses=blocks.get("misses", 0),
            block_reuse=blocks.get("reuse_fraction", 0.0)))
        return result

    def _brush_method(self, query: SpatialAggregation) -> str:
        """Pick the backend for a time-brush gesture.

        A brush only changes the :class:`TimeRange` predicate, which is
        exactly what the temporal canvas cube answers in O(pixels); when
        :func:`tcube_servable` says the cube path applies (aggregate,
        alignment, and budget-wise) the gesture runs ``tcube-raster``
        (building the cube on the first brush, hitting it afterwards).
        """
        from ..core.tcube import tcube_servable

        engine = self.manager.engine
        try:
            table = self.manager.dataset(self.state.dataset)
            regions = self.manager.region_set(self.state.regions)
            viewport = self._viewport or engine.plan_viewport(
                regions, self.resolution, None)
            if tcube_servable(engine.ctx, table, query, viewport):
                return "tcube-raster"
        except ReproError:
            pass
        return self.method

    # -- reporting -------------------------------------------------------------

    def latencies(self) -> np.ndarray:
        return np.array([i.latency_s for i in self.log])

    def summary(self) -> dict:
        """Latency statistics across the logged interactions."""
        lat = self.latencies()
        if len(lat) == 0:
            return {"interactions": 0}
        hits = sum(i.cache_hits for i in self.log)
        misses = sum(i.cache_misses for i in self.log)
        block_hits = sum(i.block_hits for i in self.log)
        block_misses = sum(i.block_misses for i in self.log)
        return {
            "interactions": len(lat),
            "mean_latency_s": float(lat.mean()),
            "max_latency_s": float(lat.max()),
            "p95_latency_s": float(np.quantile(lat, 0.95)),
            "interactive_fraction": float(
                (lat <= INTERACTIVE_THRESHOLD_S).mean()),
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": (hits / (hits + misses)
                               if hits + misses else 0.0),
            "block_hits": block_hits,
            "block_misses": block_misses,
            "block_reuse_rate": (block_hits / (block_hits + block_misses)
                                 if block_hits + block_misses else 0.0),
            "spec_hits": sum(1 for i in self.log if i.spec_hit),
            "parallel_gestures": sum(
                1 for i in self.log if i.parallel == "parallel"),
        }

    def report(self) -> str:
        """Human-readable per-interaction log."""
        lines = [f"{'op':<16} {'detail':<32} {'backend':<10} "
                 f"{'cache':>7} {'blocks':>7} {'spec':>5} {'latency':>9}"]
        for item in self.log:
            lines.append(
                f"{item.op:<16} {item.detail[:32]:<32} "
                f"{item.backend[:10]:<10} "
                f"{item.cache_hits:>3}h{item.cache_misses:>2}m "
                f"{item.block_reuse * 100:5.0f}%b "
                f"{'hit' if item.spec_hit else '-':>5} "
                f"{item.latency_s * 1000:7.1f}ms")
        stats = self.summary()
        lines.append(
            f"-- {stats['interactions']} interactions, "
            f"mean {stats['mean_latency_s'] * 1000:.1f}ms, "
            f"max {stats['max_latency_s'] * 1000:.1f}ms, "
            f"{stats['interactive_fraction'] * 100:.0f}% interactive, "
            f"cache hit rate {stats['cache_hit_rate'] * 100:.0f}%, "
            f"block reuse {stats['block_reuse_rate'] * 100:.0f}%, "
            f"{stats['spec_hits']} speculative hits")
        return "\n".join(lines)


class RemoteSession:
    """An interactive session whose queries run on a query server.

    The same gesture vocabulary as :class:`InteractiveSession`, but the
    data lives behind a ``repro serve`` endpoint: every gesture becomes
    one protocol request through a
    :class:`~repro.serve.client.ServeClient`, so many analysts share
    one engine — and its unified cache, admission control, and query
    coalescing (two sessions brushing the same week coalesce into one
    execution).  Latencies logged here include the network round trip.

    Schema validation is the server's job: a filter over a column the
    served data set lacks comes back as a
    :class:`~repro.errors.QueryError` on the gesture that used it.
    """

    def __init__(self, url_or_client, dataset: str, regions: str,
                 method: str = "auto", resolution: int | None = None,
                 deadline_ms: float | None = None):
        import uuid

        from ..serve.client import ServeClient

        if isinstance(url_or_client, str):
            self.client = ServeClient(url_or_client)
        else:
            self.client = url_or_client
        self.method = method
        self.resolution = resolution
        #: Per-gesture latency budget, degrading precision server-side.
        self.deadline_ms = deadline_ms
        #: Opaque id sent with every request so the server's
        #: gesture-speculative prefetcher models *this* analyst's
        #: stream (never part of cache/coalescing keys).
        self.session_id = uuid.uuid4().hex
        self.state = SessionState(dataset=dataset, regions=regions)
        self.log: list[Interaction] = []
        self.last_result = None  # RemoteResult of the latest gesture
        # Grid-snapped viewport driving map gestures, planned by the
        # server (GET /v1/viewport) on first use so both ends hold the
        # bit-identical grid.
        self._viewport = None
        self._refresh("open", f"{dataset} x {regions}")

    # -- gestures (the InteractiveSession vocabulary) ----------------------

    def set_aggregation(self, agg: SpatialAggregation):
        self.state.agg = agg
        return self._refresh("aggregate", agg.describe())

    def add_filter(self, expr: FilterExpr):
        self.state.filters = self.state.filters + (expr,)
        return self._refresh("filter+", type(expr).__name__)

    def clear_filters(self):
        self.state.filters = ()
        return self._refresh("filter-clear", "")

    def brush_time(self, start: int, end: int, time_column: str = "t"):
        if end <= start:
            raise QueryError(f"empty time brush [{start}, {end})")
        self.state.time_brush = TimeRange(time_column, start, end)
        return self._refresh("time-brush", f"[{start}, {end})")

    def clear_time_brush(self):
        self.state.time_brush = None
        return self._refresh("time-brush-clear", "")

    def set_region_level(self, regions: str):
        self.state.regions = regions
        # The canvas grid is planned per region set; a stale viewport
        # would pin the old world window over the new polygons.
        self._viewport = None
        return self._refresh("resolution", regions)

    def set_dataset(self, dataset: str):
        """Switch data set; attribute filters are dropped (they refer
        to the old schema), matching :meth:`InteractiveSession
        .set_dataset`."""
        self.state.dataset = dataset
        self.state.filters = ()
        return self._refresh("dataset", dataset)

    # -- map gestures ------------------------------------------------------

    def grid_viewport(self):
        """The session's grid-snapped viewport, planned by the server.

        Fetched once per region set via ``GET /v1/viewport``; the wire
        encoding carries only the grid anchor and integer window, so
        the client-side viewport (and every pan/zoom derived from it)
        keys identically to the server's own planning — which is what
        lets the speculative prefetcher predict this session's map
        gestures.
        """
        if self._viewport is None:
            self._viewport = self.client.plan_viewport(
                self.state.regions, self.resolution)
        return self._viewport

    def pan(self, dx_pixels: float, dy_pixels: float):
        """Shift the map window (snapped to whole grid pixels)."""
        self._viewport = self.grid_viewport().pan(dx_pixels, dy_pixels)
        return self._refresh("pan", f"({dx_pixels:+g}, {dy_pixels:+g})")

    def zoom(self, factor: float):
        """Zoom the map window (snapped to power-of-two levels)."""
        self._viewport = self.grid_viewport().zoom(factor)
        return self._refresh("zoom", f"x{factor:g}")

    def set_viewport(self, bbox):
        """Jump to a world window, snapped to the canvas pixel grid."""
        gv = _snap_bbox_viewport(self.grid_viewport(), bbox)
        self._viewport = gv
        return self._refresh(
            "viewport",
            f"[{gv.col0},{gv.row0}) {gv.width}x{gv.height}@L{gv.level}")

    # -- internals ---------------------------------------------------------

    def _refresh(self, op: str, detail: str):
        query = self.state.effective_query()
        t0 = time.perf_counter()
        result = self.client.query(
            self.state.dataset, self.state.regions, query=query,
            method=self.method, resolution=self.resolution,
            deadline_ms=self.deadline_ms, session=self.session_id,
            viewport=self._viewport)
        latency = time.perf_counter() - t0
        self.last_result = result
        stats = result.stats or {}
        cache = stats.get("cache") or {}
        plan = stats.get("plan") or {}
        self.log.append(Interaction(
            op=op, detail=detail, latency_s=latency,
            rows_aggregated=int(stats.get("points_after_filter", 0) or 0),
            cache_hits=int(cache.get("query_hits", 0) or 0),
            cache_misses=int(cache.get("query_misses", 0) or 0),
            backend=(plan.get("decision") or {}).get("chosen",
                                                     result.method),
            parallel=(stats.get("parallel") or {}).get("mode", ""),
            spec_hit=bool((stats.get("speculate") or {}).get("hit"))))
        return result

    # -- reporting ---------------------------------------------------------

    latencies = InteractiveSession.latencies
    summary = InteractiveSession.summary
    report = InteractiveSession.report
