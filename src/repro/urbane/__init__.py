"""Urbane — the visual-analytics framework (headless reproduction).

The views of the demo paper, computed rather than drawn on screen:

* :class:`DataManager` — registered data sets, region resolutions, and
  the shared query engine;
* :class:`MapView` / :class:`Choropleth` — Figure 1's choropleth map
  (PPM/ASCII output);
* :class:`DataExplorationView` — multi-data-set region ranking,
  similarity and comparison;
* :class:`TimelineView` — temporal series and brushing;
* :class:`InteractiveSession` — gesture replay with latency logging,
  the harness behind the interactivity experiments.
"""

from .comparison import ComparisonReport, RegionComparator
from .dashboard import Dashboard, DashboardFrame
from .color import (
    NODATA_RGB,
    available_ramps,
    colors_for_values,
    normalize_values,
    ramp_colors,
)
from .datamanager import DataManager
from .exploration import DataExplorationView, ExplorationMatrix, Indicator
from .mapview import Choropleth, MapView
from .render import (
    ascii_render,
    density_image,
    image_from_pixels,
    read_ppm,
    write_ppm,
)
from .session import (
    INTERACTIVE_THRESHOLD_S,
    Interaction,
    InteractiveSession,
    RemoteSession,
    SessionState,
)
from .timeline import TimelineView, TimeSeries

__all__ = [
    "Choropleth",
    "ComparisonReport",
    "Dashboard",
    "DashboardFrame",
    "DataExplorationView",
    "DataManager",
    "ExplorationMatrix",
    "INTERACTIVE_THRESHOLD_S",
    "Indicator",
    "Interaction",
    "InteractiveSession",
    "MapView",
    "NODATA_RGB",
    "RegionComparator",
    "RemoteSession",
    "SessionState",
    "TimeSeries",
    "TimelineView",
    "ascii_render",
    "available_ramps",
    "colors_for_values",
    "density_image",
    "image_from_pixels",
    "normalize_values",
    "ramp_colors",
    "read_ppm",
    "write_ppm",
]
