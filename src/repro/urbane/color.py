"""Color ramps for choropleth maps.

Small, dependency-free color machinery: a handful of perceptually
ordered ramps (approximations of the usual cartography palettes), value
normalization, and NaN handling (regions with no data render gray, as
in Urbane's map view).
"""

from __future__ import annotations

import numpy as np

from ..errors import QueryError

#: Ramp control points, RGB in [0, 255].
_RAMPS: dict[str, np.ndarray] = {
    # Dark blue -> yellow, viridis-like.
    "viridis": np.array([
        [68, 1, 84], [59, 82, 139], [33, 145, 140],
        [94, 201, 98], [253, 231, 37]], dtype=np.float64),
    # White -> deep red, classic intensity ramp.
    "reds": np.array([
        [255, 245, 240], [252, 187, 161], [251, 106, 74],
        [203, 24, 29], [103, 0, 13]], dtype=np.float64),
    # White -> deep blue.
    "blues": np.array([
        [247, 251, 255], [198, 219, 239], [107, 174, 214],
        [33, 113, 181], [8, 48, 107]], dtype=np.float64),
    # Diverging blue -> white -> red (for signed comparisons).
    "coolwarm": np.array([
        [59, 76, 192], [144, 178, 254], [247, 247, 247],
        [245, 156, 125], [180, 4, 38]], dtype=np.float64),
}

#: Gray used for regions with no data (NaN aggregate).
NODATA_RGB = (190, 190, 190)


def available_ramps() -> tuple[str, ...]:
    return tuple(sorted(_RAMPS))


def ramp_colors(name: str, t: np.ndarray) -> np.ndarray:
    """Sample a ramp at positions ``t`` in [0, 1] -> (n, 3) uint8 RGB."""
    try:
        stops = _RAMPS[name]
    except KeyError:
        raise QueryError(
            f"unknown color ramp {name!r}; available: {available_ramps()}"
        ) from None
    t = np.clip(np.asarray(t, dtype=np.float64), 0.0, 1.0)
    positions = np.linspace(0.0, 1.0, len(stops))
    rgb = np.empty((len(t), 3))
    for channel in range(3):
        rgb[:, channel] = np.interp(t, positions, stops[:, channel])
    return rgb.round().astype(np.uint8)


def normalize_values(values: np.ndarray, mode: str = "linear",
                     vmin: float | None = None,
                     vmax: float | None = None) -> np.ndarray:
    """Map aggregate values to [0, 1] (NaNs pass through as NaN).

    ``linear`` stretches min..max; ``sqrt`` and ``log`` compress heavy
    tails (urban counts are extremely skewed); ``quantile`` ranks the
    values (equal-count classes, what choropleth defaults often use).
    """
    vals = np.asarray(values, dtype=np.float64)
    out = np.full_like(vals, np.nan)
    ok = np.isfinite(vals)
    if not ok.any():
        return out
    v = vals[ok]
    if mode == "quantile":
        order = np.argsort(np.argsort(v))
        out[ok] = order / max(len(v) - 1, 1)
        return out
    if mode == "log":
        v = np.log1p(np.maximum(v, 0.0))
    elif mode == "sqrt":
        v = np.sqrt(np.maximum(v, 0.0))
    elif mode != "linear":
        raise QueryError(f"unknown normalization mode {mode!r}")
    lo = float(v.min()) if vmin is None else vmin
    hi = float(v.max()) if vmax is None else vmax
    if hi <= lo:
        out[ok] = 0.5
        return out
    out[ok] = np.clip((v - lo) / (hi - lo), 0.0, 1.0)
    return out


def colors_for_values(values: np.ndarray, ramp: str = "viridis",
                      mode: str = "linear") -> np.ndarray:
    """Per-region RGB colors for aggregate values (NaN -> gray)."""
    t = normalize_values(values, mode=mode)
    rgb = np.empty((len(t), 3), dtype=np.uint8)
    ok = np.isfinite(t)
    if ok.any():
        rgb[ok] = ramp_colors(ramp, t[ok])
    rgb[~ok] = NODATA_RGB
    return rgb
