"""Region comparison — "why do two regions feel similar? Or different?"

The paper opens with exactly this question.  The comparator combines
the two signal families Urbane exposes:

* the **indicator profile** (the exploration matrix rows): what each
  region *has* — activity, complaints, crime, fares;
* the **temporal rhythm** (the region x time matrix rows): when each
  region *lives* — commuter double peaks vs. nightlife plateaus.

``explain(a, b)`` produces a structured report: an overall similarity
score, the indicators the regions agree on, the sharpest contrasts, and
the rhythm correlation — plus a plain-text rendering for the console.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.heatmatrix import RegionTimeMatrix
from ..errors import QueryError
from .exploration import ExplorationMatrix

#: Normalized-score gap below which two regions "agree" on an indicator.
AGREEMENT_GAP = 0.15
#: Gap above which an indicator counts as a sharp contrast.
CONTRAST_GAP = 0.40


@dataclass
class ComparisonReport:
    """The structured answer to "why do A and B feel similar/different"."""

    region_a: str
    region_b: str
    profile_similarity: float           # 1 = identical indicator profiles
    rhythm_correlation: float | None    # Pearson r of temporal rhythms
    agreements: list[tuple[str, float]] = field(default_factory=list)
    contrasts: list[tuple[str, float]] = field(default_factory=list)
    indicator_deltas: dict[str, float] = field(default_factory=dict)

    @property
    def feels_similar(self) -> bool:
        """The headline verdict: alike in profile and (when known) in
        rhythm."""
        profile_alike = self.profile_similarity >= 0.75
        if self.rhythm_correlation is None:
            return profile_alike
        return profile_alike and self.rhythm_correlation >= 0.5

    def render(self) -> str:
        """Console-friendly explanation."""
        verdict = "similar" if self.feels_similar else "different"
        lines = [
            f"{self.region_a} vs {self.region_b}: feel {verdict}",
            f"  indicator-profile similarity: "
            f"{self.profile_similarity:.2f}",
        ]
        if self.rhythm_correlation is not None:
            lines.append(
                f"  temporal-rhythm correlation: "
                f"{self.rhythm_correlation:+.2f}")
        if self.agreements:
            alike = ", ".join(
                f"{name} (gap {gap:.2f})" for name, gap in self.agreements)
            lines.append(f"  alike on: {alike}")
        if self.contrasts:
            lines.append("  sharpest contrasts:")
            for name, delta in self.contrasts:
                leader = self.region_a if delta > 0 else self.region_b
                lines.append(
                    f"    {name}: {leader} higher by {abs(delta):.2f} "
                    f"(normalized)")
        return "\n".join(lines)


class RegionComparator:
    """Compares regions over an exploration matrix (+ optional rhythms)."""

    def __init__(self, matrix: ExplorationMatrix,
                 rhythm: RegionTimeMatrix | None = None):
        self.matrix = matrix
        self.rhythm = rhythm
        if rhythm is not None:
            rhythm_names = set(rhythm.regions.region_names)
            if not set(matrix.region_names) <= rhythm_names:
                raise QueryError(
                    "rhythm matrix covers different regions than the "
                    "exploration matrix")

    def _profile(self, region: str) -> np.ndarray:
        try:
            idx = self.matrix.region_names.index(region)
        except ValueError:
            raise QueryError(f"unknown region {region!r}") from None
        return self.matrix.normalized[idx]

    def _rhythm_correlation(self, a: str, b: str) -> float | None:
        if self.rhythm is None:
            return None
        ra = self.rhythm.series_for(a)
        rb = self.rhythm.series_for(b)
        if ra.std() == 0 or rb.std() == 0:
            return 0.0
        return float(np.corrcoef(ra, rb)[0, 1])

    def explain(self, region_a: str, region_b: str) -> ComparisonReport:
        """Build the comparison report for two regions."""
        if region_a == region_b:
            raise QueryError("compare two distinct regions")
        pa = self._profile(region_a)
        pb = self._profile(region_b)
        deltas = pa - pb
        shared = np.isfinite(deltas)
        if not shared.any():
            raise QueryError(
                f"{region_a!r} and {region_b!r} share no computed "
                f"indicators")

        names = [ind.name for ind in self.matrix.indicators]
        indicator_deltas = {
            name: float(d) for name, d, ok in zip(names, deltas, shared)
            if ok}
        similarity = float(1.0 - np.abs(deltas[shared]).mean())

        agreements = sorted(
            ((name, abs(d)) for name, d in indicator_deltas.items()
             if abs(d) <= AGREEMENT_GAP),
            key=lambda item: item[1])
        contrasts = sorted(
            ((name, d) for name, d in indicator_deltas.items()
             if abs(d) >= CONTRAST_GAP),
            key=lambda item: -abs(item[1]))

        return ComparisonReport(
            region_a=region_a,
            region_b=region_b,
            profile_similarity=similarity,
            rhythm_correlation=self._rhythm_correlation(region_a, region_b),
            agreements=agreements,
            contrasts=contrasts,
            indicator_deltas=indicator_deltas,
        )

    def most_similar_pair(self) -> tuple[str, str, float]:
        """The two most alike regions under the profile metric."""
        norm = self.matrix.normalized
        names = self.matrix.region_names
        best = (names[0], names[1], -np.inf)
        for i in range(len(names)):
            diffs = norm - norm[i]
            shared = np.isfinite(diffs)
            with np.errstate(invalid="ignore"):
                sim = 1.0 - np.where(shared, np.abs(diffs), 0.0).sum(
                    axis=1) / np.maximum(shared.sum(axis=1), 1)
            sim[i] = -np.inf
            sim[shared.sum(axis=1) == 0] = -np.inf
            j = int(np.argmax(sim))
            if sim[j] > best[2]:
                best = (names[i], names[j], float(sim[j]))
        return best
