"""Urbane's data manager.

The registry a running Urbane instance keeps: named point data sets,
named region sets (one per spatial resolution), and the shared
:class:`SpatialAggregationEngine` every view issues its queries through.
Because every view goes through the one engine, they all share its
unified execution cache — a fragment table rasterized for the map view
is reused by the timeline, the comparison view, and the next gesture.
"""

from __future__ import annotations

from pathlib import Path

from ..core import (
    AggregationResult,
    RegionSet,
    SpatialAggregation,
    SpatialAggregationEngine,
)
from ..errors import QueryError
from ..table import PointTable


class DataManager:
    """Named data sets + region resolutions + the query engine.

    Data sets come in two flavors: in-memory :class:`PointTable`\\ s
    registered eagerly, and on-disk store directories registered
    **lazily** via :meth:`add_store` — those are opened (one manifest
    read, zero column bytes) only when the first query names them, and
    each mounts partitions under its own LRU memory budget.
    """

    def __init__(self, engine: SpatialAggregationEngine | None = None):
        self.engine = engine or SpatialAggregationEngine()
        self._datasets: dict[str, PointTable] = {}
        self._regions: dict[str, RegionSet] = {}
        #: name -> (store path, partition-mount budget); moved to
        #: ``_datasets`` as an open Dataset on first query.
        self._stores: dict[str, tuple[Path, int | None]] = {}

    # -- registration ------------------------------------------------------

    def add_dataset(self, table: PointTable, name: str | None = None) -> str:
        """Register a point data set; returns the name used."""
        name = name or table.name
        if name in self._datasets or name in self._stores:
            raise QueryError(f"dataset {name!r} already registered")
        self._datasets[name] = table
        return name

    def add_store(self, path, name: str | None = None,
                  memory_budget_bytes: int | None = None) -> str:
        """Register an on-disk dataset store *without opening it*.

        The store directory is validated and opened on the first query
        that names it; until then registration costs nothing, so a
        server can declare every store it might serve and pay only for
        the ones actually queried.  ``memory_budget_bytes`` caps the
        bytes of partition files the opened dataset keeps mapped
        (least-recently-scanned mappings are dropped first).
        """
        path = Path(path)
        name = name or path.name
        if name in self._datasets or name in self._stores:
            raise QueryError(f"dataset {name!r} already registered")
        self._stores[name] = (path, memory_budget_bytes)
        return name

    def add_region_set(self, regions: RegionSet, name: str | None = None
                       ) -> str:
        """Register a region resolution; returns the name used."""
        name = name or regions.name
        if name in self._regions:
            raise QueryError(f"region set {name!r} already registered")
        self._regions[name] = regions
        return name

    # -- lookup ----------------------------------------------------------------

    @property
    def dataset_names(self) -> list[str]:
        return sorted(set(self._datasets) | set(self._stores))

    @property
    def region_set_names(self) -> list[str]:
        return sorted(self._regions)

    def dataset(self, name: str) -> PointTable:
        table = self._datasets.get(name)
        if table is not None:
            return table
        pending = self._stores.pop(name, None)
        if pending is not None:
            from ..store import Dataset

            path, budget = pending
            dataset = Dataset.open(path, memory_budget_bytes=budget)
            self._datasets[name] = dataset
            return dataset
        raise QueryError(
            f"no dataset {name!r}; registered: {self.dataset_names}")

    def store_status(self) -> list[dict]:
        """Mount state of every registered store (lazy ones included)."""
        from ..store import Dataset

        status = []
        for name, (path, budget) in sorted(self._stores.items()):
            status.append({"name": name, "path": str(path),
                           "opened": False,
                           "memory_budget_bytes": budget})
        for name, table in sorted(self._datasets.items()):
            if isinstance(table, Dataset):
                status.append({"name": name, "path": str(table.path),
                               "opened": True, **table.mount_stats()})
        return status

    def region_set(self, name: str) -> RegionSet:
        try:
            return self._regions[name]
        except KeyError:
            raise QueryError(
                f"no region set {name!r}; registered: "
                f"{self.region_set_names}"
            ) from None

    # -- querying -----------------------------------------------------------

    def aggregate(self, dataset: str, regions: str,
                  query: SpatialAggregation, **execute_kwargs
                  ) -> AggregationResult:
        """Run a spatial aggregation by registered names."""
        return self.engine.execute(
            self.dataset(dataset), self.region_set(regions), query,
            **execute_kwargs)

    def sql(self, query: str, **execute_kwargs) -> AggregationResult:
        """Run a query written in the paper's SQL dialect, e.g.::

            SELECT COUNT(*) FROM taxi, neighborhoods
            WHERE taxi.loc INSIDE neighborhoods.geometry
              AND fare > 10 AND t BETWEEN 0 AND 86400
            GROUP BY neighborhoods.id

        The FROM clause names a registered data set and region set.
        """
        from ..core.sql import parse_query

        parsed = parse_query(query)
        return self.aggregate(parsed.table, parsed.regions,
                              parsed.aggregation, **execute_kwargs)

    # -- cache facade ------------------------------------------------------

    def cache_stats(self) -> dict:
        """Counters of the engine's unified cache (hits/misses/bytes)."""
        return self.engine.cache_stats()

    def clear_caches(self) -> None:
        self.engine.clear_caches()

    def __repr__(self) -> str:
        return (f"DataManager(datasets={self.dataset_names}, "
                f"regions={self.region_set_names})")
