"""The data exploration view.

Urbane's second core view: compare *all* regions across *several* data
sets at once.  Each data set contributes an indicator (a spatial
aggregation); the view normalizes indicators across regions, combines
them under user weights into a composite score, ranks regions, and
finds the regions most similar to a chosen one — the workflow the
paper's architect persona uses to benchmark a neighborhood of interest
against the rest of the city.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import SpatialAggregation
from ..errors import QueryError
from .color import normalize_values
from .datamanager import DataManager


@dataclass(frozen=True)
class Indicator:
    """One column of the exploration matrix.

    ``higher_is_better`` flips normalization for indicators where a
    large value is bad (e.g. crime counts), so composite scores always
    read "higher = better neighborhood".
    """

    name: str
    dataset: str
    query: SpatialAggregation
    weight: float = 1.0
    higher_is_better: bool = True


@dataclass
class ExplorationMatrix:
    """Regions x indicators: raw values, normalized scores, rankings."""

    region_names: tuple[str, ...]
    indicators: tuple[Indicator, ...]
    raw: np.ndarray          # (R, K) raw aggregate values
    normalized: np.ndarray   # (R, K) in [0, 1], direction-corrected
    stats: dict = field(default_factory=dict)

    def __post_init__(self):
        expected = (len(self.region_names), len(self.indicators))
        if self.raw.shape != expected or self.normalized.shape != expected:
            raise QueryError(
                f"matrix shape {self.raw.shape} != regions x indicators "
                f"{expected}")

    def _region_id(self, region_name: str) -> int:
        try:
            return self.region_names.index(region_name)
        except ValueError:
            raise QueryError(f"unknown region {region_name!r}") from None

    def scores(self, weights: dict[str, float] | None = None) -> np.ndarray:
        """Composite per-region score: weighted mean of normalized
        indicators (NaN indicators are skipped per region)."""
        w = np.array([
            (weights or {}).get(ind.name, ind.weight)
            for ind in self.indicators], dtype=np.float64)
        if (w < 0).any():
            raise QueryError("indicator weights must be non-negative")
        if w.sum() == 0:
            raise QueryError("at least one indicator weight must be > 0")
        norm = self.normalized
        valid = np.isfinite(norm)
        weighted = np.where(valid, norm, 0.0) * w[None, :]
        denom = (valid * w[None, :]).sum(axis=1)
        with np.errstate(invalid="ignore", divide="ignore"):
            out = weighted.sum(axis=1) / denom
        out[denom == 0] = np.nan
        return out

    def ranking(self, weights: dict[str, float] | None = None
                ) -> list[tuple[str, float]]:
        """Regions ordered best-first by composite score."""
        scores = self.scores(weights)
        order = np.argsort(np.nan_to_num(scores, nan=-np.inf))[::-1]
        return [(self.region_names[i], float(scores[i])) for i in order]

    def rank_of(self, region_name: str,
                weights: dict[str, float] | None = None) -> int:
        """1-based rank of a region under the given weights."""
        target = self._region_id(region_name)
        scores = self.scores(weights)
        order = np.argsort(np.nan_to_num(scores, nan=-np.inf))[::-1]
        return int(np.flatnonzero(order == target)[0]) + 1

    def similar_to(self, region_name: str, k: int = 5
                   ) -> list[tuple[str, float]]:
        """The k regions nearest in normalized indicator space.

        Distance is Euclidean over the indicators both regions have
        (NaN-masked), scaled to the number of shared indicators.
        """
        target = self._region_id(region_name)
        ref = self.normalized[target]
        diffs = self.normalized - ref[None, :]
        shared = np.isfinite(diffs)
        sq = np.where(shared, diffs * diffs, 0.0).sum(axis=1)
        count = shared.sum(axis=1)
        with np.errstate(invalid="ignore", divide="ignore"):
            dist = np.sqrt(sq / count)
        dist[count == 0] = np.inf
        dist[target] = np.inf
        order = np.argsort(dist)[:k]
        return [(self.region_names[i], float(dist[i])) for i in order]

    def compare(self, region_a: str, region_b: str) -> dict[str, dict]:
        """Per-indicator side-by-side of two regions (raw + normalized)."""
        ia = self._region_id(region_a)
        ib = self._region_id(region_b)
        out = {}
        for k, ind in enumerate(self.indicators):
            out[ind.name] = {
                region_a: float(self.raw[ia, k]),
                region_b: float(self.raw[ib, k]),
                "normalized_delta": float(self.normalized[ia, k]
                                          - self.normalized[ib, k]),
            }
        return out


class DataExplorationView:
    """Builds exploration matrices through the shared engine."""

    def __init__(self, manager: DataManager, regions: str,
                 method: str = "bounded", resolution: int | None = None,
                 normalization: str = "quantile"):
        self.manager = manager
        self.regions_name = regions
        self.method = method
        self.resolution = resolution
        self.normalization = normalization

    def compute(self, indicators: list[Indicator]) -> ExplorationMatrix:
        """Run every indicator's aggregation and assemble the matrix."""
        if not indicators:
            raise QueryError("need at least one indicator")
        region_set = self.manager.region_set(self.regions_name)
        raw = np.empty((len(region_set), len(indicators)))
        total_time = 0.0
        for k, ind in enumerate(indicators):
            result = self.manager.aggregate(
                ind.dataset, self.regions_name, ind.query,
                method=self.method, resolution=self.resolution)
            raw[:, k] = result.values
            total_time += result.stats.get("time_execute_s", 0.0)

        normalized = np.empty_like(raw)
        for k, ind in enumerate(indicators):
            norm = normalize_values(raw[:, k], mode=self.normalization)
            if not ind.higher_is_better:
                norm = 1.0 - norm
            normalized[:, k] = norm
        return ExplorationMatrix(
            region_names=region_set.region_names,
            indicators=tuple(indicators),
            raw=raw,
            normalized=normalized,
            stats={"time_total_s": total_time,
                   "queries": len(indicators)},
        )
