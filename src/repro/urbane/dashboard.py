"""The composed dashboard: Urbane's coordinated views in one frame.

Urbane's UI shows the map, the timeline and the ranking side by side,
all answering the same filter state.  :class:`Dashboard` renders that
composition headlessly: one call produces a text frame with the
choropleth, the event timeline, the top regions and the query's
provenance — the exploration examples and the CLI demo print these.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import SpatialAggregation
from ..errors import QueryError
from .datamanager import DataManager
from .mapview import MapView
from .timeline import TimelineView


@dataclass
class DashboardFrame:
    """One rendered dashboard state."""

    title: str
    map_ascii: str
    timeline_spark: str
    top_regions: list[tuple[str, float]]
    total: float
    latency_ms: float

    def render(self, width: int = 78) -> str:
        rule = "=" * width
        lines = [rule, self.title.center(width), rule, self.map_ascii, ""]
        lines.append(f"timeline  {self.timeline_spark}")
        lines.append("")
        lines.append(f"{'top regions':<30} {'value':>14}")
        for name, value in self.top_regions:
            lines.append(f"  {name:<28} {value:>14,.1f}")
        lines.append("")
        lines.append(f"total {self.total:,.1f}   refresh "
                     f"{self.latency_ms:.1f} ms")
        lines.append(rule)
        return "\n".join(lines)


class Dashboard:
    """Coordinated map + timeline + ranking over one filter state."""

    def __init__(self, manager: DataManager, dataset: str, regions: str,
                 resolution: int = 384, map_cols: int = 70,
                 map_rows: int = 22, top_k: int = 5):
        self.manager = manager
        self.dataset = dataset
        self.regions = regions
        self.map_view = MapView(manager, resolution=resolution)
        self.timeline_view = TimelineView(manager)
        self.map_cols = int(map_cols)
        self.map_rows = int(map_rows)
        self.top_k = int(top_k)
        if top_k < 1:
            raise QueryError("top_k must be >= 1")

    def frame(self, query: SpatialAggregation | None = None,
              bucket: str = "day",
              time_column: str = "t") -> DashboardFrame:
        """Render the dashboard for one query state."""
        query = query or SpatialAggregation.count()
        choropleth = self.map_view.choropleth(self.dataset, self.regions,
                                              query)
        series = self.timeline_view.series(
            self.dataset, bucket=bucket, time_column=time_column,
            filters=query.filters)
        result = choropleth.result
        title = (f"{self.dataset} x {self.regions} — "
                 f"{query.describe()}")
        import numpy as np

        finite = result.values[np.isfinite(result.values)]
        return DashboardFrame(
            title=title,
            map_ascii=choropleth.ascii(max_cols=self.map_cols,
                                       max_rows=self.map_rows),
            timeline_spark=series.sparkline(self.map_cols - 10),
            top_regions=result.top_k(self.top_k),
            total=float(finite.sum()) if len(finite) else 0.0,
            latency_ms=result.stats.get("time_execute_s", 0.0) * 1000,
        )
