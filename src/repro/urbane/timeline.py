"""The timeline view.

Urbane's temporal companion to the map: event volume over time, for the
whole city or one selected region, at an hour/day/week granularity.
Brushing a range on this view produces the :class:`TimeRange` filters
the other views re-query with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QueryError
from ..table import PointTable, TimeRange, combine_filters
from .datamanager import DataManager

_BUCKETS = {"hour": 3_600, "day": 86_400, "week": 7 * 86_400}


@dataclass
class TimeSeries:
    """Evenly bucketed event counts (or value sums) over time."""

    bucket_starts: np.ndarray  # epoch seconds, one per bucket
    values: np.ndarray
    bucket_seconds: int
    label: str = ""

    def __len__(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return float(self.values.sum())

    def peak(self) -> tuple[int, float]:
        """(bucket start, value) of the maximum bucket."""
        i = int(np.argmax(self.values))
        return int(self.bucket_starts[i]), float(self.values[i])

    def smoothed(self, window: int = 3) -> np.ndarray:
        """Centered moving average (edge-shrunk), for display."""
        if window < 1:
            raise QueryError("window must be >= 1")
        if window == 1 or len(self.values) == 0:
            return self.values.copy()
        kernel = np.ones(window) / window
        return np.convolve(self.values, kernel, mode="same")

    def brush(self, start_bucket: int, end_bucket: int,
              time_column: str = "t") -> TimeRange:
        """The TimeRange filter selecting buckets [start, end)."""
        if not (0 <= start_bucket < end_bucket <= len(self)):
            raise QueryError(
                f"brush [{start_bucket}, {end_bucket}) out of range "
                f"0..{len(self)}")
        t0 = int(self.bucket_starts[start_bucket])
        t1 = int(self.bucket_starts[end_bucket - 1]) + self.bucket_seconds
        return TimeRange(time_column, t0, t1)

    def sparkline(self, width: int = 60) -> str:
        """Unicode sparkline for terminal output."""
        glyphs = "▁▂▃▄▅▆▇█"
        if len(self.values) == 0:
            return ""
        vals = self.values
        if len(vals) > width:
            # Block-average down to the width budget.
            edges = np.linspace(0, len(vals), width + 1).astype(int)
            vals = np.array([vals[a:b].mean() if b > a else 0.0
                             for a, b in zip(edges[:-1], edges[1:])])
        hi = vals.max()
        if hi <= 0:
            return glyphs[0] * len(vals)
        idx = np.minimum((vals / hi * (len(glyphs) - 1) + 0.5).astype(int),
                         len(glyphs) - 1)
        return "".join(glyphs[i] for i in idx)


class TimelineView:
    """Builds time series over registered data sets."""

    def __init__(self, manager: DataManager):
        self.manager = manager

    def matrix(self, dataset: str, region_set: str, bucket: str = "day",
               time_column: str = "t", filters=(),
               value_column: str | None = None, resolution: int = 512):
        """The region x time heat matrix (one labeling pass).

        Returns a :class:`repro.core.RegionTimeMatrix`; the per-region
        rows are what the UI draws as small-multiple sparklines.
        """
        from ..core.heatmatrix import region_time_matrix
        from ..raster import Viewport

        if bucket not in _BUCKETS:
            raise QueryError(
                f"unknown bucket {bucket!r}; expected one of "
                f"{sorted(_BUCKETS)}")
        table = self.manager.dataset(dataset)
        regions = self.manager.region_set(region_set)
        viewport = Viewport.fit(regions.bbox, resolution)
        fragments = self.manager.engine.fragments_for(regions, viewport)
        return region_time_matrix(
            table, regions, viewport, time_column=time_column,
            bucket_seconds=_BUCKETS[bucket], filters=filters,
            value_column=value_column, fragments=fragments)

    def series(
        self,
        dataset: str,
        bucket: str = "day",
        time_column: str = "t",
        region_set: str | None = None,
        region_name: str | None = None,
        filters=(),
        value_column: str | None = None,
    ) -> TimeSeries:
        """Bucketed series, optionally restricted to one region.

        With ``value_column`` the series holds per-bucket sums of that
        column instead of counts.
        """
        if bucket not in _BUCKETS:
            raise QueryError(
                f"unknown bucket {bucket!r}; expected one of "
                f"{sorted(_BUCKETS)}")
        bucket_s = _BUCKETS[bucket]
        table: PointTable = self.manager.dataset(dataset)
        mask = combine_filters(list(filters)).mask(table)

        if region_name is not None:
            if region_set is None:
                raise QueryError("region_name requires region_set")
            regions = self.manager.region_set(region_set)
            geom = regions[regions.id_of(region_name)]
            inside = np.zeros(len(table), dtype=bool)
            box_mask = geom.bbox.contains_points(table.xy)
            cand = np.flatnonzero(box_mask & mask)
            if len(cand):
                inside[cand] = geom.contains_points(table.xy[cand])
            mask = mask & inside

        tvals = table.column(time_column).values[mask]
        label = f"{dataset}/{bucket}"
        if len(tvals) == 0:
            return TimeSeries(np.empty(0, dtype=np.int64),
                              np.empty(0), bucket_s, label)
        origin = int(tvals.min()) // bucket_s * bucket_s
        idx = (tvals - origin) // bucket_s
        nbuckets = int(idx.max()) + 1
        if value_column is not None:
            weights = table.column(value_column).values[mask].astype(
                np.float64)
            values = np.bincount(idx, weights=weights, minlength=nbuckets)
        else:
            values = np.bincount(idx, minlength=nbuckets).astype(np.float64)
        starts = origin + np.arange(nbuckets, dtype=np.int64) * bucket_s
        return TimeSeries(starts, values, bucket_s, label)
