"""The timeline view.

Urbane's temporal companion to the map: event volume over time, for the
whole city or one selected region, at an hour/day/week granularity.
Brushing a range on this view produces the :class:`TimeRange` filters
the other views re-query with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QueryError
from ..table import PointTable, TimeRange, combine_filters
from .datamanager import DataManager

_BUCKETS = {"hour": 3_600, "day": 86_400, "week": 7 * 86_400}


@dataclass
class TimeSeries:
    """Evenly bucketed event counts (or value sums) over time."""

    bucket_starts: np.ndarray  # epoch seconds, one per bucket
    values: np.ndarray
    bucket_seconds: int
    label: str = ""

    def __len__(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return float(self.values.sum())

    def peak(self) -> tuple[int, float]:
        """(bucket start, value) of the maximum bucket."""
        i = int(np.argmax(self.values))
        return int(self.bucket_starts[i]), float(self.values[i])

    def smoothed(self, window: int = 3) -> np.ndarray:
        """Centered moving average (edge-shrunk), for display."""
        if window < 1:
            raise QueryError("window must be >= 1")
        if window == 1 or len(self.values) == 0:
            return self.values.copy()
        kernel = np.ones(window) / window
        return np.convolve(self.values, kernel, mode="same")

    def brush(self, start_bucket: int, end_bucket: int,
              time_column: str = "t") -> TimeRange:
        """The TimeRange filter selecting buckets [start, end)."""
        if not (0 <= start_bucket < end_bucket <= len(self)):
            raise QueryError(
                f"brush [{start_bucket}, {end_bucket}) out of range "
                f"0..{len(self)}")
        t0 = int(self.bucket_starts[start_bucket])
        t1 = int(self.bucket_starts[end_bucket - 1]) + self.bucket_seconds
        return TimeRange(time_column, t0, t1)

    def sparkline(self, width: int = 60) -> str:
        """Unicode sparkline for terminal output."""
        glyphs = "▁▂▃▄▅▆▇█"
        if len(self.values) == 0:
            return ""
        vals = self.values
        if len(vals) > width:
            # Block-average down to the width budget (vectorized:
            # segment sums via reduceat over the edge offsets).
            edges = np.linspace(0, len(vals), width + 1).astype(int)
            sums = np.add.reduceat(vals, edges[:-1])
            counts = np.diff(edges)
            vals = np.where(counts > 0,
                            sums / np.maximum(counts, 1), 0.0)
        hi = vals.max()
        if hi <= 0:
            return glyphs[0] * len(vals)
        idx = np.minimum((vals / hi * (len(glyphs) - 1) + 0.5).astype(int),
                         len(glyphs) - 1)
        return "".join(glyphs[i] for i in idx)


class TimelineView:
    """Builds time series over registered data sets."""

    def __init__(self, manager: DataManager):
        self.manager = manager

    def matrix(self, dataset: str, region_set: str, bucket: str = "day",
               time_column: str = "t", filters=(),
               value_column: str | None = None, resolution: int = 512):
        """The region x time heat matrix (one labeling pass).

        Returns a :class:`repro.core.RegionTimeMatrix`; the per-region
        rows are what the UI draws as small-multiple sparklines.
        """
        from ..core.heatmatrix import region_time_matrix
        from ..raster import Viewport

        if bucket not in _BUCKETS:
            raise QueryError(
                f"unknown bucket {bucket!r}; expected one of "
                f"{sorted(_BUCKETS)}")
        table = self.manager.dataset(dataset)
        regions = self.manager.region_set(region_set)
        viewport = Viewport.fit(regions.bbox, resolution)
        fragments = self.manager.engine.fragments_for(regions, viewport)
        fast = self._matrix_from_tcube(
            table, regions, viewport, fragments, _BUCKETS[bucket],
            time_column, tuple(filters), value_column)
        if fast is not None:
            return fast
        return region_time_matrix(
            table, regions, viewport, time_column=time_column,
            bucket_seconds=_BUCKETS[bucket], filters=filters,
            value_column=value_column, fragments=fragments)

    def _matrix_from_tcube(self, table, regions, viewport, fragments,
                           bucket_s, time_column, filters, value_column):
        """Assemble the heat matrix from a cached temporal canvas cube.

        Peek-only: never builds a cube.  The cube's slices use the same
        pixel-center labeling as :func:`region_time_matrix`, so counts
        match that path exactly; the bucket span is trimmed to the
        labeled extent the exact path would produce.
        """
        from ..core.heatmatrix import RegionTimeMatrix, pixel_region_labels
        from ..core.tcube import _same_filters

        ctx = self.manager.engine.ctx
        for cube in ctx.cached_tcubes(table):
            if cube is None or cube.viewport != viewport:
                continue
            if cube.bucket_seconds != bucket_s or \
                    cube.time_column != time_column:
                continue
            if not _same_filters(cube.residual_filters, filters):
                continue
            if value_column is not None and \
                    cube.value_column != value_column:
                continue
            if cube.num_buckets == 0:
                continue
            labels = pixel_region_labels(fragments)
            counts = cube.region_matrix(labels, len(regions), "count")
            live = np.flatnonzero(counts.any(axis=0))
            if len(live) == 0:
                continue
            lo, hi = int(live[0]), int(live[-1]) + 1
            values = (counts if value_column is None
                      else cube.region_matrix(labels, len(regions), "sum"))
            return RegionTimeMatrix(
                regions=regions,
                bucket_starts=cube.bucket_starts[lo:hi],
                values=values[:, lo:hi],
                bucket_seconds=bucket_s,
                stats={
                    "source": "tcube",
                    "points_labeled": int(round(counts.sum())),
                    "epsilon_world_units": viewport.pixel_diag,
                },
            )
        return None

    def series(
        self,
        dataset: str,
        bucket: str = "day",
        time_column: str = "t",
        region_set: str | None = None,
        region_name: str | None = None,
        filters=(),
        value_column: str | None = None,
    ) -> TimeSeries:
        """Bucketed series, optionally restricted to one region.

        With ``value_column`` the series holds per-bucket sums of that
        column instead of counts.
        """
        if bucket not in _BUCKETS:
            raise QueryError(
                f"unknown bucket {bucket!r}; expected one of "
                f"{sorted(_BUCKETS)}")
        bucket_s = _BUCKETS[bucket]
        table: PointTable = self.manager.dataset(dataset)
        label = f"{dataset}/{bucket}"

        if region_name is None:
            fast = self._series_from_tcube(table, bucket_s, time_column,
                                           tuple(filters), value_column,
                                           label)
            if fast is not None:
                return fast
        mask = combine_filters(list(filters)).mask(table)

        if region_name is not None:
            if region_set is None:
                raise QueryError("region_name requires region_set")
            regions = self.manager.region_set(region_set)
            mask = mask & self._inside_mask(table, regions, region_name)

        tvals = table.column(time_column).values[mask]
        if len(tvals) == 0:
            return TimeSeries(np.empty(0, dtype=np.int64),
                              np.empty(0), bucket_s, label)
        origin = int(tvals.min()) // bucket_s * bucket_s
        idx = (tvals - origin) // bucket_s
        nbuckets = int(idx.max()) + 1
        if value_column is not None:
            weights = table.column(value_column).values[mask].astype(
                np.float64)
            values = np.bincount(idx, weights=weights, minlength=nbuckets)
        else:
            values = np.bincount(idx, minlength=nbuckets).astype(np.float64)
        starts = origin + np.arange(nbuckets, dtype=np.int64) * bucket_s
        return TimeSeries(starts, values, bucket_s, label)

    def _series_from_tcube(self, table, bucket_s, time_column, filters,
                           value_column, label):
        """Serve the whole-city series from a cached temporal cube.

        Peek-only, and only when the cube provably holds every filtered
        point (``covers_all_points``): the cube buckets the identical
        point set at the identical origin, so the per-bucket totals are
        the same ``bincount`` the exact path computes.
        """
        from ..core.tcube import _same_filters

        ctx = self.manager.engine.ctx
        for cube in ctx.cached_tcubes(table):
            if cube is None or not cube.covers_all_points:
                continue
            if cube.bucket_seconds != bucket_s or \
                    cube.time_column != time_column:
                continue
            if not _same_filters(cube.residual_filters, filters):
                continue
            if value_column is not None and \
                    cube.value_column != value_column:
                continue
            if cube.num_buckets == 0:
                continue
            kind = "count" if value_column is None else "sum"
            return TimeSeries(cube.bucket_starts,
                              cube.bucket_totals(kind), bucket_s, label)
        return None

    def _inside_mask(self, table, regions, region_name) -> np.ndarray:
        """Point-in-region mask, cached in the engine's unified cache.

        Keyed by (table, region set, region id) only — no filters — so
        every filter combination brushed over the same region reuses one
        point-in-polygon pass.
        """
        from ..core.cache import fingerprint

        gid = regions.id_of(region_name)
        ctx = self.manager.engine.ctx
        key = ("inside-mask", fingerprint(table), fingerprint(regions),
               int(gid))

        def build() -> np.ndarray:
            geom = regions[gid]
            inside = np.zeros(len(table), dtype=bool)
            cand = np.flatnonzero(geom.bbox.contains_points(table.xy))
            if len(cand):
                inside[cand] = geom.contains_points(table.xy[cand])
            return inside

        return ctx.cache.get_or_build(key, build)
