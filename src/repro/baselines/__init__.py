"""Comparator implementations from the paper's evaluation.

* :func:`naive_join` — brute-force exact ground truth;
* :func:`grid_index_join` — uniform-grid index join (the paper's
  index-based baseline);
* :func:`rtree_index_join` — R-tree variant of the index join;
* :class:`DataCube` — traditional pre-aggregation, fast only for
  anticipated queries;
* :func:`assign_regions` — exact point->region labeling used by tests
  and the cube.
"""

from .assign import assign_regions
from .cube import DataCube
from .grid_join import grid_index_join
from .naive import naive_join
from .quadtree_join import quadtree_index_join
from .rtree_join import rtree_index_join

__all__ = [
    "DataCube",
    "assign_regions",
    "grid_index_join",
    "naive_join",
    "quadtree_index_join",
    "rtree_index_join",
]
