"""Naive exact join: test every point against every region.

No index, no raster — the O(|P| * |R|) comparator.  Exists as the
unambiguous ground truth for small inputs and as the lower anchor of the
performance experiments.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.aggregates import PartialAggregate, accumulate_exact
from ..core.query import SpatialAggregation
from ..core.regions import RegionSet
from ..core.result import AggregationResult
from ..table import PointTable


def naive_join(table: PointTable, regions: RegionSet,
               query: SpatialAggregation) -> AggregationResult:
    """Exact brute-force spatial aggregation."""
    t0 = time.perf_counter()
    mask = query.filter_mask(table)
    values = query.values_for(table)
    xy = table.xy[mask]
    if values is not None:
        values = values[mask]

    part = PartialAggregate.empty(query.agg, len(regions))
    for gid in range(len(regions)):
        inside = regions[gid].contains_points(xy)
        if not inside.any():
            continue
        accumulate_exact(
            part, gid,
            values[inside] if values is not None else None,
            int(inside.sum()))
    elapsed = time.perf_counter() - t0
    return AggregationResult(
        regions=regions,
        values=part.finalize(),
        method="naive-join",
        exact=True,
        stats={
            "points_total": len(table),
            "points_after_filter": int(mask.sum()),
            "time_total_s": elapsed,
        },
    )
