"""Pre-aggregation data cube — the traditional comparator.

A :class:`DataCube` materializes aggregates over a *fixed* region
hierarchy x time buckets x a few chosen categorical dimensions at build
time.  Queries that align with those choices are answered instantly by
slicing; everything else — an ad-hoc polygon set, a non-aligned time
range, a predicate on a non-materialized attribute — raises
:class:`CubeError`.

This is exactly the trade-off the paper motivates Raster Join with:
pre-aggregation gives interactivity only for anticipated queries, while
visual exploration keeps generating unanticipated ones.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import CubeError, QueryError
from ..core.aggregates import AVG, COUNT, SUM
from ..core.query import SpatialAggregation
from ..core.regions import RegionSet
from ..core.result import AggregationResult
from ..table import CATEGORICAL, Comparison, IsIn, PointTable, TimeRange
from .assign import assign_regions


class DataCube:
    """Dense pre-aggregated cube over (region, time bucket, categories)."""

    def __init__(
        self,
        table: PointTable,
        regions: RegionSet,
        time_column: str | None = None,
        time_bucket_s: int = 86_400,
        category_columns: tuple[str, ...] = (),
        value_column: str | None = None,
    ):
        t0 = time.perf_counter()
        self.regions = regions
        self.time_column = time_column
        self.time_bucket_s = int(time_bucket_s)
        self.category_columns = tuple(category_columns)
        self.value_column = value_column

        labels = assign_regions(table, regions)
        keep = labels >= 0
        region_idx = labels[keep].astype(np.int64)

        dims: list[int] = [len(regions)]
        indexers: list[np.ndarray] = [region_idx]

        if time_column is not None:
            tvals = table.column(time_column).values[keep]
            if len(tvals):
                self.time_origin = int(tvals.min()
                                       // self.time_bucket_s
                                       * self.time_bucket_s)
                tb = (tvals - self.time_origin) // self.time_bucket_s
                self.num_buckets = int(tb.max()) + 1
            else:
                self.time_origin = 0
                self.num_buckets = 1
                tb = np.zeros(0, dtype=np.int64)
            dims.append(self.num_buckets)
            indexers.append(tb.astype(np.int64))
        else:
            self.time_origin = 0
            self.num_buckets = 0

        self._cat_categories: dict[str, tuple[str, ...]] = {}
        for cname in self.category_columns:
            col = table.column(cname)
            if col.kind != CATEGORICAL:
                raise QueryError(
                    f"cube dimension {cname!r} must be categorical")
            self._cat_categories[cname] = col.categories
            dims.append(len(col.categories))
            indexers.append(col.values[keep].astype(np.int64))

        # Flatten the multi-dim coordinates to one linear index and
        # bincount — one pass over the data per measure.
        linear = np.zeros(len(region_idx), dtype=np.int64)
        stride = 1
        for dim_size, idx in zip(reversed(dims), reversed(indexers)):
            linear += idx * stride
            stride *= dim_size
        size = int(np.prod(dims))
        self.counts = np.bincount(linear, minlength=size).astype(
            np.float64).reshape(dims)
        if value_column is not None:
            vals = table.column(value_column).values[keep].astype(np.float64)
            self.sums = np.bincount(
                linear, weights=vals, minlength=size).reshape(dims)
        else:
            self.sums = None
        self.dims = tuple(dims)
        self.build_time_s = time.perf_counter() - t0
        self.source_rows = len(table)

    # -- capability checks ---------------------------------------------------

    def can_answer(self, regions: RegionSet, query: SpatialAggregation) -> bool:
        """True when :meth:`answer` would succeed (no exception)."""
        try:
            self._plan(regions, query)
            return True
        except CubeError:
            return False

    def _plan(self, regions: RegionSet, query: SpatialAggregation):
        """Map the query onto cube slices, or raise :class:`CubeError`."""
        if regions is not self.regions and regions.name != self.regions.name:
            raise CubeError(
                f"cube was materialized for region set "
                f"{self.regions.name!r}; cannot answer ad-hoc region set "
                f"{regions.name!r}")
        if query.agg == COUNT:
            pass
        elif query.agg in (SUM, AVG):
            if self.sums is None or query.value_column != self.value_column:
                raise CubeError(
                    f"cube has no materialized sums for column "
                    f"{query.value_column!r}")
        else:
            raise CubeError(
                f"cube cannot answer {query.agg.upper()} (only COUNT/SUM/"
                f"AVG were materialized)")

        time_slice = slice(None)
        cat_selectors: dict[str, np.ndarray] = {}
        for expr in query.filters:
            if isinstance(expr, TimeRange):
                if self.time_column is None or expr.column != self.time_column:
                    raise CubeError(
                        f"time filter on {expr.column!r} was not "
                        f"materialized")
                if ((expr.start - self.time_origin) % self.time_bucket_s
                        or (expr.end - self.time_origin) % self.time_bucket_s):
                    raise CubeError(
                        f"time range [{expr.start}, {expr.end}) is not "
                        f"aligned to the {self.time_bucket_s}s buckets")
                b0 = (expr.start - self.time_origin) // self.time_bucket_s
                b1 = (expr.end - self.time_origin) // self.time_bucket_s
                b0 = max(int(b0), 0)
                b1 = min(int(b1), self.num_buckets)
                time_slice = slice(b0, max(b0, b1))
            elif isinstance(expr, Comparison) and expr.op == "==":
                cats = self._cat_categories.get(expr.column)
                if cats is None:
                    raise CubeError(
                        f"predicate on {expr.column!r} was not materialized")
                if expr.value not in cats:
                    cat_selectors[expr.column] = np.zeros(0, dtype=np.int64)
                else:
                    cat_selectors[expr.column] = np.array(
                        [cats.index(expr.value)], dtype=np.int64)
            elif isinstance(expr, IsIn):
                cats = self._cat_categories.get(expr.column)
                if cats is None:
                    raise CubeError(
                        f"predicate on {expr.column!r} was not materialized")
                idx = [cats.index(v) for v in expr.values if v in cats]
                cat_selectors[expr.column] = np.asarray(idx, dtype=np.int64)
            else:
                raise CubeError(
                    f"ad-hoc filter {type(expr).__name__} cannot be "
                    f"answered from the cube")
        return time_slice, cat_selectors

    # -- answering -------------------------------------------------------------

    def _reduce(self, arr: np.ndarray, time_slice, cat_selectors) -> np.ndarray:
        axis = 1
        if self.time_column is not None:
            arr = arr[:, time_slice]
            axis = 2
        for cname in self.category_columns:
            if cname in cat_selectors:
                arr = np.take(arr, cat_selectors[cname], axis=axis)
            axis += 1
        # Sum out everything but the region axis.
        while arr.ndim > 1:
            arr = arr.sum(axis=1)
        return arr

    def answer(self, regions: RegionSet,
               query: SpatialAggregation) -> AggregationResult:
        """Answer an aligned query by slicing, or raise CubeError."""
        t0 = time.perf_counter()
        time_slice, cat_selectors = self._plan(regions, query)
        counts = self._reduce(self.counts, time_slice, cat_selectors)
        if query.agg == COUNT:
            values = counts
        elif query.agg == SUM:
            values = self._reduce(self.sums, time_slice, cat_selectors)
        else:  # AVG
            sums = self._reduce(self.sums, time_slice, cat_selectors)
            with np.errstate(divide="ignore", invalid="ignore"):
                values = sums / counts
            values[counts == 0] = np.nan
        elapsed = time.perf_counter() - t0
        return AggregationResult(
            regions=self.regions,
            values=values,
            method="data-cube",
            exact=True,
            stats={
                "time_total_s": elapsed,
                "cube_cells": int(np.prod(self.dims)),
                "build_time_s": self.build_time_s,
            },
        )

    def memory_bytes(self) -> int:
        """Resident size of the materialized measures."""
        total = self.counts.nbytes
        if self.sums is not None:
            total += self.sums.nbytes
        return total

    def __repr__(self) -> str:
        return (f"DataCube(regions={self.regions.name!r}, dims={self.dims}, "
                f"bytes={self.memory_bytes()})")
