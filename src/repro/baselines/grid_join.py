"""Grid index join — the paper's exact index-based baseline.

Points are bucketed into a uniform grid once; each region then fetches
the points of the cells its bounding box overlaps and refines them with
exact point-in-polygon tests.  This mirrors the (GPU) index-join
comparator in the Raster Join evaluation: correct, but every candidate
point pays a polygon test whose cost grows with boundary complexity.
"""

from __future__ import annotations

import time

from ..core.aggregates import PartialAggregate, accumulate_exact
from ..core.query import SpatialAggregation
from ..core.regions import RegionSet
from ..core.result import AggregationResult
from ..index import PointGridIndex
from ..table import PointTable


def grid_index_join(
    table: PointTable,
    regions: RegionSet,
    query: SpatialAggregation,
    grid_resolution: int = 128,
    index: PointGridIndex | None = None,
) -> AggregationResult:
    """Exact spatial aggregation through a uniform point grid.

    ``index`` may be passed to reuse a prebuilt grid over the *unfiltered*
    table (the executor caches it); filters are applied to the candidate
    sets after retrieval, mirroring how an index-based system would
    post-filter.
    """
    t0 = time.perf_counter()
    mask = query.filter_mask(table)
    values = query.values_for(table)
    t_filter = time.perf_counter() - t0

    t1 = time.perf_counter()
    if index is None:
        index = PointGridIndex(table.x, table.y, table.bbox,
                               nx=grid_resolution, ny=grid_resolution)
    t_index = time.perf_counter() - t1

    t2 = time.perf_counter()
    xy = table.xy
    part = PartialAggregate.empty(query.agg, len(regions))
    candidates_tested = 0
    for gid in range(len(regions)):
        geom = regions[gid]
        cand = index.query_bbox(geom.bbox)
        if len(cand) == 0:
            continue
        cand = cand[mask[cand]]
        if len(cand) == 0:
            continue
        candidates_tested += len(cand)
        inside = geom.contains_points(xy[cand])
        if not inside.any():
            continue
        matched = cand[inside]
        accumulate_exact(
            part, gid,
            values[matched] if values is not None else None,
            int(len(matched)))
    t_join = time.perf_counter() - t2

    return AggregationResult(
        regions=regions,
        values=part.finalize(),
        method="grid-index-join",
        exact=True,
        stats={
            "points_total": len(table),
            "points_after_filter": int(mask.sum()),
            "candidates_tested": candidates_tested,
            "time_filter_s": t_filter,
            "time_index_build_s": t_index,
            "time_join_s": t_join,
        },
    )
