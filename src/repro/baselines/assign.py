"""Exact point -> region assignment.

Labels every point with the id of the region containing it (-1 when no
region does).  This is the ground-truth machinery: tests validate every
join backend against it, and the data cube uses it to pre-aggregate a
registered region hierarchy.

Regions are assumed non-overlapping (a partition, like administrative
boundaries); when regions do overlap, the lowest region id wins.
"""

from __future__ import annotations

import numpy as np

from ..index import PointGridIndex
from ..table import PointTable
from ..core.regions import RegionSet


def assign_regions(table: PointTable, regions: RegionSet,
                   grid_resolution: int = 128) -> np.ndarray:
    """Region id per point, or -1 for points in no region.

    Polygon-driven: for each region, candidate points are fetched from a
    uniform point grid by bbox, then refined with the exact test.
    """
    labels = np.full(len(table), -1, dtype=np.int32)
    if len(table) == 0:
        return labels
    index = PointGridIndex(table.x, table.y, table.bbox,
                           nx=grid_resolution, ny=grid_resolution)
    xy = table.xy
    # Iterate highest id first so the lowest id wins on overlap.
    for gid in range(len(regions) - 1, -1, -1):
        geom = regions[gid]
        cand = index.query_bbox(geom.bbox)
        if len(cand) == 0:
            continue
        inside = geom.contains_points(xy[cand])
        if inside.any():
            labels[cand[inside]] = gid
    return labels
