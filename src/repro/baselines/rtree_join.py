"""R-tree index join — the second exact index-based comparator.

Same structure as the grid join but the candidate retrieval goes through
an STR-packed R-tree over the points.  Included because index-join
performance depends heavily on the index layout; the evaluation sweeps
both.
"""

from __future__ import annotations

import time

from ..core.aggregates import PartialAggregate, accumulate_exact
from ..core.query import SpatialAggregation
from ..core.regions import RegionSet
from ..core.result import AggregationResult
from ..index import RTree
from ..table import PointTable


def rtree_index_join(
    table: PointTable,
    regions: RegionSet,
    query: SpatialAggregation,
    leaf_capacity: int = 64,
    index: RTree | None = None,
) -> AggregationResult:
    """Exact spatial aggregation through a point R-tree."""
    t0 = time.perf_counter()
    mask = query.filter_mask(table)
    values = query.values_for(table)
    t_filter = time.perf_counter() - t0

    t1 = time.perf_counter()
    if index is None:
        index = RTree.from_points(table.x, table.y,
                                  leaf_capacity=leaf_capacity)
    t_index = time.perf_counter() - t1

    t2 = time.perf_counter()
    xy = table.xy
    part = PartialAggregate.empty(query.agg, len(regions))
    candidates_tested = 0
    for gid in range(len(regions)):
        geom = regions[gid]
        cand = index.query_bbox(geom.bbox)
        if len(cand) == 0:
            continue
        cand = cand[mask[cand]]
        if len(cand) == 0:
            continue
        candidates_tested += len(cand)
        inside = geom.contains_points(xy[cand])
        if not inside.any():
            continue
        matched = cand[inside]
        accumulate_exact(
            part, gid,
            values[matched] if values is not None else None,
            int(len(matched)))
    t_join = time.perf_counter() - t2

    return AggregationResult(
        regions=regions,
        values=part.finalize(),
        method="rtree-index-join",
        exact=True,
        stats={
            "points_total": len(table),
            "points_after_filter": int(mask.sum()),
            "candidates_tested": candidates_tested,
            "time_filter_s": t_filter,
            "time_index_build_s": t_index,
            "time_join_s": t_join,
        },
    )
