"""Quadtree index join — adaptive-index variant of the exact baseline.

Same polygon-driven structure as the grid and R-tree joins but the
candidate retrieval goes through a PR quadtree, which adapts its depth
to the hotspots urban data is full of.  Included for the index-layout
sweep in the ablation benchmarks.
"""

from __future__ import annotations

import time

from ..core.aggregates import PartialAggregate, accumulate_exact
from ..core.query import SpatialAggregation
from ..core.regions import RegionSet
from ..core.result import AggregationResult
from ..index import QuadTree
from ..table import PointTable


def quadtree_index_join(
    table: PointTable,
    regions: RegionSet,
    query: SpatialAggregation,
    capacity: int = 256,
    index: QuadTree | None = None,
) -> AggregationResult:
    """Exact spatial aggregation through a PR quadtree."""
    t0 = time.perf_counter()
    mask = query.filter_mask(table)
    values = query.values_for(table)
    t_filter = time.perf_counter() - t0

    t1 = time.perf_counter()
    if index is None:
        index = QuadTree(table.x, table.y, table.bbox, capacity=capacity)
    t_index = time.perf_counter() - t1

    t2 = time.perf_counter()
    xy = table.xy
    part = PartialAggregate.empty(query.agg, len(regions))
    candidates_tested = 0
    for gid in range(len(regions)):
        geom = regions[gid]
        cand = index.query_bbox(geom.bbox)
        if len(cand) == 0:
            continue
        cand = cand[mask[cand]]
        if len(cand) == 0:
            continue
        candidates_tested += len(cand)
        inside = geom.contains_points(xy[cand])
        if not inside.any():
            continue
        matched = cand[inside]
        accumulate_exact(
            part, gid,
            values[matched] if values is not None else None,
            int(len(matched)))
    t_join = time.perf_counter() - t2

    return AggregationResult(
        regions=regions,
        values=part.finalize(),
        method="quadtree-index-join",
        exact=True,
        stats={
            "points_total": len(table),
            "points_after_filter": int(mask.sum()),
            "candidates_tested": candidates_tested,
            "time_filter_s": t_filter,
            "time_index_build_s": t_index,
            "time_join_s": t_join,
        },
    )
