"""Pipelined partition prefetch: overlap page-in with compute.

A shard scanning partitions in manifest order spends its time in two
places — faulting the next partition's pages off disk, and scattering
the current partition's points.  3DPipe's observation is that the two
phases can overlap: tell the kernel which pages the scan will need
*next* while NumPy is still crunching the current ones, and by the
time the scan advances the pages are already resident.

:class:`PartitionPrefetcher` keeps a sliding window of
``madvise(MADV_WILLNEED)`` advisories ``depth`` partitions ahead of
the scan position.  The advise is strictly a hint — on platforms
without ``mmap.madvise`` (or for empty partitions with no mapping) it
degrades to a no-op, and the scan's results are identical either way.
"""

from __future__ import annotations


class PartitionPrefetcher:
    """Issue WILLNEED advisories ``depth`` partitions ahead of a scan.

    ``indices`` is the shard's partition list in scan order; call
    :meth:`advance` with the position about to be scanned and the
    prefetcher advises every not-yet-advised partition up to
    ``position + depth``.  ``depth=0`` disables prefetch entirely.
    """

    def __init__(self, dataset, indices, depth: int = 1):
        self.dataset = dataset
        self.indices = list(indices)
        self.depth = max(0, int(depth))
        self.issued = 0
        self.advised = 0
        self._next = 0

    def advance(self, position: int) -> None:
        """The scan is about to process ``indices[position]``."""
        if self.depth == 0:
            return
        upto = min(len(self.indices), position + 1 + self.depth)
        # Never re-advise behind the scan; the window only moves forward.
        self._next = max(self._next, position + 1)
        while self._next < upto:
            index = self.indices[self._next]
            self._next += 1
            self.issued += 1
            if self.dataset.prefetch_partition(index):
                self.advised += 1

    def stats(self) -> dict:
        """Counters: how much of the window actually reached the kernel.

        ``hit_fraction`` is advised/issued — 1.0 when every lookahead
        partition had an mmap to advise on, 0.0 where ``madvise`` is
        unavailable (the no-op fallback).
        """
        fraction = (self.advised / self.issued) if self.issued else 0.0
        return {"depth": self.depth, "issued": self.issued,
                "advised": self.advised, "hit_fraction": fraction}
