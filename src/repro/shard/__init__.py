"""Sharded scatter-gather execution over store partitions.

The coordinator (:mod:`repro.shard.coordinator`) splits a pruned
partition list into contiguous grid-key shards, forks one worker per
shard over the same mmap'd store (zero-copy, copy-on-write), and merges
the per-shard partials — canvases, region vectors, pyramid block
deltas — in shard order, preserving the manifest-order accumulation
discipline that keeps answers bitwise-equal to single-process
execution.  Each shard pipelines page-in against compute by advising
the kernel about its *next* partitions while it scatters the current
one (:mod:`repro.shard.prefetch`).
"""

from .coordinator import (
    assign_shards,
    merge_canvases,
    prescatter_blocks,
    scatter_gather_canvases,
    scatter_gather_tiles,
)
from .prefetch import PartitionPrefetcher

__all__ = [
    "PartitionPrefetcher",
    "assign_shards",
    "merge_canvases",
    "prescatter_blocks",
    "scatter_gather_canvases",
    "scatter_gather_tiles",
]
